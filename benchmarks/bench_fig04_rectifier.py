"""Bench for Fig 4: rectifier comparison (clamp vs basic; ours vs WISP)."""

from conftest import print_experiment

from repro.experiments.registry import get_spec

SPEC = get_spec("fig04_rectifier")


def test_fig04_rectifier(benchmark):
    result = benchmark.pedantic(SPEC.run, rounds=1, iterations=1)
    print_experiment(result, SPEC.format)

    # Shape assertions against the paper.
    clamp = result["clamp_out_v"]
    basic = result["basic_out_v"]
    # Fig 4a: at weak inputs only the clamp rectifier produces output.
    weak = result["powers_dbm"] < -20
    assert (clamp[weak] > basic[weak]).all()
    # Fig 4b: ours tracks the 802.11b envelope far better than WISP.
    assert result["fidelity_ours"] > 3 * result["fidelity_wisp"]
    # §2.2.1: downlink range on the order of a meter.
    assert 0.4 < result["downlink_range_m"] < 3.0
