"""Bench for Fig 8: low sampling rates and the extended window."""

from conftest import print_experiment

from repro.experiments.registry import get_spec

SPEC = get_spec("fig08_sampling")


def test_fig08_sampling(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_traces": 12, "n_train": 16},
        rounds=1, iterations=1,
    )
    print_experiment(result, SPEC.format)

    reports = result["reports"]
    ext = reports["2.5Msps/extended"].average
    base = reports["2.5Msps/base"].average
    low = reports["1Msps/extended"].average
    # Paper: base 0.485 -> extended 0.93; 1 Msps ~ 0.5.
    assert ext > base
    assert ext >= 0.80
    assert low < ext
    assert low < 0.80
