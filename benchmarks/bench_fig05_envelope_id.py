"""Bench for Fig 5: 20 Msps identification accuracy over (L_p, L_t)."""

from conftest import print_experiment

from repro.experiments import fig05_envelope_id


def test_fig05_envelope_id(benchmark):
    result = benchmark.pedantic(
        fig05_envelope_id.run, kwargs={"n_traces": 10}, rounds=1, iterations=1
    )
    print_experiment(result, fig05_envelope_id.format_result)

    # Paper: L_p=40, L_t=120 reaches >= 99.3% minimum accuracy; our
    # simulated envelopes are cleaner, so demand a high floor.
    report = result["grid_reports"][(40, 120)]
    assert report.average >= 0.95
    assert report.minimum >= 0.85
    # Fig 5a: all four envelopes present and distinguishable lengths.
    assert len(result["envelopes"]) == 4
