"""Bench for Fig 5: 20 Msps identification accuracy over (L_p, L_t)."""

from conftest import print_experiment

from repro.experiments.registry import get_spec

SPEC = get_spec("fig05_envelope_id")


def test_fig05_envelope_id(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_traces": 10}, rounds=1, iterations=1
    )
    print_experiment(result, SPEC.format)

    # Paper: L_p=40, L_t=120 reaches >= 99.3% minimum accuracy; our
    # simulated envelopes are cleaner, so demand a high floor.
    report = result["grid_reports"][(40, 120)]
    assert report.average >= 0.95
    assert report.minimum >= 0.85
    # Fig 5a: all four envelopes present and distinguishable lengths.
    assert len(result["envelopes"]) == 4
