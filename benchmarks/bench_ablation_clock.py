"""Ablation: tag clock tolerance.

The tag times its flips off its own oscillator and resyncs at each
identified preamble, so boundary error grows linearly over one packet.
This sweep finds how much clock error overlay modulation tolerates --
context for why per-packet resync makes single-receiver decoding
immune to the drift that produces Hitchhike's Fig 9b offsets.
"""

import numpy as np
from conftest import print_experiment

from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
from repro.core.overlay_decoder import OverlayDecoder
from repro.core.tag_modulation import TagModulator
from repro.experiments.common import ExperimentResult
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table

PPMS = (0.0, 100.0, 1000.0, 5000.0, 20000.0)


def _tag_ber(ppm: float, seed: int = 41) -> float:
    rng = np.random.default_rng(seed)
    codec = OverlayCodec(OverlayConfig.for_mode(Protocol.WIFI_B, Mode.MODE_1))
    prod = rng.integers(0, 2, 40).astype(np.uint8)
    carrier = codec.build_carrier(prod)
    _, cap = codec.capacity(carrier.annotations["n_payload_symbols"])
    tag_bits = rng.integers(0, 2, cap).astype(np.uint8)
    mod = TagModulator(codec, clock_ppm=ppm)
    rx = mod.received_at_shifted_channel(mod.modulate(carrier, tag_bits))
    rx.annotations = dict(carrier.annotations)
    out = OverlayDecoder(codec).decode(rx)
    return float(np.mean(out.tag_bits[:cap] != tag_bits))


def run_clock_ablation() -> ExperimentResult:
    rows = {ppm: _tag_ber(ppm) for ppm in PPMS}
    return ExperimentResult(
        name="ablation_clock",
        data={"rows": rows},
        notes=[
            "crystal-grade (<100 ppm) error is harmless thanks to per-packet resync",
            "percent-level error (>5000 ppm) drifts flips across symbol boundaries",
        ],
    )


def test_ablation_clock(benchmark):
    result = benchmark.pedantic(run_clock_ablation, rounds=1, iterations=1)
    print_experiment(
        result,
        lambda r: format_table(
            ["clock error (ppm)", "tag BER"],
            [[f"{p:.0f}", f"{b:.3f}"] for p, b in r["rows"].items()],
        ),
    )
    rows = result["rows"]
    # Crystal-grade errors are harmless; percent-level errors are not.
    assert rows[100.0] == 0.0
    assert rows[1000.0] <= 0.02
    assert rows[20000.0] > 0.2
