"""Bench: modem-vs-analytic BER cross-validation.

Quantifies each software receiver's implementation loss against the
ideal waterfalls the range sweeps use.  Shape assertions: BER falls
with Eb/N0 for every protocol, and the high-Eb/N0 points are clean
(bounded implementation loss).
"""

from conftest import print_experiment

from repro.experiments.registry import get_spec

from repro.phy.protocols import Protocol

SPEC = get_spec("validation_ber")


def test_validation_ber(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_packets": 3}, rounds=1, iterations=1
    )
    print_experiment(result, SPEC.format)
    rows = result["rows"]

    for p in Protocol:
        series = [rows[(p, e)]["measured"] for e in (4.0, 8.0, 12.0)]
        # Monotone non-increasing BER with Eb/N0 (sampling tolerance).
        assert series[2] <= series[0] + 0.02, p
        # Bounded implementation loss: clean by 12 dB Eb/N0.
        assert series[2] <= 0.05, p

    # ZigBee's DSSS + matched filter + phase tracking make it the most
    # robust at low Eb/N0, as its analytic curve predicts.
    assert rows[(Protocol.ZIGBEE, 8.0)]["measured"] <= rows[(Protocol.BLE, 8.0)]["measured"] + 0.02
