"""Bench for Fig 7: blind vs ordered matching at 10 Msps, quantized."""

from conftest import print_experiment

from repro.experiments.registry import get_spec

SPEC = get_spec("fig07_ordered")


def test_fig07_ordered(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_traces": 12, "n_train": 16},
        rounds=1, iterations=1,
    )
    print_experiment(result, SPEC.format)

    blind = result["blind"].average
    ordered = result["ordered"].average
    # Paper: 0.906 blind -> 0.976 ordered.  Our simulated envelopes are
    # cleaner, so blind matching is already strong; ordered matching
    # must at least hold the line (see EXPERIMENTS.md).
    assert blind >= 0.80
    assert ordered >= blind - 0.08
