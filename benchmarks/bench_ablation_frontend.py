"""Ablations: front-end design choices of §2.2-§2.3.

* **RC time constant**: the 1/f_c << tau << 1/f_b rule.  Too-slow RC
  (WISP-like) smears the 802.11b envelope; the tuned constant tracks
  it.  Sweeps tau and measures envelope fidelity.
* **Matching-window length**: identification accuracy vs window length
  at 2.5 Msps (the §2.3.2 extension, in more steps than Fig 8 shows).
* **ADC resolution**: accuracy at 1-9 bits -- why +-1 quantization is
  enough (the basis of the Table 2/5 savings).
"""

import numpy as np
from conftest import print_experiment

from repro.core.identification import (
    IdentificationConfig,
    ProtocolIdentifier,
    evaluate_identifier,
)
from repro.core.rectifier import ClampRectifier
from repro.experiments.common import ExperimentResult, labeled_traces
from repro.phy import wifi_b
from repro.sim.metrics import format_table


# ----------------------------------------------------------------------
# RC time constant
# ----------------------------------------------------------------------
def _fidelity(tau_s: float) -> float:
    wave = wifi_b.modulate(b"\x5a" * 12)
    rect = ClampRectifier(tau_s=tau_s, noise_v_rms=0.0)
    out = rect.rectify(wave, -10.0).voltage
    truth = np.abs(wave.iq)
    seg = slice(500, 4500)
    a = out[seg] - out[seg].mean()
    b = truth[seg] - truth[seg].mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    return float(np.dot(a, b) / denom) if denom > 1e-12 else 0.0


def run_tau_sweep() -> ExperimentResult:
    taus = (1e-9, 5e-9, 20e-9, 100e-9, 500e-9, 2e-6)
    rows = {tau: _fidelity(tau) for tau in taus}
    return ExperimentResult(
        name="ablation_tau",
        data={"rows": rows},
        notes=["1/f_c << tau << 1/f_b (§2.2.1): ~5-20 ns tracks a 20 MHz baseband"],
    )


def test_ablation_tau(benchmark):
    result = benchmark.pedantic(run_tau_sweep, rounds=1, iterations=1)
    rows = result["rows"]
    print_experiment(
        result,
        lambda r: format_table(
            ["tau", "802.11b envelope fidelity"],
            [[f"{t * 1e9:.0f} ns", f"{f:.3f}"] for t, f in r["rows"].items()],
        ),
    )
    # Fast constants track the envelope; the WISP-like 2 us smears it.
    assert rows[5e-9] > 0.4
    assert rows[2e-6] < 0.5 * rows[5e-9]


# ----------------------------------------------------------------------
# matching-window length at 2.5 Msps
# ----------------------------------------------------------------------
def run_window_sweep(n_traces: int = 10, seed: int = 21) -> ExperimentResult:
    traces = labeled_traces(n_traces, seed=seed)
    windows = (6.0, 14.0, 24.0, 38.0)
    rows = {}
    for window in windows:
        ident = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=2.5e6, quantized=True, window_us=window)
        )
        report = evaluate_identifier(ident, traces, rng=np.random.default_rng(seed))
        rows[window] = report.average
    return ExperimentResult(
        name="ablation_window",
        data={"rows": rows},
        notes=["longer matching windows rescue low sampling rates (§2.3.2)"],
    )


def test_ablation_window(benchmark):
    result = benchmark.pedantic(run_window_sweep, rounds=1, iterations=1)
    rows = result["rows"]
    print_experiment(
        result,
        lambda r: format_table(
            ["window (us)", "avg accuracy"],
            [[f"{w:.0f}", f"{a:.3f}"] for w, a in r["rows"].items()],
        ),
    )
    # The longest window beats the shortest by a clear margin.
    assert rows[38.0] > rows[6.0] + 0.05


# ----------------------------------------------------------------------
# ADC resolution
# ----------------------------------------------------------------------
def run_bits_sweep(n_traces: int = 10, seed: int = 22) -> ExperimentResult:
    traces = labeled_traces(n_traces, seed=seed)
    rows = {}
    for quantized, n_bits in ((True, 9), (False, 4), (False, 9)):
        label = "+-1 (1 bit)" if quantized else f"{n_bits} bits"
        ident = ProtocolIdentifier(
            IdentificationConfig(
                sample_rate_hz=10e6, quantized=quantized, n_bits=n_bits, window_us=6.0
            )
        )
        report = evaluate_identifier(ident, traces, rng=np.random.default_rng(seed))
        rows[label] = report.average
    return ExperimentResult(
        name="ablation_bits",
        data={"rows": rows},
        notes=["+-1 quantization costs little accuracy (the Table 2/5 trade)"],
    )


def test_ablation_bits(benchmark):
    result = benchmark.pedantic(run_bits_sweep, rounds=1, iterations=1)
    rows = result["rows"]
    print_experiment(
        result,
        lambda r: format_table(
            ["samples", "avg accuracy"],
            [[k, f"{a:.3f}"] for k, a in r["rows"].items()],
        ),
    )
    # 1-bit matching stays within 15 points of 9-bit full precision.
    assert rows["+-1 (1 bit)"] >= rows["9 bits"] - 0.15
