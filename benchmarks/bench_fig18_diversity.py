"""Bench for Fig 18: excitation diversity (uptime + carrier pick)."""

from conftest import print_experiment

from repro.experiments.registry import get_spec

from repro.phy.protocols import Protocol

SPEC = get_spec("fig18_diversity")


def test_fig18_diversity(benchmark):
    result = benchmark.pedantic(SPEC.run, rounds=1, iterations=1)
    print_experiment(result, SPEC.format)

    # Paper Fig 18a: multiscatter busy ~always, single-protocol ~50%.
    assert result["multi_active_fraction"] > 0.9
    assert 0.3 < result["single_active_fraction"] < 0.7
    assert result["multi_mean_kbps"] > result["single_mean_kbps"]

    # Paper Fig 18b: 802.11n picked, 6.3 kbps goal met; 11b-only fails.
    assert result["picked"] is Protocol.WIFI_N
    assert result["estimates"][0].tag_goodput_kbps >= result["goal_kbps"]
    assert result["single_protocol_goodput_kbps"] < result["goal_kbps"]
