"""Bench for Fig 9: two-receiver baseline defects."""

import numpy as np
from conftest import print_experiment

from repro.channel.occlusion import Material
from repro.experiments.registry import get_spec

SPEC = get_spec("fig09_baseline_flaws")


def test_fig09_baseline_flaws(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_packets": 300}, rounds=1, iterations=1
    )
    print_experiment(result, SPEC.format)

    for system in ("hitchhike", "freerider"):
        bers = result["bers"][system]
        # Paper Fig 9a: 0.2% clear -> 59% concrete (monotone escalation).
        assert bers[Material.NONE] < 0.01
        assert bers[Material.NONE] < bers[Material.WOOD] < bers[Material.CONCRETE]
        assert bers[Material.CONCRETE] > 0.3

    # Paper Fig 9b: offsets up to 8 symbols, growing with range.
    offsets = result["offsets"]
    far = np.array(offsets[10.0])
    near = np.array(offsets[2.0])
    assert far.max() == 8
    assert far.mean() > near.mean()
