"""Shared benchmark fixtures and result printing."""

import pytest


def print_experiment(result, format_fn):
    """Render an experiment's table into the captured output."""
    print()
    print(f"==== {result.name} ====")
    print(format_fn(result))
    for note in result.notes:
        print(f"  note: {note}")
