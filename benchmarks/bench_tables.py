"""Benches for Tables 2, 3, 4, 5 (Table 6 is exercised by Fig 12)."""

import pytest
from conftest import print_experiment

from repro.experiments.registry import get_spec
from repro.phy.protocols import Protocol


def test_table2_resources(benchmark):
    result = benchmark.pedantic(get_spec("table2_resources").run, rounds=1, iterations=1)
    print_experiment(result, get_spec("table2_resources").format)
    assert result["per_protocol_dffs"] == 33341
    assert result["naive_total_dffs"] == 133364
    assert result["nano_impl_dffs"] == 2860
    assert result["nano_impl_dffs"] < result["agln250_dffs"]
    assert result["naive_total_dffs"] > result["agln250_dffs"]


def test_table3_power(benchmark):
    result = benchmark.pedantic(get_spec("table3_power").run, rounds=1, iterations=1)
    print_experiment(result, get_spec("table3_power").format)
    assert result["total_mw"] == pytest.approx(279.5)
    assert result["total_at_2p5msps_mw"] < result["total_mw"]


def test_table4_energy(benchmark):
    result = benchmark.pedantic(get_spec("table4_energy").run, rounds=1, iterations=1)
    print_experiment(result, get_spec("table4_energy").format)
    table = result["table"]
    assert table[Protocol.WIFI_N]["exchange_packets"] == pytest.approx(360, rel=0.02)
    assert table[Protocol.WIFI_N]["indoor_s"] == pytest.approx(0.60, abs=0.02)
    assert table[Protocol.BLE]["indoor_s"] == pytest.approx(17.2, rel=0.02)
    assert table[Protocol.ZIGBEE]["indoor_s"] == pytest.approx(60.1, rel=0.02)
    assert table[Protocol.WIFI_B]["outdoor_s"] == pytest.approx(2.2e-3, rel=0.05)
    assert result["harvest_indoor_s"] == pytest.approx(216.2, rel=0.01)
    assert result["harvest_outdoor_s"] == pytest.approx(0.78, rel=0.01)


def test_table5_idpower(benchmark):
    result = benchmark.pedantic(get_spec("table5_idpower").run, rounds=1, iterations=1)
    print_experiment(result, get_spec("table5_idpower").format)
    rows = result["rows"]
    assert rows["20MS/s, no +-1 quan."]["power_mw"] == pytest.approx(564, rel=0.05)
    assert rows["20MS/s, +-1 quan."]["power_mw"] == pytest.approx(12, rel=0.1)
    assert rows["2.5MS/s, +-1 quan."]["power_mw"] == pytest.approx(2, rel=0.15)
    assert result["reduction_factor"] == pytest.approx(282, rel=0.15)
