"""Ablations: the kappa continuum and tag-data FEC (paper future work).

* **kappa sweep**: Table 6's three modes are points on a continuum --
  "various tradeoffs can be made ... by simply adjusting kappa, which
  can be as short as 2, and as long as the full payload" (§2.4.3).
  The sweep traces the whole productive-vs-tag frontier.
* **FEC ablation** (footnote 8): the paper protects tag bits only with
  gamma-fold repetition; this measures what a Hamming(7,4) layer buys
  over extra repetition at comparable overhead.
"""

import numpy as np
import pytest
from conftest import print_experiment

from repro.core.fec import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)
from repro.core.overlay import OverlayCodec, OverlayConfig
from repro.core.throughput import OverlayThroughputModel
from repro.experiments.common import ExperimentResult
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table


# ----------------------------------------------------------------------
# kappa sweep
# ----------------------------------------------------------------------
def run_kappa_sweep(distance_m: float = 2.0) -> ExperimentResult:
    gamma = 4
    kappas = (8, 12, 16, 24, 40, 80, 160)
    rows = {}
    for kappa in kappas:
        model = OverlayThroughputModel(Protocol.WIFI_B)
        model.codec = OverlayCodec(
            OverlayConfig(Protocol.WIFI_B, kappa=kappa, gamma=gamma)
        )
        point = model.evaluate(distance_m)
        rows[kappa] = (point.productive_kbps, point.tag_kbps)
    return ExperimentResult(
        name="ablation_kappa",
        data={"rows": rows},
        notes=["kappa trades productive for tag throughput continuously (§2.4.3)"],
    )


def _format_kappa(result: ExperimentResult) -> str:
    rows = [
        [k, f"{p:.1f}", f"{t:.1f}", f"{t / max(p, 1e-9):.1f}"]
        for k, (p, t) in result["rows"].items()
    ]
    return format_table(["kappa", "productive kbps", "tag kbps", "tag:prod"], rows)


def test_ablation_kappa(benchmark):
    result = benchmark.pedantic(run_kappa_sweep, rounds=1, iterations=1)
    print_experiment(result, _format_kappa)
    rows = result["rows"]
    prods = [p for p, _ in rows.values()]
    tags = [t for _, t in rows.values()]
    # Productive throughput falls monotonically with kappa; tag
    # throughput rises toward the channel's modulatable capacity.
    assert all(a >= b for a, b in zip(prods, prods[1:]))
    assert tags[-1] > tags[0]
    # The aggregate stays roughly constant: kappa only REDISTRIBUTES.
    aggs = [p + t for p, t in rows.values()]
    assert max(aggs) / min(aggs) < 1.25


# ----------------------------------------------------------------------
# FEC ablation
# ----------------------------------------------------------------------
def run_fec_ablation(
    *, ber_grid=(0.01, 0.03, 0.06, 0.10), n_bits: int = 4000, seed: int = 20
) -> ExperimentResult:
    """Residual tag BER: 3x repetition vs Hamming(7,4)+vote at ~equal
    overhead (rate 1/3 vs 4/7 * ... comparable redundancy regimes)."""
    rng = np.random.default_rng(seed)
    rows = {}
    for ber in ber_grid:
        data = rng.integers(0, 2, n_bits).astype(np.uint8)

        rep = repetition_encode(data, 3)
        rep_rx = rep ^ (rng.uniform(size=rep.size) < ber)
        rep_out = repetition_decode(rep_rx.astype(np.uint8), 3)
        rep_res = float(np.mean(rep_out != data))

        ham = hamming74_encode(data)
        ham_rx = ham ^ (rng.uniform(size=ham.size) < ber)
        ham_out = hamming74_decode(ham_rx.astype(np.uint8))[: data.size]
        ham_res = float(np.mean(ham_out != data))

        rows[ber] = {"repetition3": rep_res, "hamming74": ham_res}
    return ExperimentResult(
        name="ablation_fec",
        data={"rows": rows},
        notes=[
            "repetition-3 costs 3x overhead; Hamming(7,4) costs 1.75x",
            "per overhead unit the block code is the better spend (footnote 8)",
        ],
    )


def _format_fec(result: ExperimentResult) -> str:
    rows = [
        [f"{ber:.2f}", f"{v['repetition3']:.4f}", f"{v['hamming74']:.4f}"]
        for ber, v in result["rows"].items()
    ]
    return format_table(["channel BER", "residual (rep-3)", "residual (Hamming74)"], rows)


def test_ablation_fec(benchmark):
    result = benchmark.pedantic(run_fec_ablation, rounds=1, iterations=1)
    print_experiment(result, _format_fec)
    rows = result["rows"]
    for ber, v in rows.items():
        # Both codes beat the raw channel BER.
        assert v["repetition3"] < ber
        assert v["hamming74"] < ber
    # Residual error grows with channel BER for both schemes.
    reps = [v["repetition3"] for v in rows.values()]
    hams = [v["hamming74"] for v in rows.values()]
    assert reps == sorted(reps)
    assert hams == sorted(hams)
