"""Bench for Fig 16: time- and frequency-domain excitation collisions."""

from conftest import print_experiment

from repro.experiments.registry import get_spec

SPEC = get_spec("fig16_collisions")


def test_fig16_collisions(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_trials": 12}, rounds=1, iterations=1
    )
    print_experiment(result, SPEC.format)

    tc = result["time_collision"]
    fc = result["freq_collision"]

    # Paper Fig 16b: BLE drops hard (278 -> 92 kbps), 11n barely moves.
    assert tc["ble_collided_kbps"] < 0.5 * tc["ble_clean_kbps"]
    assert tc["wifi_n_collided_kbps"] > 0.9 * tc["wifi_n_clean_kbps"]

    # Paper Fig 16d: neither protocol much affected by frequency-domain
    # collisions when packets do not overlap in time.
    assert fc["zigbee_collided_kbps"] > 0.7 * fc["zigbee_clean_kbps"]
    assert fc["wifi_n_collided_kbps"] > 0.9 * fc["wifi_n_clean_kbps"]
