"""Bench for Fig 17: reference-symbol modulation robustness."""

from conftest import print_experiment

from repro.experiments.registry import get_spec

SPEC = get_spec("fig17_refmod")


def test_fig17_refmod(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_packets": 6}, rounds=1, iterations=1
    )
    print_experiment(result, SPEC.format)

    # Paper: 11b tag BER below ~0.6% for all three DSSS/CCK reference
    # modulations; the OFDM band is likewise stable at its operating
    # SNR.  Allow simulation-scale resolution slack.
    for name, ber in result["wifi_b"].items():
        assert ber <= 0.06, name
    for name, ber in result["wifi_n"].items():
        assert ber <= 0.08, name
