"""Bench for Fig 15: tag throughput with the original channel occluded."""

import pytest
from conftest import print_experiment

from repro.experiments.registry import get_spec

SPEC = get_spec("fig15_occlusion")


def test_fig15_occlusion(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_packets": 400}, rounds=1, iterations=1
    )
    print_experiment(result, SPEC.format)

    multi_ble = result["multiscatter_ble_kbps"]
    multi_11b = result["multiscatter_11b_kbps"]
    hh = result["hitchhike_kbps"]
    fr = result["freerider_kbps"]

    # Paper: multiscatter 136/121 kbps > Hitchhike 94 > FreeRider 33.
    assert multi_ble > hh > fr
    assert multi_11b > fr
    assert hh == pytest.approx(94.0, rel=0.4)
    assert fr == pytest.approx(33.0, rel=0.4)
    assert multi_ble == pytest.approx(136.0, rel=0.3)
    assert multi_11b == pytest.approx(121.0, rel=0.3)
