"""Ablation: hard vs CSI-weighted soft OFDM decoding.

The paper's receivers are commodity NICs (hard-decision equivalents);
the library also ships a soft (LLR) path.  This bench quantifies the
soft-decision gain at the MCS ladder's sensitive end -- context for
how much receiver implementation quality moves the Fig 13/14 cliffs.
"""

import numpy as np
from conftest import print_experiment

from repro.experiments.common import ExperimentResult
from repro.phy import bits as bitlib
from repro.phy import wifi_n
from repro.sim.metrics import format_table


def _errors(mcs: int, noise: float, soft: bool, seed: int, n_trials: int) -> float:
    rng = np.random.default_rng(seed)
    payload = bytes(range(40))
    ref = bitlib.bits_from_bytes(payload)
    errors = 0
    for _ in range(n_trials):
        wave = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=mcs))
        wave.iq = wave.iq + noise * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        result = wifi_n.demodulate(wave, n_psdu_bits=ref.size, soft=soft)
        errors += int(np.count_nonzero(result.psdu_bits[: ref.size] != ref))
    return errors / (n_trials * ref.size)


def run_soft_ablation(n_trials: int = 5, seed: int = 31) -> ExperimentResult:
    points = {(3, 0.20): None, (7, 0.055): None}
    rows = {}
    for (mcs, noise) in points:
        rows[(mcs, noise)] = {
            "hard": _errors(mcs, noise, soft=False, seed=seed, n_trials=n_trials),
            "soft": _errors(mcs, noise, soft=True, seed=seed, n_trials=n_trials),
        }
    return ExperimentResult(
        name="ablation_soft",
        data={"rows": rows},
        notes=["CSI-weighted LLRs buy ~2 dB over hard decisions near the cliff"],
    )


def _format(result: ExperimentResult) -> str:
    rows = [
        [f"MCS{mcs}", f"{noise:.3f}", f"{v['hard']:.4f}", f"{v['soft']:.4f}"]
        for (mcs, noise), v in result["rows"].items()
    ]
    return format_table(["MCS", "noise sigma", "hard BER", "soft BER"], rows)


def test_ablation_soft(benchmark):
    result = benchmark.pedantic(run_soft_ablation, rounds=1, iterations=1)
    print_experiment(result, _format)
    for v in result["rows"].values():
        assert v["soft"] <= v["hard"]
    # At least one point shows a strict soft win.
    assert any(v["soft"] < v["hard"] for v in result["rows"].values())
