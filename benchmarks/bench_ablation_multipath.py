"""Ablation: identification accuracy under multipath.

The paper's §2.3.2 threshold search "covers more than 200,000 traces of
different ranges, scenarios, and protocols ... no location-sensitivity
is observed".  This bench probes the claim in simulation: per-location
multipath (exponential PDP) distorts the envelope the templates match,
and accuracy should degrade gracefully, not collapse.
"""

import numpy as np
from conftest import print_experiment

from repro.channel.fading import MultipathChannel
from repro.core.identification import (
    DEFAULT_INCIDENT_DBM,
    IdentificationConfig,
    ProtocolIdentifier,
)
from repro.experiments.common import ExperimentResult
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table
from repro.sim.traffic import random_packet

SPREADS_NS = (0.0, 30.0, 80.0, 150.0)


def run_multipath_ablation(n_per_protocol: int = 5, seed: int = 3) -> ExperimentResult:
    ident = ProtocolIdentifier(
        IdentificationConfig(
            sample_rate_hz=2.5e6, quantized=True, window_us=38.0, ordered=True
        )
    )
    rows = {}
    for spread_ns in SPREADS_NS:
        rng = np.random.default_rng(seed)
        hits = 0
        total = 0
        for p in Protocol:
            for i in range(n_per_protocol):
                wave = random_packet(p, rng, n_payload_bytes=30)
                if spread_ns > 0:
                    chan = MultipathChannel(
                        rms_delay_spread_s=spread_ns * 1e-9, seed=100 + total
                    )
                    faded = chan.apply(wave)
                    faded.annotations = dict(wave.annotations)
                    wave = faded
                result = ident.identify(
                    wave,
                    incident_power_dbm=DEFAULT_INCIDENT_DBM[p],
                    rng=np.random.default_rng(total),
                )
                hits += result.decision is p
                total += 1
        rows[spread_ns] = hits / total
    return ExperimentResult(
        name="ablation_multipath",
        data={"rows": rows},
        notes=[
            "paper §2.3.2: 'no location-sensitivity is observed' over 200k traces",
        ],
    )


def test_ablation_multipath(benchmark):
    result = benchmark.pedantic(run_multipath_ablation, rounds=1, iterations=1)
    print_experiment(
        result,
        lambda r: format_table(
            ["RMS delay spread", "avg accuracy"],
            [[f"{s:.0f} ns", f"{a:.2f}"] for s, a in r["rows"].items()],
        ),
    )
    rows = result["rows"]
    # Graceful degradation: even heavy indoor multipath keeps accuracy
    # within 0.2 of the clean channel.
    assert rows[150.0] >= rows[0.0] - 0.2
    assert rows[150.0] > 0.5
