#!/usr/bin/env python
"""Run the benchmarks and maintain the committed ``BENCH_*.json`` baselines.

Runs ``benchmarks/bench_primitives.py`` under pytest-benchmark,
extracts per-test mean times, pairs the frozen seed kernels with their
vectorized replacements to record speedups, and writes the result to
``BENCH_primitives.json`` at the repository root.

It then runs ``benchmarks/bench_e2e_throughput.py`` -- the end-to-end
packets-decoded/sec workload over all four protocol modems -- and
writes ``BENCH_e2e.json``.  Two gates apply to it:

* the batched dispatch must decode at least ``--e2e-min-speedup``
  (default 3x) times as many packets/sec as the per-packet loop;
* the batched mean time must not regress beyond
  ``--regression-factor`` against the committed baseline.

It then runs ``benchmarks/bench_gateway.py`` -- the streaming-gateway
load sweep (concurrent tags vs p99 decode latency, plus the
decode-worker tags-per-host sweep) -- and writes
``BENCH_gateway.json``.  Its gates: the recorded ``tags_per_core``
capacity must not shrink against the committed baseline, no sweep
point's p99 latency may regress beyond ``--regression-factor``, and
the sharded data plane must deliver at least ``--gateway-min-speedup``
(default 2x) the packets/sec of a single decode worker at the
capacity tag count.

If a committed baseline already exists, every fresh mean time is
compared against it first: a slowdown beyond ``--regression-factor``
(default 2x, loose enough for machine-to-machine noise) fails the run
with exit code 1 and the files are left untouched.

Usage::

    python benchmarks/run_benchmarks.py            # run, gate, update
    python benchmarks/run_benchmarks.py --check    # run + gate only
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_primitives.py"
OUTPUT = REPO_ROOT / "BENCH_primitives.json"
E2E_BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_e2e_throughput.py"
E2E_OUTPUT = REPO_ROOT / "BENCH_e2e.json"
GATEWAY_BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_gateway.py"
GATEWAY_OUTPUT = REPO_ROOT / "BENCH_gateway.json"
E2E_SCALAR = "test_e2e_decode_per_packet"
E2E_BATCHED = "test_e2e_decode_batched"

#: label -> (seed-kernel bench, vectorized-kernel bench).
SPEEDUP_PAIRS = {
    "viterbi_decode": ("test_viterbi_decode_seed", "test_viterbi_decode"),
    "correlation_scoring": (
        "test_score_capture_sliding_seed",
        "test_score_capture_sliding",
    ),
}


def _check_bench_coverage() -> list[str]:
    """Every registry-declared experiment must have a bench file.

    Table experiments share ``bench_tables.py``; everything else maps
    to ``bench_<name>.py``.  Importing the registry is cheap: it is
    stdlib-only and loads no implementation module.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.experiments import registry
    finally:
        sys.path.pop(0)
    missing = []
    for name in registry.names():
        if name.startswith("table"):
            bench = "bench_tables.py"
        else:
            bench = f"bench_{name}.py"
        if not (REPO_ROOT / "benchmarks" / bench).is_file():
            missing.append(f"{name} (expected benchmarks/{bench})")
    return missing


def _run_pytest_benchmark(json_path: Path, bench_file: Path = BENCH_FILE) -> None:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(bench_file),
        "--benchmark-only",
        f"--benchmark-json={json_path}",
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    # Works without `pip install -e .`: put src/ on the subprocess path.
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark run failed with exit code {proc.returncode}")


def _extract_means(json_path: Path) -> dict[str, dict[str, float]]:
    data = json.loads(json_path.read_text())
    results: dict[str, dict[str, float]] = {}
    for bench in data["benchmarks"]:
        # "path::Class::test_name" -> "test_name"
        name = bench["name"].split("::")[-1].split("[")[0]
        stats = bench["stats"]
        results[name] = {
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    return results


def _speedups(results: dict[str, dict[str, float]]) -> dict[str, float]:
    out: dict[str, float] = {}
    for label, (seed_name, new_name) in SPEEDUP_PAIRS.items():
        if seed_name in results and new_name in results:
            out[label] = round(
                results[seed_name]["mean_s"] / results[new_name]["mean_s"], 2
            )
    return out


def _check_regressions(
    results: dict[str, dict[str, float]], factor: float
) -> list[str]:
    if not OUTPUT.exists():
        return []
    baseline = json.loads(OUTPUT.read_text()).get("results", {})
    failures = []
    for name, stats in results.items():
        base = baseline.get(name)
        if not base:
            continue
        ratio = stats["mean_s"] / base["mean_s"]
        if ratio > factor:
            failures.append(
                f"{name}: {stats['mean_s'] * 1e3:.3f} ms vs baseline "
                f"{base['mean_s'] * 1e3:.3f} ms ({ratio:.2f}x slower)"
            )
    return failures


def _e2e_total_packets() -> int:
    """``TOTAL_PACKETS`` from the e2e bench module (single source of truth)."""
    return int(_load_module("bench_e2e_throughput", E2E_BENCH_FILE).TOTAL_PACKETS)


def _check_e2e(
    results: dict[str, dict[str, float]],
    *,
    min_speedup: float,
    regression_factor: float,
) -> tuple[dict[str, object], list[str]]:
    """Packets/sec summary plus speedup-floor and regression failures."""
    scalar = results.get(E2E_SCALAR)
    batched = results.get(E2E_BATCHED)
    if not scalar or not batched:
        return {}, [
            f"e2e results incomplete: need {E2E_SCALAR} and {E2E_BATCHED}"
        ]
    failures = []
    total = _e2e_total_packets()
    # Best-of-rounds is the noise-robust statistic for a throughput
    # ratio: scheduler hiccups only ever inflate a round, never shrink
    # it, and they do not hit both dispatch modes equally.
    speedup = scalar["min_s"] / batched["min_s"]
    summary: dict[str, object] = {
        "total_packets_per_round": total,
        "packets_per_sec": {
            "per_packet": round(total / scalar["min_s"], 1),
            "batched": round(total / batched["min_s"], 1),
        },
        "batched_speedup": round(speedup, 2),
    }
    if speedup < min_speedup:
        failures.append(
            f"batched decode throughput only {speedup:.2f}x the per-packet "
            f"loop (floor: {min_speedup:.2f}x)"
        )
    if E2E_OUTPUT.exists():
        baseline = json.loads(E2E_OUTPUT.read_text()).get("results", {})
        for name, stats in results.items():
            base = baseline.get(name)
            if not base:
                continue
            ratio = stats["min_s"] / base["min_s"]
            if ratio > regression_factor:
                failures.append(
                    f"{name}: {stats['min_s'] * 1e3:.1f} ms vs baseline "
                    f"{base['min_s'] * 1e3:.1f} ms ({ratio:.2f}x slower)"
                )
    return summary, failures


def _load_module(name: str, path: Path):
    import importlib.util

    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        spec = importlib.util.spec_from_file_location(name, path)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    finally:
        sys.path.pop(0)
    return module


def _run_gateway_sweep() -> dict[str, object]:
    module = _load_module("bench_gateway", GATEWAY_BENCH_FILE)
    return module.run_sweep()


def _gateway_speedup_enforceable(payload: dict[str, object]) -> bool:
    """True when the host can physically express the worker speedup."""
    points = payload.get("worker_sweep") or []
    if not points:
        return False
    largest_pool = max(int(p["decode_workers"]) for p in points)  # type: ignore[index]
    return int(payload.get("host_cores", 0)) >= largest_pool


def _check_gateway(
    payload: dict[str, object],
    *,
    regression_factor: float,
    min_speedup: float,
) -> list[str]:
    """Capacity must not shrink; p99 must not blow up; shards must pay.

    Baselines written before the worker sweep existed lack the
    ``decode_speedup`` key; only the freshly measured payload is gated
    on it, so old baselines stay readable.  The speedup floor only
    applies on hosts with at least as many cores as the largest swept
    pool -- process-level parallelism cannot beat the core count, so
    on a smaller host the sweep is recorded but the floor is skipped
    (with a notice from ``main``).
    """
    failures = []
    speedup = float(payload.get("decode_speedup", 0.0))
    if _gateway_speedup_enforceable(payload) and speedup < min_speedup:
        failures.append(
            f"sharded decode throughput only {speedup:.2f}x a single "
            f"worker at {payload.get('worker_sweep_tags')} tags "
            f"(floor: {min_speedup:.2f}x)"
        )
    if not GATEWAY_OUTPUT.exists():
        return failures
    baseline = json.loads(GATEWAY_OUTPUT.read_text())
    base_capacity = int(baseline.get("tags_per_core", 0))
    capacity = int(payload["tags_per_core"])
    if capacity < base_capacity:
        failures.append(
            f"tags_per_core capacity shrank: {capacity} vs committed "
            f"{base_capacity}"
        )
    base_points = {
        int(p["n_tags"]): p for p in baseline.get("sweep", [])
    }
    for point in payload["sweep"]:  # type: ignore[union-attr]
        base = base_points.get(int(point["n_tags"]))
        if not base:
            continue
        ratio = point["p99_latency_s"] / base["p99_latency_s"]
        if ratio > regression_factor:
            failures.append(
                f"gateway p99 at {point['n_tags']} tags: "
                f"{point['p99_latency_s'] * 1e3:.1f} ms vs baseline "
                f"{base['p99_latency_s'] * 1e3:.1f} ms ({ratio:.2f}x slower)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate against the committed baseline without rewriting it",
    )
    parser.add_argument(
        "--regression-factor",
        type=float,
        default=2.0,
        help="fail if a kernel's mean time exceeds baseline * factor (default 2)",
    )
    parser.add_argument(
        "--e2e-min-speedup",
        type=float,
        default=3.0,
        help="fail if batched decode is not at least this many times the "
        "per-packet packets/sec (default 3)",
    )
    parser.add_argument(
        "--gateway-min-speedup",
        type=float,
        default=2.0,
        help="fail if the sharded gateway data plane is not at least this "
        "many times a single decode worker's packets/sec (default 2)",
    )
    args = parser.parse_args(argv)

    uncovered = _check_bench_coverage()
    if uncovered:
        print("experiments with no benchmark coverage:", file=sys.stderr)
        for line in uncovered:
            print(f"  {line}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        _run_pytest_benchmark(json_path)
        results = _extract_means(json_path)
    if not results:
        print("no benchmark results collected", file=sys.stderr)
        return 1

    speedups = _speedups(results)
    failures = _check_regressions(results, args.regression_factor)

    print("kernel speedups vs frozen seed implementations:")
    for label, factor in speedups.items():
        print(f"  {label:22s} {factor:6.2f}x")
    if failures:
        print("PERFORMANCE REGRESSIONS (vs committed BENCH_primitives.json):")
        for line in failures:
            print(f"  {line}")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench_e2e.json"
        _run_pytest_benchmark(json_path, E2E_BENCH_FILE)
        e2e_results = _extract_means(json_path)
    e2e_summary, e2e_failures = _check_e2e(
        e2e_results,
        min_speedup=args.e2e_min_speedup,
        regression_factor=args.regression_factor,
    )
    if e2e_summary:
        pps = e2e_summary["packets_per_sec"]
        print(
            "e2e decode throughput: "
            f"{pps['per_packet']:.0f} pkt/s per-packet, "
            f"{pps['batched']:.0f} pkt/s batched "
            f"({e2e_summary['batched_speedup']}x)"
        )
    if e2e_failures:
        print("E2E THROUGHPUT GATE FAILURES (vs committed BENCH_e2e.json):")
        for line in e2e_failures:
            print(f"  {line}")
        return 1

    gateway_payload = _run_gateway_sweep()
    gateway_failures = _check_gateway(
        gateway_payload,
        regression_factor=args.regression_factor,
        min_speedup=args.gateway_min_speedup,
    )
    bound = " (sweep exhausted)" if gateway_payload.get("sweep_exhausted") else ""
    print(
        "gateway capacity: "
        f"{gateway_payload['tags_per_core']} tags/core within "
        f"{float(gateway_payload['latency_budget_s']) * 1e3:.0f} ms p99 "
        f"budget{bound}"
    )
    if "decode_speedup" in gateway_payload:
        note = (
            ""
            if _gateway_speedup_enforceable(gateway_payload)
            else (
                f" (floor skipped: host has "
                f"{gateway_payload.get('host_cores')} core(s), fewer than "
                f"the largest pool)"
            )
        )
        print(
            "gateway sharding: "
            f"{gateway_payload['decode_speedup']}x packets/sec with "
            f"{max(int(p['decode_workers']) for p in gateway_payload['worker_sweep'])} "  # type: ignore[union-attr]
            f"decode workers vs 1 at "
            f"{gateway_payload['worker_sweep_tags']} tags{note}"
        )
    if gateway_failures:
        print("GATEWAY GATE FAILURES (vs committed BENCH_gateway.json):")
        for line in gateway_failures:
            print(f"  {line}")
        return 1

    if not args.check:
        OUTPUT.write_text(
            json.dumps(
                {
                    "workloads": {
                        "viterbi_decode": "1000 info bits, rate-1/2 K=7, hard decisions",
                        "correlation_scoring": "full-precision score_capture, "
                        "40us window at 10 Msps, 400 sliding offsets",
                    },
                    "results": results,
                    "speedups_vs_seed": speedups,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")
        E2E_OUTPUT.write_text(
            json.dumps(
                {
                    "workload": "AWGN packets at Eb/N0 = 8 dB, 128 packets "
                    "x 4 protocols x 30-byte payloads; timed region is "
                    "demodulation only (packets decoded per second)",
                    "results": e2e_results,
                    **e2e_summary,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {E2E_OUTPUT.relative_to(REPO_ROOT)}")
        GATEWAY_OUTPUT.write_text(
            json.dumps(gateway_payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {GATEWAY_OUTPUT.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
