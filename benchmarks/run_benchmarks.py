#!/usr/bin/env python
"""Run the primitive benchmarks and maintain ``BENCH_primitives.json``.

Runs ``benchmarks/bench_primitives.py`` under pytest-benchmark,
extracts per-test mean times, pairs the frozen seed kernels with their
vectorized replacements to record speedups, and writes the result to
``BENCH_primitives.json`` at the repository root.

If a committed ``BENCH_primitives.json`` already exists, every kernel's
fresh mean time is compared against the recorded baseline first: a
slowdown beyond ``--regression-factor`` (default 2x, loose enough for
machine-to-machine noise) fails the run with exit code 1 and the file
is left untouched.

Usage::

    python benchmarks/run_benchmarks.py            # run, gate, update
    python benchmarks/run_benchmarks.py --check    # run + gate only
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_primitives.py"
OUTPUT = REPO_ROOT / "BENCH_primitives.json"

#: label -> (seed-kernel bench, vectorized-kernel bench).
SPEEDUP_PAIRS = {
    "viterbi_decode": ("test_viterbi_decode_seed", "test_viterbi_decode"),
    "correlation_scoring": (
        "test_score_capture_sliding_seed",
        "test_score_capture_sliding",
    ),
}


def _check_bench_coverage() -> list[str]:
    """Every registry-declared experiment must have a bench file.

    Table experiments share ``bench_tables.py``; everything else maps
    to ``bench_<name>.py``.  Importing the registry is cheap: it is
    stdlib-only and loads no implementation module.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.experiments import registry
    finally:
        sys.path.pop(0)
    missing = []
    for name in registry.names():
        if name.startswith("table"):
            bench = "bench_tables.py"
        else:
            bench = f"bench_{name}.py"
        if not (REPO_ROOT / "benchmarks" / bench).is_file():
            missing.append(f"{name} (expected benchmarks/{bench})")
    return missing


def _run_pytest_benchmark(json_path: Path) -> None:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "--benchmark-only",
        f"--benchmark-json={json_path}",
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    # Works without `pip install -e .`: put src/ on the subprocess path.
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark run failed with exit code {proc.returncode}")


def _extract_means(json_path: Path) -> dict[str, dict[str, float]]:
    data = json.loads(json_path.read_text())
    results: dict[str, dict[str, float]] = {}
    for bench in data["benchmarks"]:
        # "path::Class::test_name" -> "test_name"
        name = bench["name"].split("::")[-1].split("[")[0]
        stats = bench["stats"]
        results[name] = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    return results


def _speedups(results: dict[str, dict[str, float]]) -> dict[str, float]:
    out: dict[str, float] = {}
    for label, (seed_name, new_name) in SPEEDUP_PAIRS.items():
        if seed_name in results and new_name in results:
            out[label] = round(
                results[seed_name]["mean_s"] / results[new_name]["mean_s"], 2
            )
    return out


def _check_regressions(
    results: dict[str, dict[str, float]], factor: float
) -> list[str]:
    if not OUTPUT.exists():
        return []
    baseline = json.loads(OUTPUT.read_text()).get("results", {})
    failures = []
    for name, stats in results.items():
        base = baseline.get(name)
        if not base:
            continue
        ratio = stats["mean_s"] / base["mean_s"]
        if ratio > factor:
            failures.append(
                f"{name}: {stats['mean_s'] * 1e3:.3f} ms vs baseline "
                f"{base['mean_s'] * 1e3:.3f} ms ({ratio:.2f}x slower)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate against the committed baseline without rewriting it",
    )
    parser.add_argument(
        "--regression-factor",
        type=float,
        default=2.0,
        help="fail if a kernel's mean time exceeds baseline * factor (default 2)",
    )
    args = parser.parse_args(argv)

    uncovered = _check_bench_coverage()
    if uncovered:
        print("experiments with no benchmark coverage:", file=sys.stderr)
        for line in uncovered:
            print(f"  {line}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        _run_pytest_benchmark(json_path)
        results = _extract_means(json_path)
    if not results:
        print("no benchmark results collected", file=sys.stderr)
        return 1

    speedups = _speedups(results)
    failures = _check_regressions(results, args.regression_factor)

    print("kernel speedups vs frozen seed implementations:")
    for label, factor in speedups.items():
        print(f"  {label:22s} {factor:6.2f}x")
    if failures:
        print("PERFORMANCE REGRESSIONS (vs committed BENCH_primitives.json):")
        for line in failures:
            print(f"  {line}")
        return 1

    if not args.check:
        OUTPUT.write_text(
            json.dumps(
                {
                    "workloads": {
                        "viterbi_decode": "1000 info bits, rate-1/2 K=7, hard decisions",
                        "correlation_scoring": "full-precision score_capture, "
                        "40us window at 10 Msps, 400 sliding offsets",
                    },
                    "results": results,
                    "speedups_vs_seed": speedups,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
