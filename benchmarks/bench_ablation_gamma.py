"""Ablation: the tag-data spreading factor gamma (Table 6 choices).

Two of the paper's gamma choices are load-bearing in a way the text
argues qualitatively; this bench quantifies both at the signal level:

* **ZigBee** (§2.4 "ZigBee"): a pi flip damages the half-chip-offset
  structure at its boundary, so the first modulated symbol of a run is
  unreliable -- gamma=1 fails, gamma>=2 recovers via majority voting.
* **802.11n**: a single flipped OFDM symbol's 52 inverted coded bits
  are *cheaper* for the Viterbi decoder to explain as a sparse error
  pattern than as the complement path, so gamma=1 tag bits are
  unreliable; gamma=2 makes the complement path win.

Noise-free channels hide the effect (any corruption still reads as
"differs from reference"), so the sweep runs at a low SNR.
"""

import numpy as np
from conftest import print_experiment

from repro.core.overlay import OverlayCodec, OverlayConfig
from repro.core.overlay_decoder import OverlayDecoder
from repro.core.tag_modulation import TagModulator
from repro.experiments.common import ExperimentResult
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table


_SNR_DB = {Protocol.ZIGBEE: -6.0, Protocol.WIFI_N: 3.0}


def _tag_ber_at_gamma(protocol: Protocol, gamma: int, *, n_trials: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    errors = 0
    total = 0
    for _ in range(n_trials):
        cfg = OverlayConfig(protocol, kappa=2 * gamma, gamma=gamma)
        codec = OverlayCodec(cfg)
        prod = rng.integers(0, 2, 10).astype(np.uint8)
        carrier = codec.build_carrier(prod)
        _, cap = codec.capacity(carrier.annotations["n_payload_symbols"])
        tag_bits = rng.integers(0, 2, cap).astype(np.uint8)
        mod = TagModulator(codec, frequency_shift_hz=0.0)
        rx = mod.modulate(carrier, tag_bits)
        noise = 10.0 ** (-_SNR_DB[protocol] / 20.0) / np.sqrt(2.0)
        rx.iq = rx.iq + noise * (
            rng.normal(size=rx.n_samples) + 1j * rng.normal(size=rx.n_samples)
        )
        rx.annotations = dict(carrier.annotations)
        out = OverlayDecoder(codec).decode(rx)
        errors += int(np.count_nonzero(out.tag_bits[:cap] != tag_bits))
        total += cap
    return errors / max(total, 1)


def run_gamma_ablation(n_trials: int = 10, seed: int = 7) -> ExperimentResult:
    gammas = (1, 2, 3, 4)
    table = {}
    for protocol in (Protocol.ZIGBEE, Protocol.WIFI_N):
        table[protocol] = {
            g: _tag_ber_at_gamma(protocol, g, n_trials=n_trials, seed=seed)
            for g in gammas
        }
    return ExperimentResult(
        name="ablation_gamma",
        data={"table": table, "gammas": gammas},
        notes=[
            "Table 6 sets gamma=2 (ZigBee, 11n): gamma=1 is structurally unreliable",
            "802.11n: every flip run has exactly two transient edge symbols, so the",
            "  gamma=2 majority (both edges) beats gamma=3 (two weak edges out-vote",
            "  one clean middle symbol) -- Table 6's gamma=2 is a sweet spot",
        ],
    )


def _format(result: ExperimentResult) -> str:
    rows = []
    for protocol, by_gamma in result["table"].items():
        rows.append(
            [protocol.value] + [f"{by_gamma[g] * 100:.1f}%" for g in result["gammas"]]
        )
    headers = ["protocol"] + [f"gamma={g}" for g in result["gammas"]]
    return format_table(headers, rows)


def test_ablation_gamma(benchmark):
    result = benchmark.pedantic(run_gamma_ablation, rounds=1, iterations=1)
    print_experiment(result, _format)
    table = result["table"]
    # gamma=1 is unreliable for both protocols; the paper's gamma=2
    # (and anything above) decodes cleanly in a noise-free channel.
    for protocol in (Protocol.ZIGBEE, Protocol.WIFI_N):
        assert table[protocol][1] >= 0.01, protocol
    # 802.11n's gamma=1 failure is structural (sparse ML patterns):
    # gamma=2 must improve on it.
    assert table[Protocol.WIFI_N][2] < table[Protocol.WIFI_N][1]
    # ZigBee's boundary damage is absorbed by a matched-filter
    # receiver, so the gamma gain there is gentler: more repetition
    # must not hurt.
    assert table[Protocol.ZIGBEE][4] <= table[Protocol.ZIGBEE][1]
