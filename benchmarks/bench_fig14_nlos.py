"""Bench for Fig 14: NLoS RSSI/BER/throughput across distances."""

import pytest
from conftest import print_experiment

from repro.experiments.registry import get_spec
from repro.phy.protocols import Protocol

SPEC = get_spec("fig14_nlos")


def test_fig14_nlos(benchmark):
    result = benchmark.pedantic(SPEC.run, rounds=1, iterations=1)
    print_experiment(result, SPEC.format)
    per = result["per_protocol"]

    # Paper Fig 14a: NLoS max ranges 22 / 18 / 16 m.
    assert per[Protocol.WIFI_B]["max_range_m"] == pytest.approx(22.0, abs=2.0)
    assert per[Protocol.ZIGBEE]["max_range_m"] == pytest.approx(18.0, abs=2.0)
    assert per[Protocol.BLE]["max_range_m"] == pytest.approx(16.0, abs=2.0)

    # Every protocol's NLoS range is shorter than its LoS range.
    los = get_spec("fig13_los").run()["per_protocol"]
    for p in Protocol:
        assert per[p]["max_range_m"] < los[p]["max_range_m"]
