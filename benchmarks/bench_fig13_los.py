"""Bench for Fig 13: LoS RSSI/BER/throughput across distances."""

import pytest
from conftest import print_experiment

from repro.experiments.registry import get_spec

from repro.phy.protocols import Protocol

SPEC = get_spec("fig13_los")


def test_fig13_los(benchmark):
    result = benchmark.pedantic(SPEC.run, rounds=1, iterations=1)
    print_experiment(result, SPEC.format)
    per = result["per_protocol"]

    # Paper Fig 13a: max ranges 28 m WiFi / 22 m ZigBee / 20 m BLE.
    assert per[Protocol.WIFI_B]["max_range_m"] == pytest.approx(28.0, abs=2.0)
    assert per[Protocol.WIFI_N]["max_range_m"] == pytest.approx(28.0, abs=2.0)
    assert per[Protocol.ZIGBEE]["max_range_m"] == pytest.approx(22.0, abs=2.0)
    assert per[Protocol.BLE]["max_range_m"] == pytest.approx(20.0, abs=2.0)

    # Paper Fig 13b: BER stays low out to 16 m for all protocols.
    for p in Protocol:
        assert per[p]["ber"][15] < 0.05

    # RSSI decreases monotonically with distance.
    for p in Protocol:
        rssi = per[p]["rssi_dbm"]
        assert all(a >= b for a, b in zip(rssi, rssi[1:]))
