"""Bench for Fig 12 + Table 6: productive/tag throughput tradeoffs."""

import pytest
from conftest import print_experiment

from repro.core.overlay import Mode
from repro.experiments.registry import get_spec

from repro.phy.protocols import Protocol

SPEC = get_spec("fig12_tradeoffs")


def test_fig12_tradeoffs(benchmark):
    result = benchmark.pedantic(
        SPEC.run, kwargs={"n_locations": 50}, rounds=1, iterations=1
    )
    print_experiment(result, SPEC.format)
    table = result["table"]

    # Mode 1: productive ~= tag for every protocol.
    for p in Protocol:
        row = table[(p, Mode.MODE_1)]
        assert row["tag_kbps"] == pytest.approx(row["productive_kbps"], rel=0.05)

    # Mode 2: tag ~= 3x productive.
    for p in Protocol:
        row = table[(p, Mode.MODE_2)]
        assert row["tag_kbps"] == pytest.approx(3 * row["productive_kbps"], rel=0.15)

    # Mode 3: productive shrinks to ~1 bit/packet.
    for p in Protocol:
        row = table[(p, Mode.MODE_3)]
        assert row["productive_kbps"] < 0.1 * row["tag_kbps"]

    # Paper's mode-1 aggregate ordering: BLE > 11b > 11n > ZigBee.
    def agg(p):
        row = table[(p, Mode.MODE_1)]
        return row["productive_kbps"] + row["tag_kbps"]

    assert agg(Protocol.BLE) > agg(Protocol.WIFI_B) > agg(Protocol.WIFI_N) > agg(Protocol.ZIGBEE)
    # Magnitudes: 11b ~219.8 kbps, ZigBee ~26.2 kbps.
    assert agg(Protocol.WIFI_B) == pytest.approx(219.8, rel=0.1)
    assert agg(Protocol.ZIGBEE) == pytest.approx(26.2, rel=0.1)
