"""Throughput benchmarks of the library's hot primitives.

Unlike the paper-reproduction benches (single-shot, printed tables),
these run multiple rounds so pytest-benchmark's statistics are
meaningful -- they guard the simulator's own performance: modulator
and demodulator sample rates, correlation scoring, Viterbi decode.

``TestSeedReference`` benchmarks the frozen pure-Python seed kernels
(``tests/reference_impls.py``) on the same workloads as their
vectorized replacements; ``benchmarks/run_benchmarks.py`` pairs the
two to record speedups and gate regressions in
``BENCH_primitives.json``.
"""

import pathlib
import sys

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from repro.core.adc import Adc
from repro.core.matching import score_capture
from repro.core.rectifier import ClampRectifier
from repro.core.templates import TemplateBank
from repro.phy import ble, convcode, viterbi, wifi_b, wifi_n, zigbee
from tests import reference_impls as ref


def _viterbi_workload():
    rng = np.random.default_rng(0)
    info = rng.integers(0, 2, 1000).astype(np.uint8)
    return info, convcode.encode(info)


def _sliding_workload():
    """Sliding detection: 40 us templates correlated at 400 offsets."""
    adc = Adc(sample_rate=10e6, n_bits=4)
    bank = TemplateBank.build(adc, window_us=40.0)
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 16, bank.l_p + bank.l_m + 404).astype(float)
    return codes, bank, tuple(range(400))


@pytest.fixture(scope="module")
def payload():
    return bytes(range(64))


class TestModulators:
    def test_wifi_b_modulate(self, benchmark, payload):
        wave = benchmark(wifi_b.modulate, payload)
        assert wave.n_samples > 0

    def test_wifi_n_modulate(self, benchmark, payload):
        wave = benchmark(wifi_n.modulate, payload)
        assert wave.n_samples > 0

    def test_ble_modulate(self, benchmark, payload):
        wave = benchmark(ble.modulate, payload)
        assert wave.n_samples > 0

    def test_zigbee_modulate(self, benchmark, payload):
        wave = benchmark(zigbee.modulate, payload)
        assert wave.n_samples > 0


class TestDemodulators:
    def test_wifi_n_demodulate(self, benchmark, payload):
        wave = wifi_n.modulate(payload)
        result = benchmark(wifi_n.demodulate, wave)
        assert result.psdu_bits.size

    def test_wifi_b_demodulate(self, benchmark, payload):
        wave = wifi_b.modulate(payload)
        result = benchmark(wifi_b.demodulate, wave)
        assert result.payload_bits.size

    def test_viterbi_decode(self, benchmark):
        info, coded = _viterbi_workload()
        decoded = benchmark(viterbi.decode, coded, n_info=info.size)
        assert np.array_equal(decoded, info)


class TestTagPipeline:
    def test_rectifier(self, benchmark, payload):
        wave = wifi_n.modulate(payload)
        rect = ClampRectifier()
        out = benchmark(rect.rectify, wave, -20.0)
        assert out.voltage.size == wave.n_samples

    def test_score_capture(self, benchmark):
        adc = Adc(sample_rate=2.5e6)
        bank = TemplateBank.build(adc, window_us=38.0)
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 512, 140)
        scores = benchmark(
            score_capture, codes, bank, quantized=True, offsets=(0, 1, 2, 3)
        )
        assert len(scores) == 4

    def test_score_capture_sliding(self, benchmark):
        codes, bank, offsets = _sliding_workload()
        scores = benchmark(
            score_capture, codes, bank, quantized=False, offsets=offsets
        )
        assert len(scores) == 4


class TestSeedReference:
    """Frozen seed kernels on the vectorized kernels' exact workloads."""

    def test_viterbi_decode_seed(self, benchmark):
        info, coded = _viterbi_workload()
        decoded = benchmark(ref.viterbi_decode, coded, n_info=info.size)
        assert np.array_equal(decoded, info)

    def test_score_capture_sliding_seed(self, benchmark):
        codes, bank, offsets = _sliding_workload()
        scores = benchmark(
            ref.score_capture, codes, bank, quantized=False, offsets=offsets
        )
        assert len(scores) == 4
