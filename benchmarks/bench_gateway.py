#!/usr/bin/env python
"""Gateway load test: concurrent tags per core under a latency budget.

Answers the capacity question for the streaming service: how many
concurrent tags can one core host before p99 decode latency exceeds a
symbol period?  The sweep registers ``N`` tags for each ``N`` in
``TAG_SWEEP``, serves a fixed mixed-protocol schedule through
:class:`repro.gateway.Gateway`, and records warm per-packet decode
latency (excite -> publish) plus throughput.

The budget needs one documented convention.  The simulator's PHY runs
orders of magnitude slower than the radio it models, so the real-time
question is posed on a scaled radio clock: with the air interface
slowed by ``SIM_CLOCK_SLOWDOWN``, one ZigBee O-QPSK symbol (16 us, the
longest symbol period in the protocol mix) lasts
``LATENCY_BUDGET_S`` of wall time, and a tag's packet stream is
real-time-feasible only while p99 decode latency stays under that
budget.  Capacity (``tags_per_core``) is the largest swept ``N`` that
meets it.  The schedule itself is processed unpaced (``time_scale=0``)
-- pacing would only add idle sleeps; it cannot change per-packet
decode latency because the air loop is serial.

``benchmarks/run_benchmarks.py`` imports :func:`run_sweep`, gates the
result against the committed ``BENCH_gateway.json`` (capacity must not
shrink; p99 must not regress beyond the factor), and rewrites it.
Standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

#: Radio-clock slowdown used to state the latency budget (see module
#: docstring).  Chosen so the heaviest single-packet decode in the mix
#: (802.11n through the Viterbi kernel, the p99 driver) fits inside
#: the budget with ~2x headroom on a typical development core, and
#: headroom erodes as the control plane scales (keepalive tasks +
#: stale scans are O(N)).
SIM_CLOCK_SLOWDOWN = 12500.0

#: Longest symbol period in the protocol mix: ZigBee O-QPSK, 16 us.
ZIGBEE_SYMBOL_PERIOD_S = 16e-6

#: p99 decode-latency budget on the slowed radio clock (200 ms wall).
LATENCY_BUDGET_S = ZIGBEE_SYMBOL_PERIOD_S * SIM_CLOCK_SLOWDOWN

#: Concurrent-tag counts swept, smallest to largest.
TAG_SWEEP = (1, 4, 16, 64)

#: Packets served per sweep point; the first WARMUP_PACKETS are
#: excluded from latency stats (cold template/wave caches and JIT-like
#: first-touch costs are setup, not steady-state service).
N_PACKETS = 48
WARMUP_PACKETS = 8

#: Rounds per sweep point.  The recorded statistic is the best round
#: (same convention as the e2e throughput bench): scheduler hiccups
#: only ever inflate a p99, never shrink it, so min-over-rounds is the
#: noise-robust estimate a regression gate can trust.
N_ROUNDS = 3

SEED = 20260807


def _make_source(rng: np.random.Generator):
    from repro.gateway import AsyncExcitationSource
    from repro.phy.protocols import Protocol
    from repro.sim.traffic import ExcitationSource

    return AsyncExcitationSource(
        [
            ExcitationSource(protocol=p, rate_pkts=400.0, periodic=False)
            for p in Protocol
        ],
        duration_s=2.0,
        rng=rng,
        max_packets=N_PACKETS,
    )


async def _serve_once(n_tags: int) -> dict[str, float]:
    from repro.gateway import Gateway, GatewayConfig

    gw = Gateway(GatewayConfig(seed=SEED, keepalive_timeout_s=30.0))
    for i in range(n_tags):
        await gw.register_tag(f"tag-{i:04d}")
    sub = gw.subscribe("bench", maxlen=4 * N_PACKETS)

    async def consume() -> None:
        try:
            async for _ in sub:
                pass
        except Exception:  # noqa: BLE001 -- end of stream
            pass

    task = asyncio.ensure_future(consume())
    stats = await gw.serve(_make_source(np.random.default_rng(SEED)))
    await task
    if not stats.drained_clean or stats.n_dropped_events:
        raise RuntimeError(
            f"bench run unhealthy at {n_tags} tags: "
            f"drained_clean={stats.drained_clean} "
            f"drops={stats.n_dropped_events}"
        )
    warm = np.asarray(stats.decode_latencies_s[WARMUP_PACKETS:])
    return {
        "n_tags": n_tags,
        "n_decoded": int(warm.size),
        "p50_latency_s": float(np.percentile(warm, 50)),
        "p99_latency_s": float(np.percentile(warm, 99)),
        "packets_per_s": float(stats.packets_per_s()),
    }


def _best_of_rounds(n_tags: int) -> dict[str, float]:
    rounds = [asyncio.run(_serve_once(n_tags)) for _ in range(N_ROUNDS)]
    best = min(rounds, key=lambda r: r["p99_latency_s"])
    best["packets_per_s"] = max(r["packets_per_s"] for r in rounds)
    return best


def run_sweep() -> dict[str, object]:
    """Run the full sweep; returns the ``BENCH_gateway.json`` payload."""
    points = [_best_of_rounds(n) for n in TAG_SWEEP]
    capacity = 0
    for point in points:
        if point["p99_latency_s"] <= LATENCY_BUDGET_S:
            capacity = max(capacity, int(point["n_tags"]))
    return {
        "workload": (
            f"{N_PACKETS} mixed-protocol packets per point "
            f"(first {WARMUP_PACKETS} excluded as warmup), MAC-arbitrated "
            f"across N tags, one subscriber, block policy; best of "
            f"{N_ROUNDS} rounds"
        ),
        "latency_budget_s": LATENCY_BUDGET_S,
        "budget_convention": (
            "ZigBee O-QPSK symbol period (16 us) on a radio clock slowed "
            f"{SIM_CLOCK_SLOWDOWN:.0f}x to the simulator's scale"
        ),
        "sweep": points,
        "tags_per_core": capacity,
    }


def main() -> int:
    payload = run_sweep()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
