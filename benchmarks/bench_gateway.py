#!/usr/bin/env python
"""Gateway load test: concurrent tags per core under a latency budget.

Answers two capacity questions for the streaming service.

**Tags per core** (inline decode): how many concurrent tags can one
core host before p99 decode latency exceeds a symbol period?  The
sweep registers ``N`` tags for each ``N`` in ``TAG_SWEEP``, serves a
fixed mixed-protocol schedule through :class:`repro.gateway.Gateway`,
and records warm per-packet decode latency (staged -> published) plus
throughput.  The sweep keeps doubling ``N`` past the last configured
point until p99 exceeds the budget or ``MAX_TAGS`` is reached; if
every point fits the budget the payload carries
``"sweep_exhausted": true`` so the capacity figure is read as a lower
bound, not a knee.

**Tags per host** (sharded decode): at a pinned ``WORKER_SWEEP_TAGS``
tag count, how does throughput scale when completed batches are decoded
on a worker pool while the air loop keeps staging?  The worker sweep
serves the same schedule with ``decode_workers`` in ``WORKER_SWEEP``
(0 = inline) and ``decode_batch=WORKER_DECODE_BATCH`` so the batched
PHY kernels fuse inside each worker.  The headline statistic is
``decode_speedup`` -- packets/sec with the largest pool over
packets/sec with a single worker -- which
``benchmarks/run_benchmarks.py`` gates at ``--gateway-min-speedup``.
The payload records ``host_cores`` alongside it: process-level decode
parallelism cannot beat the core count, so the gate is only enforced
on hosts with at least ``max(WORKER_SWEEP)`` cores (a single-core
host still records the sweep -- expect ~1x there, the overlap has no
spare core to run on).

The budget needs one documented convention.  The simulator's PHY runs
orders of magnitude slower than the radio it models, so the real-time
question is posed on a scaled radio clock: with the air interface
slowed by ``SIM_CLOCK_SLOWDOWN``, one ZigBee O-QPSK symbol (16 us, the
longest symbol period in the protocol mix) lasts
``LATENCY_BUDGET_S`` of wall time, and a tag's packet stream is
real-time-feasible only while p99 decode latency stays under that
budget.  Capacity (``tags_per_core``) is the largest swept ``N`` that
meets it.  The schedule itself is processed unpaced (``time_scale=0``)
-- pacing would only add idle sleeps; it cannot change per-packet
decode latency because staging is serial.

``benchmarks/run_benchmarks.py`` imports :func:`run_sweep`, gates the
result against the committed ``BENCH_gateway.json`` (capacity must not
shrink; p99 must not regress beyond the factor; the worker-pool
speedup must clear its floor), and rewrites it.  Standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os

import numpy as np

#: Radio-clock slowdown used to state the latency budget (see module
#: docstring).  Chosen so the heaviest single-packet decode in the mix
#: (802.11n through the Viterbi kernel, the p99 driver) fits inside
#: the budget with ~2x headroom on a typical development core, and
#: headroom erodes as the control plane scales (keepalive tasks +
#: stale scans are O(N)).
SIM_CLOCK_SLOWDOWN = 12500

#: Longest symbol period in the protocol mix: ZigBee O-QPSK, 16 us.
ZIGBEE_SYMBOL_PERIOD_US = 16

#: p99 decode-latency budget on the slowed radio clock (200 ms wall).
#: Computed from integer microseconds with a single scale so the
#: budget is the exact binary float 0.2, not 16e-6 * 12500 =
#: 0.19999999999999998 -- an exact-boundary p99 must pass the gate.
LATENCY_BUDGET_S = (ZIGBEE_SYMBOL_PERIOD_US * SIM_CLOCK_SLOWDOWN) / 1_000_000

#: Concurrent-tag counts always swept, smallest to largest.  The sweep
#: continues doubling past the last entry until the budget is exceeded
#: or MAX_TAGS is hit (see run_sweep).
TAG_SWEEP = (1, 4, 16, 64)

#: Hard ceiling for the doubling extension; control-plane setup is
#: O(N) per round and the bench has to terminate.
MAX_TAGS = 256

#: Decode-worker counts for the tags-per-host sweep (0 = inline).
WORKER_SWEEP = (0, 1, 2, 4)

#: Tag count the worker sweep is served at.  Pinned (rather than
#: derived from the measured capacity) so the speedup gate compares
#: like against like across machines and across sweep extensions.
WORKER_SWEEP_TAGS = 64

#: decode_batch used in the worker sweep so grouped receptions fuse
#: into one batched-kernel call per receiver config inside a worker.
WORKER_DECODE_BATCH = 4

#: Packets served per sweep point; the first WARMUP_PACKETS are
#: excluded from latency stats (cold template/wave caches and JIT-like
#: first-touch costs are setup, not steady-state service).
N_PACKETS = 48
WARMUP_PACKETS = 8

#: Rounds per sweep point.  The recorded statistic is the best round
#: (same convention as the e2e throughput bench): scheduler hiccups
#: only ever inflate a p99, never shrink it, so min-over-rounds is the
#: noise-robust estimate a regression gate can trust.
N_ROUNDS = 3

SEED = 20260807


def _make_source(rng: np.random.Generator):
    from repro.gateway import AsyncExcitationSource
    from repro.phy.protocols import Protocol
    from repro.sim.traffic import ExcitationSource

    return AsyncExcitationSource(
        [
            ExcitationSource(protocol=p, rate_pkts=400.0, periodic=False)
            for p in Protocol
        ],
        duration_s=2.0,
        rng=rng,
        max_packets=N_PACKETS,
    )


async def _serve_once(
    n_tags: int, *, decode_workers: int = 0, decode_batch: int = 1
) -> dict[str, float]:
    from repro.gateway import Gateway, GatewayConfig

    gw = Gateway(
        GatewayConfig(
            seed=SEED,
            keepalive_timeout_s=30.0,
            decode_workers=decode_workers,
            decode_batch=decode_batch,
        )
    )
    for i in range(n_tags):
        await gw.register_tag(f"tag-{i:04d}")
    sub = gw.subscribe("bench", maxlen=4 * N_PACKETS)

    async def consume() -> None:
        try:
            async for _ in sub:
                pass
        except Exception:  # noqa: BLE001 -- end of stream
            pass

    task = asyncio.ensure_future(consume())
    stats = await gw.serve(_make_source(np.random.default_rng(SEED)))
    await task
    if not stats.drained_clean or stats.n_dropped_events:
        raise RuntimeError(
            f"bench run unhealthy at {n_tags} tags: "
            f"drained_clean={stats.drained_clean} "
            f"drops={stats.n_dropped_events}"
        )
    warm = np.asarray(stats.decode_latencies_s[WARMUP_PACKETS:])
    return {
        "n_tags": n_tags,
        "n_decoded": int(warm.size),
        "p50_latency_s": float(np.percentile(warm, 50)),
        "p99_latency_s": float(np.percentile(warm, 99)),
        "packets_per_s": float(stats.packets_per_s()),
    }


def _best_of_rounds(
    n_tags: int,
    *,
    decode_workers: int = 0,
    decode_batch: int = 1,
    rounds: int = N_ROUNDS,
) -> dict[str, float]:
    results = [
        asyncio.run(
            _serve_once(
                n_tags,
                decode_workers=decode_workers,
                decode_batch=decode_batch,
            )
        )
        for _ in range(rounds)
    ]
    best = min(results, key=lambda r: r["p99_latency_s"])
    best["packets_per_s"] = max(r["packets_per_s"] for r in results)
    return best


def _tag_points(rounds: int, max_tags: int) -> tuple[list[dict[str, float]], bool]:
    """Sweep TAG_SWEEP, then keep doubling until the budget breaks.

    Returns the sweep points and whether the sweep was exhausted --
    every point (including ``max_tags``) still met the budget, so the
    capacity figure is a lower bound rather than a measured knee.
    """
    points = [_best_of_rounds(n, rounds=rounds) for n in TAG_SWEEP]
    n = int(points[-1]["n_tags"])
    while points[-1]["p99_latency_s"] <= LATENCY_BUDGET_S and 2 * n <= max_tags:
        n *= 2
        points.append(_best_of_rounds(n, rounds=rounds))
    exhausted = all(p["p99_latency_s"] <= LATENCY_BUDGET_S for p in points)
    return points, exhausted


def _worker_points(rounds: int, n_tags: int) -> list[dict[str, float]]:
    points = []
    for workers in WORKER_SWEEP:
        point = _best_of_rounds(
            n_tags,
            decode_workers=workers,
            decode_batch=WORKER_DECODE_BATCH,
            rounds=rounds,
        )
        point["decode_workers"] = workers
        points.append(point)
    return points


def run_sweep(
    *, rounds: int = N_ROUNDS, max_tags: int = MAX_TAGS, workers: bool = True
) -> dict[str, object]:
    """Run the full sweep; returns the ``BENCH_gateway.json`` payload."""
    points, exhausted = _tag_points(rounds, max_tags)
    capacity = 0
    for point in points:
        if point["p99_latency_s"] <= LATENCY_BUDGET_S:
            capacity = max(capacity, int(point["n_tags"]))
    payload: dict[str, object] = {
        "workload": (
            f"{N_PACKETS} mixed-protocol packets per point "
            f"(first {WARMUP_PACKETS} excluded as warmup), MAC-arbitrated "
            f"across N tags, one subscriber, block policy; best of "
            f"{rounds} rounds"
        ),
        "latency_budget_s": LATENCY_BUDGET_S,
        "budget_convention": (
            "ZigBee O-QPSK symbol period (16 us) on a radio clock slowed "
            f"{SIM_CLOCK_SLOWDOWN}x to the simulator's scale"
        ),
        "sweep": points,
        "tags_per_core": capacity,
        "sweep_exhausted": exhausted,
    }
    if workers:
        host_tags = WORKER_SWEEP_TAGS
        worker_points = _worker_points(rounds, host_tags)
        by_workers = {int(p["decode_workers"]): p for p in worker_points}
        lo = by_workers.get(1)
        hi = by_workers.get(max(WORKER_SWEEP))
        speedup = 0.0
        if lo and hi and lo["packets_per_s"] > 0:
            speedup = hi["packets_per_s"] / lo["packets_per_s"]
        payload["worker_sweep"] = worker_points
        payload["worker_sweep_tags"] = host_tags
        payload["worker_decode_batch"] = WORKER_DECODE_BATCH
        payload["decode_speedup"] = round(speedup, 2)
        payload["host_cores"] = os.cpu_count() or 1
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds",
        type=int,
        default=N_ROUNDS,
        help=f"rounds per sweep point, best-of recorded (default {N_ROUNDS})",
    )
    parser.add_argument(
        "--max-tags",
        type=int,
        default=MAX_TAGS,
        help="ceiling for the doubling tag-sweep extension "
        f"(default {MAX_TAGS})",
    )
    parser.add_argument(
        "--no-workers",
        action="store_true",
        help="skip the decode-worker (tags-per-host) sweep",
    )
    args = parser.parse_args(argv)
    payload = run_sweep(
        rounds=args.rounds, max_tags=args.max_tags, workers=not args.no_workers
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
