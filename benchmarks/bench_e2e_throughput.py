"""End-to-end decode throughput: batched vs per-packet dispatch.

The workload mirrors the ``validation_ber`` experiment's modem chain
for all four protocols: packets are modulated and pushed through AWGN
at a fixed Eb/N0 (untimed setup), then demodulated either one packet
at a time through the scalar kernels or as one fused call through the
``demodulate_batch`` entry points.  The timed region is demodulation
only, so the metric is packets *decoded* per second.

``benchmarks/run_benchmarks.py`` consumes the two mean times, derives
packets/sec for each dispatch mode, enforces the batched-vs-scalar
speedup floor, gates against the committed ``BENCH_e2e.json``
baseline, and rewrites it.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.phy import ble, wifi_b, wifi_n, zigbee
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform

#: Packets per protocol in one benchmark round.
N_PACKETS = 128
PAYLOAD_BYTES = 30
EBN0_DB = 8.0
SEED = 20260807

#: Packets decoded per timed round (all four protocols).
TOTAL_PACKETS = N_PACKETS * len(Protocol)

#: Noise bandwidth (= sample rate) and bit rate per protocol, matching
#: repro.experiments.validation_ber.
_FS_HZ = {
    Protocol.WIFI_B: 22e6,
    Protocol.WIFI_N: 20e6,
    Protocol.BLE: 8e6,
    Protocol.ZIGBEE: 8e6,
}
_BIT_RATE = {
    Protocol.WIFI_B: 1e6,
    Protocol.WIFI_N: 6.5e6,
    Protocol.BLE: 1e6,
    Protocol.ZIGBEE: 250e3,
}

_N_REF_BITS = 8 * PAYLOAD_BYTES


def _modulate(protocol: Protocol, payload: bytes) -> Waveform:
    if protocol is Protocol.WIFI_B:
        return wifi_b.modulate(payload)
    if protocol is Protocol.WIFI_N:
        return wifi_n.modulate(payload)
    if protocol is Protocol.BLE:
        return ble.modulate(payload)
    return zigbee.modulate(payload)


@functools.cache
def _workload() -> dict[Protocol, list[Waveform]]:
    """Noisy waveforms per protocol; built once, shared by both tests."""
    rng = np.random.default_rng(SEED)
    waves_by_protocol: dict[Protocol, list[Waveform]] = {}
    for protocol in Protocol:
        snr_db = EBN0_DB - 10.0 * np.log10(
            _FS_HZ[protocol] / _BIT_RATE[protocol]
        )
        waves = []
        for _ in range(N_PACKETS):
            payload = rng.integers(0, 256, PAYLOAD_BYTES, dtype=np.uint8)
            wave = _modulate(protocol, payload.tobytes())
            sigma = (
                np.sqrt(wave.mean_power())
                * 10.0 ** (-snr_db / 20.0)
                / np.sqrt(2.0)
            )
            wave.iq = wave.iq + sigma * (
                rng.normal(size=wave.n_samples)
                + 1j * rng.normal(size=wave.n_samples)
            )
            waves.append(wave)
        waves_by_protocol[protocol] = waves
    return waves_by_protocol


def _decode_per_packet(workload: dict[Protocol, list[Waveform]]) -> int:
    n = 0
    for protocol, waves in workload.items():
        for wave in waves:
            if protocol is Protocol.WIFI_B:
                wifi_b.demodulate(wave, n_payload_bits=_N_REF_BITS)
            elif protocol is Protocol.WIFI_N:
                wifi_n.demodulate(wave, n_psdu_bits=_N_REF_BITS)
            elif protocol is Protocol.BLE:
                ble.demodulate(wave)
            else:
                zigbee.demodulate(wave)
            n += 1
    return n


def _decode_batched(workload: dict[Protocol, list[Waveform]]) -> int:
    n = 0
    for protocol, waves in workload.items():
        if protocol is Protocol.WIFI_B:
            results = wifi_b.demodulate_batch(waves, n_payload_bits=_N_REF_BITS)
        elif protocol is Protocol.WIFI_N:
            results = wifi_n.demodulate_batch(waves, n_psdu_bits=_N_REF_BITS)
        elif protocol is Protocol.BLE:
            results = ble.demodulate_batch(waves)
        else:
            results = zigbee.demodulate_batch(waves)
        n += len(results)
    return n


def test_e2e_decode_per_packet(benchmark) -> None:
    workload = _workload()
    n = benchmark.pedantic(
        _decode_per_packet, args=(workload,), rounds=5, iterations=1,
        warmup_rounds=1,
    )
    assert n == TOTAL_PACKETS


def test_e2e_decode_batched(benchmark) -> None:
    workload = _workload()
    n = benchmark.pedantic(
        _decode_batched, args=(workload,), rounds=5, iterations=1,
        warmup_rounds=1,
    )
    assert n == TOTAL_PACKETS


def test_batched_decode_matches_per_packet() -> None:
    """The two dispatch modes must agree bit-for-bit on this workload."""
    workload = _workload()
    for protocol, waves in workload.items():
        if protocol is Protocol.WIFI_B:
            ref = [
                wifi_b.demodulate(w, n_payload_bits=_N_REF_BITS).payload_bits
                for w in waves
            ]
            got = [
                r.payload_bits
                for r in wifi_b.demodulate_batch(
                    waves, n_payload_bits=_N_REF_BITS
                )
            ]
        elif protocol is Protocol.WIFI_N:
            ref = [
                wifi_n.demodulate(w, n_psdu_bits=_N_REF_BITS).psdu_bits
                for w in waves
            ]
            got = [
                r.psdu_bits
                for r in wifi_n.demodulate_batch(waves, n_psdu_bits=_N_REF_BITS)
            ]
        elif protocol is Protocol.BLE:
            ref = [ble.demodulate(w).payload_bits for w in waves]
            got = [r.payload_bits for r in ble.demodulate_batch(waves)]
        else:
            ref = [zigbee.demodulate(w).payload_bits for w in waves]
            got = [r.payload_bits for r in zigbee.demodulate_batch(waves)]
        for b, (r, g) in enumerate(zip(ref, got)):
            assert np.array_equal(r, g), (protocol, b)
