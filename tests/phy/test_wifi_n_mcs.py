"""Tests for puncturing and the full 802.11n MCS ladder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import bits as bitlib
from repro.phy import convcode, viterbi, wifi_n


class TestPuncturing:
    @pytest.mark.parametrize("rate,keep", [("1/2", 1.0), ("2/3", 0.75), ("3/4", 2 / 3), ("5/6", 0.6)])
    def test_puncture_ratio(self, rate, keep):
        coded = np.zeros(480, np.uint8)
        assert convcode.puncture(coded, rate).size == pytest.approx(480 * keep, abs=2)

    @given(st.integers(0, 2**32 - 1), st.sampled_from(["2/3", "3/4", "5/6"]))
    @settings(max_examples=20, deadline=None)
    def test_depuncture_restores_positions(self, seed, rate):
        rng = np.random.default_rng(seed)
        coded = rng.integers(0, 2, 240).astype(np.uint8)
        punct = convcode.puncture(coded, rate)
        depunct = convcode.depuncture(punct, rate)
        kept = depunct != convcode.ERASURE
        assert np.array_equal(depunct[kept], punct)

    @pytest.mark.parametrize("rate", ["1/2", "2/3", "3/4", "5/6"])
    def test_clean_decode_through_puncturing(self, rate):
        rng = np.random.default_rng(5)
        info = rng.integers(0, 2, 300).astype(np.uint8)
        punct = convcode.puncture(convcode.encode(info), rate)
        decoded = viterbi.decode(convcode.depuncture(punct, rate), n_info=info.size)
        assert np.array_equal(decoded, info)

    def test_punctured_code_is_weaker(self):
        # Higher puncturing tolerates fewer channel errors.
        rng = np.random.default_rng(6)
        info = rng.integers(0, 2, 400).astype(np.uint8)

        def residual(rate, flip_every):
            punct = convcode.puncture(convcode.encode(info), rate)
            corrupted = punct.copy()
            corrupted[::flip_every] ^= 1
            decoded = viterbi.decode(
                convcode.depuncture(corrupted, rate), n_info=info.size
            )
            return np.mean(decoded != info)

        assert residual("5/6", 18) >= residual("1/2", 18)

    def test_rejects_unknown_rate(self):
        with pytest.raises(ValueError):
            convcode.puncture(np.zeros(8, np.uint8), "7/8")
        with pytest.raises(ValueError):
            convcode.depuncture(np.zeros(8, np.uint8), "9/10")


class TestMcsLadder:
    @pytest.mark.parametrize("mcs", list(range(8)))
    def test_loopback(self, mcs):
        payload = bytes(range(52))
        wave = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=mcs))
        result = wifi_n.demodulate(wave, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.psdu_bits) == payload

    def test_n_dbps_ladder(self):
        expected = {0: 26, 1: 52, 2: 78, 3: 104, 4: 156, 5: 208, 6: 234, 7: 260}
        for mcs, dbps in expected.items():
            assert wifi_n.WifiNConfig(mcs=mcs).n_dbps == dbps

    def test_higher_mcs_fewer_symbols(self):
        payload = b"\xa5" * 100
        symbols = [
            wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=m)).annotations[
                "n_payload_symbols"
            ]
            for m in range(8)
        ]
        assert all(a >= b for a, b in zip(symbols, symbols[1:]))

    def test_64qam_constellation_unit_power(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, 6 * 4096).astype(np.uint8)
        pts = wifi_n._map_bits(bits, "64QAM")
        assert np.mean(np.abs(pts) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_64qam_demap_inverts_map(self):
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, 6 * 200).astype(np.uint8)
        pts = wifi_n._map_bits(bits, "64QAM")
        assert np.array_equal(wifi_n._demap_symbols(pts, "64QAM"), bits)

    def test_mcs7_noise_sensitivity(self):
        # 64QAM 5/6 fails at an SNR where MCS0 is clean -- the ladder
        # behaves like a ladder.
        rng = np.random.default_rng(9)
        payload = bytes(range(40))
        noise = 0.08

        def errors(mcs):
            wave = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=mcs))
            wave.iq = wave.iq + noise * (
                rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
            )
            result = wifi_n.demodulate(wave, n_psdu_bits=len(payload) * 8)
            ref = bitlib.bits_from_bytes(payload)
            return int(np.count_nonzero(result.psdu_bits[: ref.size] != ref))

        assert errors(0) == 0
        assert errors(7) > 0
