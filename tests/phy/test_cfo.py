"""Tests for carrier-frequency-offset estimation and tolerance."""

import numpy as np
import pytest

from repro.channel import Channel
from repro.phy import ble, bits as bitlib, wifi_b, wifi_n, zigbee


class TestWifiNCfo:
    @pytest.mark.parametrize("cfo", [0.0, 4e3, 37e3, 121e3, 310e3])
    def test_estimator_accuracy(self, cfo):
        wave = wifi_n.modulate(bytes(range(20)))
        impaired = Channel(cfo_hz=cfo, phase_rad=1.1).apply(wave)
        est = wifi_n.estimate_cfo(impaired)
        assert est == pytest.approx(cfo, abs=200.0)

    @pytest.mark.parametrize("cfo", [20e3, 150e3])
    def test_decode_under_cfo(self, cfo):
        payload = bytes(range(26))
        wave = wifi_n.modulate(payload)
        impaired = Channel(cfo_hz=cfo).apply(wave)
        result = wifi_n.demodulate(impaired, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.psdu_bits) == payload

    def test_decode_fails_without_correction(self):
        # A 100 kHz offset rotates ~144 deg per OFDM symbol: fatal
        # without the estimator -- proves the correction is live.
        payload = bytes(range(26))
        wave = wifi_n.modulate(payload)
        impaired = Channel(cfo_hz=100e3).apply(wave)
        result = wifi_n.demodulate(
            impaired, n_psdu_bits=len(payload) * 8, correct_cfo=False
        )
        assert bitlib.bytes_from_bits(result.psdu_bits) != payload

    def test_estimator_with_noise(self):
        rng = np.random.default_rng(0)
        wave = wifi_n.modulate(bytes(range(20)))
        impaired = Channel(cfo_hz=55e3, noise_power_dbm=-20.0).apply(wave, rng)
        assert wifi_n.estimate_cfo(impaired) == pytest.approx(55e3, abs=2e3)


class TestBleCfo:
    @pytest.mark.parametrize("cfo", [0.0, 20e3, 80e3, 150e3])
    def test_decode_under_cfo(self, cfo):
        # BLE spec allows +-150 kHz carrier offset; preamble AFC
        # absorbs it.
        payload = bytes(range(14))
        wave = ble.modulate(payload)
        impaired = Channel(cfo_hz=cfo).apply(wave)
        result = ble.demodulate(impaired)
        assert result.crc_ok

    def test_large_cfo_would_break_without_afc(self):
        # At 150 kHz the discriminator DC offset (0.118 rad/sample at
        # 8 Msps) is comparable to the deviation (0.196): without AFC
        # decoding is marginal, with it it is clean -- sanity-check the
        # AFC contributes.
        payload = b"\x0f" * 10
        wave = ble.modulate(payload)
        impaired = Channel(cfo_hz=200e3).apply(wave)
        result = ble.demodulate(impaired)
        assert result.crc_ok


class TestDifferentialTolerance:
    def test_wifi_b_tolerates_small_cfo(self):
        # DBPSK/Barker is differential: a small CFO rotates adjacent
        # symbols by ~0.33 deg at 1 kHz -- decoding unaffected.
        payload = bytes(range(12))
        wave = wifi_b.modulate(payload)
        impaired = Channel(cfo_hz=5e3).apply(wave)
        result = wifi_b.demodulate(impaired, n_payload_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_zigbee_tolerates_small_cfo(self):
        payload = bytes(range(8))
        wave = zigbee.modulate(payload)
        impaired = Channel(cfo_hz=2e3).apply(wave)
        result = zigbee.demodulate(impaired)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload
