"""Loopback tests for the 802.15.4 OQPSK modem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import bits as bitlib
from repro.phy import zigbee
from repro.phy.protocols import Protocol


class TestPnTable:
    def test_16_unique_sequences(self):
        rows = {tuple(r) for r in zigbee.PN_TABLE}
        assert len(rows) == 16

    def test_low_cross_correlation(self):
        bipolar = 2.0 * zigbee.PN_TABLE.astype(float) - 1.0
        gram = bipolar @ bipolar.T
        off_diag = gram[~np.eye(16, dtype=bool)]
        assert np.all(np.diag(gram) == 32)
        # 802.15.4 quasi-orthogonality: all cross-correlations well
        # below the autocorrelation peak.
        assert np.max(np.abs(off_diag)) <= 16

    def test_symbols_1_to_7_are_cyclic_shifts(self):
        for k in range(1, 8):
            assert np.array_equal(zigbee.PN_TABLE[k], np.roll(zigbee.PN_TABLE[0], 4 * k))

    def test_complement_is_not_in_table(self):
        # A tag's pi flip complements chips; the complement of a valid
        # sequence must not be a valid sequence itself, so flipped
        # symbols land on a *different* best match (tag bit detectable).
        rows = {tuple(r) for r in zigbee.PN_TABLE}
        for r in zigbee.PN_TABLE:
            assert tuple(1 - r) not in rows


class TestSymbolPacking:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=40))
    def test_round_trip(self, symbols):
        arr = np.array(symbols, dtype=np.uint8)
        assert np.array_equal(
            zigbee.symbols_from_bits(zigbee.bits_from_symbols(arr)), arr
        )

    def test_low_nibble_first(self):
        bits = bitlib.bits_from_bytes(b"\xa7")
        assert list(zigbee.symbols_from_bits(bits)) == [0x7, 0xA]


class TestLoopback:
    def test_metadata(self):
        wave = zigbee.modulate(b"\x12\x34")
        assert wave.annotations["protocol"] is Protocol.ZIGBEE
        assert wave.sample_rate == 8e6
        # Preamble of 8 zero symbols = 128 us.
        sym_len = wave.annotations["samples_per_symbol"]
        assert 8 * sym_len / wave.sample_rate == pytest.approx(128e-6)

    def test_clean_loopback(self):
        payload = bytes(range(16))
        result = zigbee.demodulate(zigbee.modulate(payload))
        assert result.sfd_ok
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    @given(st.binary(min_size=1, max_size=24))
    @settings(max_examples=15, deadline=None)
    def test_loopback_property(self, payload):
        result = zigbee.demodulate(zigbee.modulate(payload))
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_loopback_with_noise(self):
        rng = np.random.default_rng(9)
        payload = b"\x5b" * 12
        wave = zigbee.modulate(payload)
        wave.iq = wave.iq + 0.1 * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        result = zigbee.demodulate(wave)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_near_constant_envelope(self):
        # OQPSK half-sine is MSK-like: modest envelope ripple compared
        # with OFDM.
        wave = zigbee.modulate(bytes(range(8)))
        env = wave.envelope()
        mid = env[len(env) // 4 : -len(env) // 4]
        assert mid.std() / mid.mean() < 0.25


class TestTagFlip:
    def test_full_symbol_flips_change_symbol_decision(self):
        """A pi flip over whole symbols makes the best match land on a
        different PN entry (the overlay 'flipped' state)."""
        payload = bytes(range(10))
        wave = zigbee.modulate(payload)
        clean = zigbee.demodulate(wave).symbols

        sym_len = wave.annotations["samples_per_symbol"]
        start = wave.annotations["payload_start"]
        tagged_wave = wave.copy()
        # Flip symbols 2..5 (a gamma=3-style run plus one).
        lo = start + 2 * sym_len
        hi = start + 6 * sym_len
        tagged_wave.iq[lo:hi] *= -1.0
        tagged = zigbee.demodulate(tagged_wave).symbols

        # Interior flipped symbols decode differently from clean.
        assert tagged[3] != clean[3]
        assert tagged[4] != clean[4]
        # Symbols outside the run are untouched.
        assert np.array_equal(tagged[7:], clean[7:])
        assert np.array_equal(tagged[:2], clean[:2])

    def test_flip_maps_symbols_deterministically(self):
        # The flipped decision depends only on the original symbol, so
        # the receiver can detect "differs from reference".
        payload = b"\x33" * 8  # repeated symbol 3
        wave = zigbee.modulate(payload)
        sym_len = wave.annotations["samples_per_symbol"]
        start = wave.annotations["payload_start"]
        tagged_wave = wave.copy()
        tagged_wave.iq[start + 4 * sym_len : start + 12 * sym_len] *= -1.0
        tagged = zigbee.demodulate(tagged_wave).symbols
        interior = tagged[5:11]
        assert len(set(interior.tolist())) == 1
        assert interior[0] != 3
