"""Batched PHY entry points vs loops over the single-packet kernels.

The ``*_batch`` kernels promise bit-identical results to the scalar
loop for every protocol (see ``repro.phy.batch`` for the ragged-input
grouping policy).  These tests pin that contract at its edges -- N=1
batches, ragged payload lengths, empty batches -- and with a
hypothesis property that stacks randomized payload sets through both
dispatch modes, demodulating noisy copies so the float-sensitive
tracking loops (CFO, phase feedback, CPE) are actually exercised.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adc import Adc
from repro.core.matching import score_capture, score_capture_batch
from repro.core.templates import TemplateBank
from repro.phy import ble, viterbi, wifi_b, wifi_n, zigbee
from tests import reference_impls as ref

PROTOCOL_MODULES = {
    "wifi_b": wifi_b,
    "wifi_n": wifi_n,
    "ble": ble,
    "zigbee": zigbee,
}


def _results_equal(a, b) -> bool:
    """Field-by-field equality for the protocol decode dataclasses."""
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, list):
            if len(x) != len(y) or any(
                not np.array_equal(u, v) for u, v in zip(x, y)
            ):
                return False
        elif isinstance(x, np.ndarray) or isinstance(y, np.ndarray):
            if not np.array_equal(np.asarray(x), np.asarray(y)):
                return False
        elif x != y:
            return False
    return True


def _noisy(waves, seed):
    """AWGN copies; deterministic so both dispatch modes see one input."""
    rng = np.random.default_rng(seed)
    out = []
    for w in waves:
        sigma = 0.05 * float(np.sqrt(w.mean_power()))
        iq = w.iq + sigma * (
            rng.normal(size=w.n_samples) + 1j * rng.normal(size=w.n_samples)
        )
        noisy = dataclasses.replace(w, iq=iq, annotations=dict(w.annotations))
        out.append(noisy)
    return out


@pytest.mark.parametrize("name", sorted(PROTOCOL_MODULES))
class TestRoundtripBatchEqualsScalar:
    def test_single_packet_batch(self, name):
        mod = PROTOCOL_MODULES[name]
        payload = bytes(range(8))
        waves = mod.modulate_batch([payload])
        assert len(waves) == 1
        scalar = mod.modulate(payload)
        assert np.array_equal(waves[0].iq, scalar.iq)
        got = mod.demodulate_batch(_noisy(waves, seed=3))[0]
        want = mod.demodulate(_noisy([scalar], seed=3)[0])
        assert _results_equal(got, want)

    def test_ragged_lengths_preserve_order(self, name):
        mod = PROTOCOL_MODULES[name]
        rng = np.random.default_rng(7)
        payloads = [
            rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            for size in (6, 4, 6, 9, 4)
        ]
        waves = mod.modulate_batch(payloads)
        scalars = [mod.modulate(p) for p in payloads]
        for w, s in zip(waves, scalars):
            assert np.array_equal(w.iq, s.iq)
        got = mod.demodulate_batch(_noisy(waves, seed=11))
        want = [mod.demodulate(w) for w in _noisy(scalars, seed=11)]
        for g, r in zip(got, want):
            assert _results_equal(g, r)

    def test_empty_batch_raises(self, name):
        mod = PROTOCOL_MODULES[name]
        with pytest.raises(ValueError, match="empty batch"):
            mod.modulate_batch([])
        with pytest.raises(ValueError, match="empty batch"):
            mod.demodulate_batch([])

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_payload_sets(self, name, data):
        mod = PROTOCOL_MODULES[name]
        n_packets = data.draw(st.integers(1, 4), label="n_packets")
        payloads = [
            bytes(
                data.draw(
                    st.lists(
                        st.integers(0, 255), min_size=2, max_size=10
                    ),
                    label=f"payload{i}",
                )
            )
            for i in range(n_packets)
        ]
        seed = data.draw(st.integers(0, 2**16), label="noise_seed")
        waves = mod.modulate_batch(payloads)
        scalars = [mod.modulate(p) for p in payloads]
        for w, s in zip(waves, scalars):
            assert np.array_equal(w.iq, s.iq)
        got = mod.demodulate_batch(_noisy(waves, seed))
        want = [mod.demodulate(w) for w in _noisy(scalars, seed)]
        for g, r in zip(got, want):
            assert _results_equal(g, r)


class TestViterbiBatch:
    def _noisy_stream(self, rng, n):
        info = rng.integers(0, 2, n).astype(np.uint8)
        coded = ref.convcode_encode(info)
        noisy = coded.copy()
        noisy[rng.random(noisy.size) < 0.05] ^= 1
        noisy[rng.random(noisy.size) < 0.05] = viterbi.ERASURE
        return noisy, n

    def test_batch_matches_scalar_loop(self):
        rng = np.random.default_rng(5)
        for n in (1, 3, 17, 130):
            streams = [self._noisy_stream(rng, n)[0] for _ in range(5)]
            got = viterbi.decode_batch(streams, n_info=n)
            want = [viterbi.decode(s, n_info=n) for s in streams]
            assert all(np.array_equal(g, w) for g, w in zip(got, want))

    def test_soft_batch_matches_scalar_loop(self):
        rng = np.random.default_rng(6)
        for n in (1, 9, 64):
            llrs = [rng.normal(size=2 * n) for _ in range(4)]
            got = viterbi.decode_soft_batch(llrs, n_info=n)
            want = [viterbi.decode_soft(x, n_info=n) for x in llrs]
            assert all(np.array_equal(g, w) for g, w in zip(got, want))

    def test_single_stream_batch(self):
        rng = np.random.default_rng(8)
        noisy, n = self._noisy_stream(rng, 40)
        (got,) = viterbi.decode_batch([noisy], n_info=n)
        assert np.array_equal(got, viterbi.decode(noisy, n_info=n))

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError, match="empty batch"):
            viterbi.decode_batch([])
        with pytest.raises(ValueError, match="empty batch"):
            viterbi.decode_soft_batch([])

    def test_ragged_batch_raises(self):
        with pytest.raises(ValueError, match="mixed lengths"):
            viterbi.decode_batch([np.zeros(4, np.uint8), np.zeros(6, np.uint8)])


class TestMatcherBatch:
    @pytest.fixture(scope="class")
    def bank(self):
        return TemplateBank.build(Adc(sample_rate=10e6, n_bits=4))

    def _captures(self, bank, rng, sizes):
        need = bank.l_p + bank.l_m
        return [rng.normal(size=need + extra) for extra in sizes]

    @pytest.mark.parametrize("quantized", [False, True])
    def test_batch_matches_scalar_loop(self, bank, quantized):
        rng = np.random.default_rng(13)
        captures = self._captures(bank, rng, (0, 40, 0, 7, 40))
        offsets = tuple(range(0, 41, 8))
        got = score_capture_batch(
            captures, bank, quantized=quantized, offsets=offsets
        )
        want = [
            score_capture(c, bank, quantized=quantized, offsets=offsets)
            for c in captures
        ]
        assert got == want

    def test_single_capture_batch(self, bank):
        rng = np.random.default_rng(14)
        (capture,) = self._captures(bank, rng, (3,))
        (got,) = score_capture_batch([capture], bank, quantized=False)
        assert got == score_capture(capture, bank, quantized=False)

    def test_empty_batch_raises(self, bank):
        with pytest.raises(ValueError, match="empty batch"):
            score_capture_batch([], bank, quantized=False)

    def test_too_short_capture_scores_sentinel(self, bank):
        short = np.zeros(4)
        (got,) = score_capture_batch([short], bank, quantized=False)
        assert got == score_capture(short, bank, quantized=False)
        assert all(v == -1.0 for v in got.values())
