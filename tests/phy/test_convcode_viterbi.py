"""Tests for the BCC encoder, Viterbi decoder, and interleavers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import convcode, viterbi
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.wifi_n import ht_deinterleave, ht_interleave


class TestEncoder:
    def test_rate_half(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        assert convcode.encode(bits).size == 10

    def test_zero_input_gives_zero_output(self):
        assert not convcode.encode(np.zeros(20, np.uint8)).any()

    def test_all_ones_steady_state(self):
        # Both generators have odd weight, so all-ones input yields
        # all-ones output once the register fills (complement-codeword
        # property the 802.11n overlay decoding relies on).
        out = convcode.encode(np.ones(20, np.uint8))
        assert out[12:].all()

    def test_known_impulse_response(self):
        out = convcode.encode(np.array([1, 0, 0, 0, 0, 0, 0], np.uint8))
        # g0=133(oct)=1011011b, g1=171(oct)=1111001b; taps over time
        # are the polynomial bits LSB (current bit) to MSB (oldest).
        a = out[0::2]
        b = out[1::2]
        assert list(a) == [1, 1, 0, 1, 1, 0, 1]
        assert list(b) == [1, 0, 0, 1, 1, 1, 1]


class TestViterbi:
    @given(st.lists(st.integers(0, 1), min_size=8, max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_clean_round_trip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        decoded = viterbi.decode(convcode.encode(arr), n_info=arr.size)
        assert np.array_equal(decoded, arr)

    def test_corrects_scattered_errors(self):
        rng = np.random.default_rng(3)
        info = rng.integers(0, 2, 200).astype(np.uint8)
        coded = convcode.encode(info)
        # Flip well-separated coded bits; free distance 10 lets the
        # decoder fix isolated errors easily.
        for pos in range(10, 380, 40):
            coded[pos] ^= 1
        decoded = viterbi.decode(coded, n_info=info.size)
        assert np.array_equal(decoded, info)

    def test_complemented_segment_decodes_to_complement(self):
        # The mechanism behind 802.11n overlay decoding: inverting a
        # long run of coded bits yields (transients aside) the
        # complemented information bits.
        info = np.zeros(120, np.uint8)
        coded = convcode.encode(info)
        coded[80:160] ^= 1  # invert coded bits for info bits 40..79
        decoded = viterbi.decode(coded, n_info=info.size)
        middle = decoded[50:70]  # middle of the inverted region
        assert middle.mean() > 0.9

    def test_empty_input(self):
        assert viterbi.decode(np.zeros(0, np.uint8)).size == 0


class TestInterleavers:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_legacy_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 96).astype(np.uint8)
        assert np.array_equal(deinterleave(interleave(bits)), bits)

    def test_legacy_permutation_is_bijection(self):
        from repro.phy.interleaver import permutation

        perm = permutation(48, 1)
        assert sorted(perm.tolist()) == list(range(48))

    @pytest.mark.parametrize("n_bpsc", [1, 2, 4])
    def test_ht_round_trip(self, n_bpsc):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 52 * n_bpsc).astype(np.uint8)
        assert np.array_equal(ht_deinterleave(ht_interleave(bits, n_bpsc), n_bpsc), bits)

    @pytest.mark.parametrize("n_bpsc", [1, 2, 4])
    def test_ht_permutation_spreads_adjacent_bits(self, n_bpsc):
        # Adjacent coded bits should land on distant subcarriers.
        bits = np.zeros(52 * n_bpsc, np.uint8)
        bits[0] = 1
        bits[1] = 1
        out = ht_interleave(bits, n_bpsc)
        positions = np.flatnonzero(out)
        assert abs(positions[1] - positions[0]) > 2
