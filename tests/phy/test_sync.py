"""Tests for packet detection / timing synchronization."""

import numpy as np
import pytest

from repro.phy import ble, sync, wifi_b, wifi_n, zigbee
from repro.phy import bits as bitlib
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.sim.traffic import random_packet


def _embed(wave, pad_before, pad_after=200, noise=0.0, seed=0):
    """Place a packet at a known offset in a noisy stream."""
    rng = np.random.default_rng(seed)
    padded = wave.padded(before=pad_before, after=pad_after)
    if noise > 0:
        padded.iq = padded.iq + noise * (
            rng.normal(size=padded.n_samples) + 1j * rng.normal(size=padded.n_samples)
        )
    return padded


class TestDetectors:
    @pytest.mark.parametrize("offset", [0, 137, 500])
    def test_wifi_n_detection(self, offset):
        wave = wifi_n.modulate(bytes(range(20)))
        stream = _embed(wave, offset, noise=0.02)
        found = sync.detect_wifi_n(stream)
        assert found is not None
        assert abs(found - offset) <= 4

    @pytest.mark.parametrize("offset", [0, 333])
    def test_wifi_b_detection(self, offset):
        wave = wifi_b.modulate(bytes(range(8)))
        stream = _embed(wave, offset, noise=0.02)
        found = sync.detect_wifi_b(stream)
        assert found is not None
        # Barker sync snaps to the symbol grid (11 chips x 2 samples).
        assert abs(found - offset) <= 22

    @pytest.mark.parametrize("offset", [0, 97])
    def test_ble_detection(self, offset):
        wave = ble.modulate(b"\x42" * 8)
        stream = _embed(wave, offset, noise=0.02)
        found = sync.detect_ble(stream)
        assert found is not None
        assert abs(found - offset) <= 4

    @pytest.mark.parametrize("offset", [0, 211])
    def test_zigbee_detection(self, offset):
        wave = zigbee.modulate(bytes(range(6)))
        stream = _embed(wave, offset, noise=0.05)
        found = sync.detect_zigbee(stream)
        assert found is not None
        assert abs(found - offset) <= 8

    def test_noise_only_returns_none(self):
        rng = np.random.default_rng(1)
        noise = Waveform(
            0.1 * (rng.normal(size=8000) + 1j * rng.normal(size=8000)), 20e6
        )
        assert sync.detect_wifi_n(noise) is None
        assert sync.detect_ble(
            Waveform(noise.iq[:4000], 8e6)
        ) is None

    def test_dispatch_table(self):
        for p in Protocol:
            wave = random_packet(p, np.random.default_rng(0), n_payload_bytes=10)
            found = sync.detect(wave.padded(before=50, after=50), p)
            assert found is not None


class TestEndToEndWithSync:
    def test_wifi_n_decode_after_detection(self):
        payload = bytes(range(18))
        wave = wifi_n.modulate(payload)
        stream = _embed(wave, 250, noise=0.02, seed=3)
        start = sync.detect_wifi_n(stream)
        aligned = sync.align(stream, wave, start)
        result = wifi_n.demodulate(aligned, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.psdu_bits) == payload

    def test_ble_decode_after_detection(self):
        payload = b"\x13\x37\xc0\xde"
        wave = ble.modulate(payload)
        stream = _embed(wave, 123, noise=0.02, seed=4)
        start = sync.detect_ble(stream)
        aligned = sync.align(stream, wave, start)
        result = ble.demodulate(aligned)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload
