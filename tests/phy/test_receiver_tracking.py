"""Regression tests for receiver phase/frequency tracking.

Each test pins a failure mode found while cross-validating the modems
against the analytic waterfalls (benchmarks/bench_validation_ber.py).
"""

import numpy as np
import pytest

from repro.channel import Channel
from repro.phy import bits as bitlib
from repro.phy import ble, wifi_n, zigbee


class TestOfdmCpeTracking:
    def test_residual_cfo_does_not_wrap_cpe(self):
        """A ~7 kHz residual CFO drifts the common phase past pi/2
        within a few symbols; per-symbol mod-pi wrapping used to flip
        the correction sign and complement whole symbols.  Continuous
        tracking must decode cleanly."""
        payload = bytes(range(30))
        ref = bitlib.bits_from_bytes(payload)
        wave = wifi_n.modulate(payload)
        # Inject the residual directly (bypass the estimator) by
        # disabling CFO correction and applying a small offset.
        impaired = Channel(cfo_hz=7e3).apply(wave)
        result = wifi_n.demodulate(
            impaired, n_psdu_bits=ref.size, correct_cfo=False
        )
        assert np.count_nonzero(result.psdu_bits[: ref.size] != ref) == 0

    def test_cpe_trace_is_continuous(self):
        wave = wifi_n.modulate(bytes(range(40)))
        impaired = Channel(cfo_hz=7e3).apply(wave)
        result = wifi_n.demodulate(impaired, correct_cfo=False)
        steps = np.abs(np.diff(result.cpe_per_symbol))
        assert steps.max() < 1.0  # no pi-sized correction jumps

    def test_tag_flip_still_survives_tracking(self):
        payload = np.zeros(26 * 8, np.uint8)
        wave = wifi_n.modulate(payload)
        impaired = Channel(cfo_hz=5e3).apply(wave)
        start = impaired.annotations["payload_start"]
        for sym in (3, 4):
            lo = start + sym * wifi_n.SYMBOL_LEN
            impaired.iq[lo : lo + wifi_n.SYMBOL_LEN] *= -1.0
        clean = wifi_n.demodulate(
            Channel(cfo_hz=5e3).apply(wave), correct_cfo=False
        )
        tagged = wifi_n.demodulate(impaired, correct_cfo=False)
        diff = clean.data_bits != tagged.data_bits
        per_symbol = [diff[s * 26 : (s + 1) * 26].mean() for s in range(8)]
        assert (per_symbol[3] + per_symbol[4]) / 2 > 0.6
        assert per_symbol[0] < 0.2


class TestZigbeePhaseTracking:
    def test_long_packet_low_snr(self):
        """Decision-directed phase tracking keeps a multi-millisecond
        coherent OQPSK packet together at deeply negative SNR."""
        rng = np.random.default_rng(0)
        payload = bytes(range(30))
        ref = bitlib.bits_from_bytes(payload)
        wave = zigbee.modulate(payload)
        sigma = np.sqrt(wave.mean_power()) * 10 ** (8.0 / 20.0) / np.sqrt(2.0)
        wave.iq = wave.iq + sigma * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        got = zigbee.demodulate(wave).payload_bits
        assert np.count_nonzero(got[: ref.size] != ref) == 0

    def test_tolerates_10khz_cfo(self):
        payload = bytes(range(20))
        ref = bitlib.bits_from_bytes(payload)
        wave = Channel(cfo_hz=10e3).apply(zigbee.modulate(payload))
        got = zigbee.demodulate(wave).payload_bits
        assert np.count_nonzero(got[: ref.size] != ref) == 0

    def test_flip_detection_survives_tracking(self):
        # The phase tracker locks to the *decided* symbol, so a tag's
        # pi flip still changes the decision instead of being tracked
        # away.
        payload = b"\x33" * 8
        wave = zigbee.modulate(payload)
        sym_len = wave.annotations["samples_per_symbol"]
        start = wave.annotations["payload_start"]
        wave.iq[start + 4 * sym_len : start + 12 * sym_len] *= -1.0
        symbols = zigbee.demodulate(wave).symbols
        assert symbols[6] != 3
        assert symbols[2] == 3


class TestBlePredetectionFilter:
    def test_low_snr_gain(self):
        """The channel filter rescues the discriminator from wideband
        'click' noise (several dB at low SNR)."""
        rng = np.random.default_rng(1)
        payload = bytes(range(16))
        errors = 0
        for _ in range(5):
            wave = ble.modulate(payload)
            wave.iq = wave.iq + 0.9 * (
                rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
            )
            got = ble.demodulate(wave).payload_bits
            ref = bitlib.bits_from_bytes(payload)
            n = min(got.size, ref.size)
            errors += int(np.count_nonzero(got[:n] != ref[:n]))
        # ~1 dB SNR full-band: the filtered discriminator keeps BER
        # moderate; the unfiltered one sat near 0.25 here.
        assert errors / (5 * len(payload) * 8) < 0.15

    def test_tag_mirror_survives_filter(self):
        from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
        from repro.core.overlay_decoder import OverlayDecoder
        from repro.core.tag_modulation import TagModulator
        from repro.phy.protocols import Protocol

        rng = np.random.default_rng(2)
        codec = OverlayCodec(OverlayConfig.for_mode(Protocol.BLE, Mode.MODE_2))
        prod = rng.integers(0, 2, 5).astype(np.uint8)
        carrier = codec.build_carrier(prod)
        _, cap = codec.capacity(carrier.annotations["n_payload_symbols"])
        tag_bits = rng.integers(0, 2, cap).astype(np.uint8)
        mod = TagModulator(codec)
        rx = mod.received_at_shifted_channel(mod.modulate(carrier, tag_bits))
        rx.annotations = dict(carrier.annotations)
        out = OverlayDecoder(codec).decode(rx)
        assert np.array_equal(out.tag_bits[:cap], tag_bits)
