"""Tests for the Waveform container and pulse-shaping helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import pulse
from repro.phy.waveform import Waveform


class TestWaveform:
    def _make(self, n=100, rate=1e6):
        rng = np.random.default_rng(0)
        iq = rng.normal(size=n) + 1j * rng.normal(size=n)
        return Waveform(iq, rate, annotations={"payload_start": 10})

    def test_duration(self):
        assert self._make(100, 1e6).duration_s == pytest.approx(100e-6)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros((2, 2)), 1e6)
        with pytest.raises(ValueError):
            Waveform(np.zeros(4), -1.0)

    def test_scaled_db(self):
        w = self._make()
        louder = w.scaled_db(6.0)
        assert louder.mean_power() / w.mean_power() == pytest.approx(10 ** 0.6, rel=1e-6)

    def test_frequency_shift_moves_spectrum(self):
        n = 4096
        w = Waveform(np.ones(n, complex), 1e6)
        shifted = w.frequency_shifted(100e3)
        spec = np.abs(np.fft.fft(shifted.iq))
        peak_bin = np.argmax(spec)
        freq = np.fft.fftfreq(n, 1 / 1e6)[peak_bin]
        assert freq == pytest.approx(100e3, abs=500)
        assert shifted.center_offset_hz == pytest.approx(100e3)

    def test_frequency_shift_preserves_envelope(self):
        w = self._make()
        shifted = w.frequency_shifted(123e3)
        assert np.allclose(shifted.envelope(), w.envelope())

    def test_padding_shifts_payload_start(self):
        w = self._make()
        padded = w.padded(before=25, after=5)
        assert padded.n_samples == w.n_samples + 30
        assert padded.annotations["payload_start"] == 35
        assert np.all(padded.iq[:25] == 0)

    def test_resample_halves_samples(self):
        w = self._make(n=1000, rate=2e6)
        down = w.resampled(1e6)
        assert down.n_samples == 500
        assert down.annotations["payload_start"] == 5

    def test_concatenate_requires_same_rate(self):
        a = self._make(rate=1e6)
        b = self._make(rate=2e6)
        with pytest.raises(ValueError):
            Waveform.concatenate([a, b])

    def test_concatenate_lengths(self):
        a, b = self._make(50), self._make(70)
        assert Waveform.concatenate([a, b]).n_samples == 120

    def test_silence_has_zero_power(self):
        assert Waveform.silence(64, 1e6).mean_power() == 0.0


class TestPulse:
    def test_gaussian_taps_normalized(self):
        taps = pulse.gaussian_taps(0.5, 8)
        assert taps.sum() == pytest.approx(1.0)
        assert np.argmax(taps) == taps.size // 2

    def test_gaussian_narrower_for_smaller_bt(self):
        wide = pulse.gaussian_taps(0.3, 8)
        narrow = pulse.gaussian_taps(0.8, 8)
        # Smaller BT -> more time-domain spread -> lower peak.
        assert wide.max() < narrow.max()

    def test_half_sine_peak_center(self):
        p = pulse.half_sine_pulse(8)
        assert p.size == 8
        assert p.max() <= 1.0
        assert np.argmax(p) in (3, 4)

    def test_rrc_unit_energy(self):
        taps = pulse.rrc_taps(0.5, 4)
        assert np.sum(taps**2) == pytest.approx(1.0)

    def test_rrc_nyquist_zero_isi(self):
        # Full raised cosine (rrc * rrc) crosses zero at symbol spacing.
        sps = 8
        taps = pulse.rrc_taps(0.35, sps, span=8)
        rc = np.convolve(taps, taps)
        center = rc.size // 2
        for k in range(1, 5):
            assert abs(rc[center + k * sps]) < 1e-2 * rc[center]

    @given(st.integers(1, 8))
    @settings(max_examples=8)
    def test_upsample_hold_length(self, sps):
        out = pulse.upsample_hold(np.array([1.0, -1.0]), sps)
        assert out.size == 2 * sps

    def test_shape_chips_hold_equals_repeat(self):
        chips = np.array([1, -1, 1])
        out = pulse.shape_chips(chips, 3)
        assert np.array_equal(out.real, np.repeat([1, -1, 1], 3))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            pulse.gaussian_taps(0, 8)
        with pytest.raises(ValueError):
            pulse.rrc_taps(1.5, 4)
        with pytest.raises(ValueError):
            pulse.half_sine_pulse(0)
