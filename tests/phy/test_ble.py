"""Loopback tests for the BLE GFSK modem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import ble
from repro.phy import bits as bitlib
from repro.phy.protocols import Protocol


class TestStructure:
    def test_metadata(self):
        wave = ble.modulate(b"\x11\x22\x33")
        assert wave.annotations["protocol"] is Protocol.BLE
        assert wave.sample_rate == 8e6

    def test_preamble_duration_8us(self):
        wave = ble.modulate(b"\x00")
        # preamble (8 bits) spans exactly 8 us.
        assert 8 * wave.annotations["samples_per_symbol"] / wave.sample_rate == pytest.approx(8e-6)

    def test_constant_envelope(self):
        # GFSK is an FM scheme: |iq| is exactly constant, which is why
        # BLE needs the FM-to-AM front-end model for identification.
        wave = ble.modulate(b"\xc3" * 8)
        env = wave.envelope()
        assert env.max() - env.min() < 1e-9

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ble.BleConfig(samples_per_symbol=1)
        with pytest.raises(ValueError):
            ble.BleConfig(channel=41)


class TestLoopback:
    def test_clean_loopback_with_crc(self):
        payload = bytes(range(20))
        wave = ble.modulate(payload)
        result = ble.demodulate(wave)
        assert result.crc_ok
        assert result.access_address == ble.ADVERTISING_ACCESS_ADDRESS
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    @given(st.binary(min_size=1, max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_loopback_property(self, payload):
        result = ble.demodulate(ble.modulate(payload))
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_loopback_other_channel(self):
        wave = ble.modulate(b"\xaa\x55", ble.BleConfig(channel=38))
        result = ble.demodulate(wave)
        assert result.crc_ok

    def test_raw_bits_mode(self):
        raw = np.tile([1, 1, 0, 0], 10).astype(np.uint8)
        wave = ble.modulate(raw)
        result = ble.demodulate(wave)
        assert np.array_equal(result.payload_bits, raw)

    def test_loopback_with_noise(self):
        rng = np.random.default_rng(5)
        payload = b"\x0f" * 10
        wave = ble.modulate(payload)
        wave.iq = wave.iq + 0.05 * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        result = ble.demodulate(wave)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload


class TestTagFskFlip:
    def test_conjugation_flips_bits(self):
        """Mirroring the spectrum (the surviving sideband of the tag's
        FSK toggle, §2.4 'Bluetooth') swaps f0 and f1, flipping every
        bit at the discriminator."""
        raw = np.array([1, 0, 1, 1, 0, 0, 1, 0] * 4, np.uint8)
        wave = ble.modulate(raw)
        clean = ble.demodulate(wave).payload_bits

        flipped = wave.copy()
        flipped.iq = np.conj(flipped.iq)
        tagged = ble.demodulate(flipped).payload_bits
        assert np.array_equal(tagged, 1 - clean)

    def test_partial_conjugation_flips_only_that_span(self):
        raw = np.zeros(40, np.uint8)
        wave = ble.modulate(raw)
        sps = wave.annotations["samples_per_symbol"]
        start = wave.annotations["payload_start"]
        lo = start + 10 * sps
        hi = start + 20 * sps
        tagged_wave = wave.copy()
        tagged_wave.iq[lo:hi] = np.conj(tagged_wave.iq[lo:hi])
        tagged = ble.demodulate(tagged_wave).payload_bits
        # Interior of the conjugated span flips; outside stays.
        assert tagged[12:18].mean() > 0.8
        assert tagged[:8].mean() < 0.2
        assert tagged[22:].mean() < 0.2
