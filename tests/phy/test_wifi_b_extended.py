"""Tests for the 802.11b extensions: short preamble and CCK 11 Mbps."""

import numpy as np
import pytest

from repro.phy import bits as bitlib
from repro.phy import wifi_b


class TestShortPreamble:
    def test_duration_96us(self):
        # Short format: 56+16 bits at 1 Mbps + 24 DQPSK header symbols
        # = 96 us before the PSDU (vs 192 us long).
        wave = wifi_b.modulate(b"\x00" * 4, wifi_b.WifiBConfig(rate_mbps=2.0, short_preamble=True))
        head_us = wave.annotations["payload_start"] / wave.sample_rate * 1e6
        assert head_us == pytest.approx(96.0)

    def test_scrambler_seed_0x1b(self):
        cfg = wifi_b.WifiBConfig(rate_mbps=2.0, short_preamble=True)
        assert cfg.seed == 0x1B
        assert wifi_b.WifiBConfig().seed == 0x6C

    @pytest.mark.parametrize("rate", [2.0, 5.5, 11.0])
    def test_loopback(self, rate):
        payload = bytes(range(20))
        cfg = wifi_b.WifiBConfig(rate_mbps=rate, short_preamble=True)
        result = wifi_b.demodulate(
            wifi_b.modulate(payload, cfg), n_payload_bits=len(payload) * 8
        )
        assert result.header_ok
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_shorter_airtime_than_long(self):
        payload = b"\xaa" * 16
        long_wave = wifi_b.modulate(payload, wifi_b.WifiBConfig(rate_mbps=2.0))
        short_wave = wifi_b.modulate(
            payload, wifi_b.WifiBConfig(rate_mbps=2.0, short_preamble=True)
        )
        assert short_wave.n_samples < long_wave.n_samples


class TestCck11:
    def test_loopback(self):
        payload = bytes(range(32))
        cfg = wifi_b.WifiBConfig(rate_mbps=11.0)
        result = wifi_b.demodulate(
            wifi_b.modulate(payload, cfg), n_payload_bits=len(payload) * 8
        )
        assert result.header_ok
        assert result.rate_mbps == 11.0
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_8_bits_per_symbol(self):
        payload = b"\x00" * 16  # 128 bits
        wave = wifi_b.modulate(payload, wifi_b.WifiBConfig(rate_mbps=11.0))
        assert wave.annotations["n_payload_symbols"] == 16

    def test_loopback_with_noise(self):
        rng = np.random.default_rng(0)
        payload = bytes(range(16))
        wave = wifi_b.modulate(payload, wifi_b.WifiBConfig(rate_mbps=11.0))
        wave.iq = wave.iq + 0.04 * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        result = wifi_b.demodulate(wave, n_payload_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_rate_ladder_airtime(self):
        payload = b"\x55" * 64
        durations = {}
        for rate in (1.0, 2.0, 5.5, 11.0):
            wave = wifi_b.modulate(payload, wifi_b.WifiBConfig(rate_mbps=rate))
            start = wave.annotations["payload_start"]
            durations[rate] = wave.n_samples - start
        assert durations[1.0] > durations[2.0] > durations[5.5] > durations[11.0]


class TestBle2M:
    def test_loopback(self):
        from repro.phy import ble

        payload = bytes(range(12))
        wave = ble.modulate(payload, ble.BleConfig(phy="2M"))
        result = ble.demodulate(wave)
        assert result.crc_ok
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_2m_halves_airtime(self):
        from repro.phy import ble

        payload = b"\xaa" * 20
        one = ble.modulate(payload, ble.BleConfig(phy="1M"))
        two = ble.modulate(payload, ble.BleConfig(phy="2M"))
        assert two.duration_s < 0.6 * one.duration_s

    def test_rejects_unknown_phy(self):
        from repro.phy import ble

        with pytest.raises(ValueError):
            ble.BleConfig(phy="4M")
