"""Unit and property tests for repro.phy.bits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import bits as bitlib


class TestPacking:
    def test_bits_from_bytes_lsb_first(self):
        assert list(bitlib.bits_from_bytes(b"\x01")) == [1, 0, 0, 0, 0, 0, 0, 0]
        assert list(bitlib.bits_from_bytes(b"\x80")) == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_bits_from_bytes_msb_first(self):
        assert list(bitlib.bits_from_bytes(b"\x80", lsb_first=False)) == [1] + [0] * 7

    def test_bytes_from_bits_rejects_partial_byte(self):
        with pytest.raises(ValueError):
            bitlib.bytes_from_bits([1, 0, 1])

    def test_int_round_trip(self):
        bits = bitlib.bits_from_int(0xF3A0, 16)
        assert bitlib.int_from_bits(bits) == 0xF3A0

    def test_bits_from_int_rejects_overflow(self):
        with pytest.raises(ValueError):
            bitlib.bits_from_int(256, 8)

    @given(st.binary(min_size=0, max_size=64))
    def test_bytes_round_trip(self, data):
        assert bitlib.bytes_from_bits(bitlib.bits_from_bytes(data)) == data

    @given(st.integers(min_value=0, max_value=2**24 - 1))
    def test_int_round_trip_property(self, value):
        for lsb in (True, False):
            bits = bitlib.bits_from_int(value, 24, lsb_first=lsb)
            assert bitlib.int_from_bits(bits, lsb_first=lsb) == value


class TestLfsr:
    def test_maximal_length_period(self):
        # x^7 + x^4 + 1 is maximal: period 127.
        lfsr = bitlib.Lfsr(taps=(7, 4), state=0x5D, width=7)
        seq = lfsr.sequence(254)
        assert np.array_equal(seq[:127], seq[127:])
        assert 0 < seq[:127].sum() < 127

    def test_rejects_zero_state(self):
        with pytest.raises(ValueError):
            bitlib.Lfsr(taps=(7, 4), state=0, width=7)


class TestCrc:
    def test_crc32_known_vector(self):
        # CRC-32 of ASCII "123456789" is 0xCBF43926.
        bits = bitlib.bits_from_bytes(b"123456789")
        crc = bitlib.int_from_bits(bitlib.crc32_80211(bits))
        assert crc == 0xCBF43926

    def test_crc32_detects_single_bit_error(self):
        bits = bitlib.bits_from_bytes(b"hello world")
        crc = bitlib.crc32_80211(bits)
        bits[13] ^= 1
        assert not np.array_equal(bitlib.crc32_80211(bits), crc)

    def test_crc24_ble_length(self):
        crc = bitlib.crc24_ble(bitlib.bits_from_bytes(b"\x00\x01\x02"))
        assert crc.size == 24

    def test_crc24_ble_sensitivity(self):
        a = bitlib.crc24_ble(bitlib.bits_from_bytes(b"\x10\x20"))
        b = bitlib.crc24_ble(bitlib.bits_from_bytes(b"\x10\x21"))
        assert not np.array_equal(a, b)

    def test_crc16_ccitt_reflected_vector(self):
        # CRC-16/KERMIT (reflected CCITT, init 0) of "123456789" = 0x2189.
        bits = bitlib.bits_from_bytes(b"123456789")
        crc = bitlib.int_from_bits(bitlib.crc16_ccitt(bits))
        assert crc == 0x2189

    def test_plcp_crc_deterministic(self):
        header = bitlib.bits_from_int(0x0A, 8)
        header = np.concatenate([header, np.zeros(24, np.uint8)])
        c1 = bitlib.crc16_80211b_plcp(header)
        c2 = bitlib.crc16_80211b_plcp(header)
        assert np.array_equal(c1, c2)
        assert c1.size == 16


class TestScramblers:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_80211b_scrambler_round_trip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        out = bitlib.descramble_80211b(bitlib.scramble_80211b(arr))
        assert np.array_equal(out, arr)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_80211b_scramble_of_descramble_is_identity(self, bits):
        # Needed by the overlay decoder: re-scrambling received PSDU
        # bits recovers the on-air stream exactly.
        arr = np.array(bits, dtype=np.uint8)
        out = bitlib.scramble_80211b(bitlib.descramble_80211b(arr))
        assert np.array_equal(out, arr)

    def test_80211b_descrambler_is_linear_fir(self):
        # descramble(x) == x ^ x>>4 ^ x>>7 given an all-zero seed
        # history; verify on a delta impulse with zero seed.
        x = np.zeros(20, np.uint8)
        x[8] = 1
        out = bitlib.descramble_80211b(x, seed=0x01)
        # seed bits only affect the first 7 outputs.
        expect_tail = np.zeros(12, np.uint8)
        expect_tail[0] = 1  # position 8: x[8]
        expect_tail[4] = 1  # position 12: x[8] via >>4
        expect_tail[7] = 1  # position 15: x[8] via >>7
        assert np.array_equal(out[8:], expect_tail)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_frame_scrambler_is_involution(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        once = bitlib.scramble_80211_frame(arr, seed=0x5D)
        twice = bitlib.scramble_80211_frame(once, seed=0x5D)
        assert np.array_equal(twice, arr)

    def test_frame_scrambler_period_127(self):
        zeros = np.zeros(254, np.uint8)
        seq = bitlib.scramble_80211_frame(zeros, seed=0x5D)
        assert np.array_equal(seq[:127], seq[127:])


class TestBleWhitening:
    @given(
        st.integers(min_value=0, max_value=39),
        st.lists(st.integers(0, 1), min_size=1, max_size=200),
    )
    @settings(max_examples=50)
    def test_whitening_is_involution(self, channel, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert np.array_equal(bitlib.whiten_ble(bitlib.whiten_ble(arr, channel), channel), arr)

    def test_channels_differ(self):
        s37 = bitlib.ble_whitening_sequence(37, 64)
        s38 = bitlib.ble_whitening_sequence(38, 64)
        assert not np.array_equal(s37, s38)

    def test_rejects_bad_channel(self):
        with pytest.raises(ValueError):
            bitlib.ble_whitening_sequence(40, 8)
