"""Loopback tests for the 802.11n OFDM modem."""

import numpy as np
import pytest

from repro.phy import bits as bitlib
from repro.phy import wifi_n
from repro.phy.protocols import Protocol


class TestStructure:
    def test_preamble_layout(self):
        wave = wifi_n.modulate(b"\x00" * 13)
        # L-STF(160) + L-LTF(160) + L-SIG(80) + HT-SIG(160) +
        # HT-STF(80) + HT-LTF(80) = 720 samples = 36 us.
        assert wave.annotations["payload_start"] == 720
        assert wave.sample_rate == 20e6

    def test_lstf_is_periodic(self):
        wave = wifi_n.modulate(b"\x00" * 13)
        stf = wave.iq[:160]
        assert np.allclose(stf[:16], stf[16:32], atol=1e-9)
        assert np.allclose(stf[:16], stf[128:144], atol=1e-9)

    def test_symbol_count_matches_mcs(self):
        payload = b"\xab" * 26  # 208 bits + 16 service + 6 tail = 230
        w0 = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=0))  # 26 b/sym
        w1 = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=1))  # 52 b/sym
        assert w0.annotations["n_payload_symbols"] == 9   # ceil(230/26)
        assert w1.annotations["n_payload_symbols"] == 5   # ceil(230/52)

    def test_rejects_unknown_mcs(self):
        with pytest.raises(ValueError):
            wifi_n.WifiNConfig(mcs=8)

    def test_ofdm_envelope_fluctuates(self):
        # OFDM has high PAPR, unlike the constant-envelope protocols --
        # the property the tag's identification exploits (Fig 5a).
        wave = wifi_n.modulate(bytes(range(40)))
        env = wave.envelope()[wave.annotations["payload_start"]:]
        assert env.std() / env.mean() > 0.3


class TestLoopback:
    @pytest.mark.parametrize("mcs", [0, 1, 3])
    def test_clean_loopback(self, mcs):
        payload = bytes(range(39))
        wave = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=mcs))
        result = wifi_n.demodulate(wave, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.payload_bits if hasattr(result, "payload_bits") else result.psdu_bits) == payload

    def test_loopback_with_noise(self):
        rng = np.random.default_rng(11)
        payload = bytes(range(26))
        wave = wifi_n.modulate(payload)
        wave.iq = wave.iq + 0.03 * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        result = wifi_n.demodulate(wave, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.psdu_bits) == payload

    def test_loopback_with_channel_gain_and_phase(self):
        payload = b"\x5a" * 20
        wave = wifi_n.modulate(payload)
        wave.iq = wave.iq * (0.5 * np.exp(1j * 1.234))
        result = wifi_n.demodulate(wave, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.psdu_bits) == payload

    def test_symbol_bits_partition_data_stream(self):
        payload = bytes(range(20))
        wave = wifi_n.modulate(payload)
        result = wifi_n.demodulate(wave)
        joined = np.concatenate(result.symbol_bits)
        assert np.array_equal(joined, result.data_bits)
        assert all(b.size == 26 for b in result.symbol_bits)

    def test_custom_data_bits_path(self):
        # Craft the full data-bit stream (as the overlay layer does).
        stream = np.zeros(16 + 26 * 3, np.uint8)
        stream[16:42] = 1  # second OFDM symbol all ones
        wave = wifi_n.modulate(b"", data_bits=stream)
        result = wifi_n.demodulate(wave)
        assert np.array_equal(result.data_bits[: stream.size], stream)


class TestTagFlipSurvival:
    """Why the paper sets gamma=2 for 802.11n (Table 6).

    A pi flip inverts all 52 coded bits of an OFDM symbol.  For a
    single-symbol burst the ML Viterbi path is a sparse error pattern
    (cheaper than the complement path), so the tag bit would be
    unreliable; for a two-symbol (gamma=2) burst the complement path
    wins and the middle data bits invert cleanly -- which is what the
    paper's middle-half majority voting decodes.
    """

    def _flip_symbols(self, wave, symbols):
        start = wave.annotations["payload_start"]
        flipped = wave.copy()
        for sym in symbols:
            lo = start + sym * wifi_n.SYMBOL_LEN
            flipped.iq[lo : lo + wifi_n.SYMBOL_LEN] *= -1.0
        return flipped

    def _per_symbol_diff(self, clean, tagged):
        diff = clean.data_bits != tagged.data_bits
        return [
            diff[s * 26 : (s + 1) * 26].mean()
            for s in range(len(clean.symbol_bits))
        ]

    def test_gamma2_flip_complements_middle_bits(self):
        payload = np.zeros(26 * 8, np.uint8)
        wave = wifi_n.modulate(payload)
        flipped = self._flip_symbols(wave, [3, 4])

        clean = wifi_n.demodulate(wave)
        tagged = wifi_n.demodulate(flipped)
        per_symbol = self._per_symbol_diff(clean, tagged)
        # The flipped pair's bits complement strongly (middle half
        # completely), and distant symbols are untouched.
        assert (per_symbol[3] + per_symbol[4]) / 2 > 0.6
        assert per_symbol[0] < 0.2
        assert per_symbol[-1] < 0.2

    def test_single_symbol_flip_is_unreliable(self):
        # Documents the gamma=1 failure mode that motivates gamma=2.
        payload = np.zeros(26 * 8, np.uint8)
        wave = wifi_n.modulate(payload)
        flipped = self._flip_symbols(wave, [3])
        clean = wifi_n.demodulate(wave)
        tagged = wifi_n.demodulate(flipped)
        per_symbol = self._per_symbol_diff(clean, tagged)
        assert per_symbol[3] < 0.5

    def test_pilot_tracking_does_not_erase_flip(self):
        payload = np.zeros(26 * 8, np.uint8)
        wave = wifi_n.modulate(payload)
        flipped = self._flip_symbols(wave, [3, 4])
        tagged = wifi_n.demodulate(flipped)
        # CPE estimates stay small: the pi jump is not "corrected".
        assert np.all(np.abs(tagged.cpe_per_symbol) < 0.3)
