"""Tests for the protocol constants registry."""

import pytest

from repro.phy.protocols import (
    CARRIER_FREQ_HZ,
    DEFAULT_PACKET_RATES,
    PROTOCOL_INFO,
    Protocol,
)


class TestProtocolInfo:
    def test_all_protocols_registered(self):
        assert set(PROTOCOL_INFO) == set(Protocol)
        assert set(DEFAULT_PACKET_RATES) == set(Protocol)

    def test_ble_preamble_is_shortest(self):
        # §2.2.2: the 8 us BLE preamble bounds the base template window.
        preambles = {p: i.preamble_us for p, i in PROTOCOL_INFO.items()}
        assert min(preambles, key=preambles.get) is Protocol.BLE
        assert preambles[Protocol.BLE] == 8.0

    def test_extended_windows_at_least_40us_or_full_preamble(self):
        for info in PROTOCOL_INFO.values():
            assert info.extended_window_us >= min(info.preamble_us, 40.0)

    def test_chip_rates(self):
        assert PROTOCOL_INFO[Protocol.WIFI_B].chip_rate_hz == 11e6
        assert PROTOCOL_INFO[Protocol.ZIGBEE].chip_rate_hz == 2e6

    def test_paper_packet_rates(self):
        assert DEFAULT_PACKET_RATES[Protocol.WIFI_N] == 2000.0
        assert DEFAULT_PACKET_RATES[Protocol.BLE] == 70.0
        assert DEFAULT_PACKET_RATES[Protocol.ZIGBEE] == 20.0

    def test_ism_band(self):
        assert CARRIER_FREQ_HZ == pytest.approx(2.4e9)
