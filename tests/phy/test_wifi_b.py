"""Loopback tests for the 802.11b DSSS/CCK modem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import bits as bitlib
from repro.phy import wifi_b
from repro.phy.protocols import Protocol


def _loopback(payload: bytes, rate: float, shaped: bool = True) -> wifi_b.WifiBDecodeResult:
    cfg = wifi_b.WifiBConfig(rate_mbps=rate, shaped=shaped)
    wave = wifi_b.modulate(payload, cfg)
    return wifi_b.demodulate(wave, n_payload_bits=len(payload) * 8)


class TestModulate:
    def test_waveform_metadata(self):
        wave = wifi_b.modulate(b"\xaa" * 8)
        assert wave.annotations["protocol"] is Protocol.WIFI_B
        assert wave.sample_rate == 22e6
        # Long preamble + header = 192 symbols of 11 chips.
        assert wave.annotations["payload_start"] == 192 * 11 * 2

    def test_preamble_duration_144us_plus_header(self):
        wave = wifi_b.modulate(b"")
        # 192 us of preamble+header at 22 Msps.
        assert wave.annotations["payload_start"] / wave.sample_rate == pytest.approx(192e-6)

    def test_rate_affects_length(self):
        w1 = wifi_b.modulate(b"\x55" * 32, wifi_b.WifiBConfig(rate_mbps=1.0))
        w2 = wifi_b.modulate(b"\x55" * 32, wifi_b.WifiBConfig(rate_mbps=2.0))
        assert w2.n_samples < w1.n_samples

    def test_rejects_unsupported_rate(self):
        with pytest.raises(ValueError):
            wifi_b.WifiBConfig(rate_mbps=5.0)
        with pytest.raises(ValueError):
            # The short preamble excludes the 1 Mbps PSDU rate.
            wifi_b.WifiBConfig(rate_mbps=1.0, short_preamble=True)

    def test_near_constant_envelope_unshaped(self):
        wave = wifi_b.modulate(b"\x37" * 4, wifi_b.WifiBConfig(shaped=False))
        env = wave.envelope()
        assert env.min() == pytest.approx(env.max())


class TestLoopback:
    @pytest.mark.parametrize("rate", [1.0, 2.0, 5.5])
    def test_clean_loopback(self, rate):
        payload = bytes(range(24))
        result = _loopback(payload, rate)
        assert result.header_ok
        assert result.rate_mbps == rate
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    @pytest.mark.parametrize("rate", [1.0, 2.0, 5.5])
    def test_shaped_loopback(self, rate):
        payload = b"\x00\xff\xa5\x5a" * 4
        result = _loopback(payload, rate, shaped=True)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    @given(st.binary(min_size=1, max_size=24))
    @settings(max_examples=15, deadline=None)
    def test_loopback_property(self, payload):
        result = _loopback(payload, 1.0)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_scrambled_domain_round_trip(self):
        onair = np.tile([1, 1, 1, 1, 0, 0, 0, 0], 8).astype(np.uint8)
        wave = wifi_b.modulate(onair, wifi_b.WifiBConfig(), scrambled_domain=True)
        result = wifi_b.demodulate(wave)
        # The on-air PSDU symbols are recovered exactly.
        assert np.array_equal(result.onair_bits[: onair.size], onair)
        # And re-scrambling the descrambled payload returns the on-air bits.
        rescrambled = bitlib.scramble_80211b(result.payload_bits)
        # scramble/descramble state chains through the header, so
        # compare through the documented decoder path instead:
        assert np.array_equal(
            wifi_b.demap_psdu_symbols(result)[: onair.size], onair
        )
        assert rescrambled.size == result.payload_bits.size


class TestNoiseRobustness:
    def test_loopback_with_mild_noise(self):
        rng = np.random.default_rng(7)
        payload = bytes(range(16))
        wave = wifi_b.modulate(payload)
        noisy = wave.copy()
        noisy.iq = noisy.iq + (
            rng.normal(scale=0.05, size=noisy.n_samples)
            + 1j * rng.normal(scale=0.05, size=noisy.n_samples)
        )
        result = wifi_b.demodulate(noisy, n_payload_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.payload_bits) == payload
