"""Vectorized kernels vs the frozen seed implementations.

``tests/reference_impls.py`` holds verbatim copies of the pure-Python
hot loops the NumPy kernels replaced.  These tests pin the contract:
integer/bit kernels (convolutional code, Viterbi, scramblers, DQPSK
mappings) must be *byte-identical* to the references over randomized
inputs; the batched correlator reorders float accumulation (one GEMM
instead of per-template GEMVs plus prefix-sum normalization), so its
scores are checked to 1e-12 and its decisions exactly.
"""

import numpy as np
import pytest

from repro.core.adc import Adc
from repro.core.matching import score_capture
from repro.core.rectifier import ClampRectifier
from repro.core.templates import TemplateBank, reference_waveform
from repro.phy import bits as bitlib
from repro.phy import convcode, viterbi, wifi_b
from repro.phy.protocols import Protocol
from tests import reference_impls as ref


class TestConvcode:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 48, 500])
    def test_encode_matches_reference(self, n):
        rng = np.random.default_rng(n)
        bits = rng.integers(0, 2, n).astype(np.uint8)
        assert np.array_equal(convcode.encode(bits), ref.convcode_encode(bits))

    def test_encode_randomized_lengths(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            n = int(rng.integers(1, 300))
            bits = rng.integers(0, 2, n).astype(np.uint8)
            assert np.array_equal(convcode.encode(bits), ref.convcode_encode(bits))


class TestViterbi:
    def test_hard_decode_byte_identical(self):
        rng = np.random.default_rng(21)
        for trial in range(40):
            n = int(rng.integers(8, 260))
            info = rng.integers(0, 2, n).astype(np.uint8)
            coded = ref.convcode_encode(info)
            # Random bit errors plus erasure bursts (depunctured frames).
            noisy = coded.copy()
            flips = rng.random(noisy.size) < 0.04
            noisy[flips] ^= 1
            erased = rng.random(noisy.size) < 0.08
            noisy[erased] = convcode.ERASURE
            got = viterbi.decode(noisy, n_info=n)
            want = ref.viterbi_decode(noisy, n_info=n)
            assert np.array_equal(got, want), f"trial {trial}"

    def test_hard_decode_tie_breaking(self):
        # All-erasure input: every branch metric ties, so the result is
        # decided purely by the tie rule the blocked kernel must copy.
        for n in (4, 9, 64, 130):
            noisy = np.full(2 * n, convcode.ERASURE, dtype=np.uint8)
            assert np.array_equal(
                viterbi.decode(noisy, n_info=n), ref.viterbi_decode(noisy, n_info=n)
            )

    def test_soft_decode_decisions_identical(self):
        rng = np.random.default_rng(31)
        for trial in range(30):
            n = int(rng.integers(8, 200))
            info = rng.integers(0, 2, n).astype(np.uint8)
            coded = ref.convcode_encode(info).astype(float)
            llrs = (2.0 * coded - 1.0) + rng.normal(0.0, 0.9, coded.size)
            got = viterbi.decode_soft(llrs, n_info=n)
            want = ref.viterbi_decode_soft(llrs, n_info=n)
            assert np.array_equal(got, want), f"trial {trial}"

    def test_roundtrip_clean(self):
        rng = np.random.default_rng(5)
        info = rng.integers(0, 2, 600).astype(np.uint8)
        assert np.array_equal(viterbi.decode(convcode.encode(info), n_info=600), info)


class TestWifiBMappings:
    def test_dqpsk_phases_lut_identical(self):
        rng = np.random.default_rng(41)
        for _ in range(20):
            n = int(rng.integers(1, 120)) * 2
            bits = rng.integers(0, 2, n).astype(np.uint8)
            phase0 = float(rng.uniform(-np.pi, np.pi))
            got = wifi_b._dqpsk_phases(bits, phase0)
            want = ref.dqpsk_phases(bits, phase0)
            assert np.array_equal(got, want)

    def test_diff_dibits_identical(self):
        rng = np.random.default_rng(43)
        for _ in range(20):
            n = int(rng.integers(1, 150))
            syms = rng.normal(size=n) + 1j * rng.normal(size=n)
            prev = complex(rng.normal(), rng.normal())
            got = wifi_b._diff_dibits(syms, prev)
            want = ref.diff_dibits(syms, prev)
            assert np.array_equal(got, want)


class TestScramblers:
    def test_scramble_80211b_identical(self):
        rng = np.random.default_rng(51)
        for _ in range(20):
            n = int(rng.integers(0, 400))
            bits = rng.integers(0, 2, n).astype(np.uint8)
            seed = int(rng.integers(0, 128))
            assert np.array_equal(
                bitlib.scramble_80211b(bits, seed=seed),
                ref.scramble_80211b(bits, seed=seed),
            )

    def test_descramble_80211b_identical(self):
        rng = np.random.default_rng(53)
        for _ in range(20):
            n = int(rng.integers(0, 400))
            bits = rng.integers(0, 2, n).astype(np.uint8)
            seed = int(rng.integers(0, 128))
            assert np.array_equal(
                bitlib.descramble_80211b(bits, seed=seed),
                ref.descramble_80211b(bits, seed=seed),
            )

    def test_scramble_roundtrip(self):
        rng = np.random.default_rng(55)
        bits = rng.integers(0, 2, 333).astype(np.uint8)
        assert np.array_equal(
            bitlib.descramble_80211b(bitlib.scramble_80211b(bits)), bits
        )


class TestMatching:
    @pytest.fixture(scope="class")
    def bank(self):
        return TemplateBank.build(Adc(sample_rate=10e6, n_bits=4))

    @pytest.fixture(scope="class")
    def captures(self, bank):
        rect = ClampRectifier(noise_v_rms=2e-3)
        adc = bank.adc
        out = []
        for i, protocol in enumerate(Protocol):
            wave = reference_waveform(protocol, n_payload_bytes=12 + i)
            analog = rect.rectify(wave, -15.0)
            cap = adc.capture(
                analog, duration_s=(bank.l_p + bank.l_m + 60) / adc.sample_rate
            )
            out.append(cap.codes)
        return out

    @pytest.mark.parametrize("quantized", [True, False])
    def test_scores_match_reference(self, bank, captures, quantized):
        offsets = tuple(range(0, 48, 3))
        for codes in captures:
            a = ref.score_capture(codes, bank, quantized=quantized, offsets=offsets)
            b = score_capture(codes, bank, quantized=quantized, offsets=offsets)
            assert set(a) == set(b)
            for p in a:
                # GEMM accumulation order differs from the per-template
                # GEMVs, so exact bit-equality is not guaranteed.
                assert b[p] == pytest.approx(a[p], abs=1e-12)

    def test_argmax_decision_identical(self, bank, captures):
        for codes in captures:
            for quantized in (True, False):
                a = ref.score_capture(codes, bank, quantized=quantized)
                b = score_capture(codes, bank, quantized=quantized)
                assert max(a, key=a.get) is max(b, key=b.get)

    def test_no_valid_offsets(self, bank):
        scores = score_capture(
            np.zeros(4), bank, quantized=True, offsets=(0, 999999)
        )
        assert scores == {p: -1.0 for p in bank.templates}
