"""Tests for soft-decision (LLR) OFDM decoding."""

import numpy as np
import pytest

from repro.channel.fading import MultipathChannel
from repro.phy import bits as bitlib
from repro.phy import convcode, viterbi, wifi_n


class TestSoftViterbi:
    def test_clean_round_trip(self):
        rng = np.random.default_rng(0)
        info = rng.integers(0, 2, 200).astype(np.uint8)
        coded = convcode.encode(info)
        llrs = 4.0 * (coded.astype(float) * 2.0 - 1.0)
        decoded = viterbi.decode_soft(llrs, n_info=info.size)
        assert np.array_equal(decoded, info)

    def test_weak_bits_get_overruled(self):
        # A corrupted bit with low confidence is fixed by the code;
        # hard decisions on the same stream would carry the error in.
        info = np.zeros(60, np.uint8)
        coded = convcode.encode(info).astype(float) * 2.0 - 1.0
        llrs = 4.0 * coded
        llrs[40] = +0.2  # wrong sign, weak
        decoded = viterbi.decode_soft(llrs, n_info=info.size)
        assert np.array_equal(decoded, info)

    def test_soft_depuncture_round_trip(self):
        rng = np.random.default_rng(1)
        info = rng.integers(0, 2, 200).astype(np.uint8)
        punct = convcode.puncture(convcode.encode(info), "3/4")
        llrs = 4.0 * (punct.astype(float) * 2.0 - 1.0)
        padded = convcode.depuncture_soft(llrs, "3/4")
        decoded = viterbi.decode_soft(padded, n_info=info.size)
        assert np.array_equal(decoded, info)

    def test_zero_llrs_decode_to_something(self):
        out = viterbi.decode_soft(np.zeros(40), n_info=20)
        assert out.size == 20


class TestSoftOfdm:
    def _errors(self, mcs, noise, soft, seed, n_trials=5):
        rng = np.random.default_rng(seed)
        payload = bytes(range(40))
        ref = bitlib.bits_from_bytes(payload)
        errors = 0
        for _ in range(n_trials):
            wave = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=mcs))
            wave.iq = wave.iq + noise * (
                rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
            )
            result = wifi_n.demodulate(wave, n_psdu_bits=ref.size, soft=soft)
            errors += int(np.count_nonzero(result.psdu_bits[: ref.size] != ref))
        return errors

    @pytest.mark.parametrize("mcs,noise", [(3, 0.20), (7, 0.055)])
    def test_soft_beats_hard(self, mcs, noise):
        hard = self._errors(mcs, noise, soft=False, seed=1)
        soft = self._errors(mcs, noise, soft=True, seed=1)
        assert soft < hard

    def test_soft_clean_loopback_all_mcs(self):
        payload = bytes(range(30))
        for mcs in range(8):
            wave = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=mcs))
            result = wifi_n.demodulate(
                wave, n_psdu_bits=len(payload) * 8, soft=True
            )
            assert bitlib.bytes_from_bits(result.psdu_bits) == payload, mcs

    def test_csi_weighting_helps_under_multipath(self):
        # Frequency-selective fading leaves some subcarriers weak;
        # CSI-weighted soft decoding discounts them.
        rng = np.random.default_rng(2)
        payload = bytes(range(40))
        ref = bitlib.bits_from_bytes(payload)
        chan = MultipathChannel(rms_delay_spread_s=120e-9, n_taps=10, seed=3)
        hard_err = soft_err = 0
        for _ in range(4):
            wave = wifi_n.modulate(payload, wifi_n.WifiNConfig(mcs=3))
            faded = chan.apply(wave)
            faded.iq = faded.iq + 0.1 * (
                rng.normal(size=faded.n_samples)
                + 1j * rng.normal(size=faded.n_samples)
            )
            hard = wifi_n.demodulate(faded, n_psdu_bits=ref.size)
            soft = wifi_n.demodulate(faded, n_psdu_bits=ref.size, soft=True)
            hard_err += int(np.count_nonzero(hard.psdu_bits[: ref.size] != ref))
            soft_err += int(np.count_nonzero(soft.psdu_bits[: ref.size] != ref))
        assert soft_err <= hard_err
