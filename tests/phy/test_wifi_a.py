"""Tests for the legacy 802.11a/g OFDM modem."""

import numpy as np
import pytest

from repro.phy import bits as bitlib
from repro.phy import wifi_a


class TestLegacyOfdm:
    @pytest.mark.parametrize("rate", sorted(wifi_a.RATE_TABLE))
    def test_loopback(self, rate):
        payload = bytes(range(48))
        wave = wifi_a.modulate(payload, wifi_a.WifiAConfig(rate_mbps=rate))
        psdu = wifi_a.demodulate(wave, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(psdu) == payload

    def test_preamble_is_20us(self):
        wave = wifi_a.modulate(b"\x00" * 8)
        # L-STF + L-LTF + L-SIG = 160 + 160 + 80 samples at 20 Msps.
        assert wave.annotations["payload_start"] == 400

    def test_rejects_unknown_rate(self):
        with pytest.raises(ValueError):
            wifi_a.WifiAConfig(rate_mbps=11.0)

    def test_rate_ladder_symbol_counts(self):
        payload = b"\xa5" * 100
        syms = [
            wifi_a.modulate(payload, wifi_a.WifiAConfig(rate_mbps=r)).annotations[
                "n_payload_symbols"
            ]
            for r in sorted(wifi_a.RATE_TABLE)
        ]
        assert all(a >= b for a, b in zip(syms, syms[1:]))

    def test_loopback_with_noise(self):
        rng = np.random.default_rng(0)
        payload = bytes(range(24))
        wave = wifi_a.modulate(payload, wifi_a.WifiAConfig(rate_mbps=12.0))
        wave.iq = wave.iq + 0.04 * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        psdu = wifi_a.demodulate(wave, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(psdu) == payload

    def test_n_dbps_matches_standard(self):
        # 802.11-2016 Table 17-4: N_DBPS for 6..54 Mbps.
        expected = {6.0: 24, 9.0: 36, 12.0: 48, 18.0: 72,
                    24.0: 96, 36.0: 144, 48.0: 192, 54.0: 216}
        for rate, dbps in expected.items():
            assert wifi_a.WifiAConfig(rate_mbps=rate).n_dbps == dbps

    def test_identifiable_as_ofdm_family(self):
        # The tag's templates treat all OFDM WiFi alike (footnote 5):
        # a legacy frame shares the L-STF/L-LTF head, so the 802.11n
        # identification template matches it.
        from repro.core.identification import (
            IdentificationConfig,
            ProtocolIdentifier,
        )
        from repro.phy.protocols import Protocol

        ident = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=20e6, window_us=6.0)
        )
        wave = wifi_a.modulate(bytes(range(40)), wifi_a.WifiAConfig(rate_mbps=6.0))
        result = ident.identify(
            wave, incident_power_dbm=-21.2, rng=np.random.default_rng(1)
        )
        assert result.decision is Protocol.WIFI_N
