"""Unit tests for the artifact encoder and ExperimentResult I/O."""

import dataclasses

import numpy as np
import pytest

from repro.channel.occlusion import Material
from repro.core.carrier_select import CarrierEstimate
from repro.core.identification import AccuracyReport
from repro.core.overlay import Mode
from repro.experiments.artifacts import (
    ARTIFACT_TAG,
    ArtifactError,
    ExperimentResult,
    decode,
    encode,
)
from repro.phy.protocols import Protocol


def round_trip(value):
    return decode(encode(value))


class TestEncode:
    def test_scalars(self):
        for v in (None, True, 3, -1.5, "x"):
            assert round_trip(v) == v

    def test_numpy_scalars_become_python(self):
        assert round_trip(np.float64(2.5)) == 2.5
        assert round_trip(np.int64(7)) == 7
        assert round_trip(np.bool_(True)) is True

    def test_non_finite_floats(self):
        assert np.isnan(round_trip(float("nan")))
        assert round_trip(float("inf")) == float("inf")
        assert round_trip(float("-inf")) == float("-inf")

    def test_complex(self):
        assert round_trip(1 + 2j) == 1 + 2j
        assert round_trip(np.complex128(3 - 4j)) == 3 - 4j

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(6, dtype=np.float64).reshape(2, 3),
            np.array([1, 2, 3], dtype=np.int32),
            np.array([True, False]),
            np.array([1 + 1j, 2 - 2j], dtype=np.complex128),
            np.array([], dtype=np.float32),
        ],
    )
    def test_ndarray_dtype_and_shape(self, arr):
        out = round_trip(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_ndarray_non_finite(self):
        arr = np.array([1.0, np.nan, np.inf, -np.inf])
        out = round_trip(arr)
        assert np.array_equal(np.isnan(out), np.isnan(arr))
        assert out[2] == np.inf and out[3] == -np.inf

    def test_object_array_rejected(self):
        with pytest.raises(ArtifactError, match="object-dtype"):
            encode(np.array([object()]))

    def test_tuple_and_nested(self):
        v = {"a": (1, (2.5, "x")), "b": [1, 2]}
        assert round_trip(v) == v

    def test_non_string_keys(self):
        v = {(Protocol.BLE, 4.0): {"m": 1.0}, 2.5: "x"}
        assert round_trip(v) == v

    def test_enum_values_and_keys(self):
        v = {Protocol.WIFI_B: Mode.MODE_2, "m": Material.DRYWALL}
        out = round_trip(v)
        assert out[Protocol.WIFI_B] is Mode.MODE_2
        assert out["m"] is Material.DRYWALL

    def test_registered_dataclasses(self):
        report = AccuracyReport(
            per_protocol={Protocol.BLE: 0.9},
            confusion={(Protocol.BLE, Protocol.ZIGBEE): 2},
        )
        est = CarrierEstimate(
            protocol=Protocol.WIFI_N, observed_rate_pkts=10.0, tag_goodput_kbps=5.0
        )
        out = round_trip({"r": report, "e": est})
        assert out["r"] == report
        assert out["e"] == est

    def test_unregistered_types_rejected(self):
        class Color:  # not an enum/dataclass we know
            pass

        with pytest.raises(ArtifactError, match="cannot serialize"):
            encode(Color())

        @dataclasses.dataclass
        class Local:
            x: int = 1

        with pytest.raises(ArtifactError, match="unregistered dataclass"):
            encode(Local())

    def test_reserved_key_dict_uses_mapping(self):
        v = {"__kind__": "sneaky", "x": 1}
        assert round_trip(v) == v

    def test_unknown_tag_rejected(self):
        with pytest.raises(ArtifactError, match="unknown artifact tag"):
            decode({"__kind__": "zorp"})


class TestExperimentResult:
    def test_getitem_error_names_experiment_and_keys(self):
        r = ExperimentResult(name="fig99", data={"a": 1, "b": 2})
        assert r["a"] == 1
        with pytest.raises(KeyError) as exc:
            r["missing"]
        msg = str(exc.value)
        assert "fig99" in msg and "missing" in msg and "'a', 'b'" in msg

    def test_keys(self):
        assert ExperimentResult(name="x", data={"a": 1}).keys() == ("a",)

    def test_json_round_trip_preserves_provenance(self):
        r = ExperimentResult(
            name="x",
            data={"arr": np.arange(3.0)},
            notes=["n1"],
            preset="quick",
            params={"seed": 7},
        )
        r2 = ExperimentResult.from_json(r.to_json())
        assert r2.name == "x" and r2.preset == "quick"
        assert r2.params == {"seed": 7}
        assert r2.notes == ["n1"]
        assert np.array_equal(r2.data["arr"], np.arange(3.0))

    def test_from_json_rejects_non_artifact(self):
        with pytest.raises(ArtifactError, match="not a"):
            ExperimentResult.from_json('{"name": "x"}')
        with pytest.raises(ArtifactError, match="not valid JSON"):
            ExperimentResult.from_json("{")

    def test_from_json_rejects_future_schema(self):
        r = ExperimentResult(name="x")
        text = r.to_json().replace('"schema_version": 1', '"schema_version": 99')
        with pytest.raises(ArtifactError, match="schema_version"):
            ExperimentResult.from_json(text)

    def test_artifact_doc_shape(self):
        import json

        doc = json.loads(ExperimentResult(name="x").to_json())
        assert doc["artifact"] == ARTIFACT_TAG
        assert set(doc) == {
            "artifact", "schema_version", "name", "preset", "params",
            "notes", "data",
        }

    def test_save_and_load(self, tmp_path):
        r = ExperimentResult(name="exp", data={"v": 1.5})
        path = r.save_in(tmp_path / "run")
        assert path == tmp_path / "run" / "exp.json"
        assert ExperimentResult.load(path).data == {"v": 1.5}
