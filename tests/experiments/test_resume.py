"""Crash-safe artifacts, run manifests, and resumable ``run-all``.

The contract under test: a run directory can be killed at any point --
including mid-``save`` -- and (a) never holds a truncated artifact,
(b) records exactly which experiments completed in ``manifest.json``,
and (c) finishes via ``run-all --resume`` with artifacts byte-identical
to an uninterrupted run.
"""

import json

import pytest

from repro import cli
from repro.core.atomicio import TMP_SUFFIX, atomic_write_text
from repro.experiments import registry
from repro.experiments.artifacts import ArtifactError, ExperimentResult
from repro.experiments.manifest import (
    MANIFEST_FILENAME,
    ManifestError,
    RunManifest,
)
from repro.sim import faults
from tools import check_artifacts


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


@pytest.fixture
def small_registry(monkeypatch):
    """Restrict the catalog to cheap deterministic experiments."""
    keep = ("table2_resources", "table3_power", "table5_idpower")
    monkeypatch.setattr(
        registry, "_SPECS", {k: registry._SPECS[k] for k in keep}
    )
    return keep


class TestAtomicWrite:
    def test_writes_and_creates_parents(self, tmp_path):
        out = atomic_write_text(tmp_path / "a" / "b.json", "payload")
        assert out.read_text() == "payload"

    def test_no_temp_leftovers_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "x.txt", "data")
        assert list(tmp_path.glob(f"*{TMP_SUFFIX}")) == []

    def test_crash_mid_save_preserves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "x.txt"
        atomic_write_text(target, "old")
        monkeypatch.setenv(faults.ENV_VAR, "raise:site=save,name=x.txt")
        with pytest.raises(faults.FaultInjected):
            atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert list(tmp_path.glob(f"*{TMP_SUFFIX}")) == []

    def test_crash_before_first_write_leaves_nothing(self, tmp_path, monkeypatch):
        target = tmp_path / "fresh.txt"
        monkeypatch.setenv(faults.ENV_VAR, "raise:site=save,name=fresh")
        with pytest.raises(faults.FaultInjected):
            atomic_write_text(target, "data")
        assert not target.exists()
        assert list(tmp_path.glob(f"*{TMP_SUFFIX}")) == []

    def test_fsync_opt_in(self, tmp_path):
        out = atomic_write_text(tmp_path / "y.txt", "data", fsync=True)
        assert out.read_text() == "data"


class TestArtifactCrashSafety:
    def test_save_crash_leaves_no_partial_file(self, tmp_path, monkeypatch):
        result = ExperimentResult(name="demo", data={"v": 1.0})
        monkeypatch.setenv(faults.ENV_VAR, "raise:site=save,name=demo")
        with pytest.raises(faults.FaultInjected):
            result.save_in(tmp_path)
        assert not (tmp_path / "demo.json").exists()
        assert list(tmp_path.glob(f"*{TMP_SUFFIX}")) == []

    def test_truncated_artifact_names_path(self, tmp_path):
        result = ExperimentResult(name="demo", data={"v": 1.0})
        path = result.save_in(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ArtifactError) as excinfo:
            ExperimentResult.load(path)
        assert str(path) in str(excinfo.value)

    def test_missing_file_still_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExperimentResult.load(tmp_path / "absent.json")


class TestRunManifest:
    def test_create_load_round_trip(self, tmp_path):
        created = RunManifest.create(
            tmp_path, preset="quick", seed=7, names=["a", "b"]
        )
        loaded = RunManifest.load(tmp_path)
        assert loaded.to_json() == created.to_json()
        assert loaded.preset == "quick"
        assert loaded.seed == 7
        assert loaded.pending() == ("a", "b")
        assert loaded.completed() == ()

    def test_mark_done_hashes_artifact(self, tmp_path):
        manifest = RunManifest.create(
            tmp_path, preset="quick", seed=None, names=["a"]
        )
        artifact = tmp_path / "a.json"
        artifact.write_text("{}")
        manifest.mark_done("a", artifact)
        loaded = RunManifest.load(tmp_path)
        assert loaded.completed() == ("a",)
        assert loaded.pending() == ()

    def test_tampered_artifact_counts_as_pending(self, tmp_path):
        manifest = RunManifest.create(
            tmp_path, preset="quick", seed=None, names=["a"]
        )
        artifact = tmp_path / "a.json"
        artifact.write_text("{}")
        manifest.mark_done("a", artifact)
        artifact.write_text("{tampered}")
        assert RunManifest.load(tmp_path).pending() == ("a",)

    def test_mark_failed_records_error(self, tmp_path):
        manifest = RunManifest.create(
            tmp_path, preset="quick", seed=None, names=["a"]
        )
        manifest.mark_failed("a", "ValueError: boom")
        loaded = RunManifest.load(tmp_path)
        assert loaded.entries["a"].status == "failed"
        assert loaded.entries["a"].error == "ValueError: boom"
        assert loaded.pending() == ("a",)

    def test_unknown_experiment_rejected(self, tmp_path):
        manifest = RunManifest.create(
            tmp_path, preset="quick", seed=None, names=["a"]
        )
        with pytest.raises(ManifestError, match="nope"):
            manifest.mark_failed("nope", "x")

    def test_load_errors(self, tmp_path):
        with pytest.raises(ManifestError, match="no manifest"):
            RunManifest.load(tmp_path / "void")
        bad = tmp_path / MANIFEST_FILENAME
        bad.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            RunManifest.load(tmp_path)
        bad.write_text('{"manifest": "other"}')
        with pytest.raises(ManifestError, match="not a"):
            RunManifest.load(tmp_path)
        bad.write_text(
            '{"manifest": "repro.run-manifest", "schema_version": 99}'
        )
        with pytest.raises(ManifestError, match="schema_version"):
            RunManifest.load(tmp_path)
        bad.write_text(
            '{"manifest": "repro.run-manifest", "schema_version": 1, '
            '"preset": "quick", "seed": null, '
            '"experiments": {"a": {"status": "odd"}}}'
        )
        with pytest.raises(ManifestError, match="status"):
            RunManifest.load(tmp_path)


class TestResumeCli:
    def _run_all(self, *argv):
        return cli.main(["run-all", "--preset", "quick", *argv])

    def test_fresh_run_writes_complete_manifest(
        self, tmp_path, capsys, small_registry
    ):
        assert self._run_all("--out", str(tmp_path)) == 0
        manifest = RunManifest.load(tmp_path)
        assert manifest.names() == small_registry
        assert manifest.completed() == small_registry

    def test_crash_then_resume_is_byte_identical(
        self, tmp_path, capsys, monkeypatch, small_registry
    ):
        fresh = tmp_path / "fresh"
        crashy = tmp_path / "crashy"
        assert self._run_all("--out", str(fresh)) == 0

        monkeypatch.setenv(
            faults.ENV_VAR, "raise:site=save,name=table3_power"
        )
        assert self._run_all("--out", str(crashy)) == 1
        err = capsys.readouterr().err
        assert f"--resume {crashy}" in err
        assert not (crashy / "table3_power.json").exists()
        failed = RunManifest.load(crashy)
        assert failed.entries["table3_power"].status == "failed"
        assert set(failed.pending()) == {"table3_power"}

        # A SIGKILL mid-save (no cleanup handler runs) also strands the
        # temp file; plant one and require resume to sweep it.
        (crashy / f"table3_power.json.k1ll{TMP_SUFFIX}").write_text("junk")

        monkeypatch.delenv(faults.ENV_VAR)
        assert cli.main(["run-all", "--resume", str(crashy)]) == 0
        out = capsys.readouterr().out
        assert "already complete" in out
        assert "leftover temporary" in out
        fresh_files = sorted(p.name for p in fresh.iterdir())
        assert sorted(p.name for p in crashy.iterdir()) == fresh_files
        for name in fresh_files:
            assert (crashy / name).read_bytes() == (fresh / name).read_bytes()

    def test_resume_reruns_tampered_artifact(
        self, tmp_path, capsys, small_registry
    ):
        assert self._run_all("--out", str(tmp_path)) == 0
        good = (tmp_path / "table5_idpower.json").read_bytes()
        (tmp_path / "table5_idpower.json").write_text('{"broken": true}')
        assert cli.main(["run-all", "--resume", str(tmp_path)]) == 0
        assert (tmp_path / "table5_idpower.json").read_bytes() == good

    def test_resume_with_nothing_pending(self, tmp_path, capsys, small_registry):
        assert self._run_all("--out", str(tmp_path)) == 0
        assert cli.main(["run-all", "--resume", str(tmp_path)]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_resume_usage_errors(self, tmp_path, capsys, small_registry):
        # --resume without a manifest
        assert cli.main(["run-all", "--resume", str(tmp_path / "void")]) == 2
        # --resume + --out
        assert cli.main(
            ["run-all", "--resume", str(tmp_path), "--out", str(tmp_path)]
        ) == 2
        # conflicting --preset
        assert self._run_all("--out", str(tmp_path)) == 0
        assert cli.main(
            ["run-all", "--resume", str(tmp_path), "--preset", "paper"]
        ) == 2
        # conflicting --seed
        assert cli.main(
            ["run-all", "--resume", str(tmp_path), "--seed", "9"]
        ) == 2

    def test_resume_rejects_catalog_mismatch(
        self, tmp_path, capsys, small_registry, monkeypatch
    ):
        assert self._run_all("--out", str(tmp_path)) == 0
        monkeypatch.setattr(
            registry,
            "_SPECS",
            {k: registry._SPECS[k] for k in small_registry[:2]},
        )
        assert cli.main(["run-all", "--resume", str(tmp_path)]) == 2
        assert "catalog" in capsys.readouterr().err

    def test_invalid_workers_flag_is_usage_error(self, capsys, small_registry):
        assert cli.main(["run-all", "--workers", "0"]) == 2
        assert "n_workers" in capsys.readouterr().err


class TestCheckArtifacts:
    def test_complete_run_dir_passes(self, tmp_path, capsys, small_registry):
        assert cli.main(
            ["run-all", "--preset", "quick", "--out", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert check_artifacts.main([str(tmp_path), "--expect-all"]) == 0
        out = capsys.readouterr().out
        # the manifest is audited, not treated as an artifact
        assert f"ok    {MANIFEST_FILENAME}" not in out

    def test_leftover_tmp_file_flagged(self, tmp_path, capsys, small_registry):
        assert cli.main(
            ["run-all", "--preset", "quick", "--out", str(tmp_path)]
        ) == 0
        (tmp_path / f"table3_power.json.abc123{TMP_SUFFIX}").write_text("junk")
        capsys.readouterr()
        assert check_artifacts.main([str(tmp_path)]) == 1
        assert "leftover temporary file" in capsys.readouterr().out

    def test_failed_manifest_entry_flagged(self, tmp_path, capsys, small_registry):
        assert cli.main(
            ["run-all", "--preset", "quick", "--out", str(tmp_path)]
        ) == 0
        RunManifest.load(tmp_path).mark_failed("table3_power", "boom")
        capsys.readouterr()
        assert check_artifacts.main([str(tmp_path)]) == 1
        assert "records a failure" in capsys.readouterr().out

    def test_hash_mismatch_flagged(self, tmp_path, capsys, small_registry):
        assert cli.main(
            ["run-all", "--preset", "quick", "--out", str(tmp_path)]
        ) == 0
        artifact = tmp_path / "table5_idpower.json"
        doc = json.loads(artifact.read_text())
        doc["notes"] = ["tampered"]
        artifact.write_text(json.dumps(doc, indent=2) + "\n")
        capsys.readouterr()
        assert check_artifacts.main([str(tmp_path)]) == 1
        assert "sha256" in capsys.readouterr().out
