"""Smoke tests for the shared experiment helpers.

Per-experiment runnability, rendering, and structure are pinned by the
registry contract tests (``test_registry.py``); this file keeps the
helper-level checks that don't go through a spec.
"""

import numpy as np

from repro.experiments.common import ExperimentResult, labeled_traces


class TestCommon:
    def test_labeled_traces_deterministic(self):
        a = labeled_traces(2, seed=9)
        b = labeled_traces(2, seed=9)
        assert len(a) == len(b) == 8
        for (pa, wa), (pb, wb) in zip(a, b):
            assert pa is pb
            assert np.array_equal(wa.iq, wb.iq)

    def test_result_getitem(self):
        r = ExperimentResult(name="x", data={"k": 1})
        assert r["k"] == 1
