"""Smoke tests: every experiment module runs and renders at small scale.

The benchmarks assert the paper-facing numbers; these tests only pin
the harness contract (structure, formatting, runnability) so refactors
cannot silently break an experiment module without a bench run.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig04_rectifier,
    fig05_envelope_id,
    fig07_ordered,
    fig08_sampling,
    fig09_baseline_flaws,
    fig12_tradeoffs,
    fig13_los,
    fig14_nlos,
    fig15_occlusion,
    fig17_refmod,
    fig18_diversity,
    table2_resources,
    table3_power,
    table4_energy,
    table5_idpower,
)
from repro.experiments.common import ExperimentResult, labeled_traces
from repro.phy.protocols import Protocol


def _check(module, result):
    assert isinstance(result, ExperimentResult)
    text = module.format_result(result)
    assert isinstance(text, str) and len(text) > 20
    assert result.notes


class TestFigureModules:
    def test_fig04(self):
        result = fig04_rectifier.run(powers_dbm=np.array([-30.0, -10.0]))
        _check(fig04_rectifier, result)
        assert result["downlink_range_m"] > 0

    def test_fig05(self):
        result = fig05_envelope_id.run(n_traces=2, grid=((40, 120),))
        _check(fig05_envelope_id, result)
        assert (40, 120) in result["grid_reports"]

    def test_fig07(self):
        result = fig07_ordered.run(n_traces=2, n_train=2)
        _check(fig07_ordered, result)
        assert set(result["thresholds"]) == set(Protocol)

    def test_fig08(self):
        result = fig08_sampling.run(n_traces=2, n_train=2)
        _check(fig08_sampling, result)
        assert len(result["reports"]) == 3

    def test_fig09(self):
        result = fig09_baseline_flaws.run(n_packets=30)
        _check(fig09_baseline_flaws, result)
        assert set(result["bers"]) == {"hitchhike", "freerider"}

    def test_fig12(self):
        result = fig12_tradeoffs.run(n_locations=4)
        _check(fig12_tradeoffs, result)
        assert len(result["table"]) == 12  # 4 protocols x 3 modes

    def test_fig13_14(self):
        d = np.array([2.0, 10.0])
        for module in (fig13_los, fig14_nlos):
            result = module.run(distances=d)
            _check(module, result)
            assert set(result["per_protocol"]) == set(Protocol)

    def test_fig15(self):
        result = fig15_occlusion.run(n_packets=40)
        _check(fig15_occlusion, result)
        assert result["hitchhike_kbps"] >= 0

    def test_fig17(self):
        result = fig17_refmod.run(n_packets=1)
        _check(fig17_refmod, result)
        assert len(result["wifi_b"]) == 3
        assert len(result["wifi_n"]) == 3

    def test_fig18(self):
        result = fig18_diversity.run(duration_s=0.5)
        _check(fig18_diversity, result)
        assert result["picked"] in set(Protocol) | {None}


class TestTableModules:
    @pytest.mark.parametrize(
        "module", [table2_resources, table3_power, table4_energy, table5_idpower]
    )
    def test_runs_and_formats(self, module):
        result = module.run()
        _check(module, result)


class TestCommon:
    def test_labeled_traces_deterministic(self):
        a = labeled_traces(2, seed=9)
        b = labeled_traces(2, seed=9)
        assert len(a) == len(b) == 8
        for (pa, wa), (pb, wb) in zip(a, b):
            assert pa is pb
            assert np.array_equal(wa.iq, wb.iq)

    def test_result_getitem(self):
        r = ExperimentResult(name="x", data={"k": 1})
        assert r["k"] == 1
