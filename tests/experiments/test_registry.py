"""Registry contract tests, parametrized over every declared spec.

These pin the declarative-experiment contract: completeness of the
catalog, the three-preset rule, quick-preset runnability with
per-experiment structural assertions, artifact round-trip byte
stability, lazy listing, and centralized bounds validation.
"""

import subprocess
import sys

import pytest

from repro.experiments import registry
from repro.experiments.artifacts import ExperimentResult
from repro.experiments.registry import (
    PRESET_NAMES,
    RegistryError,
    UnknownExperimentError,
)
from repro.phy.protocols import Protocol

ALL_NAMES = (
    "fig04_rectifier",
    "fig05_envelope_id",
    "fig07_ordered",
    "fig08_sampling",
    "fig09_baseline_flaws",
    "fig12_tradeoffs",
    "fig13_los",
    "fig14_nlos",
    "fig15_occlusion",
    "fig16_collisions",
    "fig17_refmod",
    "fig18_diversity",
    "validation_ber",
    "table2_resources",
    "table3_power",
    "table4_energy",
    "table5_idpower",
)

#: Structural assertions carried over from the old per-module smoke
#: tests, now run against the quick-preset registry results.
_CHECKS = {
    "fig04_rectifier": lambda r: r["downlink_range_m"] > 0,
    "fig05_envelope_id": lambda r: (40, 120) in r["grid_reports"],
    "fig07_ordered": lambda r: set(r["thresholds"]) == set(Protocol),
    "fig08_sampling": lambda r: len(r["reports"]) == 3,
    "fig09_baseline_flaws": lambda r: set(r["bers"]) == {"hitchhike", "freerider"},
    "fig12_tradeoffs": lambda r: len(r["table"]) == 12,  # 4 protocols x 3 modes
    "fig13_los": lambda r: set(r["per_protocol"]) == set(Protocol),
    "fig14_nlos": lambda r: set(r["per_protocol"]) == set(Protocol),
    "fig15_occlusion": lambda r: r["hitchhike_kbps"] >= 0,
    "fig16_collisions": lambda r: r["time_collision"]["ble_clean_kbps"] > 0,
    "fig17_refmod": lambda r: len(r["wifi_b"]) == 3 and len(r["wifi_n"]) == 3,
    "fig18_diversity": lambda r: r["picked"] in set(Protocol) | {None},
    "validation_ber": lambda r: len(r["rows"]) == 4,  # 4 protocols x 1 Eb/N0
    "table2_resources": lambda r: r["naive_total_dffs"] > r["nano_impl_dffs"],
    "table3_power": lambda r: r["total_mw"] > 0,
    "table4_energy": lambda r: set(r["table"]) == set(Protocol),
    "table5_idpower": lambda r: r["reduction_factor"] > 100,
}


@pytest.fixture(scope="module")
def quick_results():
    """Each experiment run once at quick scale, shared across tests."""
    return {name: registry.run_preset(name, "quick") for name in ALL_NAMES}


class TestCatalog:
    def test_complete(self):
        assert registry.names() == ALL_NAMES

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_spec_contract(self, name):
        spec = registry.get_spec(name)
        assert spec.preset_names() == PRESET_NAMES
        assert spec.paper_ref and spec.description
        assert spec.module == f"repro.experiments.{name}"
        for preset in PRESET_NAMES:
            assert isinstance(spec.params(preset), spec.params_type)

    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperimentError, match="fig99_nope"):
            registry.get_spec("fig99_nope")

    def test_unknown_preset(self):
        with pytest.raises(RegistryError, match="no preset"):
            registry.get_spec("fig13_los").params("huge")


class TestQuickRuns:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_runs_renders_and_checks(self, quick_results, name):
        result = quick_results[name]
        assert isinstance(result, ExperimentResult)
        assert result.name == name
        assert result.preset == "quick"
        assert result.params is not None
        assert result.notes
        text = result.render()
        assert isinstance(text, str) and len(text) > 20
        assert _CHECKS[name](result)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_artifact_round_trip(self, quick_results, name):
        s1 = quick_results[name].to_json()
        restored = ExperimentResult.from_json(s1)
        assert restored.to_json() == s1
        assert restored.render() == quick_results[name].render()

    @pytest.mark.parametrize(
        "name", ["fig12_tradeoffs", "fig15_occlusion", "table4_energy"]
    )
    def test_rerun_byte_identical(self, quick_results, name):
        # Determinism end to end: a fresh run serializes to the same bytes.
        again = registry.run_preset(name, "quick")
        assert again.to_json() == quick_results[name].to_json()

    def test_seed_override(self):
        base = registry.run_preset("fig15_occlusion", "quick")
        other = registry.run_preset("fig15_occlusion", "quick", seed=99)
        assert other.params["seed"] == 99
        assert base.to_json() != other.to_json()

    def test_result_name_must_match_spec(self):
        spec = registry.get_spec("table2_resources")
        impl = spec._resolve()
        registry._IMPLS["table2_resources"] = lambda **kw: ExperimentResult(name="oops")
        try:
            with pytest.raises(RegistryError, match="named 'oops'"):
                spec.run("quick")
        finally:
            registry._IMPLS["table2_resources"] = impl


class TestBounds:
    @pytest.mark.parametrize(
        "name, field", [("fig16_collisions", "n_trials"), ("fig15_occlusion", "n_packets")]
    )
    def test_zero_count_rejected(self, name, field):
        with pytest.raises(ValueError, match=field):
            registry.run_preset(name, "quick", **{field: 0})

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            registry.run_preset("fig05_envelope_id", "quick", n_workers=0)


class TestLazyListing:
    def test_list_imports_no_implementation(self):
        # `python -m repro list` must never touch NumPy-heavy modules.
        code = (
            "import sys\n"
            "from repro.cli import main\n"
            "assert main(['list']) == 0\n"
            "heavy = [m for m in sys.modules if m == 'numpy'\n"
            "         or (m.startswith('repro.experiments.')\n"
            "             and m.rsplit('.', 1)[-1] not in ('registry', 'params'))]\n"
            "assert not heavy, heavy\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
