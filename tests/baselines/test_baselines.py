"""Tests for the Hitchhike / FreeRider two-receiver baselines."""

import numpy as np
import pytest

from repro.baselines import FreeRider, Hitchhike, TwoReceiverDecoder, xor_decode
from repro.channel.occlusion import Material


class TestXorDecode:
    def test_aligned_recovers_tag_bits(self):
        rng = np.random.default_rng(0)
        carrier = rng.integers(0, 2, 64).astype(np.uint8)
        tag = rng.integers(0, 2, 64).astype(np.uint8)
        assert np.array_equal(xor_decode(carrier, carrier ^ tag), tag)

    def test_offset_corrupts(self):
        rng = np.random.default_rng(1)
        carrier = rng.integers(0, 2, 256).astype(np.uint8)
        tag = rng.integers(0, 2, 256).astype(np.uint8)
        decoded = xor_decode(carrier, carrier ^ tag, offset=3)
        assert np.mean(decoded != tag) > 0.3


class TestTwoReceiverDecoder:
    def test_clean_channels_zero_ber(self):
        d = TwoReceiverDecoder(original_ber=0.0, backscatter_ber=0.0)
        assert d.tag_bit_error_rate() == 0.0

    def test_original_errors_leak_into_tag_ber(self):
        # The paper's central criticism: tag BER tracks the original
        # channel even with a perfect backscatter channel.
        d = TwoReceiverDecoder(original_ber=0.1, backscatter_ber=0.0)
        assert d.tag_bit_error_rate() == pytest.approx(0.1)

    def test_lost_originals_are_coin_flips(self):
        d = TwoReceiverDecoder(0.0, 0.0, original_loss_rate=1.0)
        assert d.tag_bit_error_rate() == pytest.approx(0.5)

    def test_simulate_packet_matches_closed_form(self):
        rng = np.random.default_rng(2)
        d = TwoReceiverDecoder(original_ber=0.05, backscatter_ber=0.02)
        tag = rng.integers(0, 2, 400).astype(np.uint8)
        errs = []
        for _ in range(60):
            decoded = d.simulate_packet(tag, rng)
            errs.append(np.mean(decoded != tag))
        assert np.mean(errs) == pytest.approx(d.tag_bit_error_rate(), abs=0.02)

    def test_simulate_packet_loss(self):
        rng = np.random.default_rng(3)
        d = TwoReceiverDecoder(0.0, 0.0, original_loss_rate=1.0)
        assert d.simulate_packet(np.ones(8, np.uint8), rng) is None


class TestFig9:
    def test_ber_escalates_with_occlusion(self):
        rng = np.random.default_rng(4)
        hh = Hitchhike()
        bers = [hh.tag_ber(m, rng) for m in
                (Material.NONE, Material.WOOD, Material.CONCRETE)]
        assert bers[0] < 0.01
        assert bers[0] < bers[1] < bers[2]
        assert bers[2] > 0.3  # concrete is catastrophic (paper: 59%)

    def test_offsets_grow_with_distance(self):
        rng = np.random.default_rng(5)
        hh = Hitchhike()
        near = [hh.sample_offset(1.0, rng) for _ in range(300)]
        far = [hh.sample_offset(10.0, rng) for _ in range(300)]
        assert np.mean(far) > np.mean(near)
        assert max(far) <= 8  # Fig 9b: offsets as far as 8 symbols

    def test_freerider_aligns_better_than_hitchhike(self):
        rng = np.random.default_rng(6)
        assert FreeRider().offset_aligned_probability(
            8.0, rng
        ) > Hitchhike().offset_aligned_probability(8.0, rng)


class TestFig15:
    def test_drywall_throughputs_near_paper(self):
        rng = np.random.default_rng(7)
        hh = Hitchhike().tag_throughput_kbps(Material.DRYWALL, rng)
        fr = FreeRider().tag_throughput_kbps(Material.DRYWALL, rng)
        # Paper: Hitchhike 94 kbps, FreeRider 33 kbps.
        assert hh == pytest.approx(94.0, rel=0.35)
        assert fr == pytest.approx(33.0, rel=0.35)
        assert hh > fr

    def test_multiscatter_beats_both_under_occlusion(self):
        from repro.core.overlay import Mode
        from repro.core.throughput import OverlayThroughputModel
        from repro.phy.protocols import Protocol

        rng = np.random.default_rng(8)
        multi = OverlayThroughputModel(
            Protocol.WIFI_B, mode=Mode.MODE_1
        ).evaluate(2.0)
        hh = Hitchhike().tag_throughput_kbps(Material.DRYWALL, rng)
        # Multiscatter's tag throughput does not depend on the original
        # channel at all, so occluding it changes nothing.
        assert multi.tag_kbps > hh


class TestXTandem:
    def test_more_hops_lower_rssi(self):
        from repro.baselines import XTandem

        one = XTandem(n_hops=1)
        three = XTandem(n_hops=3)
        assert three.chain_rssi_dbm() < one.chain_rssi_dbm()

    def test_more_hops_higher_ber(self):
        from repro.baselines import XTandem

        assert XTandem(n_hops=4).backscatter_ber() >= XTandem(n_hops=1).backscatter_ber()

    def test_hop_capacity_shared(self):
        from repro.baselines import XTandem

        one = XTandem(n_hops=1)
        four = XTandem(n_hops=4)
        # Aggregate capacity is ~constant: the packet is shared.
        assert abs(four.tag_bits_per_packet() - one.tag_bits_per_packet()) <= 4

    def test_still_original_channel_dependent(self):
        import numpy as np

        from repro.baselines import XTandem
        from repro.channel.occlusion import Material

        rng = np.random.default_rng(0)
        xt = XTandem(n_hops=2, d_backscatter_m=1.0)
        clear = xt.tag_ber(Material.NONE, rng)
        concrete = xt.tag_ber(Material.CONCRETE, rng)
        assert concrete > clear + 0.2

    def test_two_hops_marginal_three_dead(self):
        from repro.baselines import XTandem

        # The geometric hop cost: each extra reflection multiplies in a
        # full path loss, so passive chains fall off a cliff.
        assert XTandem(n_hops=2, d_backscatter_m=1.0).backscatter_ber() < 0.01
        assert XTandem(n_hops=3, d_backscatter_m=1.0).backscatter_ber() > 0.4
