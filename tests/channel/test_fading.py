"""Tests for fading and multipath models."""

import numpy as np
import pytest

from repro.channel.fading import MultipathChannel, rayleigh_gain, rician_gain
from repro.phy import bits as bitlib
from repro.phy import wifi_n
from repro.phy.waveform import Waveform


class TestBlockFading:
    def test_rayleigh_unit_mean_power(self):
        rng = np.random.default_rng(0)
        gains = np.array([rayleigh_gain(rng) for _ in range(20000)])
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_rician_unit_mean_power(self):
        rng = np.random.default_rng(1)
        gains = np.array([rician_gain(6.0, rng) for _ in range(20000)])
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_rician_high_k_approaches_los(self):
        rng = np.random.default_rng(2)
        gains = np.array([rician_gain(30.0, rng) for _ in range(2000)])
        # Nearly deterministic gain at K = 30 dB.
        assert np.std(np.abs(gains)) < 0.05


class TestMultipath:
    def test_taps_unit_energy(self):
        chan = MultipathChannel(seed=3)
        taps = chan.taps(20e6)
        assert np.sum(np.abs(taps) ** 2) == pytest.approx(1.0, rel=1e-6)

    def test_taps_deterministic_per_seed(self):
        a = MultipathChannel(seed=4).taps(20e6)
        b = MultipathChannel(seed=4).taps(20e6)
        assert np.array_equal(a, b)
        c = MultipathChannel(seed=5).taps(20e6)
        assert not np.array_equal(a, c)

    def test_preserves_length(self):
        wave = Waveform(np.ones(500, complex), 20e6)
        out = MultipathChannel(seed=6).apply(wave)
        assert out.n_samples == 500

    def test_frequency_selectivity_grows_with_delay_spread(self):
        flat = MultipathChannel(rms_delay_spread_s=5e-9, seed=7)
        frequency_selective = MultipathChannel(rms_delay_spread_s=200e-9, seed=7)
        h_flat = np.abs(flat.frequency_response(20e6))
        h_sel = np.abs(frequency_selective.frequency_response(20e6))
        assert h_sel.std() > h_flat.std()

    def test_ofdm_equalizer_undoes_multipath(self):
        """The HT-LTF channel estimate must equalize a frequency-
        selective channel (the whole point of OFDM + per-frame
        training)."""
        payload = bytes(range(30))
        wave = wifi_n.modulate(payload)
        chan = MultipathChannel(rms_delay_spread_s=50e-9, n_taps=6, seed=8)
        faded = chan.apply(wave)
        rng = np.random.default_rng(9)
        faded.iq = faded.iq + 0.01 * (
            rng.normal(size=faded.n_samples) + 1j * rng.normal(size=faded.n_samples)
        )
        result = wifi_n.demodulate(faded, n_psdu_bits=len(payload) * 8)
        assert bitlib.bytes_from_bits(result.psdu_bits) == payload

    def test_overlay_decoding_survives_multipath(self):
        """Tag flips ride through a multipath channel: the flip is a
        scalar on the whole symbol, so equalization preserves it."""
        from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
        from repro.core.overlay_decoder import OverlayDecoder
        from repro.core.tag_modulation import TagModulator
        from repro.phy.protocols import Protocol

        rng = np.random.default_rng(10)
        codec = OverlayCodec(OverlayConfig.for_mode(Protocol.WIFI_N, Mode.MODE_1))
        prod = rng.integers(0, 2, 5).astype(np.uint8)
        carrier = codec.build_carrier(prod)
        _, cap = codec.capacity(carrier.annotations["n_payload_symbols"])
        tag_bits = rng.integers(0, 2, cap).astype(np.uint8)

        mod = TagModulator(codec, frequency_shift_hz=0.0)
        bs = mod.modulate(carrier, tag_bits)
        faded = MultipathChannel(rms_delay_spread_s=40e-9, seed=11).apply(bs)
        faded.annotations = dict(carrier.annotations)
        out = OverlayDecoder(codec).decode(faded)
        assert np.array_equal(out.productive_bits[: prod.size], prod)
        assert np.array_equal(out.tag_bits[: cap], tag_bits)
