"""Tests for the calibrated backscatter link budget (Figs 13-14 ranges)."""

import pytest

from repro.channel.link import (
    PROTOCOL_LINK_DEFAULTS,
    BackscatterLink,
    ber_802154,
    ber_coded_ofdm_bpsk,
    ber_dbpsk,
    ber_gfsk_noncoherent,
)
from repro.channel.occlusion import Material, OccludedChannel, occlusion_loss_db
from repro.phy.protocols import Protocol


def _link(protocol, **kwargs):
    return BackscatterLink(PROTOCOL_LINK_DEFAULTS[protocol], **kwargs)


class TestBerModels:
    @pytest.mark.parametrize(
        "model", [ber_dbpsk, ber_coded_ofdm_bpsk, ber_gfsk_noncoherent, ber_802154]
    )
    def test_monotone_decreasing(self, model):
        values = [model(10 ** (db / 10.0)) for db in range(-5, 20)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize(
        "model", [ber_dbpsk, ber_coded_ofdm_bpsk, ber_gfsk_noncoherent, ber_802154]
    )
    def test_bounded(self, model):
        assert 0.0 <= model(0.0) <= 0.5
        assert model(1e4) < 1e-9

    def test_dsss_zigbee_beats_gfsk_at_same_ebn0(self):
        # ZigBee's 16-ary DSSS is more robust per bit than noncoherent
        # GFSK -- the reason its backscatter outranges BLE in Fig 13.
        ebn0 = 10 ** (6.0 / 10.0)
        assert ber_802154(ebn0) < ber_gfsk_noncoherent(ebn0)


class TestCalibratedRanges:
    """The headline Fig 13a/14a numbers (calibrated; see DESIGN.md §5)."""

    def test_los_ranges_match_paper(self):
        assert _link(Protocol.WIFI_B).max_range_m() == pytest.approx(28.0, abs=1.5)
        assert _link(Protocol.WIFI_N).max_range_m() == pytest.approx(28.0, abs=1.5)
        assert _link(Protocol.ZIGBEE).max_range_m() == pytest.approx(22.0, abs=1.5)
        assert _link(Protocol.BLE).max_range_m() == pytest.approx(20.0, abs=1.5)

    def test_los_ordering(self):
        ranges = {p: _link(p).max_range_m() for p in Protocol}
        assert ranges[Protocol.WIFI_B] > ranges[Protocol.ZIGBEE] > ranges[Protocol.BLE]

    def test_nlos_shrinks_every_range(self):
        for p in Protocol:
            los = _link(p).max_range_m()
            nlos = _link(p).with_occlusion(1.8).max_range_m()
            assert nlos < los

    def test_nlos_ranges_near_paper(self):
        # Paper Fig 14a: 22 / 18 / 16 m.
        assert _link(Protocol.WIFI_B).with_occlusion(1.8).max_range_m() == pytest.approx(22.0, abs=2.0)
        assert _link(Protocol.ZIGBEE).with_occlusion(1.8).max_range_m() == pytest.approx(18.0, abs=2.0)
        assert _link(Protocol.BLE).with_occlusion(1.8).max_range_m() == pytest.approx(16.0, abs=2.0)


class TestLinkBehaviour:
    def test_rssi_decreases_with_distance(self):
        link = _link(Protocol.WIFI_B)
        assert link.rssi_dbm(2.0) > link.rssi_dbm(10.0) > link.rssi_dbm(25.0)

    def test_ber_increases_with_distance(self):
        link = _link(Protocol.BLE)
        assert link.ber(25.0) > link.ber(10.0) >= link.ber(1.0)

    def test_low_ber_within_16m(self):
        # Paper Fig 13b: all protocols keep low BER out to 16 m.
        for p in Protocol:
            assert _link(p).ber(16.0) < 0.05, p

    def test_per_monotone_in_bits(self):
        link = _link(Protocol.ZIGBEE)
        assert link.per(20.0, 2000) >= link.per(20.0, 100)

    def test_per_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            _link(Protocol.BLE).per(5.0, 0)

    def test_with_budget_override(self):
        base = _link(Protocol.WIFI_B)
        louder = base.with_budget(tx_power_dbm=30.0)
        assert louder.rssi_dbm(10.0) == pytest.approx(base.rssi_dbm(10.0) + 16.0)

    def test_zigbee_rssi_drops_below_m80_past_4m_nlos(self):
        # Paper §4.1.2 NLoS: ZigBee < -80 dBm beyond ~4 m.
        link = _link(Protocol.ZIGBEE).with_occlusion(1.8)
        assert link.rssi_dbm(6.0) < -80.0


class TestOcclusion:
    def test_loss_ordering(self):
        assert (
            occlusion_loss_db(Material.NONE)
            < occlusion_loss_db(Material.DRYWALL)
            < occlusion_loss_db(Material.WOOD)
            < occlusion_loss_db(Material.CONCRETE)
        )

    def test_sampled_loss_centered_on_mean(self):
        import numpy as np

        rng = np.random.default_rng(0)
        chan = OccludedChannel(Material.CONCRETE)
        samples = [chan.sample_loss_db(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(chan.mean_loss_db, abs=0.5)

    def test_none_is_stable(self):
        import numpy as np

        rng = np.random.default_rng(0)
        chan = OccludedChannel(Material.NONE)
        samples = [chan.sample_loss_db(rng) for _ in range(500)]
        assert np.std(samples) < 1.0
