"""Tests for path loss, noise, and the composable channel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import Channel, awgn, noise_floor_dbm
from repro.channel import pathloss
from repro.phy.waveform import Waveform


class TestPathloss:
    def test_free_space_1m_2p4ghz(self):
        # Friis at 1 m, 2.4 GHz is ~40.05 dB.
        assert pathloss.free_space_path_loss_db(1.0) == pytest.approx(40.05, abs=0.1)

    def test_log_distance_matches_reference_at_d0(self):
        assert pathloss.log_distance_path_loss_db(1.0) == pytest.approx(
            pathloss.DEFAULT_PL0_DB
        )

    @given(st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30)
    def test_monotonic_in_distance(self, d):
        a = pathloss.log_distance_path_loss_db(d)
        b = pathloss.log_distance_path_loss_db(d * 2.0)
        assert b > a

    def test_exponent_slope(self):
        # 10x distance adds 10n dB.
        n = 1.8
        a = pathloss.log_distance_path_loss_db(1.0, exponent=n)
        b = pathloss.log_distance_path_loss_db(10.0, exponent=n)
        assert b - a == pytest.approx(10 * n)

    def test_db_gain_round_trip(self):
        assert pathloss.gain_to_db(pathloss.db_to_gain(-17.0)) == pytest.approx(-17.0)

    def test_dbm_mw_round_trip(self):
        assert pathloss.mw_to_dbm(pathloss.dbm_to_mw(-42.5)) == pytest.approx(-42.5)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            pathloss.wavelength(0)
        with pytest.raises(ValueError):
            pathloss.log_distance_path_loss_db(1.0, exponent=-1)


class TestNoise:
    def test_noise_floor_formula(self):
        # 2 MHz, NF 7: -174 + 63 + 7 = -104 dBm.
        assert noise_floor_dbm(2e6) == pytest.approx(-104.0, abs=0.05)

    def test_awgn_achieves_target_snr(self):
        rng = np.random.default_rng(0)
        wave = Waveform(np.ones(200_000, complex), 1e6)
        noisy = awgn(wave, snr_db=10.0, rng=rng)
        noise = noisy.iq - wave.iq
        measured = 10 * np.log10(wave.mean_power() / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(10.0, abs=0.2)

    def test_awgn_absolute_power(self):
        rng = np.random.default_rng(1)
        wave = Waveform.silence(200_000, 1e6)
        noisy = awgn(wave, noise_power_dbm=-20.0, rng=rng)
        measured = 10 * np.log10(noisy.mean_power())
        assert measured == pytest.approx(-20.0, abs=0.2)

    def test_requires_exactly_one_spec(self):
        wave = Waveform.silence(10, 1e6)
        with pytest.raises(ValueError):
            awgn(wave)
        with pytest.raises(ValueError):
            awgn(wave, snr_db=3.0, noise_power_dbm=-10.0)


class TestChannel:
    def test_gain_scales_power(self):
        wave = Waveform(np.ones(100, complex), 1e6)
        out = Channel(gain_db=-20.0).apply(wave)
        assert 10 * np.log10(out.mean_power()) == pytest.approx(-20.0)

    def test_delay_pads_front(self):
        wave = Waveform(np.ones(10, complex), 1e6, annotations={"payload_start": 2})
        out = Channel(delay_samples=5).apply(wave)
        assert out.n_samples == 15
        assert np.all(out.iq[:5] == 0)
        assert out.annotations["payload_start"] == 7

    def test_phase_rotation(self):
        wave = Waveform(np.ones(8, complex), 1e6)
        out = Channel(phase_rad=np.pi).apply(wave)
        assert np.allclose(out.iq, -1.0)

    def test_cfo_does_not_change_center_annotation(self):
        wave = Waveform(np.ones(100, complex), 1e6)
        out = Channel(cfo_hz=10e3).apply(wave)
        assert out.center_offset_hz == pytest.approx(0.0)
