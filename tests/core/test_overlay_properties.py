"""Property-based tests on overlay-codec invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
from repro.phy.protocols import Protocol

_protocols = st.sampled_from(list(Protocol))
_gammas = st.integers(1, 6)
_kappa_mult = st.integers(2, 8)


@st.composite
def configs(draw):
    protocol = draw(_protocols)
    gamma = draw(_gammas)
    kappa = gamma * draw(_kappa_mult)
    return OverlayConfig(protocol, kappa=kappa, gamma=gamma)


class TestLayoutInvariants:
    @given(configs(), st.integers(0, 600))
    @settings(max_examples=60)
    def test_capacity_consistent_with_layout(self, cfg, n_symbols):
        codec = OverlayCodec(cfg)
        n_prod, n_tag = codec.capacity(n_symbols)
        assert n_prod == codec.n_sequences(n_symbols)
        assert n_tag == n_prod * cfg.tag_bits_per_sequence

    @given(configs(), st.integers(1, 20))
    @settings(max_examples=60)
    def test_groups_disjoint_and_in_bounds(self, cfg, n_seq):
        codec = OverlayCodec(cfg)
        n_symbols = codec.first_sequence_symbol + n_seq * cfg.kappa
        seen: set[int] = set()
        for s in range(codec.n_sequences(n_symbols)):
            ref = codec.sequence_start(s)
            assert ref < n_symbols
            assert ref not in seen
            seen.add(ref)
            for group in codec.tag_symbol_groups(s):
                for idx in group:
                    assert ref < idx < n_symbols
                    assert idx not in seen
                    seen.add(idx)

    @given(configs(), st.integers(0, 400))
    @settings(max_examples=60)
    def test_capacity_monotone_in_payload(self, cfg, n_symbols):
        codec = OverlayCodec(cfg)
        p1, t1 = codec.capacity(n_symbols)
        p2, t2 = codec.capacity(n_symbols + cfg.kappa)
        assert p2 >= p1
        assert t2 >= t1

    @given(configs(), st.data())
    @settings(max_examples=60)
    def test_flip_flags_only_touch_tag_groups(self, cfg, data):
        codec = OverlayCodec(cfg)
        n_seq = data.draw(st.integers(1, 8))
        n_symbols = codec.first_sequence_symbol + n_seq * cfg.kappa
        _, cap = codec.capacity(n_symbols)
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=cap, max_size=cap)),
            dtype=np.uint8,
        )
        flags = codec.tag_flip_flags(bits, n_symbols)
        allowed = set()
        for s in range(n_seq):
            for group in codec.tag_symbol_groups(s):
                allowed.update(group)
        flagged = set(np.flatnonzero(flags).tolist())
        assert flagged <= allowed
        # Reference symbols are never flipped.
        for s in range(n_seq):
            assert not flags[codec.sequence_start(s)]

    @given(configs())
    @settings(max_examples=40)
    def test_symbol_decode_identity_without_tag(self, cfg):
        """Encoding productive bits to symbol values and decoding them
        back (no tag modulation) is the identity."""
        codec = OverlayCodec(cfg)
        rng = np.random.default_rng(0)
        prod = rng.integers(0, 2, 6).astype(np.uint8)
        values = []
        if codec.first_sequence_symbol:
            values.append(np.zeros(26, np.uint8) if cfg.protocol is Protocol.WIFI_N else 0)
        for b in prod:
            v = codec.reference_symbol_value(int(b))
            symbol = (
                np.full(26, v, np.uint8) if cfg.protocol is Protocol.WIFI_N else v
            )
            values.extend([symbol] * cfg.kappa)
        decoded_prod, decoded_tag = codec.decode_symbols(values)
        assert np.array_equal(decoded_prod[: prod.size], prod)
        assert not decoded_tag[: prod.size * cfg.tag_bits_per_sequence].any()


class TestModeProperties:
    @given(_protocols)
    def test_mode1_always_balanced(self, protocol):
        cfg = OverlayConfig.for_mode(protocol, Mode.MODE_1)
        assert cfg.tag_bits_per_sequence == 1

    @given(_protocols, st.integers(20, 500))
    @settings(max_examples=40)
    def test_mode3_single_sequence(self, protocol, payload_symbols):
        cfg = OverlayConfig.for_mode(
            protocol, Mode.MODE_3, payload_symbols=payload_symbols
        )
        codec = OverlayCodec(cfg)
        n_prod, _ = codec.capacity(payload_symbols)
        assert n_prod <= 1
