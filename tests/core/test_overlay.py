"""Tests for overlay modulation: codec, tag modulation, single-receiver
decoding (paper §2.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overlay import Mode, OverlayCodec, OverlayConfig, DEFAULT_GAMMA
from repro.core.overlay_decoder import OverlayDecoder
from repro.core.tag_modulation import TagModulator
from repro.phy.protocols import Protocol


def _roundtrip(protocol, mode, prod_bits, tag_bits_fn, shift=10e6, rng=None,
               noise=0.0, gamma=None):
    """Carrier -> tag modulation -> shifted-channel RX -> decode."""
    cfg = OverlayConfig.for_mode(protocol, mode, payload_symbols=200, gamma=gamma)
    codec = OverlayCodec(cfg)
    wave = codec.build_carrier(prod_bits)
    n_sym = wave.annotations["n_payload_symbols"]
    _, cap = codec.capacity(n_sym)
    tag_bits = tag_bits_fn(cap)
    mod = TagModulator(codec, frequency_shift_hz=shift)
    bs = mod.modulate(wave, tag_bits)
    rx = mod.received_at_shifted_channel(bs)
    if noise > 0 and rng is not None:
        rx.iq = rx.iq + noise * (
            rng.normal(size=rx.n_samples) + 1j * rng.normal(size=rx.n_samples)
        )
    rx.annotations = dict(wave.annotations)
    out = OverlayDecoder(codec).decode(rx)
    return cfg, tag_bits, out


class TestConfig:
    def test_table6_mode_construction(self):
        # Table 6: mode 1 kappa = 2 gamma, mode 2 kappa = 4 gamma.
        for p in Protocol:
            g = DEFAULT_GAMMA[p]
            assert OverlayConfig.for_mode(p, Mode.MODE_1).kappa == 2 * g
            assert OverlayConfig.for_mode(p, Mode.MODE_2).kappa == 4 * g

    def test_mode3_spans_payload(self):
        cfg = OverlayConfig.for_mode(
            Protocol.WIFI_B, Mode.MODE_3, payload_symbols=240
        )
        # gamma * floor((l - 1) / gamma): one symbol of headroom.
        assert cfg.kappa == 236

    def test_mode3_requires_payload(self):
        with pytest.raises(ValueError):
            OverlayConfig.for_mode(Protocol.BLE, Mode.MODE_3)

    def test_mode1_is_one_to_one(self):
        # "the number of reference symbols is the same as that of
        # modulatable symbols" -> equal productive and tag bits.
        for p in Protocol:
            cfg = OverlayConfig.for_mode(p, Mode.MODE_1)
            assert cfg.tag_bits_per_sequence == cfg.productive_bits_per_sequence

    def test_mode2_is_three_to_one(self):
        for p in Protocol:
            cfg = OverlayConfig.for_mode(p, Mode.MODE_2)
            assert cfg.tag_bits_per_sequence == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            OverlayConfig(Protocol.BLE, kappa=4, gamma=0)
        with pytest.raises(ValueError):
            OverlayConfig(Protocol.BLE, kappa=1, gamma=1)
        with pytest.raises(ValueError):
            OverlayConfig(Protocol.BLE, kappa=4, gamma=4)


class TestCleanRoundTrip:
    @pytest.mark.parametrize("protocol", list(Protocol))
    @pytest.mark.parametrize("mode", [Mode.MODE_1, Mode.MODE_2])
    def test_both_streams_recovered(self, protocol, mode):
        rng = np.random.default_rng(3)
        prod = rng.integers(0, 2, 5).astype(np.uint8)
        cfg, tag_bits, out = _roundtrip(
            protocol, mode, prod, lambda cap: rng.integers(0, 2, cap).astype(np.uint8)
        )
        assert np.array_equal(out.productive_bits[: prod.size], prod)
        assert np.array_equal(out.tag_bits[: tag_bits.size], tag_bits)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_all_ones_and_all_zeros_tag_data(self, protocol):
        rng = np.random.default_rng(4)
        prod = rng.integers(0, 2, 4).astype(np.uint8)
        for fill in (0, 1):
            _, tag_bits, out = _roundtrip(
                protocol, Mode.MODE_1, prod,
                lambda cap: np.full(cap, fill, np.uint8),
            )
            assert np.array_equal(out.tag_bits[: tag_bits.size], tag_bits)

    def test_mode3_single_productive_bit(self):
        rng = np.random.default_rng(5)
        cfg = OverlayConfig.for_mode(
            Protocol.WIFI_B, Mode.MODE_3, payload_symbols=120
        )
        codec = OverlayCodec(cfg)
        wave = codec.build_carrier(np.array([1], np.uint8))
        n_sym = wave.annotations["n_payload_symbols"]
        n_prod, n_tag = codec.capacity(n_sym)
        assert n_prod == 1
        assert n_tag == (cfg.kappa - 1) // cfg.gamma
        tag_bits = rng.integers(0, 2, n_tag).astype(np.uint8)
        mod = TagModulator(codec)
        rx = mod.received_at_shifted_channel(mod.modulate(wave, tag_bits))
        rx.annotations = dict(wave.annotations)
        out = OverlayDecoder(codec).decode(rx)
        assert out.productive_bits[0] == 1
        assert np.array_equal(out.tag_bits, tag_bits)

    def test_noisy_roundtrip_survives(self):
        rng = np.random.default_rng(6)
        prod = rng.integers(0, 2, 5).astype(np.uint8)
        _, tag_bits, out = _roundtrip(
            Protocol.WIFI_B, Mode.MODE_1, prod,
            lambda cap: rng.integers(0, 2, cap).astype(np.uint8),
            rng=rng, noise=0.05,
        )
        assert np.array_equal(out.tag_bits[: tag_bits.size], tag_bits)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property_ble(self, seed):
        rng = np.random.default_rng(seed)
        prod = rng.integers(0, 2, 4).astype(np.uint8)
        _, tag_bits, out = _roundtrip(
            Protocol.BLE, Mode.MODE_1, prod,
            lambda cap: rng.integers(0, 2, cap).astype(np.uint8),
        )
        assert np.array_equal(out.productive_bits[: prod.size], prod)
        assert np.array_equal(out.tag_bits[: tag_bits.size], tag_bits)


class TestFrequencyShift:
    def test_shift_tracked_in_annotations(self):
        codec = OverlayCodec(OverlayConfig.for_mode(Protocol.BLE, Mode.MODE_1))
        wave = codec.build_carrier(np.array([1, 0], np.uint8))
        mod = TagModulator(codec, frequency_shift_hz=10e6)
        bs = mod.modulate(wave, np.array([1], np.uint8))
        assert bs.center_offset_hz == pytest.approx(10e6)
        back = mod.received_at_shifted_channel(bs)
        assert back.center_offset_hz == pytest.approx(0.0)

    def test_protocol_mismatch_rejected(self):
        codec = OverlayCodec(OverlayConfig.for_mode(Protocol.BLE, Mode.MODE_1))
        wifi_codec = OverlayCodec(OverlayConfig.for_mode(Protocol.WIFI_B, Mode.MODE_1))
        wave = codec.build_carrier(np.array([1], np.uint8))
        with pytest.raises(ValueError):
            TagModulator(wifi_codec).modulate(wave, [1])


class TestGammaRobustness:
    def test_zigbee_gamma1_fails_where_gamma2_succeeds(self):
        """§2.4 'ZigBee': the half-chip offset damages the first
        modulated symbol, so gamma=1 tag bits are unreliable."""
        rng = np.random.default_rng(9)
        prod = rng.integers(0, 2, 6).astype(np.uint8)

        ok = {}
        for gamma, kappa in ((1, 2), (2, 4)):
            cfg = OverlayConfig(Protocol.ZIGBEE, kappa=kappa, gamma=gamma)
            codec = OverlayCodec(cfg)
            wave = codec.build_carrier(prod)
            n_sym = wave.annotations["n_payload_symbols"]
            _, cap = codec.capacity(n_sym)
            tag_bits = (np.arange(cap) % 2).astype(np.uint8)  # alternating
            mod = TagModulator(codec)
            rx = mod.received_at_shifted_channel(mod.modulate(wave, tag_bits))
            rx.annotations = dict(wave.annotations)
            out = OverlayDecoder(codec).decode(rx)
            ok[gamma] = np.mean(out.tag_bits[: tag_bits.size] == tag_bits)
        assert ok[2] >= ok[1]
        assert ok[2] == 1.0
