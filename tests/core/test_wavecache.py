"""Waveform/template cache behavior: LRU policy, stats, invalidation."""

import numpy as np
import pytest

from repro.core import wavecache
from repro.core.adc import Adc
from repro.core.identification import ProtocolIdentifier
from repro.core.templates import (
    _BANK_CACHE,
    _REFERENCE_CACHE,
    Template,
    TemplateBank,
    cached_bank,
    reference_waveform,
)
from repro.phy.protocols import Protocol


class TestLruCache:
    def test_hit_miss_counters(self):
        c = wavecache.LruCache(maxsize=4)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1, "maxsize": 4,
        }

    def test_lru_eviction_order(self):
        c = wavecache.LruCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a; b becomes LRU
        c.put("c", 3)
        assert "b" not in c and "a" in c and "c" in c
        assert c.evictions == 1

    def test_get_or_create_builds_once(self):
        c = wavecache.LruCache(maxsize=4)
        calls = []
        for _ in range(3):
            c.get_or_create("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1
        assert c.hits == 2 and c.misses == 1

    def test_clear_keeps_counters(self):
        c = wavecache.LruCache(maxsize=2)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0 and c.hits == 1

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            wavecache.LruCache(maxsize=0)


class TestRegistry:
    def test_cache_stats_covers_named_and_phy_caches(self):
        reference_waveform(Protocol.BLE)  # populate at least one entry
        stats = wavecache.cache_stats()
        assert "core.templates.reference_waveform" in stats
        assert "phy.wifi_b.cached_head" in stats
        assert "phy.wifi_n.l_stf" in stats
        for s in stats.values():
            assert set(s) == {"hits", "misses", "evictions", "size", "maxsize"}

    def test_clear_caches_empties_everything(self):
        reference_waveform(Protocol.ZIGBEE)
        assert len(_REFERENCE_CACHE) > 0
        wavecache.clear_caches()
        assert len(_REFERENCE_CACHE) == 0
        assert all(s["size"] == 0 for s in wavecache.cache_stats().values())


class TestReferenceWaveformCache:
    def test_copies_are_independent(self):
        a = reference_waveform(Protocol.BLE)
        b = reference_waveform(Protocol.BLE)
        assert a is not b and a.iq is not b.iq
        assert np.array_equal(a.iq, b.iq)
        a.iq[:] = 0.0
        a.annotations["poisoned"] = True
        c = reference_waveform(Protocol.BLE)
        assert np.any(c.iq != 0.0)
        assert "poisoned" not in c.annotations

    def test_distinct_payload_sizes_are_distinct_keys(self):
        a = reference_waveform(Protocol.ZIGBEE, n_payload_bytes=8)
        b = reference_waveform(Protocol.ZIGBEE, n_payload_bytes=16)
        assert a.n_samples != b.n_samples

    def test_cache_hits_recorded(self):
        wavecache.clear_caches()
        h0 = _REFERENCE_CACHE.hits
        reference_waveform(Protocol.WIFI_B)
        reference_waveform(Protocol.WIFI_B)
        assert _REFERENCE_CACHE.hits == h0 + 1


class TestCachedBank:
    def test_same_derivation_shares_one_bank(self):
        wavecache.clear_caches()  # empties entries; counters keep running
        m0, h0 = _BANK_CACHE.misses, _BANK_CACHE.hits
        a = cached_bank(Adc(sample_rate=2.5e6))
        b = cached_bank(Adc(sample_rate=2.5e6))
        assert a is b
        assert (_BANK_CACHE.misses - m0, _BANK_CACHE.hits - h0) == (1, 1)

    def test_derivation_params_are_part_of_the_key(self):
        base = cached_bank(Adc(sample_rate=2.5e6))
        assert cached_bank(Adc(sample_rate=5.0e6)) is not base
        assert cached_bank(
            Adc(sample_rate=2.5e6), incident_power_dbm=-20.0
        ) is not base
        assert cached_bank(
            Adc(sample_rate=2.5e6), protocols=(Protocol.BLE,)
        ) is not base

    def test_matches_uncached_build(self):
        cached = cached_bank(Adc(sample_rate=2.5e6))
        built = TemplateBank.build(Adc(sample_rate=2.5e6))
        assert cached.l_m == built.l_m
        for p in Protocol:
            assert np.array_equal(
                cached.templates[p].matching, built.templates[p].matching
            )

    def test_identifiers_share_the_cached_bank(self):
        wavecache.clear_caches()
        m0 = _BANK_CACHE.misses
        first = ProtocolIdentifier()
        second = ProtocolIdentifier()
        assert first.bank is second.bank
        assert _BANK_CACHE.misses - m0 == 1

    def test_registered_in_cache_stats(self):
        cached_bank(Adc(sample_rate=2.5e6))
        assert "core.templates.bank" in wavecache.cache_stats()


class TestStackedTemplates:
    def test_cached_and_invalidated_on_replacement(self):
        bank = TemplateBank.build(Adc(sample_rate=2.5e6))
        p1, m1 = bank.stacked(quantized=True)
        p2, m2 = bank.stacked(quantized=True)
        assert m1 is m2  # cache hit
        assert p1 == tuple(bank.templates)
        assert m1.shape == (len(bank.templates), bank.l_m)
        # Replacing a template must invalidate the stacked matrix.
        old = bank.templates[Protocol.BLE]
        bank.templates[Protocol.BLE] = Template(
            protocol=Protocol.BLE,
            l_p=old.l_p,
            matching=old.matching * -1.0,
            matching_q=old.matching_q * -1.0,
        )
        _, m3 = bank.stacked(quantized=True)
        assert m3 is not m1
        assert not np.array_equal(m3, m1)

    def test_quantized_and_full_coexist(self):
        bank = TemplateBank.build(Adc(sample_rate=2.5e6))
        _, mq = bank.stacked(quantized=True)
        _, mf = bank.stacked(quantized=False)
        _, mq2 = bank.stacked(quantized=True)
        assert mq is mq2  # alternating flags must not thrash
        assert mq.shape == mf.shape
