"""Tests for tag-side envelope-edge packet detection (§2.3 note 1)."""

import numpy as np
import pytest

from repro.core.identification import (
    DEFAULT_INCIDENT_DBM,
    IdentificationConfig,
    ProtocolIdentifier,
)
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.sim.traffic import random_packet


@pytest.fixture(scope="module")
def identifier():
    return ProtocolIdentifier(
        IdentificationConfig(
            sample_rate_hz=2.5e6, quantized=True, window_us=38.0, ordered=True
        )
    )


class TestDetectAndIdentify:
    def test_finds_edge_within_samples(self, identifier):
        rng = np.random.default_rng(0)
        wave = random_packet(Protocol.ZIGBEE, rng, n_payload_bytes=20)
        pad_adc = 150
        pad = int(pad_adc * wave.sample_rate / 2.5e6)
        stream = wave.padded(before=pad, after=200)
        res = identifier.detect_and_identify(
            stream,
            incident_power_dbm=DEFAULT_INCIDENT_DBM[Protocol.ZIGBEE],
            rng=np.random.default_rng(1),
        )
        assert res is not None
        start, result = res
        assert abs(start - pad_adc) <= 4
        assert result.decision is Protocol.ZIGBEE

    def test_mostly_correct_over_mixed_traffic(self, identifier):
        rng = np.random.default_rng(2)
        hits = 0
        total = 0
        for p in Protocol:
            for i in range(4):
                wave = random_packet(p, rng, n_payload_bytes=30)
                pad = int(rng.integers(20, 300) * wave.sample_rate / 2.5e6)
                stream = wave.padded(before=pad, after=100)
                res = identifier.detect_and_identify(
                    stream,
                    incident_power_dbm=DEFAULT_INCIDENT_DBM[p],
                    rng=np.random.default_rng(100 + total),
                )
                hits += res is not None and res[1].decision is p
                total += 1
        assert hits / total > 0.6

    def test_silence_returns_none(self, identifier):
        stream = Waveform.silence(2000, 2.5e6)
        res = identifier.detect_and_identify(
            stream, incident_power_dbm=-40.0, rng=np.random.default_rng(3)
        )
        assert res is None

    def test_too_short_stream_returns_none(self, identifier):
        stream = Waveform.silence(20, 2.5e6)
        assert (
            identifier.detect_and_identify(
                stream, incident_power_dbm=-20.0, rng=np.random.default_rng(4)
            )
            is None
        )
