"""Tests for the FPGA resource model (Tables 2/5) and energy model
(Tables 3/4)."""

import pytest

from repro.core.energy import (
    INDOOR_LUX,
    OUTDOOR_LUX,
    EnergyBudget,
    PowerBreakdown,
    PROTOTYPE_POWER,
    SolarHarvester,
    StorageCapacitor,
    exchange_times,
)
from repro.core.resources import (
    AGLN250_DFF,
    CorrelatorDesign,
    identification_luts,
    identification_power_mw,
    naive_correlator_dffs,
    quantized_correlator_dffs,
)
from repro.phy.protocols import Protocol


class TestTable2:
    def test_naive_per_protocol_dffs(self):
        # §2.3.1: 120 multipliers + 119 adders = 33,341 DFFs.
        res = naive_correlator_dffs(120, n_protocols=4)
        assert res["dffs_per_protocol"] == 33341
        assert res["dffs_total"] == 133364
        assert res["multipliers"] == 480
        assert res["adders"] == 476

    def test_naive_exceeds_agln250(self):
        assert naive_correlator_dffs(120)["dffs_total"] > AGLN250_DFF

    def test_quantized_fits_agln250(self):
        assert quantized_correlator_dffs(120) == 2860
        assert quantized_correlator_dffs(120) < AGLN250_DFF

    def test_design_point_fits(self):
        design = CorrelatorDesign(
            sample_rate_hz=2.5e6, window_us=40.0, quantized=True
        )
        assert design.fits_agln250()
        assert design.template_storage_bits == 400  # §2.3 note 2

    def test_naive_design_does_not_fit(self):
        design = CorrelatorDesign(
            sample_rate_hz=20e6, window_us=6.0, quantized=False
        )
        assert not design.fits_agln250()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            naive_correlator_dffs(0)
        with pytest.raises(ValueError):
            quantized_correlator_dffs(10, n_protocols=0)


class TestTable5:
    def test_reported_triples(self):
        # 20 Msps, 8 us window: 160 taps x 4 = 640.
        assert identification_luts(640, quantized=False) == pytest.approx(34751, rel=0.01)
        assert identification_luts(640, quantized=True) == pytest.approx(1574, rel=0.01)
        # 2.5 Msps, 40 us window: 100 taps x 4 = 400.
        assert identification_luts(400, quantized=True) == pytest.approx(1070, rel=0.01)

    def test_reported_powers(self):
        p_full = identification_power_mw(640, 20e6, quantized=False)
        p_q20 = identification_power_mw(640, 20e6, quantized=True)
        p_q25 = identification_power_mw(400, 2.5e6, quantized=True)
        assert p_full == pytest.approx(564, rel=0.05)
        assert p_q20 == pytest.approx(12, rel=0.1)
        assert p_q25 == pytest.approx(2, rel=0.15)

    def test_282x_power_reduction(self):
        # §3: "282x lower power than the naive implementation".
        p_full = identification_power_mw(640, 20e6, quantized=False)
        p_q25 = identification_power_mw(400, 2.5e6, quantized=True)
        assert p_full / p_q25 == pytest.approx(282, rel=0.15)


class TestTable3:
    def test_total_279_5_mw(self):
        assert PROTOTYPE_POWER.total_mw == pytest.approx(279.5)

    def test_rows_cover_total(self):
        assert sum(p for _, _, p in PROTOTYPE_POWER.rows()) == pytest.approx(
            PROTOTYPE_POWER.total_mw
        )

    def test_adc_scales_with_rate(self):
        slow = PROTOTYPE_POWER.at_adc_rate(2.5e6)
        assert slow.adc_mw == pytest.approx(260 / 8)
        assert slow.total_mw < PROTOTYPE_POWER.total_mw


class TestTable4:
    def test_capacitor_energy_50mj(self):
        cap = StorageCapacitor()
        assert cap.usable_energy_j == pytest.approx(50.25e-3, rel=0.01)

    def test_runtime_0_18s(self):
        budget = EnergyBudget()
        assert budget.runtime_per_charge_s == pytest.approx(0.18, abs=0.01)

    def test_packets_per_charge(self):
        budget = EnergyBudget()
        assert budget.packets_per_charge(2000) == pytest.approx(360, rel=0.02)
        assert budget.packets_per_charge(70) == pytest.approx(12.6, rel=0.02)
        assert budget.packets_per_charge(20) == pytest.approx(3.6, rel=0.02)

    def test_harvest_times(self):
        budget = EnergyBudget()
        assert budget.harvest_time_s(INDOOR_LUX) == pytest.approx(216.2, rel=0.01)
        assert budget.harvest_time_s(OUTDOOR_LUX) == pytest.approx(0.78, rel=0.01)

    def test_exchange_times_table(self):
        table = exchange_times()
        # Indoor: 216.2 s / 360 = 0.60 s for WiFi; 17.2 s BLE; 60 s ZigBee.
        assert table[Protocol.WIFI_N]["indoor_s"] == pytest.approx(0.60, abs=0.02)
        assert table[Protocol.BLE]["indoor_s"] == pytest.approx(17.2, abs=0.3)
        assert table[Protocol.ZIGBEE]["indoor_s"] == pytest.approx(60.1, abs=1.0)
        # Outdoor: 2.2 ms WiFi, 61.9 ms BLE.
        assert table[Protocol.WIFI_B]["outdoor_s"] == pytest.approx(2.2e-3, abs=0.2e-3)
        assert table[Protocol.BLE]["outdoor_s"] == pytest.approx(61.9e-3, rel=0.05)

    def test_harvester_power_monotone_in_lux(self):
        h = SolarHarvester()
        assert h.power_mw(1e5) > h.power_mw(1e3) > h.power_mw(100)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            StorageCapacitor().runtime_s(0)
        with pytest.raises(ValueError):
            SolarHarvester().power_mw(0)
        with pytest.raises(ValueError):
            EnergyBudget().packets_per_charge(0)
