"""Event-loop lag sanitizer: detection, thresholds, gateway wiring."""

import asyncio
import time

import numpy as np

from repro.core import loopwatch
from repro.core.loopwatch import LoopWatch


class TestEnablement:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(loopwatch.ENV_FLAG, raising=False)
        assert not loopwatch.enabled()
        assert loopwatch.maybe_start() is None

    def test_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv(loopwatch.ENV_FLAG, "0")
        assert not loopwatch.enabled()

    def test_enabled_by_flag(self, monkeypatch):
        monkeypatch.setenv(loopwatch.ENV_FLAG, "1")
        assert loopwatch.enabled()

    def test_threshold_parsing(self, monkeypatch):
        monkeypatch.setenv(loopwatch.ENV_THRESHOLD, "0.5")
        assert loopwatch.threshold_s() == 0.5
        monkeypatch.setenv(loopwatch.ENV_THRESHOLD, "garbage")
        assert loopwatch.threshold_s() == loopwatch.DEFAULT_THRESHOLD_S
        monkeypatch.setenv(loopwatch.ENV_THRESHOLD, "-1")
        assert loopwatch.threshold_s() == loopwatch.DEFAULT_THRESHOLD_S

    def test_maybe_start_returns_running_watch(self, monkeypatch):
        monkeypatch.setenv(loopwatch.ENV_FLAG, "1")

        async def run():
            watch = loopwatch.maybe_start()
            assert watch is not None
            await asyncio.sleep(0.03)
            return await watch.stop()

        stats = asyncio.run(run())
        assert stats.ticks >= 1


class TestLagDetection:
    def test_blocking_callback_counts_as_violation(self):
        async def run():
            watch = LoopWatch(interval_s=0.01, threshold=0.05)
            watch.start()
            await asyncio.sleep(0.02)
            time.sleep(0.12)  # monopolize the loop past the threshold
            await asyncio.sleep(0.02)
            return await watch.stop()

        stats = asyncio.run(run())
        assert stats.violations >= 1
        assert stats.max_lag_s >= 0.05

    def test_idle_loop_is_clean(self):
        async def run():
            watch = LoopWatch(interval_s=0.01, threshold=0.05)
            watch.start()
            await asyncio.sleep(0.05)
            return await watch.stop()

        stats = asyncio.run(run())
        assert stats.violations == 0
        assert stats.ticks >= 2

    def test_debug_mode_slow_callbacks_counted(self):
        # PYTHONASYNCIODEBUG's in-process equivalent: with loop debug
        # on, asyncio logs any callback slower than
        # slow_callback_duration; the watcher counts those records as
        # a second, independent signal.
        async def run():
            asyncio.get_running_loop().set_debug(True)
            watch = LoopWatch(interval_s=0.01, threshold=0.05)
            watch.start()  # aligns slow_callback_duration with 0.05
            await asyncio.sleep(0.02)
            time.sleep(0.12)
            await asyncio.sleep(0.02)
            return await watch.stop()

        stats = asyncio.run(run())
        assert stats.slow_callbacks >= 1

    def test_stop_is_idempotent_and_detaches(self):
        async def run():
            watch = LoopWatch(interval_s=0.01, threshold=0.05)
            watch.start()
            await asyncio.sleep(0.02)
            first = await watch.stop()
            second = await watch.stop()
            return first, second

        first, second = asyncio.run(run())
        assert first is second or first == second


class TestGatewayIntegration:
    def test_serve_records_loopwatch_stats(self, monkeypatch):
        monkeypatch.setenv(loopwatch.ENV_FLAG, "1")
        from repro.gateway import AsyncExcitationSource, Gateway, GatewayConfig
        from repro.phy.protocols import Protocol
        from repro.sim.traffic import ExcitationSource

        async def run():
            gw = Gateway(GatewayConfig(seed=3, keepalive_timeout_s=30.0))
            await gw.register_tag("t")
            source = AsyncExcitationSource(
                [
                    ExcitationSource(protocol=p, rate_pkts=200.0, periodic=False)
                    for p in Protocol
                ],
                duration_s=0.2,
                rng=np.random.default_rng(5),
                max_packets=6,
            )
            return await gw.serve(source)

        stats = asyncio.run(run())
        # A healthy short run must come out violation-free; the fields
        # exist precisely so CI can assert this.
        assert stats.loopwatch_violations == 0
        assert stats.loopwatch_max_lag_s >= 0.0
        assert stats.drained_clean
