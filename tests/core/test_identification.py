"""Tests for templates, matching, and end-to-end identification."""

import numpy as np
import pytest

from repro.core.adc import Adc
from repro.core.identification import (
    DEFAULT_INCIDENT_DBM,
    IdentificationConfig,
    ProtocolIdentifier,
    evaluate_identifier,
)
from repro.core.matching import (
    BlindMatcher,
    OrderedMatcher,
    dc_estimate,
    score_capture,
    search_thresholds,
)
from repro.core.templates import TemplateBank, reference_waveform
from repro.phy.protocols import Protocol
from repro.sim.traffic import random_packet


@pytest.fixture(scope="module")
def traces():
    rng = np.random.default_rng(7)
    out = []
    for p in Protocol:
        for _ in range(8):
            out.append((p, random_packet(p, rng, n_payload_bytes=30)))
    return out


class TestTemplates:
    def test_bank_has_all_protocols(self):
        bank = TemplateBank.build(Adc(sample_rate=20e6))
        assert set(bank.templates) == set(Protocol)

    def test_window_sizes(self):
        bank = TemplateBank.build(
            Adc(sample_rate=20e6), window_us=6.0, preprocess_us=2.0
        )
        assert bank.l_p == 40
        assert bank.l_m == 120

    def test_templates_normalized(self):
        bank = TemplateBank.build(Adc(sample_rate=10e6))
        for t in bank.templates.values():
            assert np.linalg.norm(t.matching) == pytest.approx(1.0, abs=1e-6)
            assert set(np.unique(t.matching_q)) <= {-1.0, 1.0}

    def test_storage_within_agln250_budget(self):
        """§2.3 note 2: extended templates cost ~400 bits, ~1% of the
        36 kb on-tag storage."""
        bank = TemplateBank.build(Adc(sample_rate=2.5e6), window_us=38.0)
        bits = bank.total_storage_bits()
        assert bits <= 0.02 * 36 * 1024
        assert bits == 4 * 95

    def test_reference_waveforms_deterministic(self):
        for p in Protocol:
            a = reference_waveform(p)
            b = reference_waveform(p)
            assert np.array_equal(a.iq, b.iq)

    def test_templates_mutually_distinguishable(self):
        bank = TemplateBank.build(Adc(sample_rate=20e6), window_us=6.0)
        temps = list(bank.templates.values())
        for i, a in enumerate(temps):
            for b in temps[i + 1 :]:
                assert abs(np.dot(a.matching, b.matching)) < 0.8


class TestMatching:
    def test_dc_estimate_uses_settled_half(self):
        ramp = np.concatenate([np.linspace(0, 1, 10), np.ones(10)])
        assert dc_estimate(ramp) == pytest.approx(1.0)

    def test_blind_matcher_argmax(self):
        scores = {Protocol.BLE: 0.2, Protocol.ZIGBEE: 0.9, Protocol.WIFI_B: 0.1,
                  Protocol.WIFI_N: 0.0}
        assert BlindMatcher().decide(scores) is Protocol.ZIGBEE

    def test_ordered_matcher_first_pass_wins(self):
        # ZigBee is tested first: it wins despite a higher BLE score.
        matcher = OrderedMatcher()
        scores = {Protocol.ZIGBEE: 0.7, Protocol.BLE: 0.9, Protocol.WIFI_B: 0.0,
                  Protocol.WIFI_N: 0.0}
        assert matcher.decide(scores) is Protocol.ZIGBEE

    def test_ordered_matcher_falls_back_to_argmax(self):
        matcher = OrderedMatcher(
            order=tuple(Protocol), thresholds=(0.99, 0.99, 0.99, 0.99)
        )
        scores = {p: 0.1 for p in Protocol}
        scores[Protocol.WIFI_N] = 0.3
        assert matcher.decide(scores) is Protocol.WIFI_N

    def test_ordered_matcher_validates_lengths(self):
        with pytest.raises(ValueError):
            OrderedMatcher(order=tuple(Protocol), thresholds=(0.5,))

    def test_score_capture_perfect_match_is_one(self):
        bank = TemplateBank.build(Adc(sample_rate=20e6), window_us=6.0)
        wave = reference_waveform(Protocol.WIFI_N)
        from repro.core.rectifier import ClampRectifier

        rect = ClampRectifier(noise_v_rms=0.0)
        analog = rect.rectify(wave, -15.0)
        cap = bank.adc.capture(analog, duration_s=200 / 20e6)
        scores = score_capture(cap.codes, bank, quantized=False, offsets=(0,))
        assert scores[Protocol.WIFI_N] > 0.98

    def test_search_thresholds_improves_or_matches(self):
        rng = np.random.default_rng(0)
        labeled = []
        for p in Protocol:
            for _ in range(5):
                scores = {q: rng.uniform(0, 0.3) for q in Protocol}
                scores[p] = rng.uniform(0.5, 1.0)
                labeled.append((p, scores))
        matcher, acc = search_thresholds(labeled)
        assert acc > 0.95


class TestIdentification:
    def test_high_accuracy_at_20msps(self, traces):
        ident = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=20e6, window_us=6.0)
        )
        report = evaluate_identifier(ident, traces, rng=np.random.default_rng(1))
        assert report.average > 0.95

    def test_extended_window_beats_base_at_2p5msps(self, traces):
        base = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=2.5e6, quantized=True, window_us=6.0)
        )
        ext = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=2.5e6, quantized=True, window_us=38.0)
        )
        r_base = evaluate_identifier(base, traces, rng=np.random.default_rng(2))
        r_ext = evaluate_identifier(ext, traces, rng=np.random.default_rng(2))
        assert r_ext.average > r_base.average

    def test_1msps_collapses(self, traces):
        ident = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=1e6, quantized=True, window_us=38.0)
        )
        report = evaluate_identifier(ident, traces, rng=np.random.default_rng(3))
        assert report.average < 0.8

    def test_confusion_counts_sum_to_traces(self, traces):
        ident = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=10e6, quantized=True, window_us=6.0)
        )
        report = evaluate_identifier(ident, traces, rng=np.random.default_rng(4))
        assert sum(report.confusion.values()) == len(traces)

    def test_identify_returns_scores(self):
        ident = ProtocolIdentifier(
            IdentificationConfig(sample_rate_hz=10e6, window_us=6.0)
        )
        wave = random_packet(Protocol.ZIGBEE, np.random.default_rng(0))
        result = ident.identify(
            wave,
            incident_power_dbm=DEFAULT_INCIDENT_DBM[Protocol.ZIGBEE],
            rng=np.random.default_rng(5),
        )
        assert set(result.scores) == set(Protocol)
        assert result.decision is Protocol.ZIGBEE


class TestBleChannelHopping:
    def test_identification_is_channel_agnostic(self):
        """BLE advertising hops channels 37/38/39; whitening differs per
        channel but only affects the PDU, not the preamble+access
        address the extended template matches (§2.3.2)."""
        from repro.phy import ble

        ident = ProtocolIdentifier(
            IdentificationConfig(
                sample_rate_hz=2.5e6, quantized=True, window_us=38.0
            )
        )
        rng = np.random.default_rng(0)
        accuracy = {}
        for channel in (37, 38, 39):
            hits = 0
            for i in range(6):
                payload = rng.integers(0, 256, 24, dtype=np.uint8).tobytes()
                wave = ble.modulate(payload, ble.BleConfig(channel=channel))
                result = ident.identify(
                    wave,
                    incident_power_dbm=DEFAULT_INCIDENT_DBM[Protocol.BLE],
                    rng=np.random.default_rng(10 * channel + i),
                )
                hits += result.decision is Protocol.BLE
            accuracy[channel] = hits / 6
        # BLE is the weakest protocol at 2.5 Msps (paper: 81.8%), but
        # accuracy must not depend on the whitening channel.
        assert all(a >= 0.5 for a in accuracy.values()), accuracy
        assert max(accuracy.values()) - min(accuracy.values()) <= 0.5
