"""Tests for the throughput model, tag state machines, carrier
selection, and the FEC extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.carrier_select import CarrierSelector, diversity_timeline
from repro.core.fec import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)
from repro.core.overlay import Mode
from repro.core.tag import MultiscatterTag, SingleProtocolTag
from repro.core.throughput import OverlayThroughputModel, payload_symbols
from repro.phy.protocols import Protocol
from repro.sim.traffic import ExcitationSchedule, ExcitationSource, random_packet


class TestThroughputModel:
    def test_payload_symbols_per_protocol(self):
        assert payload_symbols(Protocol.WIFI_B, 300) == 2400
        assert payload_symbols(Protocol.BLE, 255) == 2040
        assert payload_symbols(Protocol.ZIGBEE, 127) == 254
        assert payload_symbols(Protocol.WIFI_N, 300) == 94

    def test_mode1_split_roughly_even(self):
        # Fig 12 mode 1: productive ~= tag throughput.
        for p in Protocol:
            model = OverlayThroughputModel(p, mode=Mode.MODE_1)
            point = model.evaluate(2.0)
            assert point.tag_kbps == pytest.approx(point.productive_kbps, rel=0.05)

    def test_mode2_triples_tag_share(self):
        for p in Protocol:
            model = OverlayThroughputModel(p, mode=Mode.MODE_2)
            point = model.evaluate(2.0)
            assert point.tag_kbps == pytest.approx(3 * point.productive_kbps, rel=0.1)

    def test_mode3_maximizes_tag_share(self):
        m1 = OverlayThroughputModel(Protocol.WIFI_B, mode=Mode.MODE_1).evaluate(2.0)
        m3 = OverlayThroughputModel(Protocol.WIFI_B, mode=Mode.MODE_3).evaluate(2.0)
        assert m3.tag_kbps > m1.tag_kbps
        assert m3.productive_kbps < 2.0  # ~1 bit per packet

    def test_fig12_aggregate_ordering(self):
        # BLE > 802.11b > 802.11n > ZigBee in mode-1 aggregate.
        agg = {
            p: OverlayThroughputModel(p, mode=Mode.MODE_1).evaluate(2.0).aggregate_kbps
            for p in Protocol
        }
        assert agg[Protocol.BLE] > agg[Protocol.WIFI_B] > agg[Protocol.WIFI_N] > agg[Protocol.ZIGBEE]

    def test_fig12_magnitudes(self):
        # Paper: 11b 219.8, ZigBee 26.2 kbps aggregates.
        b = OverlayThroughputModel(Protocol.WIFI_B, mode=Mode.MODE_1).evaluate(2.0)
        z = OverlayThroughputModel(Protocol.ZIGBEE, mode=Mode.MODE_1).evaluate(2.0)
        assert b.aggregate_kbps == pytest.approx(219.8, rel=0.1)
        assert z.aggregate_kbps == pytest.approx(26.2, rel=0.1)

    def test_throughput_collapses_past_max_range(self):
        model = OverlayThroughputModel(Protocol.BLE, mode=Mode.MODE_1)
        assert model.evaluate(30.0).aggregate_kbps < 0.05 * model.evaluate(2.0).aggregate_kbps

    def test_sweep_monotone_nonincreasing(self):
        model = OverlayThroughputModel(Protocol.ZIGBEE, mode=Mode.MODE_1)
        points = model.sweep(np.array([2.0, 10.0, 18.0, 26.0]))
        aggs = [p.aggregate_kbps for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(aggs, aggs[1:]))


class TestTags:
    @pytest.fixture(scope="class")
    def tag(self):
        return MultiscatterTag()

    def test_multiscatter_reacts_to_all_protocols(self, tag):
        rng = np.random.default_rng(0)
        for p in Protocol:
            wave = random_packet(p, rng, n_payload_bytes=30)
            reaction = tag.react(wave, [1, 0, 1], rng=np.random.default_rng(1))
            if reaction.correct:
                assert reaction.backscattered is not None
                assert reaction.identified is p

    def test_multiscatter_mostly_correct(self, tag):
        rng = np.random.default_rng(2)
        hits = 0
        n = 0
        for p in Protocol:
            for i in range(5):
                wave = random_packet(p, rng, n_payload_bytes=30)
                r = tag.react(wave, [1], rng=np.random.default_rng(50 + i))
                hits += r.correct
                n += 1
        assert hits / n > 0.7

    def test_single_protocol_tag_idles_on_others(self):
        tag = SingleProtocolTag(Protocol.WIFI_B)
        rng = np.random.default_rng(3)
        ble = random_packet(Protocol.BLE, rng, n_payload_bytes=10)
        r = tag.react(ble, [1, 1])
        assert not r.transmitted
        wifi = random_packet(Protocol.WIFI_B, rng, n_payload_bytes=10)
        r = tag.react(wifi, [1, 1])
        assert r.transmitted


class TestCarrierSelection:
    def test_picks_highest_goodput(self):
        selector = CarrierSelector()
        rates = {Protocol.WIFI_N: 2000.0, Protocol.WIFI_B: 50.0}
        best, estimates = selector.pick(rates, goal_kbps=6.3)
        assert best is Protocol.WIFI_N
        assert estimates[0].tag_goodput_kbps >= 6.3

    def test_spotty_carrier_fails_goal(self):
        # Fig 18b: spotty 802.11b cannot meet the 6.3 kbps goal.
        selector = CarrierSelector()
        est = selector.estimate(Protocol.WIFI_B, observed_rate_pkts=2.0)
        assert est.tag_goodput_kbps < 6.3

    def test_no_carrier_returns_none(self):
        selector = CarrierSelector()
        best, _ = selector.pick({Protocol.ZIGBEE: 1.0}, goal_kbps=50.0)
        assert best is None

    def test_diversity_timeline_multiscatter_covers_more(self):
        rng = np.random.default_rng(4)
        sources = [
            ExcitationSource(Protocol.WIFI_B, rate_pkts=200, duty_cycle=0.5,
                             period_s=0.4, phase_s=0.0),
            ExcitationSource(Protocol.WIFI_N, rate_pkts=200, duty_cycle=0.5,
                             period_s=0.4, phase_s=0.2),
        ]
        sched = ExcitationSchedule.generate(sources, duration_s=2.0, rng=rng)
        multi = diversity_timeline(sched, tag_protocols=tuple(Protocol))
        single = diversity_timeline(sched, tag_protocols=(Protocol.WIFI_N,))
        active_multi = np.mean(multi["tag_kbps"] > 0)
        active_single = np.mean(single["tag_kbps"] > 0)
        assert active_multi > 0.9
        assert active_single < 0.7


class TestFec:
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64))
    @settings(max_examples=30)
    def test_hamming_round_trip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        decoded = hamming74_decode(hamming74_encode(arr))
        assert np.array_equal(decoded[: arr.size], arr)

    def test_hamming_corrects_single_error_per_block(self):
        data = np.array([1, 0, 1, 1, 0, 0, 1, 0], np.uint8)
        coded = hamming74_encode(data)
        for pos in range(7):
            corrupted = coded.copy()
            corrupted[pos] ^= 1
            assert np.array_equal(hamming74_decode(corrupted)[:8], data)

    def test_hamming_rejects_bad_length(self):
        with pytest.raises(ValueError):
            hamming74_decode(np.zeros(6, np.uint8))

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=32),
           st.integers(1, 7))
    @settings(max_examples=30)
    def test_repetition_round_trip(self, bits, n):
        arr = np.array(bits, dtype=np.uint8)
        assert np.array_equal(repetition_decode(repetition_encode(arr, n), n), arr)

    def test_repetition_majority_fixes_minority_errors(self):
        coded = repetition_encode(np.array([1, 0], np.uint8), 5)
        coded[0] ^= 1  # one of five copies flipped
        coded[9] ^= 1
        assert np.array_equal(repetition_decode(coded, 5), [1, 0])


class TestFadedThroughput:
    def test_fading_degrades_at_range(self):
        import numpy as np

        from repro.core.overlay import Mode
        from repro.core.throughput import OverlayThroughputModel
        from repro.phy.protocols import Protocol

        rng = np.random.default_rng(0)
        model = OverlayThroughputModel(Protocol.BLE, mode=Mode.MODE_1)
        flat = model.evaluate(15.0)
        faded = model.evaluate_faded(15.0, rng)
        # Fading softens the PER cliff: worse at mid-range.
        assert faded.aggregate_kbps < flat.aggregate_kbps

    def test_fading_negligible_at_short_range(self):
        import numpy as np

        from repro.core.overlay import Mode
        from repro.core.throughput import OverlayThroughputModel
        from repro.phy.protocols import Protocol

        rng = np.random.default_rng(1)
        model = OverlayThroughputModel(Protocol.WIFI_B, mode=Mode.MODE_1)
        flat = model.evaluate(2.0)
        faded = model.evaluate_faded(2.0, rng)
        assert faded.aggregate_kbps == pytest.approx(flat.aggregate_kbps, rel=0.05)


class TestZigbeeFcs:
    def test_fcs_round_trip(self):
        from repro.phy import bits as bitlib
        from repro.phy import zigbee

        payload = bytes(range(10))
        wave = zigbee.modulate(payload, include_fcs=True)
        result = zigbee.demodulate(wave)
        assert result.fcs_ok is True
        assert bitlib.bytes_from_bits(result.payload_bits) == payload

    def test_fcs_detects_corruption(self):
        from repro.phy import zigbee

        wave = zigbee.modulate(b"\x01\x02\x03\x04", include_fcs=True)
        start = wave.annotations["payload_start"]
        wave.iq[start + 40 : start + 300] *= -1.0
        assert zigbee.demodulate(wave).fcs_ok is False

    def test_no_fcs_reports_none(self):
        from repro.phy import zigbee

        wave = zigbee.modulate(b"\x01\x02")
        assert zigbee.demodulate(wave).fcs_ok is None
