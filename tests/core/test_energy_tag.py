"""Tests for the energy-gated tag lifecycle."""

import numpy as np
import pytest

from repro.core.energy import EnergyBudget
from repro.core.energy_tag import EnergyAwareTag
from repro.core.tag import SingleProtocolTag
from repro.phy.protocols import Protocol
from repro.sim.traffic import ExcitationSchedule, ExcitationSource


def _make(lux=500.0, start_full=True):
    return EnergyAwareTag(
        SingleProtocolTag(Protocol.WIFI_B),
        budget=EnergyBudget(),
        lux=lux,
        start_full=start_full,
    )


def _schedule(rate=100.0, duration=1.0, seed=0):
    rng = np.random.default_rng(seed)
    src = ExcitationSource(Protocol.WIFI_B, rate_pkts=rate, n_payload_bytes=100)
    return ExcitationSchedule.generate([src], duration, rng)


class TestChargeState:
    def test_full_tag_reacts(self):
        tag = _make()
        assert tag.can_react(0.0, 1e-3)

    def test_empty_tag_is_dark(self):
        tag = _make(start_full=False)
        assert not tag.can_react(0.0, 1e-3)

    def test_empty_tag_recharges_indoor(self):
        tag = _make(start_full=False)
        # Indoor recharge takes ~216 s (Table 4).
        assert not tag.can_react(100.0, 1e-3)
        assert tag.can_react(220.0, 1e-3)

    def test_outdoor_recharges_fast(self):
        tag = _make(lux=1.04e5, start_full=False)
        assert tag.can_react(1.0, 1e-3)

    def test_depletion_enters_charging(self):
        tag = _make()
        # Burn the whole 50 mJ with one enormous fake airtime.
        runtime = tag.budget.runtime_per_charge_s
        tag._advance(0.0)
        tag.stored_j = tag.active_power_w * 1e-3  # nearly flat
        assert tag.can_react(0.0, 1e-3)
        tag.stored_j = 0.0
        tag._charging = True
        assert not tag.can_react(0.001, 1e-3)
        assert runtime == pytest.approx(0.18, abs=0.01)


class TestTimeline:
    def test_indoor_timeline_mostly_dark(self):
        tag = _make(lux=500.0, start_full=False)
        timeline = tag.timeline(_schedule(rate=100.0, duration=10.0))
        # 10 s indoor: one recharge takes 216 s, so nothing happens.
        assert timeline.n_reacted == 0

    def test_full_charge_supports_runtime_of_packets(self):
        tag = _make(lux=500.0, start_full=True)
        timeline = tag.timeline(_schedule(rate=200.0, duration=5.0))
        # One 50 mJ charge at 279.5 mW buys ~0.18 s of airtime; 100-byte
        # 802.11b packets last ~0.99 ms, so ~180 packets fit before the
        # tag goes dark (indoor recharge takes far longer than 5 s).
        assert 150 <= timeline.n_reacted <= 220
        # The first packets get served, later ones find the tag dark.
        assert timeline.reacted[0]
        assert not timeline.reacted[-1]

    def test_outdoor_keeps_duty_high(self):
        indoor = _make(lux=500.0).timeline(_schedule(rate=50.0, duration=20.0))
        outdoor = _make(lux=1.04e5).timeline(_schedule(rate=50.0, duration=20.0, seed=1))
        assert outdoor.duty_cycle > indoor.duty_cycle

    def test_stored_energy_never_negative_or_overfull(self):
        tag = _make(lux=1e4, start_full=True)
        timeline = tag.timeline(_schedule(rate=300.0, duration=10.0))
        arr = np.array(timeline.stored_j)
        assert (arr >= -1e-12).all()
        assert (arr <= tag.budget.capacitor.usable_energy_j + 1e-12).all()


class TestReactIntegration:
    def test_react_returns_none_when_dark(self):
        from repro.sim.traffic import random_packet

        tag = _make(start_full=False)
        wave = random_packet(Protocol.WIFI_B, np.random.default_rng(0), n_payload_bytes=10)
        assert tag.react(0.0, wave, [1, 0]) is None

    def test_react_consumes_energy(self):
        from repro.sim.traffic import random_packet

        tag = _make(start_full=True)
        wave = random_packet(Protocol.WIFI_B, np.random.default_rng(0), n_payload_bytes=10)
        before = tag.stored_j
        reaction = tag.react(0.0, wave, [1, 0])
        assert reaction is not None
        assert tag.stored_j < before
