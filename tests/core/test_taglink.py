"""Tests for the tag-data link layer (framing + reassembly)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.taglink import (
    FrameDecoder,
    TagFrame,
    TagLinkConfig,
    crc8,
    encode_message,
)


class TestFraming:
    def test_frame_bit_budget(self):
        cfg = TagLinkConfig(frame_payload_bits=16)
        assert cfg.frame_bits == 8 + 16 + 8

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TagLinkConfig(frame_payload_bits=0)
        with pytest.raises(ValueError):
            TagLinkConfig(frame_payload_bits=999)

    def test_oversized_payload_rejected(self):
        cfg = TagLinkConfig(frame_payload_bits=8)
        frame = TagFrame(seq=0, payload_bits=np.ones(12, np.uint8))
        with pytest.raises(ValueError):
            frame.to_bits(cfg)

    def test_message_splits_into_frames(self):
        frames = encode_message(b"\x01\x02\x03\x04")  # 32 bits / 16
        assert len(frames) == 2
        assert all(f.size == TagLinkConfig().frame_bits for f in frames)

    def test_crc8_sensitivity(self):
        bits = np.ones(24, np.uint8)
        a = crc8(bits)
        bits[5] ^= 1
        assert crc8(bits) != a


class TestReassembly:
    @given(st.binary(min_size=1, max_size=24))
    @settings(max_examples=25)
    def test_lossless_round_trip(self, message):
        decoder = FrameDecoder()
        for frame in encode_message(message):
            assert decoder.push(frame)
        assert decoder.message_bytes()[: len(message)] == message
        assert decoder.n_rejected == 0

    def test_corrupted_frame_dropped(self):
        frames = encode_message(b"\xaa\xbb\xcc\xdd")
        decoder = FrameDecoder()
        frames[0][10] ^= 1  # corrupt one bit
        assert not decoder.push(frames[0])
        assert decoder.push(frames[1])
        assert decoder.n_rejected == 1
        assert decoder.received_seqs == [1]
        assert decoder.missing_seqs() == [0]

    def test_out_of_order_delivery(self):
        message = b"\x11\x22\x33\x44\x55\x66"
        frames = encode_message(message)
        decoder = FrameDecoder()
        for frame in reversed(frames):
            assert decoder.push(frame)
        assert decoder.message_bytes()[: len(message)] == message

    def test_duplicate_frames_idempotent(self):
        frames = encode_message(b"\x42\x43\x44\x45")
        decoder = FrameDecoder()
        for frame in frames + frames:
            decoder.push(frame)
        assert decoder.message_bytes()[:4] == b"\x42\x43\x44\x45"

    def test_short_input_rejected(self):
        decoder = FrameDecoder()
        assert not decoder.push(np.ones(4, np.uint8))
        assert decoder.n_rejected == 1


class TestOverTheAir:
    def test_frames_survive_overlay_channel(self):
        """Frames ride real overlay packets end to end."""
        from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
        from repro.core.overlay_decoder import OverlayDecoder
        from repro.core.tag_modulation import TagModulator
        from repro.phy.protocols import Protocol

        rng = np.random.default_rng(0)
        message = b"HELLO WORLD!"
        frames = encode_message(message)
        codec = OverlayCodec(OverlayConfig.for_mode(Protocol.BLE, Mode.MODE_1))
        modulator = TagModulator(codec)
        decoder = FrameDecoder()

        for frame in frames:
            productive = rng.integers(0, 2, 40).astype(np.uint8)
            carrier = codec.build_carrier(productive)
            backscattered = modulator.modulate(carrier, frame)
            received = modulator.received_at_shifted_channel(backscattered)
            received.annotations = dict(carrier.annotations)
            out = OverlayDecoder(codec).decode(received)
            decoder.push(out.tag_bits[: frame.size])

        assert decoder.message_bytes()[: len(message)] == message
        assert decoder.n_rejected == 0
