"""Property tests on tag-side modulation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
from repro.core.tag_modulation import TagModulator
from repro.phy.protocols import Protocol


def _setup(protocol, seed):
    rng = np.random.default_rng(seed)
    codec = OverlayCodec(OverlayConfig.for_mode(protocol, Mode.MODE_1))
    prod = rng.integers(0, 2, 6).astype(np.uint8)
    carrier = codec.build_carrier(prod)
    _, cap = codec.capacity(carrier.annotations["n_payload_symbols"])
    tag_bits = rng.integers(0, 2, cap).astype(np.uint8)
    return codec, carrier, tag_bits


class TestModulationInvariants:
    @pytest.mark.parametrize(
        "protocol", [Protocol.WIFI_N, Protocol.ZIGBEE, Protocol.WIFI_B]
    )
    def test_psk_flip_is_involution(self, protocol):
        """Applying the same PSK flip pattern twice restores the
        carrier exactly -- the tag's switch has no memory beyond its
        phase state."""
        codec, carrier, tag_bits = _setup(protocol, seed=1)
        mod = TagModulator(codec, frequency_shift_hz=0.0)
        once = mod.modulate(carrier, tag_bits)
        twice = mod.modulate(once, tag_bits)
        assert np.allclose(twice.iq, carrier.iq, atol=1e-12)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_zero_bits_leave_waveform_unchanged(self, protocol):
        codec, carrier, tag_bits = _setup(protocol, seed=2)
        mod = TagModulator(codec, frequency_shift_hz=0.0)
        out = mod.modulate(carrier, np.zeros_like(tag_bits))
        assert np.allclose(out.iq, carrier.iq, atol=1e-12)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_modulation_preserves_power(self, protocol):
        """Phase flips and spectral mirrors are unit-modulus operations:
        the tag adds no energy."""
        codec, carrier, tag_bits = _setup(protocol, seed=3)
        mod = TagModulator(codec, frequency_shift_hz=0.0)
        out = mod.modulate(carrier, tag_bits)
        assert out.mean_power() == pytest.approx(carrier.mean_power(), rel=1e-6)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_length_preserved(self, protocol):
        codec, carrier, tag_bits = _setup(protocol, seed=4)
        mod = TagModulator(codec)
        out = mod.modulate(carrier, tag_bits)
        assert out.n_samples == carrier.n_samples

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_shift_then_unshift_is_identity(self, seed):
        codec, carrier, tag_bits = _setup(Protocol.BLE, seed=seed)
        mod = TagModulator(codec, frequency_shift_hz=10e6)
        shifted = mod.modulate(carrier, np.zeros_like(tag_bits))
        back = mod.received_at_shifted_channel(shifted)
        assert np.allclose(back.iq, carrier.iq, atol=1e-9)
        assert back.center_offset_hz == pytest.approx(0.0)
