"""Property tests for the runtime array-contract decorators.

Two guarantees under test:

1. **Zero overhead when disabled** — with ``REPRO_CONTRACTS`` unset the
   decorators return the *original function object*, so decorated PHY
   entry points pay nothing (not even a wrapper frame).
2. **Real validation when enabled** — :func:`repro.core.contracts.checked`
   (and decorators applied while enabled) reject wrong dtypes and
   shapes with :class:`ContractError`, and accept conforming arrays.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import contracts
from repro.core.contracts import ContractError, checked, dtypes, shapes


@pytest.fixture
def contracts_disabled(monkeypatch):
    monkeypatch.setattr(contracts, "_ENABLED", False)


@pytest.fixture
def contracts_enabled(monkeypatch):
    monkeypatch.setattr(contracts, "_ENABLED", True)


# ----------------------------------------------------------------------
# 1. zero overhead when disabled
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    contracts.enabled(),
    reason="REPRO_CONTRACTS=1: decorators legitimately wrap in this environment",
)
class TestDisabledIsNoOp:
    @given(spec=st.sampled_from(["n -> n", "n_sym,64 -> n_sym*80", "a ; b ->", "n_bits ->"]))
    @settings(max_examples=20)
    def test_shapes_returns_original_function(self, spec):
        def fn(x):
            return x

        assert shapes(spec)(fn) is fn

    @given(
        dt=st.sampled_from([np.uint8, np.float64, np.complex128, None]),
        out=st.sampled_from([np.complex128, None]),
    )
    @settings(max_examples=20)
    def test_dtypes_returns_original_function(self, dt, out):
        def fn(x):
            return x

        assert dtypes(dt, out=out)(fn) is fn

    @given(n=st.integers(min_value=0, max_value=256))
    @settings(max_examples=25)
    def test_decorated_call_is_identity_on_any_input(self, n):
        # Even shape-violating arrays sail through when disabled:
        # the decorator never sees the call.
        @shapes("m,64 -> m")
        @dtypes(np.complex128)
        def fn(x):
            return x

        arr = np.zeros(n, dtype=np.uint8)  # wrong dtype AND wrong rank
        assert fn(arr) is arr

    def test_malformed_spec_still_fails_fast(self):
        # The fail-fast parse runs even when disabled, so typos in
        # contracts surface at import time rather than never.
        with pytest.raises(ValueError):
            shapes("n ;; -> n")

    def test_phy_entry_points_are_unwrapped(self):
        # The shipped decorators were applied at import time with
        # checking off, so the public kernels are bare functions.
        from repro.phy import zigbee

        assert not hasattr(zigbee.symbols_from_bits, "__wrapped__")


# ----------------------------------------------------------------------
# 2. validation when enabled
# ----------------------------------------------------------------------
class TestEnabledValidates:
    @given(n_sym=st.integers(min_value=1, max_value=32))
    @settings(max_examples=25)
    def test_conforming_shapes_pass(self, n_sym):
        fn = checked(lambda x: np.zeros(80 * len(x)), shape="n_sym,64 -> n_sym*80")
        out = fn(np.zeros((n_sym, 64)))
        assert out.shape == (80 * n_sym,)

    @given(bad=st.integers(min_value=1, max_value=128).filter(lambda v: v != 64))
    @settings(max_examples=25)
    def test_wrong_fixed_dimension_rejected(self, bad):
        fn = checked(lambda x: x, shape="n_sym,64 ->")
        with pytest.raises(ContractError, match="contract requires 64"):
            fn(np.zeros((3, bad)))

    def test_wrong_rank_rejected(self):
        fn = checked(lambda x: x, shape="n,64 ->")
        with pytest.raises(ContractError, match="dimension"):
            fn(np.zeros(64))

    def test_symbol_consistency_enforced(self):
        fn = checked(lambda a, b: a, shape="n ; n ->")
        fn(np.zeros(5), np.zeros(5))
        with pytest.raises(ContractError, match="conflicts"):
            fn(np.zeros(5), np.zeros(6))

    def test_output_expression_checked(self):
        fn = checked(lambda x: np.zeros(2 * len(x)), shape="n -> n*3")
        with pytest.raises(ContractError, match="n\\*3"):
            fn(np.zeros(4))

    @given(
        wrong=st.sampled_from([np.float32, np.complex64, np.int32, np.uint16])
    )
    @settings(max_examples=10)
    def test_wrong_dtype_rejected(self, wrong):
        fn = checked(lambda x: x, arg_dtypes=(np.complex128,))
        with pytest.raises(ContractError, match="dtype"):
            fn(np.zeros(8, dtype=wrong))

    def test_right_dtype_and_output_dtype_pass(self):
        fn = checked(
            lambda x: x.astype(np.complex128),
            arg_dtypes=(np.uint8,),
            out=np.complex128,
        )
        out = fn(np.zeros(8, dtype=np.uint8))
        assert out.dtype == np.complex128

    def test_wrong_output_dtype_rejected(self):
        fn = checked(lambda x: x.astype(np.float32), out=np.float64)
        with pytest.raises(ContractError, match="return value"):
            fn(np.zeros(4))

    def test_decorators_wrap_when_enabled(self, contracts_enabled):
        @shapes("n -> n")
        def fn(x):
            return x

        assert fn.__wrapped__ is not None
        with pytest.raises(ContractError):
            fn(np.zeros((2, 2)))

    def test_wildcard_dimension_accepts_anything(self):
        fn = checked(lambda x: x, shape="_,4 ->")
        fn(np.zeros((1, 4)))
        fn(np.zeros((999, 4)))

    def test_non_array_positionals_skipped(self):
        fn = checked(lambda cfg, x: x, shape="n ->")
        assert fn(object(), np.zeros(3)).shape == (3,)


# ----------------------------------------------------------------------
# env-var plumbing
# ----------------------------------------------------------------------
class TestToggle:
    def test_env_parsing(self, monkeypatch):
        for truthy in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_CONTRACTS", truthy)
            assert contracts._env_enabled()
        for falsy in ("0", "", "off", "no"):
            monkeypatch.setenv("REPRO_CONTRACTS", falsy)
            assert not contracts._env_enabled()

    def test_set_enabled_round_trip(self):
        before = contracts.enabled()
        try:
            contracts.set_enabled(True)
            assert contracts.enabled()
            contracts.set_enabled(False)
            assert not contracts.enabled()
        finally:
            contracts.set_enabled(before)
