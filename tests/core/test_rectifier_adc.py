"""Tests for the rectifier front ends and the tag ADC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adc import Adc
from repro.core.rectifier import (
    BasicRectifier,
    ClampRectifier,
    RectifierOutput,
    WispRectifier,
    incident_peak_voltage,
    recommended_tau,
)
from repro.phy import wifi_b
from repro.phy.waveform import Waveform


def _tone(n=2000, fs=22e6):
    return Waveform(np.ones(n, complex), fs)


class TestVoltageScale:
    def test_incident_voltage_increases_with_power(self):
        assert incident_peak_voltage(-10) > incident_peak_voltage(-20)

    def test_known_value(self):
        # -10 dBm = 0.1 mW -> sqrt(2 * 1e-4 * 50) = 0.1 V before boost.
        assert incident_peak_voltage(-10, matching_boost=1.0) == pytest.approx(0.1)

    def test_recommended_tau_between_bounds(self):
        tau = recommended_tau(2.4e9, 20e6)
        assert 1 / 2.4e9 < tau < 1 / 20e6

    def test_recommended_tau_rejects_bad_order(self):
        with pytest.raises(ValueError):
            recommended_tau(1e6, 2e6)


class TestRectifiers:
    def test_clamp_beats_basic_at_low_power(self):
        """Fig 4a: the clamp circuit produces usable output where the
        basic rectifier's diode never turns on."""
        basic = BasicRectifier(noise_v_rms=0.0)
        clamp = ClampRectifier(noise_v_rms=0.0)
        weak = -20.0
        assert clamp.output_for_constant_input(weak) > 0.0
        assert basic.output_for_constant_input(weak) == 0.0

    def test_wisp_output_higher_than_clamp(self):
        # Fig 4b: ours trades output voltage for bandwidth.
        wisp = WispRectifier(noise_v_rms=0.0)
        clamp = ClampRectifier(noise_v_rms=0.0)
        strong = 0.0
        assert wisp.output_for_constant_input(strong) > clamp.output_for_constant_input(strong)

    def test_wisp_smears_80211b_envelope(self):
        """Fig 4b: the WISP RC constant is tuned for RFID rates, so the
        11 Mchip/s DSSS envelope ripple is flattened; ours tracks it."""
        wave = wifi_b.modulate(b"\x5a" * 8)
        wisp = WispRectifier(noise_v_rms=0.0)
        ours = ClampRectifier(noise_v_rms=0.0)
        seg = slice(1000, 4000)
        out_wisp = wisp.rectify(wave, -10.0).voltage[seg]
        out_ours = ours.rectify(wave, -10.0).voltage[seg]
        ripple_wisp = out_wisp.std() / max(out_wisp.mean(), 1e-12)
        ripple_ours = out_ours.std() / max(out_ours.mean(), 1e-12)
        assert ripple_ours > 3 * ripple_wisp

    def test_output_scales_with_power(self):
        clamp = ClampRectifier(noise_v_rms=0.0)
        lo = clamp.rectify(_tone(), -20.0).mean_v
        hi = clamp.rectify(_tone(), -10.0).mean_v
        assert hi > lo > 0

    def test_noise_adds_variance(self):
        quiet = ClampRectifier(noise_v_rms=0.0).rectify(_tone(), -10.0)
        noisy = ClampRectifier(noise_v_rms=5e-3).rectify(
            _tone(), -10.0, rng=np.random.default_rng(0)
        )
        assert noisy.voltage.std() > quiet.voltage.std()

    def test_silence_gives_noise_only(self):
        clamp = ClampRectifier(noise_v_rms=1e-3)
        out = clamp.rectify(
            Waveform.silence(500, 22e6), -10.0, rng=np.random.default_rng(0)
        )
        assert abs(out.mean_v) < 5e-4

    def test_fm_to_am_creates_ripple_on_constant_envelope(self):
        from repro.phy import ble

        wave = ble.modulate(b"\xb7\x55" * 4)
        clamp = ClampRectifier(noise_v_rms=0.0)
        out = clamp.rectify(wave, -10.0).voltage[200:-200]
        assert out.std() / out.mean() > 0.02


class TestAdc:
    def _analog(self, n=4000, fs=20e6, f_sig=100e3):
        t = np.arange(n) / fs
        v = 0.1 + 0.05 * np.sin(2 * np.pi * f_sig * t)
        return RectifierOutput(voltage=v, sample_rate=fs)

    def test_codes_within_range(self):
        cap = Adc(n_bits=9).capture(self._analog())
        assert cap.codes.min() >= 0
        assert cap.codes.max() <= 511

    def test_volts_round_trip(self):
        adc = Adc(n_bits=12, v_ref=0.5)
        cap = adc.capture(self._analog())
        # 12-bit quantization error is tiny at this scale.
        expected = adc._bandlimit(self._analog())
        assert np.abs(cap.volts()[100:500] - expected[100:500]).max() < 2e-3

    def test_downsampling_rate(self):
        analog = self._analog(n=20000)
        cap = Adc(sample_rate=2.5e6).capture(analog)
        assert cap.codes.size == pytest.approx(20000 / 8, abs=2)

    def test_vref_tuning_uses_more_codes(self):
        analog = self._analog()
        wide = Adc(v_ref=1.0).capture(analog)
        tuned = Adc(v_ref=1.0).tuned_to(0.16).capture(analog)
        assert len(np.unique(tuned.codes)) > len(np.unique(wide.codes))

    def test_phase_offsets_sampling_grid(self):
        analog = self._analog()
        a = Adc(sample_rate=2e6, antialias=False).capture(analog, phase_s=0.0)
        b = Adc(sample_rate=2e6, antialias=False).capture(analog, phase_s=2.5e-7)
        assert not np.array_equal(a.codes, b.codes)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Adc(sample_rate=0)
        with pytest.raises(ValueError):
            Adc(n_bits=0)
        with pytest.raises(ValueError):
            Adc().tuned_to(-1.0)

    @given(st.integers(2, 12))
    @settings(max_examples=8, deadline=None)
    def test_more_bits_reduce_quantization_error(self, bits):
        analog = self._analog()
        adc_lo = Adc(n_bits=2, antialias=False)
        adc_hi = Adc(n_bits=bits, antialias=False)
        err_lo = np.abs(adc_lo.capture(analog).volts() - analog.voltage).mean()
        err_hi = np.abs(adc_hi.capture(analog).volts() - analog.voltage).mean()
        assert err_hi <= err_lo + 1e-9
