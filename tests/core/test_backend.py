"""Backend seam: registration, selection order, and the env knob."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import backend as backend_mod


@pytest.fixture(autouse=True)
def _fresh_selection():
    """Each test resolves from a clean per-process selection cache."""
    backend_mod.reset()
    yield
    backend_mod.reset()


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
        b = backend_mod.get_backend()
        assert b.name == "numpy"
        assert b.xp is np
        assert backend_mod.selection_source() == "default"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "numpy")
        assert backend_mod.get_backend().name == "numpy"
        assert backend_mod.selection_source() == "env"

    def test_unknown_env_backend_raises_with_known_names(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "cuda-imaginary")
        with pytest.raises(ValueError, match="cuda-imaginary"):
            backend_mod.get_backend()

    def test_set_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "nonexistent")
        b = backend_mod.set_backend("numpy")
        assert b.name == "numpy"
        assert backend_mod.selection_source() == "set"
        # get_backend must return the explicit choice, not re-read env.
        assert backend_mod.get_backend() is b

    def test_selection_source_none_before_resolution(self):
        assert backend_mod.selection_source() is None

    def test_selection_is_cached(self, monkeypatch):
        monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
        first = backend_mod.get_backend()
        monkeypatch.setenv(backend_mod.ENV_VAR, "nonexistent")
        assert backend_mod.get_backend() is first


class TestRegistry:
    def test_register_and_resolve(self):
        calls = []

        def factory():
            calls.append(1)
            return backend_mod.ArrayBackend(name="fake", xp=np)

        backend_mod.register_backend("fake", factory)
        try:
            assert "fake" in backend_mod.available_backends()
            assert backend_mod.set_backend("fake").name == "fake"
            assert calls == [1]
        finally:
            backend_mod._FACTORIES.pop("fake", None)

    def test_factory_name_mismatch_raises(self):
        backend_mod.register_backend(
            "misnamed",
            lambda: backend_mod.ArrayBackend(name="other", xp=np),
        )
        try:
            with pytest.raises(ValueError, match="misnamed"):
                backend_mod.set_backend("misnamed")
        finally:
            backend_mod._FACTORIES.pop("misnamed", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            backend_mod.register_backend("", lambda: None)

    def test_asarray_dtype(self):
        b = backend_mod.get_backend()
        out = b.asarray([1, 2, 3], dtype=np.float64)
        assert out.dtype == np.float64
        assert np.array_equal(b.to_numpy(out), [1.0, 2.0, 3.0])


class TestEnvSubprocess:
    """The knob must work for a fresh interpreter, as CI invokes it."""

    def test_env_selection_in_subprocess(self):
        code = (
            "from repro.core import backend\n"
            "b = backend.get_backend()\n"
            "assert b.name == 'numpy', b.name\n"
            "assert backend.selection_source() == 'env', "
            "backend.selection_source()\n"
            "print('env-selected')\n"
        )
        env = dict(os.environ, REPRO_BACKEND="numpy")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "env-selected" in proc.stdout
