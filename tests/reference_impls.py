"""Seed (pre-vectorization) reference implementations.

Verbatim copies of the pure-Python/loop kernels as they existed before
the performance rewrite.  The equivalence tests in
``tests/phy/test_kernel_equivalence.py`` and the benchmark-regression
harness compare the vectorized kernels against these, so keep them
frozen: they define the contract the fast paths must reproduce
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.phy.convcode import CONSTRAINT, ERASURE, G0, G1

_N_STATES = 1 << (CONSTRAINT - 1)  # 64

_DQPSK_PHASE = {(0, 0): 0.0, (0, 1): np.pi / 2, (1, 1): np.pi, (1, 0): 3 * np.pi / 2}


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    next_state = np.empty((_N_STATES, 2), dtype=np.int64)
    outputs = np.empty((_N_STATES, 2, 2), dtype=np.uint8)
    for state in range(_N_STATES):
        for b in (0, 1):
            window = (b << 0) | (state << 1)
            a = bin(window & G0).count("1") & 1
            c = bin(window & G1).count("1") & 1
            next_state[state, b] = window & (_N_STATES - 1)
            outputs[state, b, 0] = a
            outputs[state, b, 1] = c
    return next_state, outputs


_NEXT, _OUT = _build_tables()

_PREV = np.full((_N_STATES, 2, 2), -1, dtype=np.int64)
for _s in range(_N_STATES):
    for _b in (0, 1):
        _dst = _NEXT[_s, _b]
        slot = 0 if _PREV[_dst, 0, 0] == -1 else 1
        _PREV[_dst, slot, 0] = _s
        _PREV[_dst, slot, 1] = _b


def convcode_encode(bits: np.ndarray | list[int]) -> np.ndarray:
    """Seed rate-1/2 encoder (per-bit Python loop)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError("bits must be 1-D")
    out = np.empty(2 * arr.size, dtype=np.uint8)
    state = 0
    for i, b in enumerate(arr):
        window = (int(b) << 0) | (state << 1)
        a = bin(window & G0).count("1") & 1
        c = bin(window & G1).count("1") & 1
        out[2 * i] = a
        out[2 * i + 1] = c
        state = window & 0x3F
    return out


def viterbi_decode(coded: np.ndarray | list[int], *, n_info: int | None = None) -> np.ndarray:
    """Seed hard-decision Viterbi (per-step ACS loop)."""
    arr = np.asarray(coded, dtype=np.uint8)
    if arr.size % 2:
        arr = np.concatenate([arr, np.array([ERASURE], dtype=np.uint8)])
    n_steps = arr.size // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)

    pairs = arr.reshape(n_steps, 2)
    metrics = np.full(_N_STATES, 1 << 30, dtype=np.int64)
    metrics[0] = 0
    survivor = np.empty((n_steps, _N_STATES), dtype=np.int64)

    src0 = _PREV[:, 0, 0]
    bit0 = _PREV[:, 0, 1]
    src1 = _PREV[:, 1, 0]
    bit1 = _PREV[:, 1, 1]
    out0 = _OUT[src0, bit0]
    out1 = _OUT[src1, bit1]

    for t in range(n_steps):
        rx = pairs[t]
        w0 = 0 if rx[0] == ERASURE else 1
        w1 = 0 if rx[1] == ERASURE else 1
        branch0 = w0 * (out0[:, 0] != rx[0]).astype(np.int64) + w1 * (out0[:, 1] != rx[1])
        branch1 = w0 * (out1[:, 0] != rx[0]).astype(np.int64) + w1 * (out1[:, 1] != rx[1])
        cand0 = metrics[src0] + branch0
        cand1 = metrics[src1] + branch1
        take1 = cand1 < cand0
        metrics = np.where(take1, cand1, cand0)
        survivor[t] = np.where(take1, (src1 << 1) | bit1, (src0 << 1) | bit0)

    state = int(np.argmin(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        packed = survivor[t, state]
        decoded[t] = packed & 1
        state = int(packed >> 1)
    return decoded[:n_info]


def viterbi_decode_soft(llrs: np.ndarray, *, n_info: int | None = None) -> np.ndarray:
    """Seed soft-decision Viterbi (per-step ACS loop)."""
    arr = np.asarray(llrs, dtype=float)
    if arr.size % 2:
        arr = np.concatenate([arr, [0.0]])
    n_steps = arr.size // 2
    if n_info is None:
        n_info = n_steps
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)
    pairs = arr.reshape(n_steps, 2)

    metrics = np.full(_N_STATES, 1e18)
    metrics[0] = 0.0
    survivor = np.empty((n_steps, _N_STATES), dtype=np.int64)

    src0 = _PREV[:, 0, 0]
    bit0 = _PREV[:, 0, 1]
    src1 = _PREV[:, 1, 0]
    bit1 = _PREV[:, 1, 1]
    exp0 = 2.0 * _OUT[src0, bit0].astype(float) - 1.0
    exp1 = 2.0 * _OUT[src1, bit1].astype(float) - 1.0

    for t in range(n_steps):
        rx = pairs[t]
        branch0 = -(exp0[:, 0] * rx[0] + exp0[:, 1] * rx[1])
        branch1 = -(exp1[:, 0] * rx[0] + exp1[:, 1] * rx[1])
        cand0 = metrics[src0] + branch0
        cand1 = metrics[src1] + branch1
        take1 = cand1 < cand0
        metrics = np.where(take1, cand1, cand0)
        survivor[t] = np.where(take1, (src1 << 1) | bit1, (src0 << 1) | bit0)

    state = int(np.argmin(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        packed = survivor[t, state]
        decoded[t] = packed & 1
        state = int(packed >> 1)
    return decoded[:n_info]


def dqpsk_phases(bits: np.ndarray, phase0: float = 0.0) -> np.ndarray:
    """Seed DQPSK mapper (per-dibit dict-lookup comprehension)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 2:
        raise ValueError("DQPSK needs an even number of bits")
    increments = np.array(
        [_DQPSK_PHASE[(int(arr[i]), int(arr[i + 1]))] for i in range(0, arr.size, 2)]
    )
    return phase0 + np.cumsum(increments)


def diff_dibits(symbols: np.ndarray, prev: complex) -> np.ndarray:
    """Seed DQPSK differential decision (per-symbol dict lookups)."""
    ref = np.concatenate([[prev], symbols[:-1]])
    rot = symbols * np.conj(ref)
    phase = np.mod(np.angle(rot) + np.pi / 4, 2 * np.pi)
    quadrant = (phase // (np.pi / 2)).astype(int)
    inv = {0: (0, 0), 1: (0, 1), 2: (1, 1), 3: (1, 0)}
    bits = np.empty(symbols.size * 2, dtype=np.uint8)
    for i, q in enumerate(quadrant):
        bits[2 * i], bits[2 * i + 1] = inv[int(q)]
    return bits


def scramble_80211b(bits: np.ndarray | list[int], *, seed: int = 0x6C) -> np.ndarray:
    """Seed 802.11b self-synchronizing scrambler (per-bit loop)."""
    arr = np.asarray(bits, dtype=np.uint8)
    state = seed & 0x7F
    out = np.empty_like(arr)
    for i, b in enumerate(arr):
        fb = ((state >> 3) & 1) ^ ((state >> 6) & 1)
        s = int(b) ^ fb
        out[i] = s
        state = ((state << 1) | s) & 0x7F
    return out


def descramble_80211b(bits: np.ndarray | list[int], *, seed: int = 0x6C) -> np.ndarray:
    """Seed 802.11b descrambler (per-bit loop)."""
    arr = np.asarray(bits, dtype=np.uint8)
    state = seed & 0x7F
    out = np.empty_like(arr)
    for i, s in enumerate(arr):
        fb = ((state >> 3) & 1) ^ ((state >> 6) & 1)
        out[i] = int(s) ^ fb
        state = ((state << 1) | int(s)) & 0x7F
    return out


def score_capture(codes, bank, *, quantized: bool, offsets: tuple[int, ...] = (0,)):
    """Seed correlation scoring (per-template matmul loop)."""
    arr = np.asarray(codes, dtype=float)
    l_p = bank.l_p
    l_m = bank.l_m
    valid = [o for o in offsets if 0 <= o and o + l_p + l_m <= arr.size]
    scores = {p: -1.0 for p in bank.templates}
    if not valid:
        return scores

    win = np.lib.stride_tricks.sliding_window_view(arr, l_p + l_m)
    sel = win[np.asarray(valid)]
    pre = sel[:, :l_p]
    window = sel[:, l_p:]
    dc = pre[:, l_p // 2 :].mean(axis=1, keepdims=True)
    if quantized:
        q = np.where(window - dc >= 0.0, 1.0, -1.0)
        for p, t in bank.templates.items():
            c = q @ t.matching_q / t.matching_q.size
            scores[p] = float(c.max())
    else:
        centered = window - window.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(centered, axis=1, keepdims=True)
        norms = np.where(norms <= 1e-12, 1.0, norms)
        unit = centered / norms
        for p, t in bank.templates.items():
            c = unit @ t.matching
            scores[p] = float(c.max())
    return scores


def reference_run_airlink(
    schedule,
    tag,
    *,
    d_tag_rx_m: float = 2.0,
    tag_payload=None,
    rng=None,
    max_packets=None,
):
    """Seed (pre-pipeline-refactor) ``run_airlink`` loop body, verbatim.

    The streaming/batch equivalence tests drive both the thin batch
    driver and the packet-at-a-time gateway pipeline against this
    frozen copy: RNG draw order, payload cursor arithmetic, and the
    scalar decode path are exactly as they existed before the
    excite/decode stages were split out into ``repro.sim.pipeline``.
    Returns the list of ``PacketOutcome``-shaped tuples
    (protocol, start_s, identified, backscattered, tag_bits_sent,
    tag_bits_correct, productive_bits_correct, productive_bits_total,
    tag_bits_decoded) rather than the dataclass, so the comparison
    cannot silently pick up refactored behavior.
    """
    from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
    from repro.channel.noise import awgn
    from repro.core.identification import DEFAULT_INCIDENT_DBM
    from repro.core.overlay import OverlayCodec, OverlayConfig
    from repro.core.overlay_decoder import OverlayDecoder
    from repro.core.tag import MultiscatterTag, SingleProtocolTag
    from repro.core.tag_modulation import TagModulator
    from repro.rng import fallback_rng
    from repro.sim.traffic import random_packet

    rng = fallback_rng(rng)
    payload = (
        np.asarray(tag_payload, dtype=np.uint8)
        if tag_payload is not None
        else rng.integers(0, 2, 4096).astype(np.uint8)
    )
    outcomes = []
    cursor = 0

    packets = schedule.packets[:max_packets] if max_packets else schedule.packets
    for scheduled in packets:
        protocol = scheduled.protocol
        modulator = (
            tag.modulator_for(protocol) if isinstance(tag, MultiscatterTag) else None
        )
        if modulator is None and isinstance(tag, SingleProtocolTag):
            if protocol is not tag.protocol:
                excitation = random_packet(protocol, rng, n_payload_bytes=20)
                reaction = tag.react(excitation, [])
                outcomes.append(
                    (protocol, scheduled.start_s, reaction.identified, False,
                     0, 0, 0, 0, np.zeros(0, np.uint8))
                )
                continue
            codec = OverlayCodec(OverlayConfig.for_mode(protocol, tag.mode))
            modulator = TagModulator(codec, frequency_shift_hz=tag.frequency_shift_hz)

        codec = modulator.codec
        n_prod = 24
        productive = rng.integers(0, 2, n_prod).astype(np.uint8)
        excitation = codec.build_carrier(productive)
        _, capacity = codec.capacity(excitation.annotations["n_payload_symbols"])

        chunk = payload[cursor : cursor + capacity]
        reaction = tag.react(
            excitation,
            chunk,
            incident_power_dbm=DEFAULT_INCIDENT_DBM[protocol],
            rng=rng,
        )
        if not reaction.transmitted:
            outcomes.append(
                (protocol, scheduled.start_s, reaction.identified, False,
                 0, 0, 0, n_prod, np.zeros(0, np.uint8))
            )
            continue
        cursor += reaction.tag_bits_sent.size

        link = BackscatterLink(PROTOCOL_LINK_DEFAULTS[protocol])
        snr_db = link.snr_db(d_tag_rx_m)
        received = modulator.received_at_shifted_channel(reaction.backscattered)
        received = awgn(received, snr_db=snr_db, rng=rng)
        received.annotations = dict(excitation.annotations)

        out = OverlayDecoder(codec).decode(received)
        sent = reaction.tag_bits_sent
        got_tag = out.tag_bits[: sent.size]
        tag_correct = int(np.count_nonzero(got_tag == sent)) if sent.size else 0
        got_prod = out.productive_bits[:n_prod]
        prod_correct = int(np.count_nonzero(got_prod == productive[: got_prod.size]))
        outcomes.append(
            (protocol, scheduled.start_s, reaction.identified, True,
             int(sent.size), tag_correct, prod_correct, n_prod,
             np.asarray(got_tag, dtype=np.uint8))
        )
    return outcomes
