"""Perf instrumentation: gauges (level-style metrics) and the report."""

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def _clean_perf():
    perf.reset()
    yield
    perf.reset()


class TestGauges:
    def test_first_sample_initialises_all_fields(self):
        perf.gauge("q.depth", 3.0)
        assert perf.gauges()["q.depth"] == {
            "last": 3.0, "min": 3.0, "max": 3.0, "n": 1,
        }

    def test_tracks_last_min_max(self):
        for v in (5.0, 1.0, 9.0, 4.0):
            perf.gauge("lat", v)
        g = perf.gauges()["lat"]
        assert g == {"last": 4.0, "min": 1.0, "max": 9.0, "n": 4}

    def test_independent_names(self):
        perf.gauge("a", 1.0)
        perf.gauge("b", 2.0)
        assert set(perf.gauges()) == {"a", "b"}

    def test_reset_clears_gauges(self):
        perf.gauge("a", 1.0)
        perf.reset()
        assert perf.gauges() == {}

    def test_report_renders_gauge_section(self):
        perf.gauge("gateway.queue_depth.s", 7.0)
        text = perf.report()
        assert "gauges (name, last, min, max, samples):" in text
        assert "gateway.queue_depth.s" in text

    def test_report_omits_empty_gauge_section(self):
        assert "gauges (name" not in perf.report()
