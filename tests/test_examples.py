"""Smoke tests: every shipped example runs to completion.

Examples are part of the public deliverable; these tests execute each
as a subprocess (the way users run them) and sanity-check the output.
"""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "tag message = b'HELLO'" in out
        assert "productive bits ok = True" in out

    def test_identification_demo(self):
        out = _run("identification_demo.py")
        assert "average accuracy" in out
        assert "truth\\pred" in out

    def test_smart_bracelet(self):
        out = _run("smart_bracelet.py")
        assert "<- picked" in out
        assert "decoded ok = True" in out

    def test_diversity_uptime(self):
        out = _run("diversity_uptime.py")
        assert "multiscatter" in out
        assert "100%" in out

    def test_battery_free_sensor(self):
        out = _run("battery_free_sensor.py")
        assert "mJ per cycle" in out
        assert "Table 4" in out

    def test_sensor_network(self):
        out = _run("sensor_network.py")
        assert "reassembled" in out
        assert "match!" in out
