"""Integration tests: the full waveform-level system loop."""

import numpy as np
import pytest

from repro.core.tag import MultiscatterTag, SingleProtocolTag
from repro.phy.protocols import Protocol
from repro.sim.airlink import run_airlink
from repro.sim.traffic import ExcitationSchedule, ExcitationSource


@pytest.fixture(scope="module")
def mixed_schedule():
    rng = np.random.default_rng(0)
    sources = [
        ExcitationSource(Protocol.WIFI_N, rate_pkts=20, n_payload_bytes=40),
        ExcitationSource(Protocol.WIFI_B, rate_pkts=20, n_payload_bytes=40),
        ExcitationSource(Protocol.BLE, rate_pkts=20, n_payload_bytes=20),
        ExcitationSource(Protocol.ZIGBEE, rate_pkts=20, n_payload_bytes=20),
    ]
    return ExcitationSchedule.generate(sources, duration_s=0.2, rng=rng)


@pytest.fixture(scope="module")
def multiscatter_report(mixed_schedule):
    tag = MultiscatterTag()
    return run_airlink(
        mixed_schedule,
        tag,
        d_tag_rx_m=2.0,
        rng=np.random.default_rng(1),
        max_packets=16,
    )


class TestMultiscatterLoop:
    def test_covers_all_protocols(self, multiscatter_report):
        seen = {o.protocol for o in multiscatter_report.outcomes}
        assert len(seen) >= 3

    def test_identification_mostly_correct(self, multiscatter_report):
        assert multiscatter_report.identification_accuracy > 0.6

    def test_tag_data_flows(self, multiscatter_report):
        assert multiscatter_report.tag_throughput_kbps() > 0
        assert multiscatter_report.tag_bit_error_rate < 0.2

    def test_productive_data_flows(self, multiscatter_report):
        assert multiscatter_report.productive_throughput_kbps() > 0

    def test_backscattered_packets_carry_bits(self, multiscatter_report):
        sent = [o for o in multiscatter_report.outcomes if o.backscattered]
        assert sent
        assert all(o.tag_bits_sent > 0 for o in sent)


class TestSingleProtocolLoop:
    def test_single_tag_ignores_foreign_packets(self, mixed_schedule):
        tag = SingleProtocolTag(Protocol.WIFI_B)
        report = run_airlink(
            mixed_schedule,
            tag,
            rng=np.random.default_rng(2),
            max_packets=16,
        )
        foreign = [
            o for o in report.outcomes if o.protocol is not Protocol.WIFI_B
        ]
        assert foreign
        assert all(not o.backscattered for o in foreign)
        own = [o for o in report.outcomes if o.protocol is Protocol.WIFI_B]
        assert any(o.backscattered for o in own)

    def test_multiscatter_outtransmits_single(self, mixed_schedule):
        multi = run_airlink(
            mixed_schedule,
            MultiscatterTag(),
            rng=np.random.default_rng(3),
            max_packets=16,
        )
        single = run_airlink(
            mixed_schedule,
            SingleProtocolTag(Protocol.WIFI_B),
            rng=np.random.default_rng(3),
            max_packets=16,
        )
        multi_sent = sum(o.tag_bits_sent for o in multi.outcomes)
        single_sent = sum(o.tag_bits_sent for o in single.outcomes)
        assert multi_sent > single_sent
