"""Tests for deployment geometry and the Monte-Carlo runner."""

import numpy as np
import pytest

from repro.phy.protocols import Protocol
from repro.sim.runner import MonteCarlo
from repro.sim.scenario import Deployment, Position, Wall, paper_floorplan


class TestGeometry:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_wall_crossing(self):
        wall = Wall(Position(0, 1), Position(10, 1))
        assert wall.crosses(Position(5, 0), Position(5, 2))
        assert not wall.crosses(Position(5, 0), Position(6, 0))
        assert not wall.crosses(Position(11, 0), Position(11, 2))

    def test_los_floorplan(self):
        dep = paper_floorplan(nlos=False)
        assert not dep.is_nlos()
        assert dep.d_tx_tag() == pytest.approx(0.8)
        assert dep.d_tag_rx() == pytest.approx(10.0)

    def test_nlos_floorplan(self):
        dep = paper_floorplan(nlos=True)
        assert dep.is_nlos()
        assert dep.wall_loss_db(dep.tag, dep.receiver) == pytest.approx(1.8)
        # Transmitter-to-tag stays inside the office (no wall).
        assert dep.wall_loss_db(dep.transmitter, dep.tag) == 0.0

    def test_link_reflects_geometry(self):
        los = paper_floorplan(nlos=False).link(Protocol.WIFI_B)
        nlos = paper_floorplan(nlos=True).link(Protocol.WIFI_B)
        d = 10.0
        assert nlos.rssi_dbm(d) == pytest.approx(los.rssi_dbm(d) - 1.8)

    def test_with_receiver_moves_only_receiver(self):
        dep = paper_floorplan()
        moved = dep.with_receiver(Position(20.8, 0.0))
        assert moved.d_tag_rx() == pytest.approx(20.0)
        assert moved.d_tx_tag() == dep.d_tx_tag()

    def test_range_sweep_matches_link_model(self):
        # Moving the receiver down the hallway reproduces Fig 13's
        # distance sweep through the geometry API.
        dep = paper_floorplan()
        rssis = []
        for x in (2.8, 10.8, 20.8):
            d = dep.with_receiver(Position(x, 0.0))
            rssis.append(d.link(Protocol.BLE).rssi_dbm(d.d_tag_rx()))
        assert rssis[0] > rssis[1] > rssis[2]


class TestMonteCarlo:
    def test_reproducible(self):
        def trial(rng):
            return {"x": rng.uniform()}

        a = MonteCarlo(n_trials=10, seed=5).run(trial)
        b = MonteCarlo(n_trials=10, seed=5).run(trial)
        assert np.array_equal(a["x"].values, b["x"].values)

    def test_independent_streams(self):
        def trial(rng):
            return {"x": rng.uniform()}

        stats = MonteCarlo(n_trials=200, seed=1).run(trial)["x"]
        assert stats.n == 200
        assert stats.mean == pytest.approx(0.5, abs=0.08)
        assert len(np.unique(stats.values)) == 200

    def test_ci_shrinks_with_n(self):
        def trial(rng):
            return {"x": rng.normal()}

        small = MonteCarlo(n_trials=20, seed=2).run(trial)["x"]
        large = MonteCarlo(n_trials=500, seed=2).run(trial)["x"]
        assert large.ci95_halfwidth() < small.ci95_halfwidth()

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            MonteCarlo(n_trials=0).run(lambda rng: {})

    def test_multiple_metrics(self):
        def trial(rng):
            return {"a": 1.0, "b": rng.uniform()}

        stats = MonteCarlo(n_trials=5, seed=3).run(trial)
        assert stats["a"].mean == 1.0
        assert stats["a"].std == 0.0
        assert 0 <= stats["b"].mean <= 1
