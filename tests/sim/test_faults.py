"""Fault injection and the fault-tolerant Monte-Carlo runner.

Every recovery path in ``repro.sim.runner`` is exercised here by
forcing its failure mode with the deterministic harness in
``repro.sim.faults``: trial exceptions retried to success, hung chunks
recovered via the wall-clock timeout, killed workers re-run in a fresh
pool, and exhausted retry budgets surfaced as ``ChunkError`` with
chunk/trial context.  Recovered runs must stay bit-identical to
undisturbed ones -- retry re-runs the same seed list, never new draws.
"""

import numpy as np
import pytest

from repro import perf
from repro.sim import faults
from repro.sim.runner import (
    ChunkError,
    MonteCarlo,
    TrialError,
    resolve_backoff_s,
    resolve_retries,
    resolve_timeout_s,
)


def _trial(rng):
    """Module-level so the process pool can pickle it."""
    x = rng.normal(size=64)
    return {"mean": float(x.mean()), "max": float(x.max())}


def _ragged_trial(rng):
    """Returns a different metric key set depending on the stream."""
    value = float(rng.normal())
    if int(rng.integers(2)):
        return {"mean": value}
    return {"mean": value, "extra": value}


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        spec = "raise:site=trial,index=3,attempts=2;hang:site=chunk,hang_s=0.5"
        parsed = faults.parse_spec(spec)
        assert parsed == (
            faults.FaultSpec(kind="raise", site="trial", index=3, attempts=2),
            faults.FaultSpec(kind="hang", site="chunk", hang_s=0.5),
        )

    def test_install_validates_and_sets_env(self, monkeypatch):
        faults.install("kill:site=save,name=fig15")
        try:
            assert faults.active_faults()[0].kind == "kill"
        finally:
            faults.clear()
        assert faults.active_faults() == ()

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:site=trial",          # unknown kind
            "raise:index=3",               # missing site
            "raise:site=nowhere",          # unknown site
            "raise:site=trial,index=x",    # non-numeric index
            "raise:site=trial,attempts=0", # attempts below 1
            "raise:site=trial,color=red",  # unknown field
            "raise:site=trial,index",      # malformed field
        ],
    )
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(bad)

    def test_check_is_noop_without_env(self):
        faults.check("trial", index=0, attempt=1)  # must not raise

    def test_matching_gates(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR, "raise:site=trial,index=2,attempts=2"
        )
        faults.check("trial", index=1, attempt=1)       # wrong index
        faults.check("chunk", index=2, attempt=1)       # wrong site
        faults.check("trial", index=2, attempt=3)       # budget spent
        with pytest.raises(faults.FaultInjected):
            faults.check("trial", index=2, attempt=2)

    def test_name_substring_match(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "raise:site=save,name=fig15")
        faults.check("save", name="runs/x/fig13_los.json")
        with pytest.raises(faults.FaultInjected):
            faults.check("save", name="runs/x/fig15_occlusion.json")


class TestEnvKnobs:
    def test_resolve_retries(self, monkeypatch):
        assert resolve_retries() == 0
        assert resolve_retries(3) == 3
        monkeypatch.setenv("REPRO_RETRIES", "2")
        assert resolve_retries() == 2
        monkeypatch.setenv("REPRO_RETRIES", "-1")
        with pytest.warns(RuntimeWarning, match="REPRO_RETRIES"):
            assert resolve_retries() == 0
        with pytest.raises(ValueError):
            resolve_retries(-1)

    def test_resolve_timeout(self, monkeypatch):
        assert resolve_timeout_s() is None
        assert resolve_timeout_s(1.5) == 1.5
        monkeypatch.setenv("REPRO_TIMEOUT_S", "2.5")
        assert resolve_timeout_s() == 2.5
        monkeypatch.setenv("REPRO_TIMEOUT_S", "nope")
        with pytest.warns(RuntimeWarning, match="REPRO_TIMEOUT_S"):
            assert resolve_timeout_s() is None
        with pytest.raises(ValueError):
            resolve_timeout_s(0.0)

    def test_resolve_backoff(self, monkeypatch):
        assert resolve_backoff_s() == pytest.approx(0.05)
        assert resolve_backoff_s(0.0) == 0.0
        monkeypatch.setenv("REPRO_BACKOFF_S", "junk")
        with pytest.warns(RuntimeWarning, match="REPRO_BACKOFF_S"):
            assert resolve_backoff_s() == pytest.approx(0.05)
        with pytest.raises(ValueError):
            resolve_backoff_s(-0.1)


class TestSerialRecovery:
    def test_trial_retry_is_bit_identical(self, monkeypatch):
        clean = MonteCarlo(n_trials=5, seed=11).run(_trial)
        perf.reset()
        monkeypatch.setenv(
            faults.ENV_VAR, "raise:site=trial,index=3,attempts=2"
        )
        recovered = MonteCarlo(
            n_trials=5, seed=11, max_retries=2, backoff_s=0.0
        ).run(_trial)
        for key in clean:
            assert np.array_equal(clean[key].values, recovered[key].values)
        assert perf.counters()["mc.chunk_retries"] == 2

    def test_exhausted_budget_names_chunk_and_trial(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR, "raise:site=trial,index=2,attempts=99"
        )
        mc = MonteCarlo(n_trials=5, seed=0, max_retries=1, backoff_s=0.0)
        with pytest.raises(ChunkError) as excinfo:
            mc.run(_trial)
        err = excinfo.value
        assert err.chunk_index == 0
        assert (err.trial_start, err.trial_stop) == (0, 5)
        assert err.attempts == 2
        assert "trial 2" in str(err)
        assert isinstance(err.__cause__, TrialError)
        assert err.__cause__.trial_index == 2

    def test_real_trial_exception_carries_index(self):
        def boom(rng):
            raise ValueError("bad physics")

        with pytest.raises(ChunkError, match="bad physics"):
            MonteCarlo(n_trials=3, seed=0).run(boom)


class TestMetricKeyAlignment:
    def test_mismatched_keys_raise_with_diff(self):
        # Seeded streams make the ragged key pattern deterministic; the
        # old behavior silently built per-key stats with different n.
        with pytest.raises(ValueError, match="metric key set") as excinfo:
            MonteCarlo(n_trials=8, seed=0).run(_ragged_trial)
        message = str(excinfo.value)
        assert "trial" in message
        assert "extra" in message

    def test_aligned_keys_pass(self):
        stats = MonteCarlo(n_trials=4, seed=0).run(_trial)
        assert stats["mean"].n == 4


@pytest.mark.slow
class TestParallelRecovery:
    def test_killed_worker_is_retried_bit_identically(self, monkeypatch):
        clean = MonteCarlo(n_trials=8, seed=5).run(_trial)
        perf.reset()
        monkeypatch.setenv(faults.ENV_VAR, "kill:site=chunk,index=1,attempts=1")
        recovered = MonteCarlo(
            n_trials=8, seed=5, n_workers=2, max_retries=1, backoff_s=0.0
        ).run(_trial)
        for key in clean:
            assert np.array_equal(clean[key].values, recovered[key].values)
        counters = perf.counters()
        assert counters["mc.worker_crashes"] >= 1
        assert counters["mc.chunk_retries"] >= 1

    def test_hung_chunk_times_out_and_recovers(self, monkeypatch):
        clean = MonteCarlo(n_trials=8, seed=7).run(_trial)
        perf.reset()
        monkeypatch.setenv(
            faults.ENV_VAR, "hang:site=chunk,index=0,attempts=1,hang_s=60"
        )
        recovered = MonteCarlo(
            n_trials=8, seed=7, n_workers=2,
            max_retries=1, timeout_s=1.0, backoff_s=0.0,
        ).run(_trial)
        for key in clean:
            assert np.array_equal(clean[key].values, recovered[key].values)
        assert perf.counters()["mc.chunk_timeouts"] >= 1

    def test_parallel_exhausted_budget_raises_chunk_error(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR, "raise:site=chunk,index=1,attempts=99"
        )
        mc = MonteCarlo(
            n_trials=8, seed=0, n_workers=2, max_retries=1, backoff_s=0.0
        )
        with pytest.raises(ChunkError) as excinfo:
            mc.run(_trial)
        assert excinfo.value.chunk_index == 1
        assert excinfo.value.attempts == 2

    def test_trial_error_pickles_through_pool(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR, "raise:site=trial,index=6,attempts=99"
        )
        mc = MonteCarlo(n_trials=8, seed=0, n_workers=2, backoff_s=0.0)
        with pytest.raises(ChunkError, match="trial 6"):
            mc.run(_trial)
