"""Tests for composite interference scenes."""

import numpy as np
import pytest

from repro.core.rectifier import incident_peak_voltage
from repro.phy.protocols import Protocol
from repro.sim.scene import superimpose
from repro.sim.traffic import random_packet


class TestSuperimpose:
    def _packets(self):
        rng = np.random.default_rng(0)
        v = random_packet(Protocol.BLE, rng, n_payload_bytes=10)
        i = random_packet(Protocol.WIFI_N, rng, n_payload_bytes=30)
        return v, i

    def test_scene_rate_and_duration(self):
        v, i = self._packets()
        scene = superimpose(v, -30.0, i, -20.0, freq_offset_hz=-15e6,
                            duration_s=60e-6, scene_rate_hz=50e6)
        assert scene.sample_rate == 50e6
        assert scene.n_samples == 3000

    def test_vanishing_interferer_preserves_victim_power(self):
        v, i = self._packets()
        alone = superimpose(v, -30.0, i, -120.0, freq_offset_hz=0.0,
                            duration_s=50e-6)
        expected_v = incident_peak_voltage(-30.0, matching_boost=1.0)
        measured = np.sqrt(np.mean(np.abs(alone.iq[100:1000]) ** 2))
        # GFSK is constant envelope: rms ~ the scaled amplitude.
        assert measured == pytest.approx(expected_v, rel=0.1)

    def test_interferer_adds_power(self):
        v, i = self._packets()
        quiet = superimpose(v, -30.0, i, -120.0, freq_offset_hz=-15e6,
                            time_offset_s=-20e-6, duration_s=50e-6)
        loud = superimpose(v, -30.0, i, -20.0, freq_offset_hz=-15e6,
                           time_offset_s=-20e-6, duration_s=50e-6)
        assert loud.mean_power() > 2 * quiet.mean_power()

    def test_time_offset_places_interferer(self):
        v, i = self._packets()
        late = superimpose(v, -60.0, i, -20.0, freq_offset_hz=0.0,
                           time_offset_s=30e-6, duration_s=60e-6)
        head = np.mean(np.abs(late.iq[: int(25e-6 * 50e6)]) ** 2)
        tail = np.mean(np.abs(late.iq[int(35e-6 * 50e6):]) ** 2)
        assert tail > 5 * head

    def test_annotations_follow_victim(self):
        v, i = self._packets()
        scene = superimpose(v, -30.0, i, -20.0, freq_offset_hz=2e6,
                            duration_s=50e-6)
        assert scene.annotations["protocol"] is Protocol.BLE
