"""Tests for excitation traffic generation and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.protocols import Protocol
from repro.sim.metrics import ber, confusion_table, format_table, throughput_kbps
from repro.sim.traffic import (
    ExcitationSchedule,
    ExcitationSource,
    packet_airtime_s,
    random_packet,
)


class TestRandomPacket:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_produces_annotated_waveform(self, protocol):
        wave = random_packet(protocol, np.random.default_rng(0), n_payload_bytes=20)
        assert wave.annotations["protocol"] is protocol
        assert wave.n_samples > 0

    def test_payloads_vary(self):
        rng = np.random.default_rng(1)
        a = random_packet(Protocol.BLE, rng, n_payload_bytes=20)
        b = random_packet(Protocol.BLE, rng, n_payload_bytes=20)
        assert not np.array_equal(a.iq, b.iq)


class TestAirtime:
    def test_80211b_long_preamble_overhead(self):
        # 192 us PLCP + payload at 1 Mbps.
        assert packet_airtime_s(Protocol.WIFI_B, 300) == pytest.approx(
            192e-6 + 2400e-6
        )

    def test_ble_small_overhead(self):
        assert packet_airtime_s(Protocol.BLE, 37) == pytest.approx(376e-6, rel=0.01)

    def test_zigbee_symbol_time(self):
        # 12 header symbols + 200 payload symbols at 16 us.
        assert packet_airtime_s(Protocol.ZIGBEE, 100) == pytest.approx(212 * 16e-6)

    def test_wifi_n_includes_preamble(self):
        t = packet_airtime_s(Protocol.WIFI_N, 300)
        assert t == pytest.approx(36e-6 + 94 * 4e-6)


class TestSources:
    def test_periodic_rate(self):
        rng = np.random.default_rng(2)
        src = ExcitationSource(Protocol.WIFI_N, rate_pkts=100)
        times = src.arrival_times(1.0, rng)
        assert times.size == pytest.approx(100, abs=2)

    def test_poisson_rate(self):
        rng = np.random.default_rng(3)
        src = ExcitationSource(Protocol.BLE, rate_pkts=70, periodic=False)
        times = src.arrival_times(10.0, rng)
        assert times.size == pytest.approx(700, rel=0.15)

    def test_duty_cycle_gates_arrivals(self):
        rng = np.random.default_rng(4)
        src = ExcitationSource(
            Protocol.WIFI_B, rate_pkts=1000, duty_cycle=0.5, period_s=0.2
        )
        times = src.arrival_times(2.0, rng)
        frac = ((times - src.phase_s) % 0.2) / 0.2
        assert np.all(frac < 0.5)
        assert times.size == pytest.approx(1000, rel=0.1)

    def test_default_rates_resolved(self):
        assert ExcitationSource(Protocol.ZIGBEE).resolved_rate() == 20.0


class TestSchedule:
    def _schedule(self, duration=0.5):
        rng = np.random.default_rng(5)
        sources = [
            ExcitationSource(Protocol.WIFI_N, rate_pkts=2000, n_payload_bytes=300),
            ExcitationSource(Protocol.BLE, rate_pkts=34, n_payload_bytes=37,
                             periodic=False, center_offset_hz=15e6),
        ]
        return ExcitationSchedule.generate(sources, duration, rng)

    def test_counts(self):
        sched = self._schedule()
        assert len(sched.packets_of(Protocol.WIFI_N)) == pytest.approx(1000, abs=10)
        assert len(sched.packets_of(Protocol.BLE)) == pytest.approx(17, abs=10)

    def test_sorted_by_time(self):
        starts = [p.start_s for p in self._schedule().packets]
        assert starts == sorted(starts)

    def test_collisions_found_at_high_load(self):
        # 2000 pkt/s x ~225 us airtime -> ~45% utilization: the 34/s
        # BLE packets mostly land on WiFi airtime (Fig 16a).
        sched = self._schedule()
        collisions = sched.collisions()
        ble_hit = {id(b) for a, b in collisions if b.protocol is Protocol.BLE}
        ble_hit |= {id(a) for a, b in collisions if a.protocol is Protocol.BLE}
        n_ble = len(sched.packets_of(Protocol.BLE))
        assert len(ble_hit) > 0.2 * max(n_ble, 1)

    def test_utilization_bounded(self):
        u = self._schedule().airtime_utilization()
        assert 0.2 < u < 0.9


class TestMetrics:
    def test_ber_identical_is_zero(self):
        bits = np.array([1, 0, 1, 1], np.uint8)
        assert ber(bits, bits) == 0.0

    def test_ber_counts_missing_bits_as_errors(self):
        ref = np.array([1, 0, 1, 1], np.uint8)
        rec = np.array([1, 0], np.uint8)
        assert ber(ref, rec) == pytest.approx(0.5)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=50))
    @settings(max_examples=20)
    def test_ber_complement_is_one(self, bits):
        arr = np.array(bits, np.uint8)
        assert ber(arr, 1 - arr) == 1.0

    def test_throughput_kbps(self):
        assert throughput_kbps(1000, 1.0) == 1.0
        with pytest.raises(ValueError):
            throughput_kbps(1, 0)

    def test_confusion_table_renders(self):
        table = confusion_table({(Protocol.BLE, Protocol.BLE): 5})
        assert "BLE" in table and "5" in table

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1
