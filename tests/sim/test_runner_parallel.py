"""Parallel Monte-Carlo determinism and the Student-t confidence CI."""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.experiments.common import labeled_traces
from repro.sim.runner import MonteCarlo, TrialStats, resolve_workers


def _trial(rng):
    """Module-level so the process pool can pickle it."""
    x = rng.normal(size=256)
    return {"mean": float(x.mean()), "max": float(x.max())}


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_explicit_invalid_raises(self):
        # 0/-3 used to be silently clamped to 1; misconfiguration now
        # goes through validate_bounds and fails loudly.
        with pytest.raises(ValueError, match="n_workers"):
            resolve_workers(0)
        with pytest.raises(ValueError, match="n_workers"):
            resolve_workers(-3)

    @pytest.mark.parametrize("raw", ["junk", "-3", "0", "2.5"])
    def test_env_invalid_warns_and_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_workers() == 1


class TestParallelDeterminism:
    def test_serial_matches_seeded_reference(self):
        # The serial path must keep the seed's spawned-stream policy:
        # trial i sees default_rng(SeedSequence(seed).spawn(n)[i]).
        stats = MonteCarlo(n_trials=5, seed=9, n_workers=1).run(_trial)
        seeds = np.random.SeedSequence(9).spawn(5)
        want = [_trial(np.random.default_rng(s))["mean"] for s in seeds]
        assert np.array_equal(stats["mean"].values, np.array(want))

    @pytest.mark.slow
    def test_bit_identical_across_worker_counts(self):
        serial = MonteCarlo(n_trials=13, seed=123, n_workers=1).run(_trial)
        quad = MonteCarlo(n_trials=13, seed=123, n_workers=4).run(_trial)
        assert set(serial) == set(quad)
        for key in serial:
            assert np.array_equal(serial[key].values, quad[key].values)
            assert serial[key].n == 13

    @pytest.mark.slow
    def test_more_workers_than_trials(self):
        serial = MonteCarlo(n_trials=2, seed=3, n_workers=1).run(_trial)
        wide = MonteCarlo(n_trials=2, seed=3, n_workers=16).run(_trial)
        for key in serial:
            assert np.array_equal(serial[key].values, wide[key].values)

    @pytest.mark.slow
    def test_labeled_traces_bit_identical_parallel(self):
        a = labeled_traces(2, seed=9, n_workers=1)
        b = labeled_traces(2, seed=9, n_workers=4)
        assert len(a) == len(b) == 8
        for (pa, wa), (pb, wb) in zip(a, b):
            assert pa is pb
            assert np.array_equal(wa.iq, wb.iq)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            MonteCarlo(n_trials=0).run(_trial)


class TestStudentTCi:
    def test_small_n_uses_t_quantile(self):
        stats = TrialStats(np.array([1.0, 2.0, 3.0]))
        t = sp_stats.t.ppf(0.975, 2)  # 4.3027, not 1.96
        assert stats.ci95_halfwidth() == pytest.approx(
            t * stats.std / np.sqrt(3), rel=1e-12
        )
        assert stats.ci95_halfwidth() > 1.96 * stats.std / np.sqrt(3)

    def test_asymptotically_normal(self):
        values = np.random.default_rng(0).normal(size=100_000)
        stats = TrialStats(values)
        normal = 1.96 * stats.std / np.sqrt(stats.n)
        assert stats.ci95_halfwidth() == pytest.approx(normal, rel=1e-3)

    def test_degenerate_sizes(self):
        assert TrialStats(np.array([])).ci95_halfwidth() == 0.0
        assert TrialStats(np.array([4.2])).ci95_halfwidth() == 0.0
