"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.artifacts import ExperimentResult


class TestListInfo:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out
        assert "quick, full, paper" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "28.0 m" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1


class TestRun:
    def test_run_table(self, capsys):
        assert main(["run", "table2_resources"]) == 0
        out = capsys.readouterr().out
        assert "==== table2_resources ====" in out
        assert "133364" in out
        assert "note:" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99_nope"]) == 2
        assert "fig99_nope" in capsys.readouterr().err

    def test_run_seed_on_deterministic_experiment(self, capsys):
        assert main(["run", "table2_resources", "--seed", "3"]) == 2
        assert "no --seed" in capsys.readouterr().err

    def test_run_writes_artifact_and_show_rerenders(self, capsys, tmp_path):
        assert main([
            "run", "fig15_occlusion", "--preset", "quick",
            "--seed", "7", "--out", str(tmp_path),
        ]) == 0
        run_out = capsys.readouterr().out
        path = tmp_path / "fig15_occlusion.json"
        assert f"artifact: {path}" in run_out

        doc = json.loads(path.read_text())
        assert doc["name"] == "fig15_occlusion"
        assert doc["preset"] == "quick"
        assert doc["params"]["seed"] == 7

        assert main(["show", str(path)]) == 0
        show_out = capsys.readouterr().out
        assert show_out == run_out.replace(f"artifact: {path}\n", "")

    def test_show_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["show", str(bad)]) == 2
        assert main(["show", str(tmp_path / "missing.json")]) == 2


class TestSeedBound:
    """--seed must survive a JSON/shell round trip: 0 <= seed < 2**64."""

    @pytest.mark.parametrize("bad", ["-1", str(2**64), str(-(2**70))])
    @pytest.mark.parametrize("command", ["run", "run-all", "serve"])
    def test_out_of_range_seed_is_a_usage_error(self, capsys, command, bad):
        argv = {
            "run": ["run", "fig15_occlusion", "--seed", bad],
            "run-all": ["run-all", "--preset", "quick", "--seed", bad],
            "serve": ["serve", "--max-packets", "1", "--seed", bad],
        }[command]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "0 <= seed < 2**64" in err
        assert "--seed" in err

    def test_boundary_seed_accepted(self, capsys):
        assert main([
            "serve", "--tags", "1", "--max-packets", "2",
            "--seed", str(2**64 - 1),
        ]) == 0


class TestServe:
    def test_smoke_clean_drain(self, capsys):
        assert main([
            "serve", "--tags", "2", "--subscribers", "2",
            "--max-packets", "6", "--rate", "200.0", "--require-clean",
        ]) == 0
        out = capsys.readouterr().out
        assert "packets 6" in out
        assert "drained clean: True" in out
        assert "delivered per subscriber" in out

    def test_bad_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--policy", "yolo"])


class TestRunAll:
    @pytest.fixture
    def two_experiment_registry(self, monkeypatch):
        keep = ("table2_resources", "table5_idpower")
        monkeypatch.setattr(
            registry, "_SPECS", {k: registry._SPECS[k] for k in keep}
        )
        return keep

    def test_run_all_pass(self, capsys, tmp_path, two_experiment_registry):
        assert main(["run-all", "--preset", "quick", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for name in two_experiment_registry:
            assert f"PASS  {name}" in out
            assert (tmp_path / f"{name}.json").is_file()

    def test_run_all_reports_failure(self, capsys, monkeypatch, two_experiment_registry):
        def boom(**kwargs):
            raise RuntimeError("deliberate test failure")

        registry.get_spec("table5_idpower")._resolve()  # populate _IMPLS
        monkeypatch.setitem(registry._IMPLS, "table5_idpower", boom)
        assert main(["run-all", "--preset", "quick"]) == 1
        captured = capsys.readouterr()
        assert "PASS  table2_resources" in captured.out
        assert "FAIL  table5_idpower" in captured.out
        assert "deliberate test failure" in captured.out
        assert "1 failed" in captured.err

    @pytest.mark.slow
    def test_run_all_parallel(self, capsys, tmp_path, monkeypatch, two_experiment_registry):
        # The parallel path forks workers; results must match serial.
        # main() publishes --workers via REPRO_WORKERS; monkeypatch
        # restores the environment after the test.
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "run-all", "--preset", "quick", "--workers", "2",
            "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 2
        for name in two_experiment_registry:
            loaded = ExperimentResult.load(tmp_path / f"{name}.json")
            assert loaded.to_json() == registry.run_preset(name, "quick").to_json()
