"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig13_los", "table4_energy"):
            assert name in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "28.0 m" in out

    def test_run_table(self, capsys):
        assert main(["run", "table2_resources"]) == 0
        out = capsys.readouterr().out
        assert "133364" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99_nope"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "experiments" in capsys.readouterr().out or True

    def test_catalogue_complete(self):
        # Every experiment module with a run() is exposed.
        assert len(EXPERIMENTS) == 17
