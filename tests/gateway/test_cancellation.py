"""Cancellation safety: SIGINT drain, mid-await deregistration, hard
cancel.

The ISSUE-9 scenarios: a stop request arriving while a BLOCK-policy
subscriber sits on a full queue must still tear down cleanly and replay
byte-identically on a restart; a tag deregistered mid-await must stop
producing without disturbing the rest; a hard ``Task.cancel`` of
``serve`` must close every stream so no consumer hangs.
"""

import asyncio

import numpy as np
import pytest

from repro.gateway import (
    AsyncExcitationSource,
    Backpressure,
    ControlEvent,
    Gateway,
    GatewayConfig,
    PacketEvent,
)
from repro.phy.protocols import Protocol
from repro.sim.traffic import ExcitationSource


def make_source(max_packets: int, seed: int = 3) -> AsyncExcitationSource:
    return AsyncExcitationSource(
        [
            ExcitationSource(protocol=p, rate_pkts=200.0, periodic=False)
            for p in Protocol
        ],
        duration_s=0.5,
        rng=np.random.default_rng(seed),
        max_packets=max_packets,
    )


def packet_key(e: PacketEvent) -> tuple:
    return (
        e.tag_id,
        e.seq,
        e.time_s,
        e.outcome.protocol,
        e.outcome.tag_bits_correct,
        tuple(np.asarray(e.outcome.tag_bits_decoded).tolist()),
    )


class TestSigintDrainWithBlockedSubscriber:
    """Stop requested (the cli SIGINT path) while the only subscriber
    is blocked on a full BLOCK-policy queue."""

    def run_once(self):
        async def run():
            gw = Gateway(
                GatewayConfig(
                    seed=13,
                    keepalive_timeout_s=30.0,
                    queue_maxlen=4,
                    stall_timeout_s=5.0,
                )
            )
            for i in range(3):
                await gw.register_tag(f"tag-{i}")
            sub = gw.subscribe("s", policy=Backpressure.BLOCK, maxlen=4)
            release = asyncio.Event()
            events = []

            async def consume():
                # Stay blocked until the stop arrives, so the publisher
                # is parked on the full queue when it does.
                await release.wait()
                async for ev in sub:
                    events.append(ev)

            consumer = asyncio.ensure_future(consume())

            async def sigint_when_queue_full():
                while sub.qsize() < 4:
                    await asyncio.sleep(0)
                gw.request_stop()  # what the cli SIGINT handler calls
                release.set()

            stopper = asyncio.ensure_future(sigint_when_queue_full())
            stats = await gw.serve(make_source(max_packets=200))
            await stopper
            await consumer
            return gw, stats, events

        return asyncio.run(run())

    def test_clean_teardown(self):
        gw, stats, events = self.run_once()
        assert stats.drained_clean
        assert stats.n_dropped_events == 0
        assert stats.n_subscriber_evictions == 0
        assert 0 < stats.n_packets < 200  # it actually stopped early
        kinds = [e.kind for e in events if isinstance(e, ControlEvent)]
        assert "draining" in kinds and kinds[-1] == "drained"
        assert gw._sweep_task is None  # sweep stopped with the drain

    def test_restart_replays_byte_identically(self):
        _, stats_a, events_a = self.run_once()
        _, stats_b, events_b = self.run_once()
        packets_a = [e for e in events_a if isinstance(e, PacketEvent)]
        packets_b = [e for e in events_b if isinstance(e, PacketEvent)]
        assert stats_a.n_packets == stats_b.n_packets
        assert len(packets_a) == len(packets_b) > 0
        for a, b in zip(packets_a, packets_b):
            assert packet_key(a) == packet_key(b)


class TestMidAwaitDeregistration:
    def run_once(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=5, keepalive_timeout_s=30.0))
            for i in range(3):
                await gw.register_tag(f"tag-{i}")
            sub = gw.subscribe("s", maxlen=512)
            events = []

            async def consume():
                async for ev in sub:
                    events.append(ev)

            consumer = asyncio.ensure_future(consume())

            async def dereg_mid_run():
                while gw.stats.n_published < 5:
                    await asyncio.sleep(0)
                await gw.deregister_tag("tag-1", reason="client went away")

            dereg = asyncio.ensure_future(dereg_mid_run())
            stats = await gw.serve(make_source(max_packets=40))
            await dereg
            await consumer
            return gw, stats, events

        return asyncio.run(run())

    def test_clean_teardown_and_isolation(self):
        gw, stats, events = self.run_once()
        assert stats.drained_clean
        assert stats.n_tag_evictions == 0  # deregistration, not eviction
        dereg_at = next(
            i
            for i, e in enumerate(events)
            if isinstance(e, ControlEvent)
            and e.kind == "deregistered"
            and e.tag_id == "tag-1"
        )
        # The deregistered tag produced nothing after the event, the
        # survivors kept going.
        after = [e for e in events[dereg_at:] if isinstance(e, PacketEvent)]
        assert all(e.tag_id != "tag-1" for e in after)
        assert any(isinstance(e, PacketEvent) for e in events[dereg_at:])
        assert len(gw.control) == 0  # drain deregistered the rest

    def test_restart_replays_byte_identically(self):
        _, _, events_a = self.run_once()
        _, _, events_b = self.run_once()
        packets_a = [e for e in events_a if isinstance(e, PacketEvent)]
        packets_b = [e for e in events_b if isinstance(e, PacketEvent)]
        assert len(packets_a) == len(packets_b) > 0
        for a, b in zip(packets_a, packets_b):
            assert packet_key(a) == packet_key(b)


class TestHardCancel:
    def test_cancelling_serve_closes_streams_not_hangs(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=2, keepalive_timeout_s=30.0))
            await gw.register_tag("t")
            sub = gw.subscribe("s", maxlen=8)
            received = []

            async def consume():
                async for ev in sub:
                    received.append(ev)

            consumer = asyncio.ensure_future(consume())
            serve_task = asyncio.ensure_future(gw.serve(make_source(max_packets=500)))
            while gw.stats.n_published < 3:
                await asyncio.sleep(0)
            serve_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await serve_task
            # The consumer must observe end-of-stream promptly instead
            # of blocking forever on a queue nobody fills.
            await asyncio.wait_for(consumer, timeout=1.0)
            return gw, sub

        gw, sub = asyncio.run(run())
        assert sub.closed
        assert "cancelled" in sub.close_reason
        assert gw._sweep_task is None

    def test_gateway_survives_cancel_and_serves_again(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=2, keepalive_timeout_s=30.0))
            await gw.register_tag("t")
            serve_task = asyncio.ensure_future(gw.serve(make_source(max_packets=500)))
            while gw.stats.n_published < 2:
                await asyncio.sleep(0)
            serve_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await serve_task
            return await gw.serve(make_source(max_packets=3, seed=9))

        stats = asyncio.run(run())
        assert stats.drained_clean


class TestSweepErrorSurfaces:
    def test_sweep_crash_fails_serve_loudly(self):
        async def run():
            gw = Gateway(
                GatewayConfig(
                    seed=1, keepalive_timeout_s=30.0, keepalive_interval_s=0.001
                )
            )
            await gw.register_tag("t")

            def boom(*args, **kwargs):
                raise ValueError("keepalive store corrupted")

            gw.control.keepalive = boom
            with pytest.raises(RuntimeError, match="sweep"):
                await gw.serve(make_source(max_packets=5000))

        asyncio.run(run())


class TestAsyncioDebugMode:
    def test_serve_clean_under_debug_and_loopwatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOOPWATCH", "1")

        async def run():
            gw = Gateway(GatewayConfig(seed=7, keepalive_timeout_s=30.0))
            await gw.register_tag("t")
            sub = gw.subscribe("s", maxlen=256)
            events = []

            async def consume():
                async for ev in sub:
                    events.append(ev)

            consumer = asyncio.ensure_future(consume())
            stats = await gw.serve(make_source(max_packets=12))
            await consumer
            return stats, events

        stats, events = asyncio.run(run(), debug=True)
        assert stats.drained_clean
        assert stats.loopwatch_violations == 0
        assert any(isinstance(e, PacketEvent) for e in events)
