"""Data-plane queues: policies, bounds, eviction, drain."""

import asyncio

import pytest

from repro.gateway.events import ControlEvent
from repro.gateway.subscriptions import (
    Backpressure,
    SubscriptionClosed,
    SubscriptionHub,
)


def event(n: int) -> ControlEvent:
    return ControlEvent(kind="test", time_s=float(n), detail=str(n))


class TestSubscribe:
    def test_duplicate_name_rejected(self):
        hub = SubscriptionHub()
        hub.subscribe("a")
        with pytest.raises(ValueError, match="already exists"):
            hub.subscribe("a")

    def test_bad_maxlen_rejected(self):
        hub = SubscriptionHub()
        with pytest.raises(ValueError, match="maxlen"):
            hub.subscribe("a", maxlen=0)

    def test_bad_hub_bounds_rejected(self):
        with pytest.raises(ValueError):
            SubscriptionHub(default_maxlen=0)
        with pytest.raises(ValueError):
            SubscriptionHub(stall_timeout_s=0.0)


class TestBlockPolicy:
    def test_lossless_when_consumer_keeps_up(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=4)
            sub = hub.subscribe("s", policy=Backpressure.BLOCK)
            got = []

            async def consume():
                for _ in range(20):
                    got.append(await sub.get())

            task = asyncio.ensure_future(consume())
            for i in range(20):
                await hub.publish(event(i))
            await task
            return got

        got = asyncio.run(run())
        assert [e.detail for e in got] == [str(i) for i in range(20)]

    def test_stalled_consumer_evicted_after_timeout(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=2, stall_timeout_s=0.05)
            sub = hub.subscribe("stuck", policy=Backpressure.BLOCK)
            evicted = []
            for i in range(5):  # never consumed; queue fills at 2
                evicted += await hub.publish(event(i))
            return sub, evicted

        sub, evicted = asyncio.run(run())
        assert [s.name for s in evicted] == ["stuck"]
        assert sub.closed and "stalled" in sub.close_reason


class TestDropOldestPolicy:
    def test_drops_oldest_keeps_newest(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=3)
            sub = hub.subscribe("lossy", policy=Backpressure.DROP_OLDEST)
            for i in range(10):
                await hub.publish(event(i))
            kept = [sub.queue.get_nowait() for _ in range(sub.qsize())]
            return sub, kept

        sub, kept = asyncio.run(run())
        assert sub.dropped == 7
        assert [e.detail for e in kept] == ["7", "8", "9"]

    def test_never_evicted(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=1)
            sub = hub.subscribe("lossy", policy=Backpressure.DROP_OLDEST)
            evicted = []
            for i in range(50):
                evicted += await hub.publish(event(i))
            return sub, evicted

        sub, evicted = asyncio.run(run())
        assert evicted == [] and not sub.closed


class TestDisconnectPolicy:
    def test_overflow_disconnects(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=2)
            sub = hub.subscribe("strict", policy=Backpressure.DISCONNECT)
            evicted = []
            for i in range(4):
                evicted += await hub.publish(event(i))
            return sub, evicted

        sub, evicted = asyncio.run(run())
        assert [s.name for s in evicted] == ["strict"]
        assert sub.closed and "overflow" in sub.close_reason


class TestCloseSemantics:
    def test_blocked_get_wakes_on_close(self):
        async def run():
            hub = SubscriptionHub()
            sub = hub.subscribe("s")

            async def consume():
                with pytest.raises(SubscriptionClosed):
                    while True:
                        await sub.get()

            task = asyncio.ensure_future(consume())
            await asyncio.sleep(0.01)  # let the consumer block on get()
            hub.unsubscribe("s", reason="test over")
            await asyncio.wait_for(task, timeout=1.0)

        asyncio.run(run())

    def test_aiter_stops_cleanly(self):
        async def run():
            hub = SubscriptionHub()
            sub = hub.subscribe("s")
            await hub.publish(event(0))
            await hub.publish(event(1))
            hub.close_all()
            return [e.detail async for e in sub]

        assert asyncio.run(run()) == ["0", "1"]

    def test_queued_events_still_readable_after_close(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=8)
            sub = hub.subscribe("s")
            for i in range(3):
                await hub.publish(event(i))
            hub.unsubscribe("s")
            got = [await sub.get() for _ in range(3)]
            with pytest.raises(SubscriptionClosed):
                await sub.get()
            return got

        assert [e.detail for e in asyncio.run(run())] == ["0", "1", "2"]


class TestDrain:
    def test_drain_waits_for_consumers(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=16)
            sub = hub.subscribe("s")
            for i in range(8):
                await hub.publish(event(i))

            async def slow_consume():
                while True:
                    await asyncio.sleep(0.002)
                    try:
                        sub.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return

            task = asyncio.ensure_future(slow_consume())
            ok = await hub.drain(timeout_s=2.0)
            await task
            return ok

        assert asyncio.run(run())

    def test_drain_times_out_on_stuck_consumer(self):
        async def run():
            hub = SubscriptionHub(default_maxlen=16)
            hub.subscribe("stuck")
            await hub.publish(event(0))
            return await hub.drain(timeout_s=0.05)

        assert not asyncio.run(run())
