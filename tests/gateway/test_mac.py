"""MAC arbiter: determinism, contention, and replay."""

import numpy as np
import pytest

from repro.gateway.mac import MacArbiter


class TestUncontended:
    def test_empty_slot_has_no_winner(self):
        arb = MacArbiter(seed=1)
        decision = arb.arbitrate([])
        assert decision.winner is None
        assert not decision.collided

    def test_single_contender_wins_without_rng_draw(self):
        arb = MacArbiter(seed=1)
        state_before = arb._rng.bit_generator.state
        decision = arb.arbitrate(["only"])
        assert decision.winner == "only"
        assert arb._rng.bit_generator.state == state_before

    def test_uncontended_slots_do_not_perturb_later_draws(self):
        a = MacArbiter(seed=5)
        b = MacArbiter(seed=5)
        for _ in range(100):
            a.arbitrate(["solo"])
        assert a.arbitrate(["x", "y", "z"]) == b.arbitrate(["x", "y", "z"])


class TestContention:
    def test_winner_is_a_contender(self):
        arb = MacArbiter(seed=2)
        for _ in range(50):
            decision = arb.arbitrate(["a", "b", "c"])
            assert decision.winner in ("a", "b", "c")

    def test_every_contender_eventually_wins(self):
        arb = MacArbiter(seed=3)
        winners = {arb.arbitrate(["a", "b", "c", "d"]).winner for _ in range(200)}
        assert winners == {"a", "b", "c", "d"}

    def test_capture_prob_zero_always_collides(self):
        arb = MacArbiter(seed=4, capture_prob=0.0)
        for _ in range(20):
            decision = arb.arbitrate(["a", "b"])
            assert decision.collided and decision.winner is None
        assert arb.n_collisions == 20

    def test_capture_prob_one_never_collides(self):
        arb = MacArbiter(seed=4, capture_prob=1.0)
        assert not any(arb.arbitrate(["a", "b"]).collided for _ in range(200))

    def test_collision_rate_tracks_capture_prob(self):
        arb = MacArbiter(seed=6, capture_prob=0.7)
        n = 2000
        collided = sum(arb.arbitrate(["a", "b"]).collided for _ in range(n))
        assert collided / n == pytest.approx(0.3, abs=0.05)

    def test_invalid_capture_prob_rejected(self):
        with pytest.raises(ValueError, match="capture_prob"):
            MacArbiter(capture_prob=1.5)


class TestReplay:
    def test_same_seed_same_decisions(self):
        slots = [["a", "b"], ["a"], ["a", "b", "c"], [], ["b", "c"]] * 20
        first = [MacArbiter(seed=9).arbitrate(s) for s in slots]
        second = [MacArbiter(seed=9).arbitrate(s) for s in slots]
        # A fresh arbiter per slot would reset the stream; replay the
        # whole sequence through one arbiter each time instead.
        one = MacArbiter(seed=9)
        two = MacArbiter(seed=9)
        assert [one.arbitrate(s) for s in slots] == [two.arbitrate(s) for s in slots]
        assert first == second  # per-slot fresh arbiters also agree

    def test_reset_rewinds_to_seed(self):
        arb = MacArbiter(seed=11)
        slots = [["a", "b", "c"] for _ in range(30)]
        original = [arb.arbitrate(s).winner for s in slots]
        arb.reset()
        assert [arb.arbitrate(s).winner for s in slots] == original
        assert arb.n_arbitrations == 30

    def test_different_seeds_diverge(self):
        slots = [["a", "b", "c", "d"] for _ in range(50)]
        one = MacArbiter(seed=0)
        two = MacArbiter(seed=1)
        assert [one.arbitrate(s).winner for s in slots] != [
            two.arbitrate(s).winner for s in slots
        ]

    def test_seed_stream_is_numpy_generator(self):
        # The arbiter must own a private stream, not the global RNG.
        arb = MacArbiter(seed=13)
        assert isinstance(arb._rng, np.random.Generator)
