"""Streaming-vs-batch equivalence: the refactor's core contract.

Three implementations must produce byte-identical ``PacketOutcome``
sequences on the same seed:

* the frozen pre-refactor monolith (``reference_run_airlink`` in
  ``tests/reference_impls.py``);
* the thin batch driver (:func:`repro.sim.airlink.run_airlink`) over
  the extracted pipeline;
* the streaming gateway feeding the pipeline one packet at a time.
"""

import asyncio

import numpy as np
import pytest

from repro.core.tag import MultiscatterTag, SingleProtocolTag
from repro.gateway import AsyncExcitationSource, Gateway, GatewayConfig, PacketEvent
from repro.phy.protocols import Protocol
from repro.sim.airlink import run_airlink
from repro.sim.traffic import ExcitationSchedule, ExcitationSource

from tests.reference_impls import reference_run_airlink

SEED = 2024
N_PACKETS = 12


def mixed_sources() -> list[ExcitationSource]:
    return [
        ExcitationSource(protocol=p, rate_pkts=80.0, periodic=False)
        for p in Protocol
    ]


def batch_schedule() -> ExcitationSchedule:
    return ExcitationSchedule.generate(
        mixed_sources(), duration_s=0.4, rng=np.random.default_rng(5)
    )


def outcome_tuple(o):
    return (
        o.protocol,
        o.start_s,
        o.identified,
        o.backscattered,
        o.tag_bits_sent,
        o.tag_bits_correct,
        o.productive_bits_correct,
        o.productive_bits_total,
    )


def stream_outcomes(make_tag, *, decode_batch: int = 1):
    """Run the gateway over the same schedule and collect outcomes."""

    async def run():
        source = AsyncExcitationSource(
            mixed_sources(),
            duration_s=0.4,
            rng=np.random.default_rng(5),
            max_packets=N_PACKETS,
        )
        gw = Gateway(
            GatewayConfig(seed=0, keepalive_timeout_s=30.0, decode_batch=decode_batch)
        )
        await gw.register_tag("t", make_tag(), rng=np.random.default_rng(SEED))
        sub = gw.subscribe("s", maxlen=256)
        outcomes = []

        async def consume():
            try:
                async for ev in sub:
                    if isinstance(ev, PacketEvent):
                        outcomes.append(ev.outcome)
            except Exception:
                pass

        task = asyncio.ensure_future(consume())
        await gw.serve(source)
        await task
        return outcomes

    return asyncio.run(run())


def assert_matches_reference(outcomes, reference):
    assert len(outcomes) == len(reference)
    for got, ref in zip(outcomes, reference):
        assert outcome_tuple(got) == ref[:8]
        assert np.array_equal(got.tag_bits_decoded, ref[8])


class TestBatchDriverAgainstFrozenMonolith:
    def test_multiscatter_mixed_schedule(self):
        sched = batch_schedule()
        ref = reference_run_airlink(
            sched,
            MultiscatterTag(),
            rng=np.random.default_rng(SEED),
            max_packets=N_PACKETS,
        )
        report = run_airlink(
            sched,
            MultiscatterTag(),
            rng=np.random.default_rng(SEED),
            max_packets=N_PACKETS,
        )
        assert_matches_reference(report.outcomes, ref)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_single_protocol_tags(self, protocol):
        sched = batch_schedule()
        ref = reference_run_airlink(
            sched,
            SingleProtocolTag(protocol=protocol),
            rng=np.random.default_rng(SEED),
            max_packets=N_PACKETS,
        )
        report = run_airlink(
            sched,
            SingleProtocolTag(protocol=protocol),
            rng=np.random.default_rng(SEED),
            max_packets=N_PACKETS,
        )
        assert_matches_reference(report.outcomes, ref)


class TestStreamingAgainstBatch:
    def test_multiscatter_streaming_matches_frozen_monolith(self):
        ref = reference_run_airlink(
            batch_schedule(),
            MultiscatterTag(),
            rng=np.random.default_rng(SEED),
            max_packets=N_PACKETS,
        )
        assert_matches_reference(stream_outcomes(MultiscatterTag), ref)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_single_protocol_streaming_matches_batch(self, protocol):
        report = run_airlink(
            batch_schedule(),
            SingleProtocolTag(protocol=protocol),
            rng=np.random.default_rng(SEED),
            max_packets=N_PACKETS,
        )
        streamed = stream_outcomes(lambda: SingleProtocolTag(protocol=protocol))
        assert len(streamed) == len(report.outcomes) == N_PACKETS
        for got, want in zip(streamed, report.outcomes):
            assert outcome_tuple(got) == outcome_tuple(want)
            assert np.array_equal(got.tag_bits_decoded, want.tag_bits_decoded)

    def test_batched_decode_stage_is_bit_identical(self):
        # decode_batch > 1 defers RNG-free decodes into grouped kernel
        # dispatches; draw order and decoded bits must not move.
        unbatched = stream_outcomes(MultiscatterTag, decode_batch=1)
        batched = stream_outcomes(MultiscatterTag, decode_batch=6)
        assert len(batched) == len(unbatched) == N_PACKETS
        for a, b in zip(batched, unbatched):
            assert outcome_tuple(a) == outcome_tuple(b)
            assert np.array_equal(a.tag_bits_decoded, b.tag_bits_decoded)
