"""Gateway service tests."""
