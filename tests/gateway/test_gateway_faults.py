"""Deterministic fault injection against the gateway (site ``gateway``).

Mirrors ``tests/sim/test_faults.py``: each failure mode the service
claims to survive is *forced* through ``REPRO_FAULTS`` and the
recovery path asserted -- a stalled subscriber is evicted without
stopping delivery to healthy ones, a crashed tag task evicts only that
tag, and the run still drains cleanly.
"""

import asyncio

import numpy as np
import pytest

from repro.gateway import (
    AsyncExcitationSource,
    Backpressure,
    ControlEvent,
    Gateway,
    GatewayConfig,
    PacketEvent,
    SubscriptionClosed,
)
from repro.phy.protocols import Protocol
from repro.sim import faults
from repro.sim.traffic import ExcitationSource


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


def make_source(max_packets: int) -> AsyncExcitationSource:
    return AsyncExcitationSource(
        [
            ExcitationSource(protocol=p, rate_pkts=200.0, periodic=False)
            for p in Protocol
        ],
        duration_s=0.5,
        rng=np.random.default_rng(3),
        max_packets=max_packets,
    )


class TestSiteGrammar:
    def test_gateway_is_a_valid_site(self):
        spec = faults.parse_spec("raise:site=gateway,name=tag:t0")
        assert spec[0].site == "gateway"

    def test_unknown_site_still_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="site"):
            faults.parse_spec("raise:site=airloop")

    def test_check_async_raise(self):
        faults.install("raise:site=gateway,name=tag:t0")
        try:
            with pytest.raises(faults.FaultInjected):
                asyncio.run(faults.check_async("gateway", name="tag:t0"))
            # Non-matching names pass through.
            asyncio.run(faults.check_async("gateway", name="tag:other"))
        finally:
            faults.clear()

    def test_check_async_hang_sleeps_async(self):
        faults.install("hang:site=gateway,name=slow,hang_s=0.02")
        try:
            async def run():
                loop = asyncio.get_running_loop()
                t0 = loop.time()
                # A concurrent task must keep running during the hang.
                ticks = []

                async def ticker():
                    for _ in range(4):
                        ticks.append(1)
                        await asyncio.sleep(0.004)

                task = asyncio.ensure_future(ticker())
                await faults.check_async("gateway", name="slow")
                await task
                return loop.time() - t0, len(ticks)

            elapsed, n_ticks = asyncio.run(run())
            assert elapsed >= 0.02
            assert n_ticks == 4
        finally:
            faults.clear()


class TestSubscriberStall:
    def test_stalled_subscriber_evicted_healthy_one_survives(self):
        faults.install(
            "hang:site=gateway,name=subscriber:slow,hang_s=5,attempts=99"
        )
        try:
            async def run():
                gw = Gateway(
                    GatewayConfig(
                        seed=7,
                        keepalive_timeout_s=30.0,
                        stall_timeout_s=0.05,
                        queue_maxlen=2,
                    )
                )
                await gw.register_tag("t0")
                slow = gw.subscribe("slow", policy=Backpressure.BLOCK)
                fast = gw.subscribe("fast", maxlen=256)
                fast_events = []

                async def consume_fast():
                    try:
                        async for ev in fast:
                            fast_events.append(ev)
                    except Exception:
                        pass

                async def consume_slow():
                    try:
                        async for _ in slow:
                            pass
                    except SubscriptionClosed:
                        pass

                t1 = asyncio.ensure_future(consume_fast())
                t2 = asyncio.ensure_future(consume_slow())
                stats = await gw.serve(make_source(max_packets=10))
                await t1
                t2.cancel()
                return gw, stats, slow, fast_events

            gw, stats, slow, fast_events = asyncio.run(run())
            assert stats.n_subscriber_evictions == 1
            assert slow.closed and "stalled" in slow.close_reason
            # The healthy subscriber kept receiving: all packets plus
            # the eviction notice itself.
            packets = [e for e in fast_events if isinstance(e, PacketEvent)]
            assert len(packets) == 10
            notices = [
                e for e in fast_events
                if isinstance(e, ControlEvent) and e.kind == "subscriber_evicted"
            ]
            assert len(notices) == 1 and "slow" in notices[0].detail
            assert stats.drained_clean
        finally:
            faults.clear()


class TestTagTaskCrash:
    def test_crashed_tag_evicted_gateway_keeps_serving(self):
        faults.install("raise:site=gateway,name=tag:tag-001")
        try:
            async def run():
                gw = Gateway(GatewayConfig(seed=7, keepalive_timeout_s=30.0))
                for i in range(4):
                    await gw.register_tag(f"tag-{i:03d}")
                sub = gw.subscribe("s", maxlen=512)
                events = []

                async def consume():
                    try:
                        async for ev in sub:
                            events.append(ev)
                    except Exception:
                        pass

                task = asyncio.ensure_future(consume())
                stats = await gw.serve(make_source(max_packets=20))
                await task
                return gw, stats, events

            gw, stats, events = asyncio.run(run())
            assert stats.n_tag_crashes == 1
            assert stats.n_tag_evictions == 1
            evicted = [
                e for e in events
                if isinstance(e, ControlEvent) and e.kind == "evicted"
            ]
            assert [e.tag_id for e in evicted] == ["tag-001"]
            assert "crashed" in evicted[0].detail
            # Service continued: every scheduled packet was handled and
            # the surviving tags kept winning slots.
            assert stats.n_packets == 20
            assert len(gw.control) == 0  # drained deregisters the rest
            assert stats.drained_clean
        finally:
            faults.clear()

    def test_crash_spec_for_absent_tag_changes_nothing(self):
        faults.install("raise:site=gateway,name=tag:ghost")
        try:
            async def run():
                gw = Gateway(GatewayConfig(seed=7, keepalive_timeout_s=30.0))
                await gw.register_tag("real")
                stats = await gw.serve(make_source(max_packets=5))
                return stats

            stats = asyncio.run(run())
            assert stats.n_tag_crashes == 0
            assert stats.n_packets == 5
        finally:
            faults.clear()
