"""Sharded data plane: worker pools must be invisible in the bytes.

The decode pool is a pure throughput device: for any
``decode_workers`` count the published ``PacketOutcome`` stream must
be byte-identical to the inline (``decode_workers=0``) gateway, which
is itself byte-identical to the batch driver (see
``test_equivalence.py``).  This module proves that, plus the failure
half of the contract: a killed or wedged decode worker is replaced and
its groups re-decoded bit-identically, and a hard-cancelled serve
leaves no orphaned worker processes behind.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.gateway import AsyncExcitationSource, Gateway, GatewayConfig, PacketEvent
from repro.phy.protocols import Protocol
from repro.sim import faults
from repro.sim.traffic import ExcitationSource

from tests.gateway.test_equivalence import (
    N_PACKETS,
    SEED,
    mixed_sources,
    outcome_tuple,
    stream_outcomes,
)
from repro.core.tag import MultiscatterTag, SingleProtocolTag

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


def serve_sharded(make_tag, *, decode_workers, decode_batch=4, **cfg_kwargs):
    """Gateway run over the equivalence schedule; returns (events, stats)."""

    async def run():
        source = AsyncExcitationSource(
            mixed_sources(),
            duration_s=0.4,
            rng=np.random.default_rng(5),
            max_packets=N_PACKETS,
        )
        gw = Gateway(
            GatewayConfig(
                seed=0,
                keepalive_timeout_s=30.0,
                decode_workers=decode_workers,
                decode_batch=decode_batch,
                **cfg_kwargs,
            )
        )
        await gw.register_tag("t", make_tag(), rng=np.random.default_rng(SEED))
        sub = gw.subscribe("s", maxlen=256)
        events = []

        async def consume():
            try:
                async for ev in sub:
                    events.append(ev)
            except Exception:
                pass

        task = asyncio.ensure_future(consume())
        stats = await gw.serve(source)
        await task
        return events, stats

    return asyncio.run(run())


def packet_events(events):
    return [ev for ev in events if isinstance(ev, PacketEvent)]


def assert_same_outcomes(got, want):
    assert len(got) == len(want) == N_PACKETS
    for a, b in zip(got, want):
        assert outcome_tuple(a) == outcome_tuple(b)
        assert np.array_equal(a.tag_bits_decoded, b.tag_bits_decoded)


class TestShardedByteIdentity:
    """Any worker count reproduces the inline stream byte for byte."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_multiscatter_mixed_schedule(self, workers):
        # The mixed schedule drives all four protocols through one tag,
        # so every receiver config crosses the executor hop.
        inline = stream_outcomes(MultiscatterTag, decode_batch=4)
        events, stats = serve_sharded(MultiscatterTag, decode_workers=workers)
        assert_same_outcomes(
            [ev.outcome for ev in packet_events(events)], inline
        )
        assert stats.drained_clean and stats.n_dropped_events == 0
        assert stats.n_decode_retries == 0

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_single_protocol_tags(self, protocol):
        inline = stream_outcomes(
            lambda: SingleProtocolTag(protocol=protocol), decode_batch=4
        )
        events, _ = serve_sharded(
            lambda: SingleProtocolTag(protocol=protocol), decode_workers=2
        )
        assert_same_outcomes(
            [ev.outcome for ev in packet_events(events)], inline
        )

    @pytest.mark.parametrize("workers", (0, 2))
    def test_stream_seq_counts_the_schedule_in_order(self, workers):
        # The reordering buffer republishes in schedule order, stamped
        # with a strictly increasing gateway-global sequence number.
        events, _ = serve_sharded(MultiscatterTag, decode_workers=workers)
        seqs = [ev.stream_seq for ev in packet_events(events)]
        assert seqs == list(range(1, N_PACKETS + 1))

    def test_immediate_flush_batches_match_large_batches(self):
        # decode_batch=1 dispatches singleton groups; grouping is a
        # fusion detail, never an ordering or value change.
        singletons, _ = serve_sharded(
            MultiscatterTag, decode_workers=2, decode_batch=1
        )
        grouped, _ = serve_sharded(
            MultiscatterTag, decode_workers=2, decode_batch=6
        )
        assert_same_outcomes(
            [ev.outcome for ev in packet_events(singletons)],
            [ev.outcome for ev in packet_events(grouped)],
        )


class TestDecodeFaultRecovery:
    """Killed/wedged workers are replaced; re-decode is bit-identical."""

    def test_killed_worker_is_replaced_and_stream_is_identical(self):
        inline = stream_outcomes(MultiscatterTag, decode_batch=4)
        faults.install("kill:site=decode,index=0")
        try:
            events, stats = serve_sharded(MultiscatterTag, decode_workers=2)
        finally:
            faults.clear()
        assert stats.n_decode_worker_crashes >= 1
        assert stats.n_decode_retries >= 1
        assert stats.drained_clean
        assert_same_outcomes(
            [ev.outcome for ev in packet_events(events)], inline
        )

    def test_hung_worker_times_out_and_stream_is_identical(self):
        inline = stream_outcomes(MultiscatterTag, decode_batch=4)
        faults.install("hang:site=decode,index=0,hang_s=30")
        try:
            events, stats = serve_sharded(
                MultiscatterTag, decode_workers=2, decode_timeout_s=2.0
            )
        finally:
            faults.clear()
        assert stats.n_decode_timeouts >= 1
        assert stats.n_decode_retries >= 1
        assert stats.drained_clean
        assert_same_outcomes(
            [ev.outcome for ev in packet_events(events)], inline
        )

    def test_exhausted_retry_budget_fails_serve_loudly(self):
        # A fault that outlives the budget must surface, not spin.
        faults.install("kill:site=decode,index=0,attempts=99")
        try:
            with pytest.raises(RuntimeError, match="decode"):
                serve_sharded(
                    MultiscatterTag, decode_workers=2, decode_retries=1
                )
        finally:
            faults.clear()


class TestHardCancelNoOrphans:
    def test_cancel_terminates_all_decode_workers(self):
        async def run():
            source = AsyncExcitationSource(
                [
                    ExcitationSource(protocol=p, rate_pkts=200.0, periodic=False)
                    for p in Protocol
                ],
                duration_s=5.0,
                rng=np.random.default_rng(3),
                max_packets=500,
            )
            gw = Gateway(
                GatewayConfig(
                    seed=2,
                    keepalive_timeout_s=30.0,
                    decode_workers=2,
                    decode_batch=2,
                )
            )
            await gw.register_tag("t")
            sub = gw.subscribe("s", maxlen=8)

            async def consume():
                async for _ in sub:
                    pass

            consumer = asyncio.ensure_future(consume())
            serve_task = asyncio.ensure_future(gw.serve(source))
            while gw.stats.n_published < 3:
                await asyncio.sleep(0)
            # Snapshot the pool's worker processes before the cancel
            # tears the pool down and drops the reference.
            procs = list(gw._decode_pool._processes.values())
            serve_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await serve_task
            await asyncio.wait_for(consumer, timeout=1.0)
            return gw, sub, procs

        gw, sub, procs = asyncio.run(run())
        assert sub.closed
        assert procs, "pool never spawned a worker"
        deadline = time.monotonic() + 5.0
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not any(p.is_alive() for p in procs)
        assert gw._decode_pool is None
        # elapsed_s is stamped even on the cancellation path.
        assert gw.stats.elapsed_s > 0.0

    def test_gateway_serves_again_after_cancel(self):
        async def run():
            gw = Gateway(
                GatewayConfig(
                    seed=2, keepalive_timeout_s=30.0, decode_workers=2
                )
            )
            await gw.register_tag("t")
            first = AsyncExcitationSource(
                mixed_sources(),
                duration_s=5.0,
                rng=np.random.default_rng(5),
                max_packets=500,
            )
            serve_task = asyncio.ensure_future(gw.serve(first))
            while gw.stats.n_published < 2:
                await asyncio.sleep(0)
            serve_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await serve_task
            again = AsyncExcitationSource(
                mixed_sources(),
                duration_s=0.4,
                rng=np.random.default_rng(5),
                max_packets=3,
            )
            return await gw.serve(again)

        stats = asyncio.run(run())
        assert stats.drained_clean


class TestConfigValidation:
    def test_negative_worker_count_rejected(self):
        with pytest.raises(ValueError, match="decode_workers"):
            GatewayConfig(seed=0, decode_workers=-1)

    def test_nonpositive_decode_timeout_rejected(self):
        with pytest.raises(ValueError, match="decode_timeout_s"):
            GatewayConfig(seed=0, decode_timeout_s=0.0)
