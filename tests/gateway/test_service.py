"""Gateway service: concurrency, liveness, determinism, drain."""

import asyncio

import numpy as np
import pytest

from repro.core.tag import MultiscatterTag
from repro.gateway import (
    AsyncExcitationSource,
    Backpressure,
    ControlEvent,
    Gateway,
    GatewayConfig,
    PacketEvent,
)
from repro.phy.protocols import Protocol
from repro.sim.traffic import ExcitationSource


def traffic(rate_pkts: float = 200.0) -> list[ExcitationSource]:
    return [
        ExcitationSource(protocol=p, rate_pkts=rate_pkts, periodic=False)
        for p in Protocol
    ]


def make_source(max_packets: int, seed: int = 3) -> AsyncExcitationSource:
    return AsyncExcitationSource(
        traffic(),
        duration_s=0.5,
        rng=np.random.default_rng(seed),
        max_packets=max_packets,
    )


async def collect(sub):
    events = []
    try:
        async for ev in sub:
            events.append(ev)
    except Exception:
        pass
    return events


class TestConcurrentTags:
    def test_64_tags_two_subscribers_zero_drops_clean_drain(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=7, keepalive_timeout_s=30.0))
            for i in range(64):
                await gw.register_tag(f"tag-{i:03d}")
            subs = [gw.subscribe(f"sub-{j}", maxlen=512) for j in range(2)]
            tasks = [asyncio.ensure_future(collect(s)) for s in subs]
            stats = await gw.serve(make_source(max_packets=32))
            streams = await asyncio.gather(*tasks)
            return gw, stats, streams

        gw, stats, streams = asyncio.run(run())
        assert stats.n_packets == 32
        assert stats.drained_clean
        assert stats.n_dropped_events == 0
        # Both subscribers saw the identical event sequence.
        assert len(streams[0]) == len(streams[1]) > 32
        for a, b in zip(*streams):
            assert type(a) is type(b)
            if isinstance(a, PacketEvent):
                assert (a.tag_id, a.seq, a.time_s) == (b.tag_id, b.seq, b.time_s)
        # Every slot was contended (64 live tags), so the arbiter drew.
        assert gw.mac.n_arbitrations == 32

    def test_packet_work_spreads_across_tags(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=1, keepalive_timeout_s=30.0))
            for i in range(8):
                await gw.register_tag(f"tag-{i}")
            sub = gw.subscribe("s", maxlen=512)
            task = asyncio.ensure_future(collect(sub))
            await gw.serve(make_source(max_packets=40))
            return [e for e in await task if isinstance(e, PacketEvent)]

        packets = asyncio.run(run())
        winners = {e.tag_id for e in packets}
        assert len(winners) > 1  # arbitration isn't pinned to one tag


class TestReplayDeterminism:
    def run_once(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=21, keepalive_timeout_s=30.0))
            for i in range(5):
                await gw.register_tag(f"tag-{i}")
            sub = gw.subscribe("s", maxlen=512)
            task = asyncio.ensure_future(collect(sub))
            await gw.serve(make_source(max_packets=24, seed=11))
            return [e for e in await task if isinstance(e, PacketEvent)]

        return asyncio.run(run())

    def test_same_seed_bit_identical_replay(self):
        first = self.run_once()
        second = self.run_once()
        assert len(first) == len(second) > 0
        for a, b in zip(first, second):
            assert (a.tag_id, a.seq, a.time_s) == (b.tag_id, b.seq, b.time_s)
            oa, ob = a.outcome, b.outcome
            assert (
                oa.protocol,
                oa.start_s,
                oa.identified,
                oa.backscattered,
                oa.tag_bits_sent,
                oa.tag_bits_correct,
                oa.productive_bits_correct,
                oa.productive_bits_total,
            ) == (
                ob.protocol,
                ob.start_s,
                ob.identified,
                ob.backscattered,
                ob.tag_bits_sent,
                ob.tag_bits_correct,
                ob.productive_bits_correct,
                ob.productive_bits_total,
            )
            assert np.array_equal(oa.tag_bits_decoded, ob.tag_bits_decoded)


class TestControlPlane:
    def test_keepalive_timeout_evicts_silent_tag(self):
        async def run():
            gw = Gateway(
                GatewayConfig(
                    seed=2, keepalive_timeout_s=0.02, keepalive_interval_s=0.005
                )
            )
            session = await gw.register_tag("quiet", MultiscatterTag())
            # The tag goes quiet: no crash is observed, its keepalive
            # just stops refreshing -- only the timeout can evict it.
            gw.suspend_heartbeat("quiet")
            sub = gw.subscribe("s", maxlen=512)
            task = asyncio.ensure_future(collect(sub))
            await asyncio.sleep(0.05)
            stats = await gw.serve(make_source(max_packets=10))
            events = await task
            return stats, events, session

        stats, events, _ = asyncio.run(run())
        assert stats.n_tag_evictions == 1
        kinds = [e.kind for e in events if isinstance(e, ControlEvent)]
        assert "evicted" in kinds
        detail = next(
            e.detail for e in events
            if isinstance(e, ControlEvent) and e.kind == "evicted"
        )
        assert "keepalive" in detail

    def test_carrier_assignment_published_and_recorded(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=2, keepalive_timeout_s=30.0))
            session = await gw.register_tag("t")
            sub = gw.subscribe("s", maxlen=512)
            source = make_source(max_packets=4)
            choice = await gw.assign_carrier(source.observed_rates())
            task = asyncio.ensure_future(collect(sub))
            await gw.serve(source)
            events = await task
            return choice, session, events

        choice, session, events = asyncio.run(run())
        assert choice is not None
        assert session.assigned_protocol is choice
        assigned = [
            e for e in events
            if isinstance(e, ControlEvent) and e.kind == "carrier_assigned"
        ]
        assert len(assigned) == 1 and assigned[0].protocol is choice
        assert "kbps" in assigned[0].detail

    def test_unmeetable_goal_assigns_none(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=2))
            source = make_source(max_packets=2)
            return await gw.assign_carrier(
                source.observed_rates(), goal_kbps=1e9
            )

        assert asyncio.run(run()) is None

    def test_duplicate_registration_rejected(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=0))
            await gw.register_tag("dup")
            with pytest.raises(ValueError, match="already registered"):
                await gw.register_tag("dup")
            await gw.deregister_tag("dup")

        asyncio.run(run())


class TestShutdown:
    def test_request_stop_drains_mid_schedule(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=4, keepalive_timeout_s=30.0))
            await gw.register_tag("t")
            sub = gw.subscribe("s", maxlen=512)
            task = asyncio.ensure_future(collect(sub))

            async def stop_soon():
                while gw.stats.n_packets < 5:
                    await asyncio.sleep(0.001)
                gw.request_stop()

            stopper = asyncio.ensure_future(stop_soon())
            stats = await gw.serve(make_source(max_packets=500))
            await stopper
            events = await task
            return stats, events

        stats, events = asyncio.run(run())
        assert 5 <= stats.n_packets < 500
        assert stats.drained_clean
        kinds = [e.kind for e in events if isinstance(e, ControlEvent)]
        assert kinds[-1] == "drained"
        assert "draining" in kinds

    def test_serve_twice_sequentially_is_rejected_concurrently(self):
        async def run():
            gw = Gateway(GatewayConfig(seed=4))
            await gw.register_tag("t")
            first = asyncio.ensure_future(gw.serve(make_source(max_packets=200)))
            await asyncio.sleep(0.01)
            with pytest.raises(RuntimeError, match="already serving"):
                await gw.serve(make_source(max_packets=1))
            gw.request_stop()
            await first

        asyncio.run(run())

    def test_decode_batching_preserves_event_order(self):
        def run(decode_batch):
            async def inner():
                gw = Gateway(
                    GatewayConfig(
                        seed=6, keepalive_timeout_s=30.0, decode_batch=decode_batch
                    )
                )
                await gw.register_tag("t", rng=np.random.default_rng(99))
                sub = gw.subscribe("s", maxlen=512)
                task = asyncio.ensure_future(collect(sub))
                await gw.serve(make_source(max_packets=16, seed=5))
                return [e for e in await task if isinstance(e, PacketEvent)]

            return asyncio.run(inner())

        unbatched = run(1)
        batched = run(8)
        assert [e.seq for e in batched] == [e.seq for e in unbatched]
        for a, b in zip(batched, unbatched):
            assert a.time_s == b.time_s
            assert np.array_equal(a.outcome.tag_bits_decoded, b.outcome.tag_bits_decoded)
