"""Self-tests for the shared analyzer scaffolding in tools/analysis_common.

reprolint, reproflow, and reproshape all build on these primitives, so
the semantics pinned here (pragma grammar, fingerprint identity,
baseline file format, exit codes, --select parsing) are load-bearing
for all three CLIs at once.
"""

import dataclasses
import json

import pytest

from tools.analysis_common import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    FILE_PRAGMA_MAX_LINE,
    BaselineBase,
    finding_fingerprint,
    is_code_suppressed,
    parse_select,
    parse_suppressions,
    selected_by_prefix,
)


class TestParseSuppressions:
    def test_line_pragma(self):
        per_line, per_file = parse_suppressions(
            "x = 1\ny = 2  # mytool: disable=X001,X002\n", "mytool"
        )
        assert per_line == {2: {"X001", "X002"}}
        assert per_file == set()

    def test_file_pragma_within_header(self):
        per_line, per_file = parse_suppressions(
            "# mytool: disable-file=X001\nx = 1\n", "mytool"
        )
        assert per_file == {"X001"}

    def test_file_pragma_after_header_ignored(self):
        source = "\n" * FILE_PRAGMA_MAX_LINE + "# mytool: disable-file=X001\n"
        _, per_file = parse_suppressions(source, "mytool")
        assert per_file == set()

    def test_tool_marker_is_exact(self):
        per_line, per_file = parse_suppressions(
            "x = 1  # othertool: disable=X001\n", "mytool"
        )
        assert per_line == {} and per_file == set()

    def test_combined_clauses_on_one_line(self):
        per_line, per_file = parse_suppressions(
            "import os  # mytool: disable=X001 disable-file=X002\n", "mytool"
        )
        assert per_line == {1: {"X001"}}
        assert per_file == {"X002"}


class TestIsCodeSuppressed:
    def test_per_line_and_per_file(self):
        per_line = {3: {"X001"}}
        assert is_code_suppressed("X001", 3, per_line, set())
        assert not is_code_suppressed("X001", 4, per_line, set())
        assert not is_code_suppressed("X002", 3, per_line, set())
        assert is_code_suppressed("X002", 9, {}, {"X002"})

    def test_disable_all(self):
        assert is_code_suppressed("X777", 5, {5: {"all"}}, set())
        assert is_code_suppressed("X777", 1, {}, {"all"})


class TestFingerprint:
    def test_line_independent_and_stable(self):
        a = finding_fingerprint("src/m.py", "X001", "m.f", "boom")
        assert a == finding_fingerprint("src/m.py", "X001", "m.f", "boom")
        assert len(a) == 16

    def test_windows_paths_normalize(self):
        assert finding_fingerprint(
            "src\\m.py", "X001", "m.f", "boom"
        ) == finding_fingerprint("src/m.py", "X001", "m.f", "boom")

    def test_components_matter(self):
        base = finding_fingerprint("src/m.py", "X001", "m.f", "boom")
        assert base != finding_fingerprint("src/m.py", "X002", "m.f", "boom")
        assert base != finding_fingerprint("src/m.py", "X001", "m.g", "boom")
        assert base != finding_fingerprint("src/m.py", "X001", "m.f", "bust")


@dataclasses.dataclass(frozen=True)
class _Finding:
    path: str
    code: str
    symbol: str
    message: str

    def fingerprint(self) -> str:
        return finding_fingerprint(self.path, self.code, self.symbol, self.message)


class _ToolBaseline(BaselineBase):
    TOOL = "faketool"


class TestBaselineBase:
    F1 = _Finding("src/a.py", "X001", "a.f", "one")
    F2 = _Finding("src/b.py", "X002", "b.g", "two")

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        _ToolBaseline.from_findings([self.F1, self.F2]).write(str(path))
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert len(doc["fingerprints"]) == 2
        loaded = _ToolBaseline.load(str(path))
        new, baselined = loaded.split([self.F1, self.F2])
        assert new == [] and len(baselined) == 2

    def test_split_keeps_unknown_findings(self):
        baseline = _ToolBaseline.from_findings([self.F1])
        new, baselined = baseline.split([self.F1, self.F2])
        assert new == [self.F2]
        assert baselined == [self.F1]

    def test_format_is_tool_agnostic(self, tmp_path):
        # Byte-compatibility promise: baselines written before the
        # extraction (no "tool" field, or another tool's) still load.
        path = tmp_path / "other.json"
        path.write_text('{"version": 1, "fingerprints": {"abc": "src/a.py:X:f"}}')
        loaded = _ToolBaseline.load(str(path))
        assert loaded.fingerprints == {"abc": "src/a.py:X:f"}

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "vnext.json"
        path.write_text('{"tool": "faketool", "version": 99, "fingerprints": {}}')
        with pytest.raises(ValueError):
            _ToolBaseline.load(str(path))


class TestCliHelpers:
    def test_exit_codes(self):
        assert (EXIT_CLEAN, EXIT_FINDINGS, EXIT_ERROR) == (0, 1, 2)

    def test_parse_select(self):
        assert parse_select(None) is None
        assert parse_select("") is None
        assert parse_select("X001") == ("X001",)
        assert parse_select(" X001 , X002 ") == ("X001", "X002")

    def test_selected_by_prefix(self):
        assert selected_by_prefix("X001", None)
        assert selected_by_prefix("X001", ("X",))
        assert selected_by_prefix("X001", ("X001",))
        assert not selected_by_prefix("X001", ("Y",))
