"""Self-tests for the reproflow units-and-purity dataflow analyzer.

Mirrors the reprolint test layout: every shipped rule gets known-bad
fixtures (must fire) and known-good fixtures (must stay silent), plus
pragma suppression, the baseline round-trip, the CLI contract, the
annotated call graph, and the repo-wide self-check that ``src/repro``
analyzes clean.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from tools.reproflow import RULES, analyze_paths, build_report
from tools.reproflow.bytecode import check_tracked_bytecode
from tools.reproflow.model import Baseline, Finding
from tools.reproflow.project import ProjectIndex, module_name_for
from tools.reproflow.purity import reachable_functions, worker_roots

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _write(tmp_path: pathlib.Path, source: str, name: str = "mod.py") -> pathlib.Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _codes(tmp_path: pathlib.Path, source: str, **kwargs) -> list[str]:
    _write(tmp_path, source)
    result = analyze_paths([str(tmp_path)], check_bytecode=False, **kwargs)
    return [f.code for f in result.findings]


# ----------------------------------------------------------------------
# U001: incompatible-unit arithmetic / comparison / assignment
# ----------------------------------------------------------------------
class TestU001:
    def test_time_scale_mix_fires(self, tmp_path):
        src = """\
            def f(window_us: float, duration_s: float) -> float:
                return window_us + duration_s
        """
        assert _codes(tmp_path, src) == ["U001"]

    def test_count_vs_rate_fires(self, tmp_path):
        src = """\
            def f(n_samples: int, chip_rate_hz: float) -> float:
                return n_samples - chip_rate_hz
        """
        assert _codes(tmp_path, src) == ["U001"]

    def test_same_unit_ok(self, tmp_path):
        src = """\
            def f(start_us: float, stop_us: float) -> float:
                return stop_us - start_us
        """
        assert _codes(tmp_path, src) == []

    def test_literal_transparent(self, tmp_path):
        src = """\
            def f(l_p: int) -> int:
                return l_p + 2
        """
        assert _codes(tmp_path, src) == []

    def test_unknown_absorbs(self, tmp_path):
        # noise_floor pattern: known + unknown stays silent.
        src = """\
            def noise_floor(thermal_dbm_per_hz: float, bw_term, nf_db: float):
                return thermal_dbm_per_hz + bw_term + nf_db
        """
        assert _codes(tmp_path, src) == []

    def test_dbm_plus_dbm_fires_minus_ok(self, tmp_path):
        src = """\
            def bad(p1_dbm: float, p2_dbm: float) -> float:
                return p1_dbm + p2_dbm

            def good(rx_dbm: float, tx_dbm: float) -> float:
                loss_db = tx_dbm - rx_dbm
                return loss_db
        """
        assert _codes(tmp_path, src) == ["U001"]

    def test_dbm_plus_db_gain_ok(self, tmp_path):
        src = """\
            def f(tx_dbm: float, gain_db: float) -> float:
                return tx_dbm + gain_db
        """
        assert _codes(tmp_path, src) == []

    def test_comparison_fires(self, tmp_path):
        src = """\
            def f(timeout_us: float, elapsed_s: float) -> bool:
                return elapsed_s > timeout_us
        """
        assert _codes(tmp_path, src) == ["U001"]

    def test_assignment_to_conflicting_name_fires(self, tmp_path):
        src = """\
            def f(rate_hz: float):
                delay_us = rate_hz
                return delay_us
        """
        assert _codes(tmp_path, src) == ["U001"]

    def test_multiplication_resets_unit(self, tmp_path):
        src = """\
            def f(duration_s: float, sample_rate_hz: float) -> float:
                n = duration_s * sample_rate_hz
                return n + 3
        """
        assert _codes(tmp_path, src) == []

    def test_propagates_through_locals(self, tmp_path):
        src = """\
            def f(window_us: float, span_s: float) -> float:
                w = window_us
                return w + span_s
        """
        assert _codes(tmp_path, src) == ["U001"]

    def test_annotation_alias_seeds_unit(self, tmp_path):
        src = """\
            from repro.types.units import Microseconds, Seconds

            def f(window: Microseconds, span: Seconds) -> float:
                return window + span
        """
        assert _codes(tmp_path, src) == ["U001"]


# ----------------------------------------------------------------------
# U002: log-domain vs linear mixing
# ----------------------------------------------------------------------
class TestU002:
    def test_dbm_plus_mw_fires(self, tmp_path):
        src = """\
            def f(p_dbm: float, p_mw: float) -> float:
                return p_dbm + p_mw
        """
        assert _codes(tmp_path, src) == ["U002"]

    def test_db_plus_volts_fires(self, tmp_path):
        src = """\
            def f(gain_db: float, out_v: float) -> float:
                return gain_db - out_v
        """
        assert _codes(tmp_path, src) == ["U002"]

    def test_linear_power_math_ok(self, tmp_path):
        src = """\
            def f(p1_mw: float, p2_mw: float) -> float:
                return p1_mw + p2_mw
        """
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# U003: call-boundary unit mismatches
# ----------------------------------------------------------------------
class TestU003:
    def test_positional_mismatch_fires(self, tmp_path):
        src = """\
            def helper(window_us: float) -> float:
                return window_us

            def caller(span_s: float) -> float:
                return helper(span_s)
        """
        assert _codes(tmp_path, src) == ["U003"]

    def test_keyword_mismatch_fires(self, tmp_path):
        src = """\
            def helper(*, cutoff_hz: float) -> float:
                return cutoff_hz

            def caller(period_s: float) -> float:
                return helper(cutoff_hz=period_s)
        """
        assert _codes(tmp_path, src) == ["U003"]

    def test_matching_units_ok(self, tmp_path):
        src = """\
            def helper(window_us: float) -> float:
                return window_us

            def caller(span_us: float) -> float:
                return helper(span_us)
        """
        assert _codes(tmp_path, src) == []

    def test_literal_and_unknown_args_ok(self, tmp_path):
        src = """\
            def helper(window_us: float) -> float:
                return window_us

            def caller(x) -> float:
                return helper(8.0) + helper(x)
        """
        assert _codes(tmp_path, src) == []

    def test_cross_module_call_fires(self, tmp_path):
        _write(
            tmp_path,
            """\
            def helper(window_us: float) -> float:
                return window_us
            """,
            name="lib.py",
        )
        src = """\
            from lib import helper

            def caller(span_s: float) -> float:
                return helper(span_s)
        """
        assert _codes(tmp_path, src) == ["U003"]

    def test_dataclass_constructor_fires(self, tmp_path):
        src = """\
            from dataclasses import dataclass

            @dataclass
            class Config:
                sample_rate_hz: float

            def build(period_s: float) -> Config:
                return Config(sample_rate_hz=period_s)
        """
        assert _codes(tmp_path, src) == ["U003"]

    def test_return_unit_flows_through_calls(self, tmp_path):
        src = """\
            def rate() -> float:
                ...

            def span_us() -> float:
                ...

            def f(total_s: float) -> float:
                return total_s + span_us()
        """
        assert _codes(tmp_path, src) == ["U001"]


# ----------------------------------------------------------------------
# U004: unit-ambiguous public parameters / fields
# ----------------------------------------------------------------------
class TestU004:
    def test_bare_rate_param_fires(self, tmp_path):
        src = """\
            def resample(new_rate: float) -> float:
                return new_rate
        """
        assert _codes(tmp_path, src, strict_unit_dirs=("",)) == ["U004"]

    def test_suffixed_param_ok(self, tmp_path):
        src = """\
            def resample(new_rate_hz: float) -> float:
                return new_rate_hz
        """
        assert _codes(tmp_path, src, strict_unit_dirs=("",)) == []

    def test_annotated_param_ok(self, tmp_path):
        src = """\
            from repro.types.units import Hertz

            def resample(new_rate: Hertz) -> float:
                return new_rate
        """
        assert _codes(tmp_path, src, strict_unit_dirs=("",)) == []

    def test_private_function_ok(self, tmp_path):
        src = """\
            def _resample(new_rate: float) -> float:
                return new_rate
        """
        assert _codes(tmp_path, src, strict_unit_dirs=("",)) == []

    def test_dataclass_field_fires(self, tmp_path):
        src = """\
            from dataclasses import dataclass

            @dataclass
            class Params:
                template_size: int = 120
        """
        assert _codes(tmp_path, src, strict_unit_dirs=("",)) == ["U004"]

    def test_non_numeric_annotation_ok(self, tmp_path):
        src = """\
            def parse(rate: str) -> str:
                return rate
        """
        assert _codes(tmp_path, src, strict_unit_dirs=("",)) == []

    def test_outside_strict_dirs_ok(self, tmp_path):
        src = """\
            def resample(new_rate: float) -> float:
                return new_rate
        """
        # default strict dirs do not match the tmp fixture path
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# F001: worker-reachable global mutation
# ----------------------------------------------------------------------
class TestF001:
    def test_submit_worker_mutating_global_fires(self, tmp_path):
        src = """\
            _STATE = {}

            def worker(trial: int) -> int:
                _STATE[trial] = 1
                return trial

            def launch(pool):
                pool.submit(worker, 1)
        """
        assert _codes(tmp_path, src) == ["F001"]

    def test_map_worker_transitive_fires(self, tmp_path):
        src = """\
            _LOG = []

            def inner():
                _LOG.append(1)

            def worker(trial: int) -> int:
                inner()
                return trial

            def launch(pool):
                pool.map(worker, [1, 2])
        """
        assert _codes(tmp_path, src) == ["F001"]

    def test_implements_root_fires(self, tmp_path):
        src = """\
            from repro.experiments.registry import implements

            _CACHE = {}

            @implements("fig99")
            def run(*, seed: int = 0):
                _CACHE["last"] = seed
        """
        assert _codes(tmp_path, src) == ["F001"]

    def test_montecarlo_run_root_fires(self, tmp_path):
        src = """\
            from repro.sim.runner import MonteCarlo

            _HITS = []

            def trial(rng):
                _HITS.append(1)

            def experiment():
                mc = MonteCarlo(n_trials=8, seed=1)
                return mc.run(trial)
        """
        assert _codes(tmp_path, src) == ["F001"]

    def test_global_statement_rebind_fires(self, tmp_path):
        src = """\
            _COUNT = 0

            def worker(trial: int) -> int:
                global _COUNT
                _COUNT = _COUNT + 1
                return trial

            def launch(pool):
                pool.submit(worker, 1)
        """
        assert _codes(tmp_path, src) == ["F001"]

    def test_local_shadow_ok(self, tmp_path):
        src = """\
            _STATE = {}

            def worker(trial: int) -> int:
                _STATE = {}
                _STATE[trial] = 1
                return trial

            def launch(pool):
                pool.submit(worker, 1)
        """
        assert _codes(tmp_path, src) == []

    def test_os_environ_ok(self, tmp_path):
        src = """\
            import os

            def worker(trial: int) -> int:
                os.environ["REPRO_WORKERS"] = "1"
                return trial

            def launch(pool):
                pool.submit(worker, 1)
        """
        assert _codes(tmp_path, src) == []

    def test_unreachable_mutation_ok(self, tmp_path):
        src = """\
            _REGISTRY = {}

            def register(name: str):
                _REGISTRY[name] = True
        """
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# F002: wavecache writes outside the locked API
# ----------------------------------------------------------------------
class TestF002:
    def test_clear_caches_from_worker_fires(self, tmp_path):
        src = """\
            from repro.core.wavecache import clear_caches

            def worker(trial: int) -> int:
                clear_caches()
                return trial

            def launch(pool):
                pool.submit(worker, 1)
        """
        assert _codes(tmp_path, src) == ["F002"]

    def test_module_attr_call_fires(self, tmp_path):
        src = """\
            from repro.core import wavecache

            def worker(trial: int) -> int:
                wavecache.register_functools_cache("f", None)
                return trial

            def launch(pool):
                pool.submit(worker, 1)
        """
        assert _codes(tmp_path, src) == ["F002"]

    def test_lru_put_on_module_instance_fires(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "wavecache.py").write_text(
            textwrap.dedent(
                """\
                class LruCache:
                    def get_or_create(self, key, factory):
                        ...

                    def put(self, key, value):
                        ...
                """
            )
        )
        (pkg / "user.py").write_text(
            textwrap.dedent(
                """\
                from repro.core.wavecache import LruCache

                _CACHE = LruCache()

                def worker(trial: int) -> int:
                    _CACHE.put(trial, trial)
                    return trial

                def launch(pool):
                    pool.submit(worker, 1)
                """
            )
        )
        result = analyze_paths([str(tmp_path)], check_bytecode=False)
        assert [f.code for f in result.findings] == ["F002"]

    def test_get_or_create_ok(self, tmp_path):
        src = """\
            from repro.core.wavecache import LruCache

            _CACHE = LruCache(maxsize=4)

            def worker(trial: int) -> int:
                return _CACHE.get_or_create(trial, lambda: trial)

            def launch(pool):
                pool.submit(worker, 1)
        """
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# B001/B002: tracked bytecode and packaging metadata
# ----------------------------------------------------------------------
class TestB001:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", *args], cwd=cwd, check=True, capture_output=True
        )

    def test_tracked_pyc_fires(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir(parents=True)
        (cache / "mod.cpython-311.pyc").write_bytes(b"\x00")
        self._git(tmp_path, "add", "-f", ".")
        findings = check_tracked_bytecode(str(tmp_path))
        assert [f.code for f in findings] == ["B001"]
        assert "mod.cpython-311.pyc" in findings[0].path

    def test_tracked_egg_info_fires(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        egg = tmp_path / "src" / "pkg.egg-info"
        egg.mkdir(parents=True)
        (egg / "PKG-INFO").write_text("Metadata-Version: 2.1\n")
        (egg / "SOURCES.txt").write_text("pkg/__init__.py\n")
        self._git(tmp_path, "add", "-f", ".")
        findings = check_tracked_bytecode(str(tmp_path))
        assert [f.code for f in findings] == ["B002", "B002"]
        assert all("egg-info" in f.path for f in findings)
        assert "egg-info" in findings[0].message

    def test_tracked_pyc_and_egg_info_both_fire(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-311.pyc").write_bytes(b"\x00")
        egg = tmp_path / "pkg.egg-info"
        egg.mkdir()
        (egg / "top_level.txt").write_text("pkg\n")
        self._git(tmp_path, "add", "-f", ".")
        codes = sorted(f.code for f in check_tracked_bytecode(str(tmp_path)))
        assert codes == ["B001", "B002"]

    def test_clean_repo_ok(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        (tmp_path / "mod.py").write_text("x = 1\n")
        self._git(tmp_path, "add", ".")
        assert check_tracked_bytecode(str(tmp_path)) == []

    def test_untracked_egg_info_ok(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        (tmp_path / "mod.py").write_text("x = 1\n")
        egg = tmp_path / "pkg.egg-info"
        egg.mkdir()
        (egg / "PKG-INFO").write_text("Metadata-Version: 2.1\n")
        self._git(tmp_path, "add", "mod.py")
        assert check_tracked_bytecode(str(tmp_path)) == []

    def test_not_a_repo_silently_ok(self, tmp_path):
        assert check_tracked_bytecode(str(tmp_path)) == []


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_line_pragma_suppresses(self, tmp_path):
        src = """\
            def f(window_us: float, duration_s: float) -> float:
                return window_us + duration_s  # reproflow: disable=U001
        """
        assert _codes(tmp_path, src) == []

    def test_line_pragma_wrong_code_keeps(self, tmp_path):
        src = """\
            def f(window_us: float, duration_s: float) -> float:
                return window_us + duration_s  # reproflow: disable=U003
        """
        assert _codes(tmp_path, src) == ["U001"]

    def test_file_pragma_suppresses(self, tmp_path):
        src = """\
            # reproflow: disable-file=U001
            def f(window_us: float, duration_s: float) -> float:
                return window_us + duration_s
        """
        assert _codes(tmp_path, src) == []

    def test_file_pragma_after_line_10_ignored(self, tmp_path):
        filler = "\n" * 11
        src = (
            filler
            + "# reproflow: disable-file=U001\n"
            + "def f(window_us: float, duration_s: float) -> float:\n"
            + "    return window_us + duration_s\n"
        )
        assert _codes(tmp_path, src) == ["U001"]

    def test_disable_all(self, tmp_path):
        src = """\
            def f(p_dbm: float, p_mw: float) -> float:
                return p_dbm + p_mw  # reproflow: disable=all
        """
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# select + baseline
# ----------------------------------------------------------------------
class TestSelectAndBaseline:
    SRC = """\
        def f(window_us: float, duration_s: float, p_dbm: float, p_mw: float):
            a = window_us + duration_s
            b = p_dbm + p_mw
            return a, b
    """

    def test_select_filters(self, tmp_path):
        assert _codes(tmp_path, self.SRC, select=("U002",)) == ["U002"]
        assert _codes(tmp_path, self.SRC, select=("U",)) == ["U001", "U002"]

    def test_baseline_round_trip(self, tmp_path):
        _write(tmp_path, self.SRC)
        first = analyze_paths([str(tmp_path)], check_bytecode=False)
        assert len(first.findings) == 2
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).write(str(baseline_path))
        loaded = Baseline.load(str(baseline_path))
        again = analyze_paths(
            [str(tmp_path)], check_bytecode=False, baseline=loaded
        )
        assert again.findings == []
        assert len(again.baselined) == 2

    def test_fingerprint_survives_line_shift(self, tmp_path):
        _write(tmp_path, self.SRC)
        before = analyze_paths([str(tmp_path)], check_bytecode=False)
        _write(tmp_path, "# a new leading comment\n" + textwrap.dedent(self.SRC))
        after = analyze_paths([str(tmp_path)], check_bytecode=False)
        assert {f.fingerprint() for f in before.findings} == {
            f.fingerprint() for f in after.findings
        }

    def test_new_finding_not_baselined(self, tmp_path):
        _write(tmp_path, self.SRC)
        first = analyze_paths([str(tmp_path)], check_bytecode=False)
        baseline = Baseline.from_findings(first.findings[:1])
        again = analyze_paths(
            [str(tmp_path)], check_bytecode=False, baseline=baseline
        )
        assert len(again.findings) == 1
        assert len(again.baselined) == 1

    def test_bad_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))


# ----------------------------------------------------------------------
# call graph / report
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_module_name_derivation(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "adc.py").write_text("x = 1\n")
        assert module_name_for(str(pkg / "adc.py")) == "repro.core.adc"

    def test_roots_and_reachability(self, tmp_path):
        _write(
            tmp_path,
            """\
            def leaf():
                ...

            def worker(trial):
                leaf()

            def launch(pool):
                pool.submit(worker, 1)
            """,
        )
        index = ProjectIndex.build([str(tmp_path)])
        roots = worker_roots(index)
        assert any(fq.endswith(".worker") for fq in roots)
        reach = reachable_functions(index, roots)
        assert any(fq.endswith(".leaf") for fq in reach)
        assert not any(fq.endswith(".launch") for fq in reach)

    def test_run_in_executor_callable_is_second_argument(self, tmp_path):
        # loop.run_in_executor(pool, fn, *args): the executor sits at
        # position 0, the shipped callable at position 1.
        _write(
            tmp_path,
            """\
            def leaf():
                ...

            def worker(payloads):
                leaf()

            async def launch(loop, pool):
                await loop.run_in_executor(pool, worker, [1])

            async def degenerate(loop, pool):
                await loop.run_in_executor(pool)
            """,
        )
        index = ProjectIndex.build([str(tmp_path)])
        roots = worker_roots(index)
        assert any(fq.endswith(".worker") for fq in roots)
        # The executor argument is never mistaken for the callable.
        assert not any(fq.endswith(".launch") for fq in roots)
        reach = reachable_functions(index, roots)
        assert any(fq.endswith(".leaf") for fq in reach)

    def test_report_structure(self, tmp_path):
        _write(
            tmp_path,
            """\
            def f(sample_rate_hz: float) -> float:
                return sample_rate_hz
            """,
        )
        result = analyze_paths([str(tmp_path)], check_bytecode=False)
        report = build_report(result)
        assert report["tool"] == "reproflow"
        assert report["summary"]["findings"] == 0
        (fq,) = [k for k in report["call_graph"] if k.endswith(".f")]
        assert report["call_graph"][fq]["params"]["sample_rate_hz"] == "Hz"


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------
class TestCli:
    def _run(self, *args, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "tools.reproflow", *args],
            capture_output=True,
            text=True,
            cwd=cwd or _REPO_ROOT,
        )

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout

    def test_clean_file_exits_zero(self, tmp_path):
        _write(tmp_path, "def f(window_us: float) -> float:\n    return window_us\n")
        proc = self._run(str(tmp_path), "--no-bytecode-check")
        assert proc.returncode == 0, proc.stderr

    def test_findings_exit_one(self, tmp_path):
        _write(
            tmp_path,
            "def f(window_us: float, span_s: float):\n    return window_us + span_s\n",
        )
        proc = self._run(str(tmp_path), "--no-bytecode-check")
        assert proc.returncode == 1
        assert "U001" in proc.stdout

    def test_json_format(self, tmp_path):
        _write(
            tmp_path,
            "def f(window_us: float, span_s: float):\n    return window_us + span_s\n",
        )
        proc = self._run(str(tmp_path), "--no-bytecode-check", "--format=json")
        doc = json.loads(proc.stdout)
        assert doc["summary"]["findings"] == 1
        assert doc["findings"][0]["code"] == "U001"
        assert "call_graph" in doc

    def test_write_and_use_baseline(self, tmp_path):
        _write(
            tmp_path,
            "def f(window_us: float, span_s: float):\n    return window_us + span_s\n",
        )
        baseline = tmp_path / "baseline.json"
        wrote = self._run(
            str(tmp_path), "--no-bytecode-check", "--write-baseline", str(baseline)
        )
        assert wrote.returncode == 0
        gated = self._run(
            str(tmp_path), "--no-bytecode-check", "--baseline", str(baseline)
        )
        assert gated.returncode == 0
        assert "baselined" in gated.stderr


# ----------------------------------------------------------------------
# repo-wide self-checks
# ----------------------------------------------------------------------
class TestRepoClean:
    def test_src_repro_is_clean(self):
        result = analyze_paths(
            [str(_REPO_ROOT / "src" / "repro")], repo_root=str(_REPO_ROOT)
        )
        assert [f.render() for f in result.findings] == []
        assert result.baselined == []  # no baseline shipped: zero suppressions

    def test_worker_surfaces_are_roots(self):
        result = analyze_paths([str(_REPO_ROOT / "src" / "repro")])
        assert "repro.sim.runner._run_chunk" in result.roots
        assert "repro.cli._run_all_worker" in result.roots
        assert any(r.startswith("repro.experiments.") for r in result.roots)

    def test_no_tracked_bytecode_in_repo(self):
        assert check_tracked_bytecode(str(_REPO_ROOT)) == []
