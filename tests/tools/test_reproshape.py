"""Self-tests for the reproshape symbolic shape/dtype verifier.

Mirrors the reprolint/reproflow test layout: every S-rule gets
known-bad fixtures (must fire) and known-good fixtures (must stay
silent), plus the symbolic algebra itself, pragma suppression, the
baseline round-trip, the JSON report with its shape table, the CLI
contract, and the repo-wide self-check that ``src/repro`` verifies
clean with every batch/scalar parity proof intact.
"""

import ast
import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from tools.reproshape import RULES, analyze_paths, build_report
from tools.reproshape.contracts_index import classify_annotation
from tools.reproshape.model import Baseline
from tools.reproshape.symbolic import SymDim, sym_from_dim, unify_dims

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _write(tmp_path: pathlib.Path, source: str, name: str = "mod.py") -> pathlib.Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _analyze(tmp_path: pathlib.Path, source: str, *, strict: bool = False, **kwargs):
    # ``strict`` plants the fixture under repro/phy/ so the strict-dir
    # rules (S003 coverage arm, S004) apply to it.
    name = "repro/phy/mod.py" if strict else "mod.py"
    _write(tmp_path, source, name=name)
    return analyze_paths([str(tmp_path)], **kwargs)


def _codes(tmp_path, source, *, strict: bool = False, **kwargs) -> list[str]:
    return [f.code for f in _analyze(tmp_path, source, strict=strict, **kwargs).findings]


# ----------------------------------------------------------------------
# the symbolic dimension algebra
# ----------------------------------------------------------------------
class TestSymDim:
    def test_arithmetic_identities_canonicalize(self):
        n = SymDim.atom("n")
        assert n * SymDim.const(8) + n * SymDim.const(3) == n * SymDim.const(11)
        assert (n + SymDim.const(1)) * (n - SymDim.const(1)) == n * n - SymDim.const(1)

    def test_provably_ne_needs_one_sign(self):
        n = SymDim.atom("n")
        # n*2 - n = n >= 1: provably nonzero.
        assert (n * SymDim.const(2)).provably_ne(n)
        # 2n - 64 has mixed signs: 2n == 64 is satisfiable, stay silent.
        assert not (n * SymDim.const(2)).provably_ne(SymDim.const(64))
        assert not n.provably_ne(SymDim.atom("m"))
        assert SymDim.const(3).provably_ne(SymDim.const(4))

    def test_floordiv_exact_vs_opaque(self):
        n = SymDim.atom("n")
        assert (n * SymDim.const(8)).floordiv(SymDim.const(4)) == n * SymDim.const(2)
        opaque = n.floordiv(SymDim.const(4))
        assert opaque.atoms() == {"(n)//(4)"}
        # The same expression canonicalizes to the same opaque atom.
        assert opaque == n.floordiv(SymDim.const(4))

    def test_subst(self):
        expr = sym_from_dim("n*2+1", lambda s: SymDim.atom(s))
        assert expr is not None
        assert expr.subst({"n": SymDim.const(5)}) == SymDim.const(11)

    def test_unify_rank_mismatch(self):
        binding: dict[str, SymDim] = {}
        msg = unify_dims(("n", "64"), (SymDim.atom("a"),), binding)
        assert msg is not None and "rank mismatch" in msg

    def test_unify_binds_then_checks(self):
        a = SymDim.atom("a")
        binding: dict[str, SymDim] = {}
        assert unify_dims(("n",), (a,), binding) is None
        assert binding["n"] == a
        # Second use of n must now be consistent with the binding.
        msg = unify_dims(("n*2",), (a * SymDim.const(3),), binding)
        assert msg is not None and "axis 0" in msg


class TestClassifyAnnotation:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("np.ndarray", "array"),
            ("BitArray", "array"),
            ("np.ndarray | list[int]", "array"),
            ("Sequence[np.ndarray]", "seq"),
            ("Sequence[np.ndarray] | np.ndarray", "seq"),
            ("list[int]", "other"),
            ("int", "other"),
            ("Optional[np.ndarray]", "array"),
        ],
    )
    def test_kinds(self, text, expected):
        node = ast.parse(text, mode="eval").body
        assert classify_annotation(node) == expected

    def test_unannotated_is_unknown(self):
        assert classify_annotation(None) == "unknown"


# ----------------------------------------------------------------------
# S001: call-site shape incompatibility
# ----------------------------------------------------------------------
class TestS001:
    def test_literal_axis_mismatch_fires(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,64 ->")
            def callee(x: np.ndarray) -> None:
                ...

            @contracts.shapes("m,32 ->")
            def caller(x: np.ndarray) -> None:
                callee(x)
        """
        result = _analyze(tmp_path, src)
        assert [f.code for f in result.findings] == ["S001"]
        (finding,) = result.findings
        assert "callee()" in finding.message
        assert "(m, 32)" in finding.message  # symbolic caller shape named

    def test_arity_mismatch_fires(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n ; n ->")
            def callee(a: np.ndarray, b: np.ndarray) -> None:
                ...

            @contracts.shapes("m ->")
            def caller(x: np.ndarray) -> None:
                callee(x, 3)
        """
        result = _analyze(tmp_path, src)
        assert [f.code for f in result.findings] == ["S001"]
        assert "declares 2 array argument(s), call passes 1" in result.findings[0].message

    def test_symbol_binding_consistency_fires(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("p ; p*3 ->")
            def callee(a: np.ndarray, b: np.ndarray) -> None:
                ...

            @contracts.shapes("m ; m*2 ->")
            def caller(a: np.ndarray, b: np.ndarray) -> None:
                callee(a, b)
        """
        assert _codes(tmp_path, src) == ["S001"]

    def test_matching_shapes_ok(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,64 ->")
            def callee(x: np.ndarray) -> None:
                ...

            @contracts.shapes("m,64 ->")
            def caller(x: np.ndarray) -> None:
                callee(x)
        """
        assert _codes(tmp_path, src) == []

    def test_out_spec_propagates_through_locals(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("m -> m*2")
            def grow(x: np.ndarray) -> np.ndarray:
                ...

            @contracts.shapes("p ; p*3 ->")
            def eat(a: np.ndarray, b: np.ndarray) -> None:
                ...

            @contracts.shapes("n ->")
            def caller(x: np.ndarray) -> None:
                y = grow(x)
                eat(x, y)
        """
        result = _analyze(tmp_path, src)
        assert [f.code for f in result.findings] == ["S001"]
        # The propagated symbolic shape appears in the message.
        assert "2*n" in result.findings[0].message

    def test_rebound_in_branch_degrades_to_unknown(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,64 ->")
            def callee(x: np.ndarray) -> None:
                ...

            @contracts.shapes("m,32 ->")
            def caller(x: np.ndarray, flag: int) -> None:
                if flag:
                    x = make()
                callee(x)
        """
        assert _codes(tmp_path, src) == []

    def test_loop_rebinding_kills_shape(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,64 ->")
            def callee(x: np.ndarray) -> None:
                ...

            @contracts.shapes("m,32 ->")
            def caller(x: np.ndarray, items: list) -> None:
                for x in items:
                    pass
                callee(x)
        """
        assert _codes(tmp_path, src) == []

    def test_wildcard_dim_absorbs(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("_,64 ->")
            def callee(x: np.ndarray) -> None:
                ...

            @contracts.shapes("m,64 ->")
            def caller(x: np.ndarray) -> None:
                callee(x)
        """
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# S002: call-site dtype mismatch / widening
# ----------------------------------------------------------------------
class TestS002:
    def _src(self, caller_dtype: str, callee_dtype: str) -> str:
        return f"""\
            import numpy as np
            from repro.core import contracts

            @contracts.dtypes(np.{callee_dtype})
            def callee(x: np.ndarray) -> None:
                ...

            @contracts.dtypes(np.{caller_dtype})
            def caller(x: np.ndarray) -> None:
                callee(x)
        """

    def test_mismatch_fires(self, tmp_path):
        assert _codes(tmp_path, self._src("uint8", "float64")) == ["S002"]

    def test_widening_fires_and_is_named(self, tmp_path):
        result = _analyze(tmp_path, self._src("float32", "float64"))
        assert [f.code for f in result.findings] == ["S002"]
        assert "widening" in result.findings[0].message

    def test_exact_match_ok(self, tmp_path):
        assert _codes(tmp_path, self._src("uint8", "uint8")) == []


# ----------------------------------------------------------------------
# S003: batch/scalar contract parity
# ----------------------------------------------------------------------
class TestS003:
    def test_batch_axis_drop_fires(self, tmp_path):
        # The classic mutation: scalar returns (n, 8), the batch twin
        # flattens to (b, n*8) instead of lifting to (b, n, 8).
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n -> n,8")
            def kernel(x: np.ndarray) -> np.ndarray:
                ...

            @contracts.shapes("b,n -> b,n*8")
            def kernel_batch(x: np.ndarray) -> np.ndarray:
                ...
        """
        result = _analyze(tmp_path, src)
        assert [f.code for f in result.findings] == ["S003"]
        msg = result.findings[0].message
        assert "kernel_batch()" in msg and "kernel()" in msg

    def test_proper_lift_proven(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n -> n,8")
            def kernel(x: np.ndarray) -> np.ndarray:
                ...

            @contracts.shapes("b,n -> b,n,8")
            def kernel_batch(x: np.ndarray) -> np.ndarray:
                ...
        """
        result = _analyze(tmp_path, src)
        assert result.findings == []
        (record,) = [r for r in result.parity if r["batch"].endswith("kernel_batch")]
        assert record["status"] == "proven"
        assert record["mode"] == "stacked"

    def test_lifted_per_packet_state_allowed(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n -> n")
            def kernel(x: np.ndarray, seed: int) -> np.ndarray:
                ...

            @contracts.shapes("b,n ; b -> b,n")
            def kernel_batch(x: np.ndarray, seeds: np.ndarray) -> np.ndarray:
                ...
        """
        result = _analyze(tmp_path, src)
        assert result.findings == []
        (record,) = [r for r in result.parity if r["batch"].endswith("kernel_batch")]
        assert record["status"] == "proven"

    def test_ragged_parity_proven_and_broken(self, tmp_path):
        good = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n ->")
            def kernel(x: np.ndarray) -> np.ndarray:
                ...

            @contracts.shapes("[n] ->")
            def kernel_batch(xs: Sequence[np.ndarray]) -> list:
                ...
        """
        result = _analyze(tmp_path, good)
        assert result.findings == []
        (record,) = [r for r in result.parity if r["batch"].endswith("kernel_batch")]
        assert record["status"] == "proven"
        assert record["mode"] == "ragged"

        bad = good.replace('"[n] ->"', '"[n,2] ->"')
        assert _codes(tmp_path, bad) == ["S003"]

    def test_missing_scalar_contract_fires_in_strict_dir_only(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            def kernel(x: np.ndarray) -> np.ndarray:
                ...

            @contracts.shapes("b,n -> b,n")
            def kernel_batch(x: np.ndarray) -> np.ndarray:
                ...
        """
        assert _codes(tmp_path / "lax", src) == []
        assert _codes(tmp_path / "strict", src, strict=True) == ["S003"]

    def test_dtype_asymmetry_fires_in_strict_dir(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n -> n")
            @contracts.dtypes(np.uint8)
            def kernel(x: np.ndarray) -> np.ndarray:
                ...

            @contracts.shapes("b,n -> b,n")
            def kernel_batch(x: np.ndarray) -> np.ndarray:
                ...
        """
        result = _analyze(tmp_path, src, strict=True)
        assert [f.code for f in result.findings] == ["S003"]
        assert "dtypes contract declared on one side only" in result.findings[0].message

    def test_no_twin_recorded_not_fired(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("b,n -> b,n")
            def orphan_batch(x: np.ndarray) -> np.ndarray:
                ...
        """
        result = _analyze(tmp_path, src, strict=True)
        assert result.findings == []
        (record,) = [r for r in result.parity if r["batch"].endswith("orphan_batch")]
        assert record["status"] == "no-twin"


# ----------------------------------------------------------------------
# S004: contract coverage on public entry points
# ----------------------------------------------------------------------
class TestS004:
    SRC = """\
        import numpy as np

        def modulate(payload: np.ndarray) -> None:
            ...
    """

    def test_uncontracted_entry_point_fires(self, tmp_path):
        result = _analyze(tmp_path, self.SRC, strict=True)
        assert [f.code for f in result.findings] == ["S004"]
        assert "modulate()" in result.findings[0].message

    def test_outside_strict_dirs_silent(self, tmp_path):
        assert _codes(tmp_path, self.SRC) == []

    def test_contract_satisfies(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.dtypes(np.uint8)
            def modulate(payload: np.ndarray) -> None:
                ...
        """
        assert _codes(tmp_path, src, strict=True) == []

    def test_no_array_params_exempt(self, tmp_path):
        src = """\
            def modulate(config: int) -> None:
                ...
        """
        assert _codes(tmp_path, src, strict=True) == []


# ----------------------------------------------------------------------
# S005: contract-derivable in-function shape errors
# ----------------------------------------------------------------------
class TestS005:
    def test_impossible_reshape_fires(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("4,8 ->")
            def f(x: np.ndarray):
                return x.reshape(3, 11)
        """
        result = _analyze(tmp_path, src)
        assert [f.code for f in result.findings] == ["S005"]
        assert "32" in result.findings[0].message and "33" in result.findings[0].message

    def test_valid_reshape_ok(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("4,8 ->")
            def f(x: np.ndarray):
                return x.reshape(2, 16)
        """
        assert _codes(tmp_path, src) == []

    def test_symbolic_reshape_undecidable_stays_silent(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,3 ->")
            def f(x: np.ndarray):
                return x.reshape(-1, 4)
        """
        assert _codes(tmp_path, src) == []

    def test_stack_axis_disagreement_fires(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,4 ; n,5 ->")
            def f(a: np.ndarray, b: np.ndarray):
                return np.stack([a, b])
        """
        assert _codes(tmp_path, src) == ["S005"]

    def test_matmul_inner_dims_fire(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,4 ; 5,m ->")
            def f(a: np.ndarray, b: np.ndarray):
                return a @ b
        """
        assert _codes(tmp_path, src) == ["S005"]

    def test_matmul_symbol_match_ok(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n,k ; k,m ->")
            def f(a: np.ndarray, b: np.ndarray):
                return a @ b
        """
        assert _codes(tmp_path, src) == []

    def test_return_contradicts_own_contract(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n -> n*2")
            def f(x: np.ndarray):
                return x
        """
        result = _analyze(tmp_path, src)
        assert [f.code for f in result.findings] == ["S005"]
        assert "own contract" in result.findings[0].message


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    BAD_CALL = """\
        import numpy as np
        from repro.core import contracts

        @contracts.shapes("n,64 ->")
        def callee(x: np.ndarray) -> None:
            ...

        @contracts.shapes("m,32 ->")
        def caller(x: np.ndarray) -> None:
            callee(x){pragma}
    """

    def test_line_pragma_suppresses(self, tmp_path):
        src = self.BAD_CALL.format(pragma="  # reproshape: disable=S001")
        assert _codes(tmp_path, src) == []

    def test_wrong_code_keeps(self, tmp_path):
        src = self.BAD_CALL.format(pragma="  # reproshape: disable=S005")
        assert _codes(tmp_path, src) == ["S001"]

    def test_file_pragma_suppresses(self, tmp_path):
        src = "# reproshape: disable-file=S001\n" + textwrap.dedent(
            self.BAD_CALL.format(pragma="")
        )
        _write(tmp_path, src)
        assert [f.code for f in analyze_paths([str(tmp_path)]).findings] == []

    def test_other_tools_pragmas_ignored(self, tmp_path):
        src = self.BAD_CALL.format(pragma="  # reproflow: disable=S001")
        assert _codes(tmp_path, src) == ["S001"]


# ----------------------------------------------------------------------
# select + baseline
# ----------------------------------------------------------------------
class TestSelectAndBaseline:
    SRC = """\
        import numpy as np
        from repro.core import contracts

        @contracts.shapes("n -> n,8")
        def kernel(x: np.ndarray) -> np.ndarray:
            ...

        @contracts.shapes("b,n -> b,n*8")
        def kernel_batch(x: np.ndarray) -> np.ndarray:
            ...

        def modulate(payload: np.ndarray) -> None:
            ...
    """

    def test_select_filters(self, tmp_path):
        assert _codes(tmp_path, self.SRC, strict=True, select=("S003",)) == ["S003"]
        assert sorted(_codes(tmp_path, self.SRC, strict=True, select=("S",))) == [
            "S003",
            "S004",
        ]

    def test_baseline_round_trip(self, tmp_path):
        first = _analyze(tmp_path, self.SRC, strict=True)
        assert len(first.findings) == 2
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).write(str(baseline_path))
        loaded = Baseline.load(str(baseline_path))
        again = analyze_paths([str(tmp_path)], baseline=loaded)
        assert again.findings == []
        assert len(again.baselined) == 2

    def test_new_finding_not_baselined(self, tmp_path):
        first = _analyze(tmp_path, self.SRC, strict=True)
        baseline = Baseline.from_findings(first.findings[:1])
        again = analyze_paths([str(tmp_path)], baseline=baseline)
        assert len(again.findings) == 1
        assert len(again.baselined) == 1

    def test_bad_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))


# ----------------------------------------------------------------------
# the JSON report and its shape table
# ----------------------------------------------------------------------
class TestReport:
    def test_report_structure(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n -> n*2")
            @contracts.dtypes(np.uint8, out=np.uint8)
            def stretch(x: np.ndarray) -> np.ndarray:
                ...
        """
        result = _analyze(tmp_path, src)
        report = build_report(result)
        assert report["tool"] == "reproshape"
        assert set(report["rules"]) == set(RULES)
        assert report["summary"]["findings"] == 0
        assert report["summary"]["functions_contracted"] == 1
        (entry,) = report["shape_table"]
        assert entry["function"].endswith(".stretch")
        assert entry["shapes"] == "n -> n*2"
        assert entry["args"] == [{"dims": ["n"], "per_item": False}]
        assert entry["out"] == ["n*2"]
        assert entry["mode"] == "plain"
        assert entry["dtypes"] == {"args": ["uint8"], "out": "uint8"}
        assert entry["params"] == ["x"]
        json.dumps(report)  # must be serializable as-is

    def test_parity_records_in_report(self, tmp_path):
        src = """\
            import numpy as np
            from repro.core import contracts

            @contracts.shapes("n -> n,8")
            def kernel(x: np.ndarray) -> np.ndarray:
                ...

            @contracts.shapes("b,n -> b,n,8")
            def kernel_batch(x: np.ndarray) -> np.ndarray:
                ...
        """
        result = _analyze(tmp_path, src)
        report = build_report(result)
        assert report["summary"]["parity_status"] == {"proven": 1}


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------
class TestCli:
    def _run(self, *args, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "tools.reproshape", *args],
            capture_output=True,
            text=True,
            cwd=cwd or _REPO_ROOT,
        )

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout

    def test_clean_file_exits_zero(self, tmp_path):
        _write(tmp_path, "import numpy as np\n\ndef f(x: np.ndarray):\n    return x\n")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 0, proc.stderr

    def test_findings_exit_one(self, tmp_path):
        _write(
            tmp_path,
            textwrap.dedent(
                """\
                import numpy as np
                from repro.core import contracts

                @contracts.shapes("n -> n*2")
                def f(x: np.ndarray):
                    return x
                """
            ),
        )
        proc = self._run(str(tmp_path))
        assert proc.returncode == 1
        assert "S005" in proc.stdout

    def test_parse_error_exits_two(self, tmp_path):
        _write(
            tmp_path,
            textwrap.dedent(
                """\
                import numpy as np
                from repro.core import contracts

                @contracts.shapes("n -> [b]")
                def f(x: np.ndarray):
                    return x
                """
            ),
        )
        proc = self._run(str(tmp_path))
        assert proc.returncode == 2
        assert "parse error" in proc.stderr

    def test_json_format(self, tmp_path):
        _write(
            tmp_path,
            textwrap.dedent(
                """\
                import numpy as np
                from repro.core import contracts

                @contracts.shapes("n -> n*2")
                def f(x: np.ndarray):
                    return x
                """
            ),
        )
        proc = self._run(str(tmp_path), "--format=json")
        doc = json.loads(proc.stdout)
        assert doc["tool"] == "reproshape"
        assert doc["summary"]["findings"] == 1
        assert doc["findings"][0]["code"] == "S005"
        assert "shape_table" in doc and "parity" in doc

    def test_write_and_use_baseline(self, tmp_path):
        _write(
            tmp_path,
            textwrap.dedent(
                """\
                import numpy as np
                from repro.core import contracts

                @contracts.shapes("n -> n*2")
                def f(x: np.ndarray):
                    return x
                """
            ),
        )
        baseline = tmp_path / "baseline.json"
        wrote = self._run(str(tmp_path), "--write-baseline", str(baseline))
        assert wrote.returncode == 0
        gated = self._run(str(tmp_path), "--baseline", str(baseline))
        assert gated.returncode == 0
        assert "baselined" in gated.stderr


# ----------------------------------------------------------------------
# repo-wide self-checks
# ----------------------------------------------------------------------
class TestRepoClean:
    @pytest.fixture(scope="class")
    def result(self):
        return analyze_paths([str(_REPO_ROOT / "src" / "repro")])

    def test_src_repro_verifies_clean(self, result):
        assert [f.render() for f in result.findings] == []
        assert result.baselined == []  # no baseline shipped: zero entries
        assert result.errors == []

    def test_no_parity_violations(self, result):
        statuses = {r["batch"]: r["status"] for r in result.parity}
        assert "violation" not in statuses.values()
        # The PHY batch kernels are actually *proven*, not just unflagged.
        assert statuses["repro.phy.viterbi._traceback_batch"] == "proven"
        assert statuses["repro.phy.viterbi.decode_batch"] == "proven"
        assert statuses["repro.core.matching.score_capture_batch"] == "proven"
        assert statuses["repro.phy.wifi_b._cck_codewords_batch"] == "proven"

    def test_shape_table_covers_known_kernels(self, result):
        by_fn = {e["function"]: e for e in result.table}
        assert by_fn["repro.core.matching.score_capture_batch"]["mode"] == "ragged"
        assert by_fn["repro.phy.wifi_b._cck_codewords_batch"]["out"] == ["b", "n", "8"]
