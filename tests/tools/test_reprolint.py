"""Self-tests for the reprolint determinism/dtype linter.

Each rule gets known-bad fixtures (must flag) and known-good fixtures
(must stay silent), plus the ``# reprolint: disable=`` escape hatches
and the CLI's exit-code contract.
"""

import pathlib
import subprocess
import sys
import textwrap

from tools.reprolint import RULES, lint_paths, lint_source

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _codes(source: str, path: str = "src/repro/phy/mod.py") -> list[str]:
    return [v.code for v in lint_source(textwrap.dedent(source), path)]


# ----------------------------------------------------------------------
# R001: global-state / time-seeded RNG
# ----------------------------------------------------------------------
class TestR001:
    def test_np_random_global_call_flagged(self):
        assert "R001" in _codes("x = np.random.uniform(0, 1)")
        assert "R001" in _codes("np.random.seed(42)")
        assert "R001" in _codes("bits = np.random.randint(0, 2, 64)")

    def test_unseeded_default_rng_flagged(self):
        assert "R001" in _codes("rng = np.random.default_rng()")

    def test_seeded_default_rng_ok(self):
        assert _codes("rng = np.random.default_rng(1234)\n") == []
        assert _codes("rng = np.random.default_rng(seed)\n") == []

    def test_time_seeded_rng_flagged(self):
        assert "R001" in _codes("rng = np.random.default_rng(time.time_ns())")

    def test_legacy_randomstate_flagged(self):
        assert "R001" in _codes("rng = np.random.RandomState(0)")

    def test_generator_and_seedsequence_ok(self):
        src = """\
            ss = np.random.SeedSequence(7)
            rng = np.random.Generator(np.random.PCG64(ss))
        """
        assert _codes(src) == []

    def test_stdlib_random_global_flagged(self):
        assert "R001" in _codes("x = random.random()")
        assert "R001" in _codes("random.shuffle(items)")

    def test_unseeded_stdlib_random_instance_flagged(self):
        assert "R001" in _codes("r = random.Random()")

    def test_seeded_stdlib_random_instance_ok(self):
        assert _codes("r = random.Random(99)\n") == []


# ----------------------------------------------------------------------
# R002: float/complex equality
# ----------------------------------------------------------------------
class TestR002:
    def test_float_literal_eq_flagged(self):
        assert "R002" in _codes("ok = rate == 5.5")
        assert "R002" in _codes("ok = 1.0 != x")

    def test_arraylike_eq_nonint_flagged(self):
        assert "R002" in _codes("mask = np.abs(ref) == threshold")

    def test_arraylike_eq_integer_literal_ok(self):
        assert _codes("mask = np.abs(ref) == 0\n") == []

    def test_integer_comparison_ok(self):
        assert _codes("ok = n_sym == 64\n") == []

    def test_ordering_comparison_ok(self):
        assert _codes("ok = snr_db >= 5.5\n") == []


# ----------------------------------------------------------------------
# R003: implicit dtype at complex boundaries
# ----------------------------------------------------------------------
class TestR003:
    def test_complex_array_without_dtype_flagged(self):
        assert "R003" in _codes("c = np.array([1.0, 1j])")

    def test_complex_array_with_dtype_ok(self):
        assert _codes("c = np.array([1.0, 1j], dtype=np.complex128)\n") == []

    def test_real_array_without_dtype_ok(self):
        assert _codes("c = np.array([1.0, 2.0])\n") == []

    def test_mixed_width_arithmetic_flagged(self):
        src = "y = x.astype(np.complex64) * h.astype(np.complex128)"
        assert "R003" in _codes(src)

    def test_same_width_arithmetic_ok(self):
        src = "y = x.astype(np.complex128) * h.astype(np.complex128)\n"
        assert _codes(src) == []


# ----------------------------------------------------------------------
# R004: mutable default arguments
# ----------------------------------------------------------------------
class TestR004:
    def test_list_default_flagged(self):
        assert "R004" in _codes("def f(xs=[]):\n    return xs\n", path="anywhere.py")

    def test_dict_and_set_defaults_flagged(self):
        assert "R004" in _codes("def f(d={}):\n    return d\n", path="anywhere.py")
        assert "R004" in _codes("def f(s=set()):\n    return s\n", path="anywhere.py")

    def test_none_default_ok(self):
        src = "def f(xs=None):\n    return xs or []\n"
        assert _codes(src, path="anywhere.py") == []

    def test_kwonly_mutable_default_flagged(self):
        src = "def f(*, xs=[]):\n    return xs\n"
        assert "R004" in _codes(src, path="anywhere.py")


# ----------------------------------------------------------------------
# R005: return annotations, scoped to strict directories
# ----------------------------------------------------------------------
class TestR005:
    def test_missing_annotation_in_phy_flagged(self):
        src = "def modulate(bits):\n    return bits\n"
        assert "R005" in _codes(src, path="src/repro/phy/mod.py")
        assert "R005" in _codes(src, path="src/repro/core/mod.py")

    def test_annotated_function_ok(self):
        src = "def modulate(bits) -> None:\n    return None\n"
        assert _codes(src, path="src/repro/phy/mod.py") == []

    def test_outside_strict_dirs_ignored(self):
        src = "def plot(fig):\n    return fig\n"
        assert _codes(src, path="src/repro/experiments/fig01.py") == []


# ----------------------------------------------------------------------
# escape hatches + select + syntax errors
# ----------------------------------------------------------------------
class TestSuppression:
    def test_line_pragma_suppresses(self):
        src = "np.random.seed(0)  # reprolint: disable=R001\n"
        assert _codes(src) == []

    def test_line_pragma_is_code_specific(self):
        src = "np.random.seed(0)  # reprolint: disable=R002\n"
        assert "R001" in _codes(src)

    def test_line_pragma_multiple_codes(self):
        src = "c = np.array([1j]) == np.random.uniform()  # reprolint: disable=R001,R002,R003\n"
        assert _codes(src) == []

    def test_disable_all(self):
        src = "np.random.seed(0)  # reprolint: disable=all\n"
        assert _codes(src) == []

    def test_file_pragma_suppresses_everywhere(self):
        src = "# reprolint: disable-file=R001\nnp.random.seed(0)\nx = random.random()\n"
        assert _codes(src) == []

    def test_file_pragma_only_honored_in_header(self):
        filler = "\n".join(f"x{i} = {i}" for i in range(12))
        src = filler + "\n# reprolint: disable-file=R001\nnp.random.seed(0)\n"
        assert "R001" in _codes(src)


class TestSelectAndErrors:
    def test_select_restricts_rules(self):
        src = "np.random.seed(0)\nok = rate == 5.5\n"
        only_r002 = lint_source(src, "src/repro/phy/m.py", select=["R002"])
        assert [v.code for v in only_r002] == ["R002"]

    def test_syntax_error_reported_as_e999(self):
        out = lint_source("def broken(:\n", "bad.py")
        assert [v.code for v in out] == ["E999"]

    def test_render_format(self):
        (v,) = lint_source("np.random.seed(0)\n", "src/x.py")
        assert v.render() == f"src/x.py:1:0: R001 {v.message}"

    def test_rule_catalog_complete(self):
        assert set(RULES) == {"R001", "R002", "R003", "R004", "R005"}


# ----------------------------------------------------------------------
# CLI: exit codes and directory walking
# ----------------------------------------------------------------------
class TestCli:
    def _run(self, *argv: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *argv],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
        )

    def test_clean_tree_exits_zero(self):
        result = self._run("src/")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_bad_fixture_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        result = self._run(str(bad))
        assert result.returncode == 1
        assert "R001" in result.stdout

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for code in ("R001", "R002", "R003", "R004", "R005"):
            assert code in result.stdout

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("np.random.seed(0)\n")
        (pkg / "b.py").write_text("x = 1\n")
        violations = lint_paths([str(pkg)])
        assert [v.code for v in violations] == ["R001"]
        assert violations[0].path.endswith("a.py")
