"""Self-tests for the reproasync asyncio/concurrency analyzer.

Mirrors the reproflow test layout: every C-rule gets known-bad
fixtures (must fire) and known-good fixtures (must stay silent), the
MacArbiter zero-draw proof gets a mutation test, plus pragma
suppression, the baseline round-trip, the CLI contract, and the
repo-wide self-check that ``src/repro`` analyzes clean with the
determinism obligation proved.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

from tools.reproasync import RULES, analyze_paths, build_report
from tools.reproasync.model import Baseline
from tools.reproasync.taskgraph import build_async_graph
from tools.reproflow.project import ProjectIndex

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _write(tmp_path: pathlib.Path, source: str, name: str = "mod.py") -> pathlib.Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _codes(tmp_path: pathlib.Path, source: str, **kwargs) -> list[str]:
    _write(tmp_path, source)
    result = analyze_paths([str(tmp_path)], **kwargs)
    return [f.code for f in result.findings]


# ----------------------------------------------------------------------
# C001: blocking calls reachable inside async functions
# ----------------------------------------------------------------------
class TestC001:
    def test_direct_time_sleep_fires(self, tmp_path):
        src = """\
            import time

            async def f():
                time.sleep(1.0)
        """
        assert _codes(tmp_path, src) == ["C001"]

    def test_from_import_sleep_fires(self, tmp_path):
        src = """\
            from time import sleep

            async def f():
                sleep(1.0)
        """
        assert _codes(tmp_path, src) == ["C001"]

    def test_transitive_through_sync_helper_fires_with_path(self, tmp_path):
        src = """\
            import subprocess

            def helper():
                subprocess.run(["ls"])

            def middle():
                helper()

            async def f():
                middle()
        """
        _write(tmp_path, src)
        result = analyze_paths([str(tmp_path)])
        assert [f.code for f in result.findings] == ["C001"]
        assert "via mod.middle -> mod.helper" in result.findings[0].message

    def test_heavy_kernel_on_unresolved_receiver_fires(self, tmp_path):
        src = """\
            async def f(session):
                return session.pipeline.decode_many([1, 2])
        """
        assert _codes(tmp_path, src) == ["C001"]

    def test_to_thread_handoff_ok(self, tmp_path):
        src = """\
            import asyncio
            import time

            async def f():
                await asyncio.to_thread(time.sleep, 1.0)
        """
        assert _codes(tmp_path, src) == []

    def test_run_in_executor_handoff_ok(self, tmp_path):
        src = """\
            import asyncio
            import time

            async def f():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, time.sleep, 1.0)
        """
        assert _codes(tmp_path, src) == []

    def test_blocking_in_plain_sync_function_ok(self, tmp_path):
        src = """\
            import time

            def f():
                time.sleep(1.0)
        """
        assert _codes(tmp_path, src) == []

    def test_asyncio_sleep_ok(self, tmp_path):
        src = """\
            import asyncio

            async def f():
                await asyncio.sleep(1.0)
        """
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# C002: orphaned tasks / swallowed gather exceptions
# ----------------------------------------------------------------------
class TestC002:
    def test_dropped_create_task_fires(self, tmp_path):
        src = """\
            import asyncio

            async def w():
                pass

            async def f():
                asyncio.create_task(w())
        """
        assert _codes(tmp_path, src) == ["C002"]

    def test_underscore_assigned_ensure_future_fires(self, tmp_path):
        src = """\
            import asyncio

            async def w():
                pass

            async def f():
                _ = asyncio.ensure_future(w())
        """
        assert _codes(tmp_path, src) == ["C002"]

    def test_retained_reference_ok(self, tmp_path):
        src = """\
            import asyncio

            async def w():
                pass

            async def f():
                task = asyncio.create_task(w())
                await task
        """
        assert _codes(tmp_path, src) == []

    def test_taskgroup_spawn_ok(self, tmp_path):
        src = """\
            import asyncio

            async def w():
                pass

            async def f():
                async with asyncio.TaskGroup() as tg:
                    tg.create_task(w())
        """
        assert _codes(tmp_path, src) == []

    def test_discarded_swallowing_gather_fires(self, tmp_path):
        src = """\
            import asyncio

            async def f(tasks):
                await asyncio.gather(*tasks, return_exceptions=True)
        """
        assert _codes(tmp_path, src) == ["C002"]

    def test_inspected_gather_result_ok(self, tmp_path):
        src = """\
            import asyncio

            async def f(tasks):
                results = await asyncio.gather(*tasks, return_exceptions=True)
                return [r for r in results if isinstance(r, Exception)]
        """
        assert _codes(tmp_path, src) == []

    def test_propagating_gather_ok(self, tmp_path):
        src = """\
            import asyncio

            async def f(tasks):
                await asyncio.gather(*tasks)
        """
        assert _codes(tmp_path, src) == []


# ----------------------------------------------------------------------
# C003: cancellation-unsafe acquire/release spans
# ----------------------------------------------------------------------
class TestC003:
    def test_await_between_acquire_release_fires(self, tmp_path):
        src = """\
            import asyncio

            async def f(lk):
                lk.acquire()
                await asyncio.sleep(0)
                lk.release()
        """
        assert _codes(tmp_path, src) == ["C003"]

    def test_subscribe_unsubscribe_span_fires(self, tmp_path):
        src = """\
            import asyncio

            async def f(hub):
                sub = hub.subscribe("s")
                await asyncio.sleep(0)
                hub.unsubscribe("s")
        """
        assert _codes(tmp_path, src) == ["C003"]

    def test_try_finally_protected_ok(self, tmp_path):
        src = """\
            import asyncio

            async def f(lk):
                lk.acquire()
                try:
                    await asyncio.sleep(0)
                finally:
                    lk.release()
        """
        assert _codes(tmp_path, src) == []

    def test_no_await_in_span_ok(self, tmp_path):
        src = """\
            import asyncio

            async def f(lk):
                lk.acquire()
                lk.release()
                await asyncio.sleep(0)
        """
        assert _codes(tmp_path, src) == []

    def test_different_receivers_do_not_pair(self, tmp_path):
        src = """\
            import asyncio

            async def f(a, b):
                a.acquire()
                await asyncio.sleep(0)
                b.release()
                a.release()
        """
        # b.release() is the nearest release only if receivers are
        # ignored; chains "a" vs "b" must not pair, so a.release()
        # pairs with the await in between and the span still fires.
        assert _codes(tmp_path, src) == ["C003"]


# ----------------------------------------------------------------------
# C004: await-spanning races on shared state
# ----------------------------------------------------------------------
_RACE_PREAMBLE = textwrap.dedent(
    """\
    import asyncio

    class Counter:
        def __init__(self):
            self.total = 0

    counter = Counter()
    """
)


def _race_src(body: str) -> str:
    return _RACE_PREAMBLE + textwrap.dedent(body)


class TestC004:
    def test_read_await_write_from_two_tasks_fires(self, tmp_path):
        src = _race_src("""\

            async def worker():
                value = counter.total
                await asyncio.sleep(0)
                counter.total = value + 1

            async def main():
                await asyncio.gather(worker(), worker())
        """)
        assert _codes(tmp_path, src) == ["C004"]

    def test_single_task_instance_ok(self, tmp_path):
        src = _race_src("""\

            async def worker():
                value = counter.total
                await asyncio.sleep(0)
                counter.total = value + 1

            async def main():
                await asyncio.gather(worker())
        """)
        assert _codes(tmp_path, src) == []

    def test_lock_held_ok(self, tmp_path):
        src = _race_src("""\

            lock = asyncio.Lock()

            async def worker():
                async with lock:
                    value = counter.total
                    await asyncio.sleep(0)
                    counter.total = value + 1

            async def main():
                await asyncio.gather(worker(), worker())
        """)
        assert _codes(tmp_path, src) == []

    def test_no_await_between_read_and_write_ok(self, tmp_path):
        src = _race_src("""\

            async def worker():
                counter.total += 1
                await asyncio.sleep(0)

            async def main():
                await asyncio.gather(worker(), worker())
        """)
        assert _codes(tmp_path, src) == []

    def test_task_local_state_ok(self, tmp_path):
        src = _race_src("""\

            async def worker():
                own = Counter()
                value = own.total
                await asyncio.sleep(0)
                own.total = value + 1

            async def main():
                await asyncio.gather(worker(), worker())
        """)
        assert _codes(tmp_path, src) == []

    def test_spawn_in_loop_counts_as_two_instances(self, tmp_path):
        src = _race_src("""\

            async def worker():
                value = counter.total
                await asyncio.sleep(0)
                counter.total = value + 1

            async def main():
                tasks = [asyncio.create_task(worker()) for _ in range(8)]
                results = await asyncio.gather(*tasks)
                return results
        """)
        assert _codes(tmp_path, src) == ["C004"]


# ----------------------------------------------------------------------
# C005: determinism-replay violations
# ----------------------------------------------------------------------
class TestC005SharedRng:
    def test_shared_generator_drawn_from_two_tasks_fires(self, tmp_path):
        src = """\
            import asyncio
            import numpy as np

            class Sensor:
                def __init__(self):
                    self.rng = np.random.default_rng(0)

            sensor = Sensor()

            async def sample():
                return sensor.rng.normal()

            async def main():
                await asyncio.gather(sample(), sample())
        """
        assert _codes(tmp_path, src) == ["C005"]

    def test_single_instance_draw_ok(self, tmp_path):
        src = """\
            import asyncio
            import numpy as np

            class Sensor:
                def __init__(self):
                    self.rng = np.random.default_rng(0)

            sensor = Sensor()

            async def sample():
                return sensor.rng.normal()

            async def main():
                await asyncio.gather(sample())
        """
        assert _codes(tmp_path, src) == []

    def test_generator_drawn_across_executor_hop_fires(self, tmp_path):
        # A pool-worker entry point counts as a concurrent root on its
        # own: one run_in_executor dispatch of a worker that draws a
        # shared seeded generator already makes replay depend on pool
        # scheduling, no second asyncio task required.
        src = """\
            import asyncio
            import numpy as np

            class Sensor:
                def __init__(self):
                    self.rng = np.random.default_rng(0)

            sensor = Sensor()

            def worker(n):
                return sensor.rng.normal()

            async def main(pool):
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(pool, worker, 1)
        """
        assert _codes(tmp_path, src) == ["C005"]

    def test_rng_free_executor_worker_ok(self, tmp_path):
        # The gateway's decode hop: the shipped worker is RNG-free, so
        # the executor dispatch alone must not fire.
        src = """\
            import asyncio

            def worker(xs):
                return [x + 1 for x in xs]

            async def main(pool):
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(pool, worker, [1])
        """
        assert _codes(tmp_path, src) == []


_MAC_GUARDED = """\
    import numpy as np

    class MacArbiter:
        def __init__(self):
            self.rng = np.random.default_rng(0)

        def arbitrate(self, contenders):
            ids = tuple(contenders)
            if not ids:
                return None
            if len(ids) == 1:
                return ids[0]
            return ids[int(self.rng.integers(len(ids)))]
"""

_MAC_MUTATED = """\
    import numpy as np

    class MacArbiter:
        def __init__(self):
            self.rng = np.random.default_rng(0)

        def arbitrate(self, contenders):
            ids = tuple(contenders)
            if not ids:
                return None
            return ids[int(self.rng.integers(len(ids)))]
"""


class TestC005MacProof:
    def test_guarded_arbitrate_proves_clean(self, tmp_path):
        _write(tmp_path, _MAC_GUARDED)
        result = analyze_paths([str(tmp_path)])
        assert [f.code for f in result.findings] == []
        assert result.proofs == [
            {
                "obligation": "mac-zero-draw-when-uncontended",
                "symbol": "mod.MacArbiter.arbitrate",
                "status": "proved",
            }
        ]

    def test_dropped_single_contender_guard_caught(self, tmp_path):
        # The mutation: arbitrate still short-circuits 0 contenders but
        # draws for a single (uncontended) one -- exactly the regression
        # that would silently break bit-identical replay.
        _write(tmp_path, _MAC_MUTATED)
        result = analyze_paths([str(tmp_path)])
        assert [f.code for f in result.findings] == ["C005"]
        assert "zero-draw" in result.findings[0].message
        assert result.proofs[0]["status"] == "violated"

    def test_le_guard_accepted(self, tmp_path):
        src = """\
            import numpy as np

            class MacArbiter:
                def __init__(self):
                    self.rng = np.random.default_rng(0)

                def arbitrate(self, contenders):
                    ids = sorted(contenders)
                    if len(ids) <= 1:
                        return ids[0] if ids else None
                    return ids[int(self.rng.integers(len(ids)))]
        """
        _write(tmp_path, src)
        result = analyze_paths([str(tmp_path)])
        assert [f.code for f in result.findings] == []
        assert result.proofs[0]["status"] == "proved"


# ----------------------------------------------------------------------
# C006: unbounded queues in strict dirs
# ----------------------------------------------------------------------
class TestC006:
    def test_unbounded_queue_fires_in_strict_dir(self, tmp_path):
        src = """\
            import asyncio

            def make():
                return asyncio.Queue()
        """
        codes = _codes(tmp_path, src, strict_dirs=(str(tmp_path),))
        assert codes == ["C006"]

    def test_zero_maxsize_fires(self, tmp_path):
        src = """\
            import asyncio

            def make():
                return asyncio.Queue(maxsize=0)
        """
        codes = _codes(tmp_path, src, strict_dirs=(str(tmp_path),))
        assert codes == ["C006"]

    def test_bounded_queue_ok(self, tmp_path):
        src = """\
            import asyncio

            def make():
                return asyncio.Queue(maxsize=64)
        """
        assert _codes(tmp_path, src, strict_dirs=(str(tmp_path),)) == []

    def test_variable_maxsize_gets_benefit_of_doubt(self, tmp_path):
        src = """\
            import asyncio

            def make(n):
                return asyncio.Queue(maxsize=n)
        """
        assert _codes(tmp_path, src, strict_dirs=(str(tmp_path),)) == []

    def test_outside_strict_dirs_ok(self, tmp_path):
        src = """\
            import asyncio

            def make():
                return asyncio.Queue()
        """
        assert _codes(tmp_path, src, strict_dirs=("no/such/dir",)) == []


# ----------------------------------------------------------------------
# the async task graph
# ----------------------------------------------------------------------
class TestTaskGraph:
    def test_spawn_roots_and_multiplicity(self, tmp_path):
        src = """\
            import asyncio

            async def once():
                pass

            async def fanned():
                pass

            async def main():
                t = asyncio.create_task(once())
                many = [asyncio.create_task(fanned()) for _ in range(4)]
                await asyncio.gather(t, *many)
        """
        _write(tmp_path, src)
        index = ProjectIndex.build([str(tmp_path)])
        graph = build_async_graph(index)
        assert graph.task_roots["mod.once"] == 1
        assert graph.task_roots["mod.fanned"] == 2  # loop-spawned, capped

    def test_spawn_argument_call_not_an_execution_edge(self, tmp_path):
        # create_task(worker()) builds the coroutine in main's frame
        # but runs it in a new task: worker must not appear in main's
        # execution closure (otherwise single tasks double-count).
        src = """\
            import asyncio

            async def worker():
                pass

            async def main():
                t = asyncio.create_task(worker())
                await t
        """
        _write(tmp_path, src)
        index = ProjectIndex.build([str(tmp_path)])
        graph = build_async_graph(index)
        assert "mod.worker" not in graph.closure("mod.main")
        assert graph.weights.get("mod.worker", 0) == 1


# ----------------------------------------------------------------------
# suppression, baselines, CLI
# ----------------------------------------------------------------------
class TestSuppression:
    def test_line_pragma_silences(self, tmp_path):
        src = """\
            import time

            async def f():
                time.sleep(1.0)  # reproasync: disable=C001
        """
        assert _codes(tmp_path, src) == []

    def test_file_pragma_silences(self, tmp_path):
        src = """\
            # reproasync: disable-file=C002
            import asyncio

            async def w():
                pass

            async def f():
                asyncio.create_task(w())
        """
        assert _codes(tmp_path, src) == []

    def test_pragma_is_code_specific(self, tmp_path):
        src = """\
            import time

            async def f():
                time.sleep(1.0)  # reproasync: disable=C002
        """
        assert _codes(tmp_path, src) == ["C001"]

    def test_select_filters_rules(self, tmp_path):
        src = """\
            import asyncio
            import time

            async def w():
                pass

            async def f():
                time.sleep(1.0)
                asyncio.create_task(w())
        """
        assert _codes(tmp_path, src, select=("C002",)) == ["C002"]


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        src = """\
            import time

            async def f():
                time.sleep(1.0)
        """
        _write(tmp_path, src)
        first = analyze_paths([str(tmp_path)])
        assert len(first.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).write(str(baseline_path))
        second = analyze_paths(
            [str(tmp_path)], baseline=Baseline.load(str(baseline_path))
        )
        assert second.findings == []
        assert [f.code for f in second.baselined] == ["C001"]


class TestCli:
    def _run(self, *argv: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "tools.reproasync", *argv],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
        )

    def test_findings_exit_1(self, tmp_path):
        _write(tmp_path, "import time\n\nasync def f():\n    time.sleep(1)\n")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 1
        assert "C001" in proc.stdout

    def test_clean_exit_0(self, tmp_path):
        _write(tmp_path, "import asyncio\n\nasync def f():\n    await asyncio.sleep(0)\n")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 0
        assert proc.stdout == ""

    def test_json_report_shape(self, tmp_path):
        _write(tmp_path, "import time\n\nasync def f():\n    time.sleep(1)\n")
        proc = self._run(str(tmp_path), "--format", "json")
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["tool"] == "reproasync"
        assert report["summary"]["by_code"] == {"C001": 1}
        assert "mod.f" in report["call_graph"]
        assert report["call_graph"]["mod.f"]["is_async"] is True

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout

    def test_parse_error_exit_2(self, tmp_path):
        _write(tmp_path, "def broken(:\n")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 2


# ----------------------------------------------------------------------
# the repo itself
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_repro_analyzes_clean_with_proof(self):
        result = analyze_paths([str(_REPO_ROOT / "src" / "repro")])
        assert [f.render() for f in result.findings] == []
        mac = [
            p
            for p in result.proofs
            if p["obligation"] == "mac-zero-draw-when-uncontended"
        ]
        assert len(mac) == 1
        assert mac[0]["symbol"].endswith("repro.gateway.mac.MacArbiter.arbitrate")
        assert mac[0]["status"] == "proved"

    def test_report_counts_gateway_structure(self):
        result = analyze_paths([str(_REPO_ROOT / "src" / "repro")])
        report = build_report(result)
        assert report["summary"]["async_functions"] > 10
        assert report["summary"]["spawn_sites"] > 0
        assert report["summary"]["proofs_proved"] >= 1
        sweep = [fq for fq in report["task_roots"] if fq.endswith("Gateway._sweep")]
        assert sweep, "the control-plane sweep task must be a task root"
