"""Battery-free sensor lifecycle (paper §3 'Power consumption', Table 4).

A solar-harvesting multiscatter tag alternates between charging its
storage capacitor and short bursts of backscatter work.  This example
simulates a day-in-the-life timeline at indoor and outdoor light
levels and prints how often the sensor gets a word in.

Run:  python examples/battery_free_sensor.py
"""

from repro.core.energy import (
    INDOOR_LUX,
    OUTDOOR_LUX,
    EnergyBudget,
    exchange_times,
)
from repro.phy.protocols import DEFAULT_PACKET_RATES, Protocol


def simulate_day(budget: EnergyBudget, lux: float, horizon_s: float) -> dict:
    """Charge/discharge cycles over a time horizon."""
    harvest = budget.harvest_time_s(lux)
    runtime = budget.runtime_per_charge_s
    cycle = harvest + runtime
    n_cycles = int(horizon_s // cycle)
    active_s = n_cycles * runtime
    return {
        "cycles": n_cycles,
        "active_s": active_s,
        "duty": active_s / horizon_s if horizon_s else 0.0,
        "cycle_s": cycle,
    }


def main() -> None:
    budget = EnergyBudget()
    cap = budget.capacitor
    print(f"storage: {cap.capacitance_f * 1e3:.0f} mF, "
          f"{cap.v_start} V -> {cap.v_cutoff} V = "
          f"{cap.usable_energy_j * 1e3:.1f} mJ per cycle")
    print(f"tag draws {budget.power.total_mw:.1f} mW peak -> "
          f"{budget.runtime_per_charge_s:.2f} s of work per charge\n")

    horizon = 3600.0  # one hour
    for label, lux in (("indoor (500 lux)", INDOOR_LUX),
                       ("outdoor (104k lux)", OUTDOOR_LUX)):
        day = simulate_day(budget, lux, horizon)
        print(f"{label}: {day['cycles']} charge cycles/hour, "
              f"duty cycle {day['duty']:.2%}, "
              f"one cycle every {day['cycle_s']:.1f} s")

    print("\naverage time between tag-data exchanges (Table 4):")
    table = exchange_times(budget)
    for protocol in (Protocol.WIFI_N, Protocol.WIFI_B, Protocol.BLE, Protocol.ZIGBEE):
        vals = table[protocol]
        rate = DEFAULT_PACKET_RATES[protocol]
        print(f"  {protocol.value:8s} ({rate:6.0f} pkt/s excitation): "
              f"indoor {vals['indoor_s']:7.2f} s,  "
              f"outdoor {vals['outdoor_s'] * 1e3:7.1f} ms")

    low_power = budget.power.at_adc_rate(2.5e6)
    slow_budget = EnergyBudget(power=low_power)
    print(f"\nwith the 2.5 Msps ADC operating point ({low_power.total_mw:.0f} mW), "
          f"one charge lasts {slow_budget.runtime_per_charge_s:.2f} s "
          f"({slow_budget.runtime_per_charge_s / budget.runtime_per_charge_s:.1f}x longer)")


if __name__ == "__main__":
    main()
