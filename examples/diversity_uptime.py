"""Uninterrupted backscatter under intermittent carriers (Fig 18a).

Two duty-cycled carriers (802.11b and 802.11n, anti-phased 50 % duty)
alternate on the air.  The multiscatter tag rides whichever is
present; a single-protocol tag idles whenever its carrier is off.
Prints a text timeline of tag throughput.

Run:  python examples/diversity_uptime.py
"""

import numpy as np

from repro.core.carrier_select import diversity_timeline
from repro.phy.protocols import Protocol
from repro.sim.traffic import ExcitationSchedule, ExcitationSource


def sparkline(values: np.ndarray, peak: float) -> str:
    """Render a kbps series as a text bar strip."""
    glyphs = " .:-=+*#%@"
    out = []
    for v in values:
        idx = int(min(v / peak, 1.0) * (len(glyphs) - 1)) if peak > 0 else 0
        if v > 0:
            idx = max(idx, 1)  # nonzero throughput is always visible
        out.append(glyphs[idx])
    return "".join(out)


def main() -> None:
    rng = np.random.default_rng(1)
    duration = 4.0
    sources = [
        ExcitationSource(Protocol.WIFI_B, rate_pkts=300, duty_cycle=0.5,
                         period_s=1.0, phase_s=0.0),
        ExcitationSource(Protocol.WIFI_N, rate_pkts=300, duty_cycle=0.5,
                         period_s=1.0, phase_s=0.5),
    ]
    schedule = ExcitationSchedule.generate(sources, duration, rng)
    print(f"{len(schedule.packets)} excitation packets over {duration:.0f} s "
          f"(802.11b and 802.11n alternating, 50% duty each)\n")

    multi = diversity_timeline(schedule, tag_protocols=tuple(Protocol))
    single = diversity_timeline(schedule, tag_protocols=(Protocol.WIFI_B,))
    peak = max(multi["tag_kbps"].max(), single["tag_kbps"].max())

    print("tag throughput over time (each char = 50 ms):")
    print(f"  multiscatter : |{sparkline(multi['tag_kbps'], peak)}|")
    print(f"  802.11b-only : |{sparkline(single['tag_kbps'], peak)}|")

    print(f"\nactive time: multiscatter "
          f"{np.mean(multi['tag_kbps'] > 0):.0%}, "
          f"802.11b-only {np.mean(single['tag_kbps'] > 0):.0%}")
    print(f"mean tag throughput: multiscatter "
          f"{multi['tag_kbps'].mean():.1f} kbps, "
          f"802.11b-only {single['tag_kbps'].mean():.1f} kbps")


if __name__ == "__main__":
    main()
