"""Smart-bracelet scenario (paper §4.2.2 / Fig 18b).

An on-body sensor must deliver >= 6.3 kbps of monitoring data.  The
air holds abundant 802.11n excitations and only spotty 802.11b.  The
multiscatter tag estimates per-carrier goodput, picks 802.11n, and
streams heart-rate samples over it; an 802.11b-only tag cannot meet
the goal.

Run:  python examples/smart_bracelet.py
"""

import numpy as np

from repro.core.carrier_select import CarrierSelector
from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
from repro.core.overlay_decoder import OverlayDecoder
from repro.core.tag_modulation import TagModulator
from repro.phy.bits import bits_from_bytes
from repro.phy.protocols import Protocol

GOAL_KBPS = 6.3


def sense_heart_rate(rng: np.random.Generator, n_samples: int = 16) -> bytes:
    """Fake on-body sensor: heart-rate samples around 72 bpm."""
    return bytes(int(x) for x in np.clip(rng.normal(72, 4, n_samples), 40, 200))


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Observe the air and pick the best carrier for the goal.
    observed_rates = {Protocol.WIFI_N: 2000.0, Protocol.WIFI_B: 3.0}
    selector = CarrierSelector()
    best, estimates = selector.pick(observed_rates, goal_kbps=GOAL_KBPS)
    print(f"goodput goal: {GOAL_KBPS} kbps")
    for est in estimates:
        marker = " <- picked" if est.protocol is best else ""
        print(f"  {est.protocol.value:8s} @ {est.observed_rate_pkts:6.0f} pkt/s "
              f"-> {est.tag_goodput_kbps:7.1f} kbps tag goodput{marker}")
    assert best is Protocol.WIFI_N

    # 2. Stream sensor data over the picked carrier, packet by packet.
    codec = OverlayCodec(OverlayConfig.for_mode(best, Mode.MODE_1))
    modulator = TagModulator(codec)
    decoder = OverlayDecoder(codec)

    delivered = bytearray()
    for packet_idx in range(4):
        reading = sense_heart_rate(rng)
        tag_bits = bits_from_bytes(reading)

        productive = rng.integers(0, 2, 40).astype(np.uint8)
        carrier = codec.build_carrier(productive)
        _, cap = codec.capacity(carrier.annotations["n_payload_symbols"])
        chunk = tag_bits[:cap]

        backscattered = modulator.modulate(carrier, chunk)
        received = modulator.received_at_shifted_channel(backscattered)
        received.annotations = dict(carrier.annotations)
        output = decoder.decode(received)

        ok = np.array_equal(output.tag_bits[: chunk.size], chunk)
        print(f"packet {packet_idx}: {chunk.size} tag bits, decoded ok = {ok}")
        if ok:
            n_bytes = chunk.size // 8
            delivered.extend(reading[:n_bytes])

    print(f"delivered {len(delivered)} heart-rate samples: "
          f"{list(delivered[:8])}... bpm")


if __name__ == "__main__":
    main()
