"""Complete system demo: framed sensor messages over mixed excitation.

Puts the whole stack together: a traffic schedule of mixed 2.4 GHz
packets, a multiscatter tag that identifies each one at the signal
level and backscatters *framed* sensor readings
(:mod:`repro.core.taglink`), channel noise from the calibrated link
budget, commodity receivers decoding both streams, and a frame decoder
reassembling the message on the other side.

Run:  python examples/sensor_network.py
"""

import numpy as np

from repro.core.tag import MultiscatterTag
from repro.core.taglink import FrameDecoder, TagLinkConfig, encode_message
from repro.phy.protocols import Protocol
from repro.sim.airlink import run_airlink
from repro.sim.traffic import ExcitationSchedule, ExcitationSource


def main() -> None:
    rng = np.random.default_rng(11)

    # A sensor report to deliver, framed for lossy per-packet delivery.
    message = b"temp=21.4C rh=48% batt=ok"
    link_cfg = TagLinkConfig(frame_payload_bits=16)
    frames = encode_message(message, link_cfg)
    # ACK-less delivery: repeat the whole frame train once, so frames
    # lost to noise in the first pass are filled in by the second
    # (FrameDecoder dedups by sequence number).
    frame_bits = np.concatenate(frames + frames)
    print(f"message: {message!r} -> {len(frames)} frames x2 passes "
          f"({frame_bits.size} tag bits incl. headers/CRCs)")

    # Mixed excitation on the air.
    sources = [
        ExcitationSource(Protocol.WIFI_N, rate_pkts=40, n_payload_bytes=40),
        ExcitationSource(Protocol.BLE, rate_pkts=40, n_payload_bytes=20),
        ExcitationSource(Protocol.ZIGBEE, rate_pkts=40, n_payload_bytes=20),
    ]
    schedule = ExcitationSchedule.generate(sources, duration_s=0.4, rng=rng)
    print(f"air: {len(schedule.packets)} excitation packets over 0.4 s")

    # Run the full loop; the tag streams the framed bits.
    tag = MultiscatterTag()
    report = run_airlink(
        schedule,
        tag,
        d_tag_rx_m=2.0,
        tag_payload=frame_bits,
        rng=rng,
        max_packets=36,
    )
    print(f"tag: identified {report.identification_accuracy:.0%} of packets, "
          f"tag-bit BER {report.tag_bit_error_rate:.1%}")

    # Receiver side: concatenate the *decoded* tag bits and chop the
    # stream back into fixed-size frames.
    decoded_chunks = [
        o.tag_bits_decoded for o in report.outcomes if o.backscattered
    ]
    delivered_bits = (
        np.concatenate(decoded_chunks) if decoded_chunks else np.zeros(0, np.uint8)
    )
    decoder = FrameDecoder(config=link_cfg)
    n = link_cfg.frame_bits
    for lo in range(0, delivered_bits.size - n + 1, n):
        decoder.push(delivered_bits[lo : lo + n])

    out = decoder.message_bytes()[: len(message)]
    print(f"receiver: reassembled {len(decoder.received_seqs)} frames, "
          f"{decoder.n_rejected} rejected")
    print(f"receiver: message = {out!r}")
    print("match!" if out == message else "partial delivery (retry next packets)")


if __name__ == "__main__":
    main()
