"""Multiprotocol identification demo (paper §2.2-§2.3).

Generates a mixed stream of 802.11b/n, BLE, and ZigBee packets and
runs the tag's ultra-low-power identification pipeline on each --
clamp rectifier, 2.5 Msps ADC, +-1 quantized extended-window template
matching -- printing the confusion matrix.

Run:  python examples/identification_demo.py
"""

import numpy as np

from repro.core.identification import (
    DEFAULT_INCIDENT_DBM,
    IdentificationConfig,
    ProtocolIdentifier,
)
from repro.phy.protocols import Protocol
from repro.sim.metrics import confusion_table
from repro.sim.traffic import random_packet


def main() -> None:
    rng = np.random.default_rng(3)

    identifier = ProtocolIdentifier(
        IdentificationConfig(
            sample_rate_hz=2.5e6,   # the paper's low-power operating point
            quantized=True,          # +-1 samples: adders only on the FPGA
            window_us=38.0,          # extended matching window (§2.3.2)
            ordered=True,            # ZigBee -> BLE -> 11b -> 11n
        )
    )
    print("tag pipeline: clamp rectifier -> 2.5 Msps ADC -> +-1 quantized "
          "extended-window ordered matching")

    confusion: dict[tuple[Protocol, Protocol], int] = {}
    hits = 0
    total = 0
    for truth in Protocol:
        for i in range(8):
            packet = random_packet(truth, rng, n_payload_bytes=40)
            result = identifier.identify(
                packet,
                incident_power_dbm=DEFAULT_INCIDENT_DBM[truth],
                rng=np.random.default_rng(100 + total),
            )
            key = (truth, result.decision)
            confusion[key] = confusion.get(key, 0) + 1
            hits += result.decision is truth
            total += 1

    print(f"\nidentified {hits}/{total} packets correctly "
          f"({hits / total:.1%} average accuracy)\n")
    print(confusion_table(confusion))


if __name__ == "__main__":
    main()
