"""Quickstart: one overlay-modulated packet, end to end.

A BLE radio transmits a crafted productive carrier; the multiscatter
tag backscatters the ASCII message "HELLO" on top of it; a single
commodity BLE receiver decodes *both* the productive data and the tag
message from the one packet (paper §2.4).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.channel import awgn
from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
from repro.core.overlay_decoder import OverlayDecoder
from repro.core.tag_modulation import TagModulator
from repro.phy.bits import bits_from_bytes, bytes_from_bits
from repro.phy.protocols import Protocol


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. The excitation radio crafts a mode-1 overlay carrier whose
    #    reference symbols carry productive data.
    codec = OverlayCodec(OverlayConfig.for_mode(Protocol.BLE, Mode.MODE_1))
    productive = rng.integers(0, 2, 48).astype(np.uint8)
    carrier = codec.build_carrier(productive)
    print(f"carrier: {carrier.duration * 1e6:.0f} us of BLE at "
          f"{carrier.sample_rate / 1e6:.0f} Msps, kappa={codec.config.kappa}, "
          f"gamma={codec.config.gamma}")

    # 2. The tag backscatters its message onto the modulatable symbols,
    #    frequency-shifting to a clean adjacent channel.
    message = b"HELLO"
    tag_bits = bits_from_bytes(message)
    _, capacity = codec.capacity(carrier.annotations["n_payload_symbols"])
    assert tag_bits.size <= capacity, "message exceeds tag capacity"
    modulator = TagModulator(codec, frequency_shift_hz=10e6)
    backscattered = modulator.modulate(carrier, tag_bits)
    print(f"tag: sent {tag_bits.size} bits ({message!r}), capacity {capacity} bits")

    # 3. A single commodity receiver tunes to the shifted channel and
    #    decodes both streams from the one packet.
    received = modulator.received_at_shifted_channel(backscattered)
    received = awgn(received, snr_db=20.0, rng=rng)
    received.annotations = dict(carrier.annotations)  # RX frame sync
    output = OverlayDecoder(codec).decode(received)

    got_productive = output.productive_bits[: productive.size]
    got_tag = output.tag_bits[: tag_bits.size]
    print(f"receiver: productive bits ok = {np.array_equal(got_productive, productive)}")
    print(f"receiver: tag message = {bytes_from_bits(got_tag)!r}")


if __name__ == "__main__":
    main()
