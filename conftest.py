"""Repo-root pytest configuration.

Makes ``repro`` importable from a clean checkout (no ``pip install``)
by putting ``src/`` on ``sys.path`` — the same layout the tier-1
command uses via ``PYTHONPATH=src``.  Also exported via the
``PYTHONPATH`` environment variable so tests that launch examples as
subprocesses inherit it.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")

if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_existing = os.environ.get("PYTHONPATH", "")
if _SRC not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = _SRC + (os.pathsep + _existing if _existing else "")
