"""Live tag-network gateway: the batch airlink as a streaming service.

The batch experiments replay a whole excitation schedule and hand back
a report; this package hosts the same signal path as a long-running
asyncio service with a strict control/data-plane split:

* **data plane** -- per-subscriber bounded queues with declared
  backpressure (:mod:`repro.gateway.subscriptions`), fed by the air
  loop in :mod:`repro.gateway.service`;
* **control plane** -- tag registration, keepalive liveness, carrier
  assignment (:mod:`repro.gateway.control`);
* **MAC arbitration** -- deterministic, seeded winner selection among
  contending tags (:mod:`repro.gateway.mac`);
* **sources** -- batch traffic schedules lifted to async streams
  (:mod:`repro.gateway.sources`).

Run it from the CLI: ``python -m repro serve``.  The streaming decode
path is byte-identical to :func:`repro.sim.airlink.run_airlink` on the
same seed (tests/gateway/test_equivalence.py pins this).
"""

from repro.gateway.control import ControlPlane, TagSession
from repro.gateway.events import ControlEvent, GatewayEvent, PacketEvent
from repro.gateway.mac import MacArbiter, MacDecision
from repro.gateway.service import Gateway, GatewayConfig, GatewayStats, run_gateway
from repro.gateway.sources import AsyncExcitationSource
from repro.gateway.subscriptions import (
    Backpressure,
    Subscriber,
    SubscriptionClosed,
    SubscriptionHub,
)

__all__ = [
    "AsyncExcitationSource",
    "Backpressure",
    "ControlEvent",
    "ControlPlane",
    "Gateway",
    "GatewayConfig",
    "GatewayEvent",
    "GatewayStats",
    "MacArbiter",
    "MacDecision",
    "PacketEvent",
    "run_gateway",
    "Subscriber",
    "SubscriptionClosed",
    "SubscriptionHub",
    "TagSession",
]
