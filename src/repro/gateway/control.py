"""Gateway control plane: tag registry, keepalives, carrier assignment.

Strictly separated from the data plane: nothing here touches event
queues or waveforms.  The control plane answers three questions --

* **who is on the network** (:meth:`ControlPlane.register` /
  :meth:`deregister`, with keepalive-timeout eviction for tags whose
  task died silently);
* **what state does each tag carry** (:class:`TagSession`: its
  pipeline, payload cursor, per-tag RNG stream, sequence counter);
* **which carrier should serve a goodput goal**
  (:meth:`assign_carrier`, delegating to the paper's §4.2.2 selector
  in :mod:`repro.core.carrier_select`).

Determinism contract: a session's channel randomness comes only from
its own ``rng`` stream, consumed only by the air loop in packet order.
Registering a tag with a given generator and replaying the same
schedule therefore reproduces the exact
:class:`~repro.sim.pipeline.PacketOutcome` sequence of the batch
driver -- the property the streaming/batch equivalence tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.carrier_select import CarrierEstimate, CarrierSelector
from repro.core.tag import MultiscatterTag, SingleProtocolTag
from repro.phy.protocols import Protocol
from repro.sim.pipeline import AirlinkPipeline

__all__ = ["TagSession", "ControlPlane"]

#: Payload bits drawn at registration when the caller supplies none --
#: the same 4096-bit draw the batch driver makes, so a streaming
#: session with the same generator replays the same chunks.
DEFAULT_PAYLOAD_BITS = 4096


@dataclass
class TagSession:
    """One registered tag's live state."""

    tag_id: str
    tag: MultiscatterTag | SingleProtocolTag
    pipeline: AirlinkPipeline
    rng: np.random.Generator
    payload: np.ndarray
    registered_s: float
    last_keepalive_s: float
    cursor: int = 0
    seq: int = 0
    n_backscattered: int = 0
    assigned_protocol: Protocol | None = field(default=None)

    def refill_payload_if_spent(self) -> None:
        """Top up the payload ring from the session's own stream.

        Long-running sessions outlive a 4096-bit buffer; the refill
        draws from the session RNG (air-loop context only) so replay
        determinism survives arbitrarily long runs.
        """
        if self.cursor >= self.payload.size:
            self.payload = self.rng.integers(
                0, 2, DEFAULT_PAYLOAD_BITS
            ).astype(np.uint8)
            self.cursor = 0


class ControlPlane:
    """Registry + liveness + carrier assignment (no data-plane state)."""

    def __init__(
        self,
        *,
        keepalive_timeout_s: float = 5.0,
        selector: CarrierSelector | None = None,
    ) -> None:
        if keepalive_timeout_s <= 0:
            raise ValueError("keepalive_timeout_s must be positive")
        self.keepalive_timeout_s = keepalive_timeout_s
        self.selector = selector or CarrierSelector()
        self._sessions: dict[str, TagSession] = {}

    # -- membership -----------------------------------------------------
    def register(
        self,
        tag_id: str,
        tag: MultiscatterTag | SingleProtocolTag,
        *,
        rng: np.random.Generator,
        payload: np.ndarray | None = None,
        d_tag_rx_m: float = 2.0,
        now_s: float = 0.0,
    ) -> TagSession:
        """Admit a tag to the network.

        ``payload=None`` draws the batch driver's default 4096-bit
        payload from ``rng`` -- the first draw the batch loop makes,
        preserving stream alignment for equivalence replays.
        """
        if tag_id in self._sessions:
            raise ValueError(f"tag {tag_id!r} already registered")
        resolved = (
            np.asarray(payload, dtype=np.uint8)
            if payload is not None
            else rng.integers(0, 2, DEFAULT_PAYLOAD_BITS).astype(np.uint8)
        )
        session = TagSession(
            tag_id=tag_id,
            tag=tag,
            pipeline=AirlinkPipeline(tag, d_tag_rx_m=d_tag_rx_m),
            rng=rng,
            payload=resolved,
            registered_s=now_s,
            last_keepalive_s=now_s,
        )
        self._sessions[tag_id] = session
        return session

    def deregister(self, tag_id: str) -> TagSession | None:
        return self._sessions.pop(tag_id, None)

    def session(self, tag_id: str) -> TagSession | None:
        return self._sessions.get(tag_id)

    @property
    def sessions(self) -> tuple[TagSession, ...]:
        """Live sessions in registration order (arbitration order)."""
        return tuple(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    # -- liveness ---------------------------------------------------------
    def keepalive(self, tag_id: str, now_s: float) -> bool:
        """Refresh a tag's liveness; False if it is no longer registered."""
        session = self._sessions.get(tag_id)
        if session is None:
            return False
        session.last_keepalive_s = now_s
        return True

    def evict_stale(self, now_s: float) -> list[TagSession]:
        """Drop every session whose keepalive lapsed past the timeout."""
        stale = [
            s
            for s in self._sessions.values()
            if now_s - s.last_keepalive_s > self.keepalive_timeout_s
        ]
        for session in stale:
            self._sessions.pop(session.tag_id, None)
        return stale

    # -- carrier assignment ------------------------------------------------
    def assign_carrier(
        self,
        observed_rates: dict[Protocol, float],
        *,
        goal_kbps: float = 0.0,
    ) -> tuple[Protocol | None, list[CarrierEstimate]]:
        """Pick the excitation protocol that meets ``goal_kbps`` (§4.2.2).

        Returns the winning protocol (or None when no carrier
        suffices) plus the goodput estimates behind the decision; the
        gateway records the pick on every session and publishes it as
        a control event.
        """
        choice, estimates = self.selector.pick(observed_rates, goal_kbps=goal_kbps)
        for session in self._sessions.values():
            session.assigned_protocol = choice
        return choice, estimates
