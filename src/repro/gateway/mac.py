"""Deterministic MAC arbitration for contending tags.

When several registered tags could answer the same excitation packet,
exactly one may backscatter (the physical medium admits one overlay
per carrier; simultaneous tag modulations would collide at the
receiver).  The arbiter picks that winner with its **own** seeded RNG
stream, separate from every tag's channel RNG, so:

* adding or removing contenders never perturbs any tag's channel
  draws (replay of a tag's packet history is bit-identical);
* the uncontended case (zero or one candidate) draws **nothing** --
  a single-tag gateway consumes exactly the RNG sequence the batch
  :func:`repro.sim.airlink.run_airlink` does, which is what the
  streaming/batch equivalence tests assert;
* the same seed and the same contender sequence replay the same
  winners, bit for bit.

``capture_prob`` models receiver capture: with probability
``1 - capture_prob`` a contended slot is lost outright (no winner),
the simple collision model the load test uses to stress eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["MacDecision", "MacArbiter"]


@dataclass(frozen=True)
class MacDecision:
    """One arbitration: who contended, who (if anyone) won."""

    contenders: tuple[str, ...]
    winner: str | None
    collided: bool


class MacArbiter:
    """Seeded, replayable winner selection among contending tags."""

    def __init__(self, *, seed: int = 0, capture_prob: float = 1.0) -> None:
        if not 0.0 <= capture_prob <= 1.0:
            raise ValueError(f"capture_prob must be in [0, 1], got {capture_prob}")
        self.seed = seed
        self.capture_prob = capture_prob
        self._rng = np.random.default_rng(seed)
        self.n_arbitrations = 0
        self.n_collisions = 0

    def arbitrate(self, contenders: Sequence[str]) -> MacDecision:
        """Pick the tag that backscatters this excitation.

        Zero or one contender is the fast path and consumes no
        randomness; only a genuinely contended slot draws from the
        arbiter's stream.
        """
        ids = tuple(contenders)
        if len(ids) == 0:
            return MacDecision(contenders=ids, winner=None, collided=False)
        if len(ids) == 1:
            return MacDecision(contenders=ids, winner=ids[0], collided=False)
        self.n_arbitrations += 1
        if self.capture_prob < 1.0:
            if float(self._rng.random()) >= self.capture_prob:
                self.n_collisions += 1
                return MacDecision(contenders=ids, winner=None, collided=True)
        winner = ids[int(self._rng.integers(0, len(ids)))]
        return MacDecision(contenders=ids, winner=winner, collided=False)

    def reset(self) -> None:
        """Rewind the arbiter to its seed for a bit-identical replay."""
        self._rng = np.random.default_rng(self.seed)
        self.n_arbitrations = 0
        self.n_collisions = 0
