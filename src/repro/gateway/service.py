"""The live tag-network gateway service.

Hosts a network of backscatter tags over streamed excitation packets:
the **air loop** runs each scheduled excitation through the
per-packet pipeline (:mod:`repro.sim.pipeline`) for the tag that wins
MAC arbitration, and publishes the decoded outcome to every
subscriber.  Around it:

* the **control plane** (:mod:`repro.gateway.control`) owns
  membership, keepalives and carrier assignment;
* the **data plane** (:mod:`repro.gateway.subscriptions`) owns the
  bounded per-subscriber queues and their backpressure policies;
* the **MAC arbiter** (:mod:`repro.gateway.mac`) resolves contention
  with its own seeded stream so replay stays bit-identical;
* a single **control-plane sweep task** refreshes every live tag's
  keepalive, observes injected crashes (``REPRO_FAULTS`` site
  ``gateway``, name ``tag:<id>``) and evicts stale sessions -- one
  task however many tags are registered, and the air loop pays no
  per-packet stale scan.  A crashed tag is evicted on the next sweep
  pass; the gateway itself keeps serving.

With ``REPRO_LOOPWATCH=1`` the serve loop runs under the
:mod:`repro.core.loopwatch` event-loop sanitizer; its violation count
and worst observed lag land in :class:`GatewayStats`.

Latency accounting: the load question is "how many concurrent tags
per core before p99 decode latency exceeds a symbol period"; every
packet's wall-clock pipeline cost is recorded in
:attr:`GatewayStats.decode_latencies_s` and in ``repro.perf`` gauges.

Shutdown is a **graceful drain**: the source stops, queued pipeline
work is flushed, subscribers are given ``drain_timeout_s`` to consume
their backlogs, then streams close with a ``drained`` control event.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro import perf
from repro.core import loopwatch
from repro.core.tag import MultiscatterTag, SingleProtocolTag
from repro.gateway.control import ControlPlane, TagSession
from repro.gateway.events import ControlEvent, PacketEvent
from repro.gateway.mac import MacArbiter
from repro.gateway.sources import AsyncExcitationSource
from repro.gateway.subscriptions import Backpressure, SubscriptionHub, Subscriber
from repro.phy.protocols import Protocol
from repro.sim import faults
from repro.sim.pipeline import PacketOutcome, PendingReception

__all__ = ["GatewayConfig", "GatewayStats", "Gateway", "run_gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Service knobs, all deterministic or wall-clock-only."""

    #: Base seed: spawns per-tag channel streams for tags registered
    #: without an explicit generator, and (with ``mac_seed`` unset)
    #: the arbiter stream.
    seed: int = 0
    #: Separate arbiter seed; defaults to a stream spawned from ``seed``.
    mac_seed: int | None = None
    #: Receiver capture probability under MAC contention.
    capture_prob: float = 1.0
    #: Seconds without a keepalive before a tag is evicted.
    keepalive_timeout_s: float = 5.0
    #: How often the sweep task refreshes keepalives / evicts stale tags.
    keepalive_interval_s: float = 0.05
    #: Default bound for subscriber queues.
    queue_maxlen: int = 64
    #: How long a BLOCK subscriber may stall the publisher.
    stall_timeout_s: float = 0.5
    #: Pending receptions decoded per grouped kernel dispatch (1 =
    #: decode each packet as it arrives; >1 batches the RNG-free
    #: decode stage without touching draw order).
    decode_batch: int = 1
    #: Grace period for subscribers to empty their queues at shutdown.
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.decode_batch < 1:
            raise ValueError("decode_batch must be >= 1")


@dataclass
class GatewayStats:
    """What one service run did, for reports and the load benchmark."""

    n_packets: int = 0
    n_published: int = 0
    n_backscattered: int = 0
    n_collisions: int = 0
    n_tag_evictions: int = 0
    n_tag_crashes: int = 0
    n_subscriber_evictions: int = 0
    n_dropped_events: int = 0
    drained_clean: bool = False
    elapsed_s: float = 0.0
    decode_latencies_s: list[float] = field(default_factory=list)
    #: Event-loop sanitizer results (0 unless ``REPRO_LOOPWATCH=1``).
    loopwatch_violations: int = 0
    loopwatch_slow_callbacks: int = 0
    loopwatch_max_lag_s: float = 0.0

    def latency_percentile_s(self, q: float) -> float:
        if not self.decode_latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.decode_latencies_s), q))

    def packets_per_s(self) -> float:
        return self.n_packets / max(self.elapsed_s, 1e-12)


class Gateway:
    """Asyncio pub/sub gateway over the airlink pipeline."""

    def __init__(self, config: GatewayConfig | None = None) -> None:
        self.config = config or GatewayConfig()
        cfg = self.config
        self._seedseq = np.random.SeedSequence(cfg.seed)
        mac_seed = cfg.mac_seed
        if mac_seed is None:
            # A spawned child keeps the arbiter stream disjoint from
            # every per-tag stream derived from the same base seed.
            mac_seed = int(self._seedseq.spawn(1)[0].generate_state(1)[0])
        self.control = ControlPlane(keepalive_timeout_s=cfg.keepalive_timeout_s)
        self.hub = SubscriptionHub(
            default_maxlen=cfg.queue_maxlen, stall_timeout_s=cfg.stall_timeout_s
        )
        self.mac = MacArbiter(seed=mac_seed, capture_prob=cfg.capture_prob)
        self.stats = GatewayStats()
        self._sweep_task: asyncio.Task | None = None
        self._sweep_error: BaseException | None = None
        self._suspended: set[str] = set()
        self._stop_requested = False
        self._running = False
        self._now_s = 0.0

    # -- clock ------------------------------------------------------------
    def _now(self) -> float:
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:  # before the loop starts (registration)
            return self._now_s

    # -- control-plane API --------------------------------------------------
    def spawn_rng(self) -> np.random.Generator:
        """A fresh child stream of the gateway seed (per-tag channels)."""
        return np.random.default_rng(self._seedseq.spawn(1)[0])

    async def register_tag(
        self,
        tag_id: str,
        tag: MultiscatterTag | SingleProtocolTag | None = None,
        *,
        rng: np.random.Generator | None = None,
        payload: np.ndarray | None = None,
        d_tag_rx_m: float = 2.0,
    ) -> TagSession:
        """Admit a tag; the control-plane sweep keeps it alive."""
        now_s = self._now()
        session = self.control.register(
            tag_id,
            # Default-tag construction builds (cached, per-protocol)
            # reference template banks -- a deliberate one-time
            # control-plane cost, accepted on the registration path.
            tag if tag is not None else MultiscatterTag(),  # reproasync: disable=C001
            rng=rng if rng is not None else self.spawn_rng(),
            payload=payload,
            d_tag_rx_m=d_tag_rx_m,
            now_s=now_s,
        )
        self._ensure_sweep()
        await self.hub.publish(
            ControlEvent(kind="registered", time_s=now_s, tag_id=tag_id)
        )
        perf.count("gateway.tag.registered")
        return session

    async def deregister_tag(self, tag_id: str, *, reason: str = "deregistered") -> None:
        session = self.control.deregister(tag_id)
        self._suspended.discard(tag_id)
        if session is not None:
            await self.hub.publish(
                ControlEvent(
                    kind="deregistered",
                    time_s=self._now(),
                    tag_id=tag_id,
                    detail=reason,
                )
            )

    def subscribe(
        self,
        name: str,
        *,
        maxlen: int | None = None,
        policy: Backpressure = Backpressure.BLOCK,
    ) -> Subscriber:
        return self.hub.subscribe(name, maxlen=maxlen, policy=policy)

    async def assign_carrier(
        self, observed_rates: dict[Protocol, float], *, goal_kbps: float = 0.0
    ) -> Protocol | None:
        """§4.2.2 carrier pick, recorded on sessions and announced."""
        choice, estimates = self.control.assign_carrier(
            observed_rates, goal_kbps=goal_kbps
        )
        evidence = "; ".join(
            f"{e.protocol.name}={e.tag_goodput_kbps:.2f}kbps" for e in estimates
        )
        await self.hub.publish(
            ControlEvent(
                kind="carrier_assigned",
                time_s=self._now(),
                protocol=choice,
                detail=evidence,
            )
        )
        return choice

    def request_stop(self) -> None:
        """Ask the air loop to stop after the current packet and drain."""
        self._stop_requested = True

    # -- control-plane sweep -------------------------------------------------
    def suspend_heartbeat(self, tag_id: str) -> None:
        """Stop refreshing ``tag_id``'s keepalive (a tag gone silent
        without any observable crash -- only the timeout can evict it).
        """
        self._suspended.add(tag_id)

    def _ensure_sweep(self) -> None:
        if self._sweep_task is not None and not self._sweep_task.done():
            return
        self._sweep_task = asyncio.ensure_future(self._sweep())
        self._sweep_task.add_done_callback(self._on_sweep_done)

    def _on_sweep_done(self, task: asyncio.Task) -> None:
        # A sweep failure is a gateway bug, not a tag fault; stash it
        # so serve() re-raises instead of silently losing keepalives.
        if not task.cancelled() and task.exception() is not None:
            self._sweep_error = task.exception()

    async def _stop_sweep(self) -> None:
        task = self._sweep_task
        self._sweep_task = None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def _sweep(self) -> None:
        """One task sweeps the whole control plane every keepalive tick.

        Replaces the former per-tag supervisor tasks and the air loop's
        per-packet stale scan: each pass refreshes every live tag's
        keepalive, observes injected crashes
        (``raise:site=gateway,name=tag:<id>`` evicts that tag and only
        that tag -- one sensor's firmware bug must not take down the
        network) and evicts sessions whose keepalive timed out.
        """
        while True:
            now_s = self._now()
            for session in list(self.control.sessions):
                tag_id = session.tag_id
                try:
                    await faults.check_async("gateway", name=f"tag:{tag_id}")
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self.stats.n_tag_crashes += 1
                    perf.count("gateway.tag.crashes")
                    await self._evict_tag(session, reason=f"tag crashed: {exc!r}")
                    continue
                if tag_id not in self._suspended:
                    self.control.keepalive(tag_id, now_s)
            for stale in self.control.evict_stale(self._now()):
                await self._evict_tag(
                    stale,
                    reason="keepalive timeout (tag presumed dead)",
                    already_removed=True,
                )
            await asyncio.sleep(self.config.keepalive_interval_s)

    async def _evict_tag(
        self, session: TagSession, *, reason: str, already_removed: bool = False
    ) -> None:
        # evict_stale() pops the session itself; every other caller
        # must find it still registered (otherwise it raced another
        # eviction and this one is a no-op).
        if not already_removed and self.control.deregister(session.tag_id) is None:
            return
        self._suspended.discard(session.tag_id)
        self.stats.n_tag_evictions += 1
        perf.count("gateway.tag.evictions")
        await self.hub.publish(
            ControlEvent(
                kind="evicted",
                time_s=self._now(),
                tag_id=session.tag_id,
                detail=reason,
            )
        )

    # -- data plane ----------------------------------------------------------
    async def _publish_outcome(
        self, session: TagSession, outcome: PacketOutcome, latency_s: float
    ) -> None:
        session.seq += 1
        if outcome.backscattered:
            session.n_backscattered += 1
            self.stats.n_backscattered += 1
        self.stats.decode_latencies_s.append(latency_s)
        perf.gauge("gateway.decode_latency_s", latency_s)
        evicted = await self.hub.publish(
            PacketEvent(
                tag_id=session.tag_id,
                seq=session.seq,
                time_s=outcome.start_s,
                outcome=outcome,
                decode_latency_s=latency_s,
            )
        )
        self.stats.n_published += 1
        for sub in evicted:
            self.stats.n_subscriber_evictions += 1
            await self.hub.publish(
                ControlEvent(
                    kind="subscriber_evicted",
                    time_s=self._now(),
                    detail=f"{sub.name}: {sub.close_reason}",
                )
            )

    async def _flush_pending(
        self,
        pending: list[tuple[TagSession, float, PacketOutcome | PendingReception]],
    ) -> None:
        """Decode buffered receptions with one grouped dispatch.

        Ready outcomes (pipeline short-circuits such as identification
        misses) ride in the same buffer behind queued receptions so
        events always publish in schedule order, whatever
        ``decode_batch`` is.
        """
        if not pending:
            return
        receptions = [
            (i, item)
            for i, (_, _, item) in enumerate(pending)
            if isinstance(item, PendingReception)
        ]
        decoded: dict[int, PacketOutcome] = {}
        decode_s = 0.0
        if receptions:
            t0 = perf_counter()
            # Decoding inline (not in an executor) keeps event order
            # and draw order deterministic; per-packet kernel cost is
            # ~0.1-3 ms and the loopwatch sanitizer bounds the worst
            # case at runtime.
            outcomes = pending[0][0].pipeline.decode_many(  # reproasync: disable=C001
                [item for _, item in receptions]
            )
            decode_s = (perf_counter() - t0) / len(receptions)
            decoded = {i: o for (i, _), o in zip(receptions, outcomes)}
        for i, (session, stage_s, item) in enumerate(pending):
            if i in decoded:
                await self._publish_outcome(session, decoded[i], stage_s + decode_s)
            else:
                assert isinstance(item, PacketOutcome)
                await self._publish_outcome(session, item, stage_s)
        pending.clear()

    # -- the air loop -----------------------------------------------------
    async def serve(self, source: AsyncExcitationSource) -> GatewayStats:
        """Run the gateway over a packet stream until it ends (or
        :meth:`request_stop`), then drain gracefully.

        Determinism: the air loop is the only consumer of per-tag
        channel streams, packets arrive in schedule order, and the
        arbiter draws only under contention -- so a single-tag run
        replays :func:`repro.sim.airlink.run_airlink` bit for bit.
        """
        if self._running:
            raise RuntimeError("gateway is already serving")
        self._running = True
        self._stop_requested = False
        self._ensure_sweep()
        watch = loopwatch.maybe_start()
        started = perf_counter()
        pending: list[
            tuple[TagSession, float, PacketOutcome | PendingReception]
        ] = []
        try:
            try:
                async for scheduled in source.__aiter__():
                    if self._stop_requested:
                        source.stop()
                        break
                    if self._sweep_error is not None:
                        raise RuntimeError(
                            "control-plane sweep task failed"
                        ) from self._sweep_error
                    decision = self.mac.arbitrate(
                        [s.tag_id for s in self.control.sessions]
                    )
                    self.stats.n_packets += 1
                    perf.count("gateway.packets")
                    if decision.collided:
                        self.stats.n_collisions += 1
                        perf.count("gateway.collisions")
                        continue
                    if decision.winner is None:
                        continue
                    session = self.control.session(decision.winner)
                    if session is None:  # pragma: no cover - evicted this tick
                        continue
                    session.refill_payload_if_spent()
                    t0 = perf_counter()
                    # Inline on purpose: the excite/react stage consumes
                    # the per-tag RNG stream, and determinism requires a
                    # single consumer in schedule order (see docstring).
                    staged, session.cursor = session.pipeline.excite_and_react(  # reproasync: disable=C001
                        scheduled, session.payload, session.cursor, session.rng
                    )
                    stage_s = perf_counter() - t0
                    if isinstance(staged, PacketOutcome) and not pending:
                        # Nothing buffered ahead of it: publish right away.
                        await self._publish_outcome(session, staged, stage_s)
                    else:
                        pending.append((session, stage_s, staged))
                        n_receptions = sum(
                            1
                            for _, _, item in pending
                            if isinstance(item, PendingReception)
                        )
                        if n_receptions >= self.config.decode_batch:
                            await self._flush_pending(pending)
                await self._flush_pending(pending)
                stats = await self._drain()
                stats.elapsed_s = perf_counter() - started
                return stats
            except asyncio.CancelledError:
                # Mid-await cancellation (hard shutdown): stop the sweep
                # and close every stream so consumers blocked on get()
                # observe end-of-stream instead of hanging forever.
                await self._stop_sweep()
                self.hub.close_all(reason="gateway cancelled")
                raise
        finally:
            if watch is not None:
                lw = await watch.stop()
                self.stats.loopwatch_violations = lw.violations
                self.stats.loopwatch_slow_callbacks = lw.slow_callbacks
                self.stats.loopwatch_max_lag_s = lw.max_lag_s
            self._running = False

    async def _drain(self) -> GatewayStats:
        """Graceful shutdown: flush, wait for consumers, close streams."""
        now_s = self._now()
        await self.hub.publish(ControlEvent(kind="draining", time_s=now_s))
        drained = await self.hub.drain(timeout_s=self.config.drain_timeout_s)
        self.stats.drained_clean = drained
        self.stats.n_dropped_events = self.hub.total_dropped()
        await self._stop_sweep()
        for tag_id in [s.tag_id for s in self.control.sessions]:
            await self.deregister_tag(tag_id, reason="gateway drained")
        await self.hub.publish(ControlEvent(kind="drained", time_s=self._now()))
        # Closing puts the end-of-stream sentinel past full queues so
        # every consumer observes the end of stream instead of hanging.
        self.hub.close_all(reason="gateway drained")
        perf.gauge("gateway.tags_live", float(len(self.control)))
        return self.stats


async def run_gateway(
    source: AsyncExcitationSource,
    *,
    config: GatewayConfig | None = None,
    n_tags: int = 1,
    subscribers: int = 1,
) -> GatewayStats:
    """Convenience one-shot: N default tags, M draining subscribers."""
    gw = Gateway(config)
    for i in range(n_tags):
        await gw.register_tag(f"tag-{i:03d}")

    async def consume(sub: Subscriber) -> None:
        # End of stream surfaces as StopAsyncIteration inside the async
        # for; anything else is a real bug and must propagate.
        async for _ in sub:
            pass

    consumers = [
        asyncio.ensure_future(consume(gw.subscribe(f"sub-{j}")))
        for j in range(subscribers)
    ]
    stats = await gw.serve(source)
    results = await asyncio.gather(*consumers, return_exceptions=True)
    for result in results:
        if isinstance(result, BaseException) and not isinstance(
            result, asyncio.CancelledError
        ):
            raise result
    return stats
