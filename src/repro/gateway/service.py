"""The live tag-network gateway service.

Hosts a network of backscatter tags over streamed excitation packets:
the **air loop** runs each scheduled excitation through the
per-packet pipeline (:mod:`repro.sim.pipeline`) for the tag that wins
MAC arbitration, and publishes the decoded outcome to every
subscriber.  Around it:

* the **control plane** (:mod:`repro.gateway.control`) owns
  membership, keepalives and carrier assignment;
* the **data plane** (:mod:`repro.gateway.subscriptions`) owns the
  bounded per-subscriber queues and their backpressure policies;
* the **MAC arbiter** (:mod:`repro.gateway.mac`) resolves contention
  with its own seeded stream so replay stays bit-identical;
* a single **control-plane sweep task** refreshes every live tag's
  keepalive, observes injected crashes (``REPRO_FAULTS`` site
  ``gateway``, name ``tag:<id>``) and evicts stale sessions -- one
  task however many tags are registered, and the air loop pays no
  per-packet stale scan.  A crashed tag is evicted on the next sweep
  pass; the gateway itself keeps serving.

The data plane is **sharded**: staging (``excite_and_react``) stays
inline because it consumes per-tag RNG streams and determinism
requires a single consumer in schedule order, but the RNG-free decode
stage can run on a pool of worker processes
(``decode_workers > 0``).  Completed batches are dispatched to the
pool grouped by receiver config (so the PR-6 batched kernels still
fuse) while the air loop stages the next batch; a single **publisher
task** consumes batches from a bounded queue in dispatch order and
republishes outcomes in schedule order, stamped with a global
``stream_seq``, so any worker count is bit-identical to
``decode_workers=1`` and single-tag streams stay byte-identical to
``run_airlink``.  Decode workers that crash (``REPRO_FAULTS`` site
``decode``, kind ``kill``) or wedge (``hang`` + ``decode_timeout_s``)
are replaced and their groups resubmitted — same payloads, bumped
attempt — so recovery is bit-identical too.

With ``REPRO_LOOPWATCH=1`` the serve loop runs under the
:mod:`repro.core.loopwatch` event-loop sanitizer; its violation count
and worst observed lag land in :class:`GatewayStats`.

Latency accounting: the load question is "how many concurrent tags
per core before p99 decode latency exceeds a symbol period"; every
packet's **staged→published** wall-clock latency — stage cost plus
batch wait, dispatch, decode, and reorder-queue time, measured from
the packet's own enqueue stamp — is recorded in
:attr:`GatewayStats.decode_latencies_s` and in ``repro.perf`` gauges.

Shutdown is a **graceful drain**: the source stops, queued pipeline
work is flushed through the publisher, subscribers are given
``drain_timeout_s`` to consume their backlogs, then streams close
with a ``drained`` control event.  On hard cancel the publisher is
cancelled and the pool force-terminated so no worker outlives the
gateway.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

import numpy as np

from repro import perf
from repro.core import loopwatch
from repro.core.tag import MultiscatterTag, SingleProtocolTag
from repro.gateway.control import ControlPlane, TagSession
from repro.gateway.events import ControlEvent, PacketEvent
from repro.gateway.mac import MacArbiter
from repro.gateway.sources import AsyncExcitationSource
from repro.gateway.subscriptions import Backpressure, SubscriptionHub, Subscriber
from repro.phy.protocols import Protocol
from repro.sim import faults
from repro.sim.pipeline import (
    DecodePayload,
    PacketOutcome,
    PendingReception,
    decode_pending_many,
    decode_worker_group,
    pending_to_payload,
)

__all__ = ["GatewayConfig", "GatewayStats", "Gateway", "run_gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Service knobs, all deterministic or wall-clock-only."""

    #: Base seed: spawns per-tag channel streams for tags registered
    #: without an explicit generator, and (with ``mac_seed`` unset)
    #: the arbiter stream.
    seed: int = 0
    #: Separate arbiter seed; defaults to a stream spawned from ``seed``.
    mac_seed: int | None = None
    #: Receiver capture probability under MAC contention.
    capture_prob: float = 1.0
    #: Seconds without a keepalive before a tag is evicted.
    keepalive_timeout_s: float = 5.0
    #: How often the sweep task refreshes keepalives / evicts stale tags.
    keepalive_interval_s: float = 0.05
    #: Default bound for subscriber queues.
    queue_maxlen: int = 64
    #: How long a BLOCK subscriber may stall the publisher.
    stall_timeout_s: float = 0.5
    #: Pending receptions decoded per grouped kernel dispatch (1 =
    #: decode each packet as it arrives; >1 batches the RNG-free
    #: decode stage without touching draw order).
    decode_batch: int = 1
    #: Decode worker processes (0 = decode inline on the air loop;
    #: >0 dispatches batches to a process pool, overlapped with
    #: staging, bit-identical at every worker count).
    decode_workers: int = 0
    #: Wall-clock budget for one dispatched decode group; ``None``
    #: waits forever.  On expiry the pool is force-replaced and the
    #: group resubmitted (a hung worker must not wedge the stream).
    decode_timeout_s: float | None = None
    #: Resubmissions allowed per decode group after a worker crash or
    #: hang before the gateway gives up and fails the stream.
    decode_retries: int = 2
    #: Dispatched-but-unpublished batches the air loop may run ahead
    #: of the publisher (bounds memory and decode-pool backlog).
    max_inflight_batches: int = 8
    #: Grace period for subscribers to empty their queues at shutdown.
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.decode_batch < 1:
            raise ValueError("decode_batch must be >= 1")
        if self.decode_workers < 0:
            raise ValueError("decode_workers must be >= 0")
        if self.decode_timeout_s is not None and self.decode_timeout_s <= 0:
            raise ValueError("decode_timeout_s must be positive")
        if self.decode_retries < 0:
            raise ValueError("decode_retries must be >= 0")
        if self.max_inflight_batches < 1:
            raise ValueError("max_inflight_batches must be >= 1")


@dataclass
class GatewayStats:
    """What one service run did, for reports and the load benchmark."""

    n_packets: int = 0
    n_published: int = 0
    n_backscattered: int = 0
    n_collisions: int = 0
    n_tag_evictions: int = 0
    n_tag_crashes: int = 0
    n_subscriber_evictions: int = 0
    n_dropped_events: int = 0
    n_decode_retries: int = 0
    n_decode_worker_crashes: int = 0
    n_decode_timeouts: int = 0
    drained_clean: bool = False
    elapsed_s: float = 0.0
    #: Per-packet staged→published latency: stage cost plus batch
    #: wait, dispatch, decode and reorder-queue time (each packet is
    #: stamped when it enters the pending buffer).
    decode_latencies_s: list[float] = field(default_factory=list)
    #: Event-loop sanitizer results (0 unless ``REPRO_LOOPWATCH=1``).
    loopwatch_violations: int = 0
    loopwatch_slow_callbacks: int = 0
    loopwatch_max_lag_s: float = 0.0

    def latency_percentile_s(self, q: float) -> float:
        if not self.decode_latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.decode_latencies_s), q))

    def packets_per_s(self) -> float:
        return self.n_packets / max(self.elapsed_s, 1e-12)


@dataclass
class _GroupDispatch:
    """One receiver-config group of a batch, in flight on the pool."""

    payloads: list[DecodePayload]
    index: int
    name: str
    generation: int
    attempt: int = 1
    future: asyncio.Future | None = None


@dataclass
class _BatchEntry:
    """One staged packet inside a dispatched batch.

    ``outcome`` is set for pipeline short-circuits (and, inline, after
    the loop-side decode); dispatched receptions carry their group and
    slot instead and resolve when the group's future lands.
    """

    session: TagSession
    stage_s: float
    enqueued_t: float
    outcome: PacketOutcome | None
    group: int = -1
    slot: int = -1


@dataclass
class _PendingBatch:
    """A dispatched batch travelling through the reordering buffer."""

    entries: list[_BatchEntry]
    groups: list[_GroupDispatch]


def _shutdown_pool(pool: ProcessPoolExecutor, *, force: bool) -> None:
    """Shut a decode pool down; ``force`` terminates hung workers."""
    pool.shutdown(wait=not force, cancel_futures=True)
    if force:
        processes: Any = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            proc.terminate()
        for proc in list(processes.values()):
            proc.join(timeout=5.0)


def _mark_retrieved(future: asyncio.Future) -> None:
    """Keep abandoned dispatch futures from warning at GC time.

    A group resubmitted after a crash, or torn down mid-cancel, leaves
    its old future behind with an exception nobody will await.
    """
    if not future.cancelled():
        future.exception()


class Gateway:
    """Asyncio pub/sub gateway over the airlink pipeline."""

    def __init__(self, config: GatewayConfig | None = None) -> None:
        self.config = config or GatewayConfig()
        cfg = self.config
        self._seedseq = np.random.SeedSequence(cfg.seed)
        mac_seed = cfg.mac_seed
        if mac_seed is None:
            # A spawned child keeps the arbiter stream disjoint from
            # every per-tag stream derived from the same base seed.
            mac_seed = int(self._seedseq.spawn(1)[0].generate_state(1)[0])
        self.control = ControlPlane(keepalive_timeout_s=cfg.keepalive_timeout_s)
        self.hub = SubscriptionHub(
            default_maxlen=cfg.queue_maxlen, stall_timeout_s=cfg.stall_timeout_s
        )
        self.mac = MacArbiter(seed=mac_seed, capture_prob=cfg.capture_prob)
        self.stats = GatewayStats()
        self._sweep_task: asyncio.Task | None = None
        self._sweep_error: BaseException | None = None
        self._suspended: set[str] = set()
        self._stop_requested = False
        self._running = False
        self._now_s = 0.0
        # -- sharded data plane --
        self._decode_pool: ProcessPoolExecutor | None = None
        self._publish_queue: asyncio.Queue[_PendingBatch | None] | None = None
        self._publisher_task: asyncio.Task | None = None
        self._dispatch_counter = 0
        self._stream_seq = 0
        self._pool_generation = 0
        self._data_plane_clean = False

    # -- clock ------------------------------------------------------------
    def _now(self) -> float:
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:  # before the loop starts (registration)
            return self._now_s

    # -- control-plane API --------------------------------------------------
    def spawn_rng(self) -> np.random.Generator:
        """A fresh child stream of the gateway seed (per-tag channels)."""
        return np.random.default_rng(self._seedseq.spawn(1)[0])

    async def register_tag(
        self,
        tag_id: str,
        tag: MultiscatterTag | SingleProtocolTag | None = None,
        *,
        rng: np.random.Generator | None = None,
        payload: np.ndarray | None = None,
        d_tag_rx_m: float = 2.0,
    ) -> TagSession:
        """Admit a tag; the control-plane sweep keeps it alive."""
        now_s = self._now()
        session = self.control.register(
            tag_id,
            # Default-tag construction builds (cached, per-protocol)
            # reference template banks -- a deliberate one-time
            # control-plane cost, accepted on the registration path.
            tag if tag is not None else MultiscatterTag(),  # reproasync: disable=C001
            rng=rng if rng is not None else self.spawn_rng(),
            payload=payload,
            d_tag_rx_m=d_tag_rx_m,
            now_s=now_s,
        )
        self._ensure_sweep()
        await self.hub.publish(
            ControlEvent(kind="registered", time_s=now_s, tag_id=tag_id)
        )
        perf.count("gateway.tag.registered")
        return session

    async def deregister_tag(self, tag_id: str, *, reason: str = "deregistered") -> None:
        session = self.control.deregister(tag_id)
        self._suspended.discard(tag_id)
        if session is not None:
            await self.hub.publish(
                ControlEvent(
                    kind="deregistered",
                    time_s=self._now(),
                    tag_id=tag_id,
                    detail=reason,
                )
            )

    def subscribe(
        self,
        name: str,
        *,
        maxlen: int | None = None,
        policy: Backpressure = Backpressure.BLOCK,
    ) -> Subscriber:
        return self.hub.subscribe(name, maxlen=maxlen, policy=policy)

    async def assign_carrier(
        self, observed_rates: dict[Protocol, float], *, goal_kbps: float = 0.0
    ) -> Protocol | None:
        """§4.2.2 carrier pick, recorded on sessions and announced."""
        choice, estimates = self.control.assign_carrier(
            observed_rates, goal_kbps=goal_kbps
        )
        evidence = "; ".join(
            f"{e.protocol.name}={e.tag_goodput_kbps:.2f}kbps" for e in estimates
        )
        await self.hub.publish(
            ControlEvent(
                kind="carrier_assigned",
                time_s=self._now(),
                protocol=choice,
                detail=evidence,
            )
        )
        return choice

    def request_stop(self) -> None:
        """Ask the air loop to stop after the current packet and drain."""
        self._stop_requested = True

    # -- control-plane sweep -------------------------------------------------
    def suspend_heartbeat(self, tag_id: str) -> None:
        """Stop refreshing ``tag_id``'s keepalive (a tag gone silent
        without any observable crash -- only the timeout can evict it).
        """
        self._suspended.add(tag_id)

    def _ensure_sweep(self) -> None:
        if self._sweep_task is not None and not self._sweep_task.done():
            return
        self._sweep_task = asyncio.ensure_future(self._sweep())
        self._sweep_task.add_done_callback(self._on_sweep_done)

    def _on_sweep_done(self, task: asyncio.Task) -> None:
        # A sweep failure is a gateway bug, not a tag fault; stash it
        # so serve() re-raises instead of silently losing keepalives.
        if not task.cancelled() and task.exception() is not None:
            self._sweep_error = task.exception()

    async def _stop_sweep(self) -> None:
        task = self._sweep_task
        self._sweep_task = None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def _sweep(self) -> None:
        """One task sweeps the whole control plane every keepalive tick.

        Replaces the former per-tag supervisor tasks and the air loop's
        per-packet stale scan: each pass refreshes every live tag's
        keepalive, observes injected crashes
        (``raise:site=gateway,name=tag:<id>`` evicts that tag and only
        that tag -- one sensor's firmware bug must not take down the
        network) and evicts sessions whose keepalive timed out.
        """
        while True:
            now_s = self._now()
            for session in list(self.control.sessions):
                tag_id = session.tag_id
                try:
                    await faults.check_async("gateway", name=f"tag:{tag_id}")
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self.stats.n_tag_crashes += 1
                    perf.count("gateway.tag.crashes")
                    await self._evict_tag(session, reason=f"tag crashed: {exc!r}")
                    continue
                if tag_id not in self._suspended:
                    self.control.keepalive(tag_id, now_s)
            for stale in self.control.evict_stale(self._now()):
                await self._evict_tag(
                    stale,
                    reason="keepalive timeout (tag presumed dead)",
                    already_removed=True,
                )
            await asyncio.sleep(self.config.keepalive_interval_s)

    async def _evict_tag(
        self, session: TagSession, *, reason: str, already_removed: bool = False
    ) -> None:
        # evict_stale() pops the session itself; every other caller
        # must find it still registered (otherwise it raced another
        # eviction and this one is a no-op).
        if not already_removed and self.control.deregister(session.tag_id) is None:
            return
        self._suspended.discard(session.tag_id)
        self.stats.n_tag_evictions += 1
        perf.count("gateway.tag.evictions")
        await self.hub.publish(
            ControlEvent(
                kind="evicted",
                time_s=self._now(),
                tag_id=session.tag_id,
                detail=reason,
            )
        )

    # -- data plane ----------------------------------------------------------
    async def _publish_outcome(
        self, session: TagSession, outcome: PacketOutcome, latency_s: float
    ) -> None:
        # Only the publisher task calls this, so per-session and
        # global sequence numbers advance strictly in schedule order.
        session.seq += 1
        self._stream_seq += 1
        if outcome.backscattered:
            session.n_backscattered += 1
            self.stats.n_backscattered += 1
        self.stats.decode_latencies_s.append(latency_s)
        perf.gauge("gateway.decode_latency_s", latency_s)
        evicted = await self.hub.publish(
            PacketEvent(
                tag_id=session.tag_id,
                seq=session.seq,
                time_s=outcome.start_s,
                outcome=outcome,
                decode_latency_s=latency_s,
                stream_seq=self._stream_seq,
            )
        )
        self.stats.n_published += 1
        for sub in evicted:
            self.stats.n_subscriber_evictions += 1
            await self.hub.publish(
                ControlEvent(
                    kind="subscriber_evicted",
                    time_s=self._now(),
                    detail=f"{sub.name}: {sub.close_reason}",
                )
            )

    # -- decode pool ---------------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.config.decode_workers)

    def _submit_group(self, group: _GroupDispatch) -> None:
        """Dispatch (or resubmit) one receiver-config group to the pool."""
        pool = self._decode_pool
        assert pool is not None
        group.generation = self._pool_generation
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(
                pool,
                decode_worker_group,
                group.payloads,
                group.index,
                group.name,
                group.attempt,
            )
        except BrokenExecutor as exc:
            # The pool broke under an earlier group before the
            # publisher could rebuild it.  Hand the breakage to the
            # publisher as a pre-failed future so the air loop keeps
            # staging and the normal crash-recovery path resubmits.
            future = loop.create_future()
            future.set_exception(BrokenExecutor(str(exc)))
        future.add_done_callback(_mark_retrieved)
        group.future = future

    async def _recover_pool(self, *, force: bool, generation: int) -> None:
        """Replace a crashed/hung pool once, however many groups failed.

        A worker crash breaks every in-flight future of the pool at
        once; the generation stamp makes sure only the first failing
        group pays for the rebuild and later ones just resubmit.  The
        new pool goes up before the old one is torn down so the air
        loop can keep dispatching while stuck workers are terminated
        off-loop.
        """
        if generation != self._pool_generation:
            return
        old = self._decode_pool
        assert old is not None
        self._pool_generation += 1
        self._decode_pool = self._new_pool()
        await asyncio.to_thread(_shutdown_pool, old, force=force)

    async def _await_group(self, group: _GroupDispatch) -> list[PacketOutcome]:
        """Await one group's outcomes, replacing dead workers.

        Crashes surface as :class:`BrokenExecutor`, hangs as a timeout
        (``decode_timeout_s``), and a pool replaced by a sibling
        group's recovery as a cancelled future.  Each failure mode
        resubmits the identical payloads with a bumped attempt, so the
        ``decode`` fault site's attempt gate releases the retry and
        the decoded bits are identical to an undisturbed run.
        """
        cfg = self.config
        while True:
            assert group.future is not None
            try:
                return await asyncio.wait_for(group.future, cfg.decode_timeout_s)
            except asyncio.TimeoutError:
                self.stats.n_decode_timeouts += 1
                perf.count("gateway.decode.timeouts")
                failure, force = "hung", True
            except BrokenExecutor:
                self.stats.n_decode_worker_crashes += 1
                perf.count("gateway.decode.crashes")
                failure, force = "crashed", False
            except asyncio.CancelledError:
                if not group.future.cancelled():
                    raise  # the gateway itself is being cancelled
                failure, force = "cancelled with its pool", False
            if group.attempt > cfg.decode_retries:
                raise RuntimeError(
                    f"decode group {group.index} ({group.name}) {failure} on "
                    f"attempt {group.attempt}; retry budget exhausted"
                )
            await self._recover_pool(force=force, generation=group.generation)
            group.attempt += 1
            self.stats.n_decode_retries += 1
            perf.count("gateway.decode.retries")
            self._submit_group(group)

    def _teardown_pool(self) -> None:
        pool = self._decode_pool
        self._decode_pool = None
        if pool is None:
            return
        if self._data_plane_clean:
            # Every future has resolved; workers exit on their
            # sentinel without the loop blocking on a join.
            pool.shutdown(wait=False)
        else:
            # Error or hard-cancel path: in-flight futures may hold
            # live (even wedged) workers -- terminate them so nothing
            # outlives the gateway.
            _shutdown_pool(pool, force=True)

    # -- reordering buffer ---------------------------------------------------
    async def _dispatch_batch(
        self,
        pending: list[tuple[TagSession, float, float, PacketOutcome | PendingReception]],
    ) -> None:
        """Hand one staged batch to the publisher, in schedule order.

        Ready outcomes (pipeline short-circuits such as identification
        misses) ride in the same batch behind queued receptions so
        events always publish in schedule order, whatever
        ``decode_batch`` or the worker count is.  With a pool,
        receptions are grouped by receiver config — each group is one
        fused kernel dispatch on a worker — and the loop returns to
        staging while they decode; inline, the grouped decode runs
        here as before.
        """
        if not pending:
            return
        entries: list[_BatchEntry] = []
        receptions: list[tuple[_BatchEntry, PendingReception]] = []
        for session, stage_s, enqueued_t, staged in pending:
            entry = _BatchEntry(
                session=session,
                stage_s=stage_s,
                enqueued_t=enqueued_t,
                outcome=staged if isinstance(staged, PacketOutcome) else None,
            )
            entries.append(entry)
            if isinstance(staged, PendingReception):
                receptions.append((entry, staged))
        groups: list[_GroupDispatch] = []
        if receptions and self._decode_pool is None:
            # Decoding inline (not in an executor) keeps the unsharded
            # gateway single-tasked; per-packet kernel cost is
            # ~0.1-3 ms and the loopwatch sanitizer bounds the worst
            # case at runtime.
            outcomes = decode_pending_many(  # reproasync: disable=C001
                [staged for _, staged in receptions]
            )
            for (entry, _), outcome in zip(receptions, outcomes):
                entry.outcome = outcome
        elif receptions:
            by_key: dict[object, int] = {}
            for entry, staged in receptions:
                key = staged._decode_key()
                index = by_key.get(key)
                if index is None:
                    index = len(groups)
                    by_key[key] = index
                    groups.append(
                        _GroupDispatch(
                            payloads=[],
                            index=self._dispatch_counter,
                            name=staged.protocol.name,
                            generation=self._pool_generation,
                        )
                    )
                    self._dispatch_counter += 1
                group = groups[index]
                entry.group = index
                entry.slot = len(group.payloads)
                group.payloads.append(pending_to_payload(staged))
            for group in groups:
                self._submit_group(group)
        pending.clear()
        await self._enqueue_batch(_PendingBatch(entries=entries, groups=groups))

    async def _enqueue_batch(self, batch: _PendingBatch | None) -> None:
        """Queue a batch for the publisher, surfacing its death.

        A plain ``queue.put`` would deadlock if the publisher failed
        with the queue full, so the put races the publisher task; a
        dead publisher re-raises its error on the air loop.
        """
        task = self._publisher_task
        queue = self._publish_queue
        assert task is not None and queue is not None
        if not task.done():
            put = asyncio.ensure_future(queue.put(batch))
            try:
                await asyncio.wait({put, task}, return_when=asyncio.FIRST_COMPLETED)
            finally:
                if not put.done():
                    put.cancel()
            if put.done() and not put.cancelled():
                return
        if task.done() and not task.cancelled():
            exc = task.exception()
            if exc is not None:
                raise exc
        raise RuntimeError("gateway publisher task exited before end of stream")

    async def _close_publisher(self) -> None:
        """End-of-stream: flush the publisher and join it."""
        task = self._publisher_task
        if task is None:
            return
        await self._enqueue_batch(None)
        try:
            await task
        finally:
            self._publisher_task = None

    async def _publish_batches(self) -> None:
        """The reordering buffer: one task republishes in order.

        Batches arrive in dispatch (= schedule) order on the bounded
        queue; within a batch, entries are already in schedule order
        and groups resolve out of order on the pool — awaiting them
        batch-by-batch restores the global order before any event
        reaches the hub.  A ``None`` sentinel ends the stream.
        """
        queue = self._publish_queue
        assert queue is not None
        while True:
            batch = await queue.get()
            if batch is None:
                return
            resolved = [await self._await_group(group) for group in batch.groups]
            for entry in batch.entries:
                if entry.group >= 0:
                    outcome = resolved[entry.group][entry.slot]
                else:
                    assert entry.outcome is not None
                    outcome = entry.outcome
                latency_s = entry.stage_s + (perf_counter() - entry.enqueued_t)
                await self._publish_outcome(entry.session, outcome, latency_s)

    # -- the air loop -----------------------------------------------------
    async def serve(self, source: AsyncExcitationSource) -> GatewayStats:
        """Run the gateway over a packet stream until it ends (or
        :meth:`request_stop`), then drain gracefully.

        Determinism: the air loop is the only consumer of per-tag
        channel streams, packets arrive in schedule order, and the
        arbiter draws only under contention -- so a single-tag run
        replays :func:`repro.sim.airlink.run_airlink` bit for bit.
        """
        if self._running:
            raise RuntimeError("gateway is already serving")
        self._running = True
        self._stop_requested = False
        self._data_plane_clean = False
        self._ensure_sweep()
        watch = loopwatch.maybe_start()
        started = perf_counter()
        cfg = self.config
        if cfg.decode_workers > 0:
            self._decode_pool = self._new_pool()
        self._publish_queue = asyncio.Queue(maxsize=cfg.max_inflight_batches)
        self._publisher_task = asyncio.ensure_future(self._publish_batches())
        pending: list[
            tuple[TagSession, float, float, PacketOutcome | PendingReception]
        ] = []
        try:
            try:
                async for scheduled in source.__aiter__():
                    if self._stop_requested:
                        source.stop()
                        break
                    if self._sweep_error is not None:
                        raise RuntimeError(
                            "control-plane sweep task failed"
                        ) from self._sweep_error
                    decision = self.mac.arbitrate(
                        [s.tag_id for s in self.control.sessions]
                    )
                    self.stats.n_packets += 1
                    perf.count("gateway.packets")
                    if decision.collided:
                        self.stats.n_collisions += 1
                        perf.count("gateway.collisions")
                        continue
                    if decision.winner is None:
                        continue
                    session = self.control.session(decision.winner)
                    if session is None:  # pragma: no cover - evicted this tick
                        continue
                    session.refill_payload_if_spent()
                    t0 = perf_counter()
                    # Inline on purpose: the excite/react stage consumes
                    # the per-tag RNG stream, and determinism requires a
                    # single consumer in schedule order (see docstring).
                    staged, session.cursor = session.pipeline.excite_and_react(  # reproasync: disable=C001
                        scheduled, session.payload, session.cursor, session.rng
                    )
                    stage_s = perf_counter() - t0
                    pending.append((session, stage_s, perf_counter(), staged))
                    n_receptions = sum(
                        1
                        for _, _, _, item in pending
                        if isinstance(item, PendingReception)
                    )
                    # An all-ready buffer (short-circuit outcomes only)
                    # has nothing to batch: hand it over right away, as
                    # the pre-sharding gateway published it right away.
                    if n_receptions == 0 or n_receptions >= cfg.decode_batch:
                        await self._dispatch_batch(pending)
                await self._dispatch_batch(pending)
                await self._close_publisher()
                self._data_plane_clean = True
                return await self._drain()
            except asyncio.CancelledError:
                # Mid-await cancellation (hard shutdown): stop the sweep
                # and close every stream so consumers blocked on get()
                # observe end-of-stream instead of hanging forever.
                await self._stop_sweep()
                self.hub.close_all(reason="gateway cancelled")
                raise
        finally:
            task = self._publisher_task
            self._publisher_task = None
            if task is not None:
                # One cancel is not enough: wait_for's completion race
                # can swallow a cancellation that lands just as a
                # subscriber put resolves (the publisher then re-parks
                # on queue.get with the request spent), so keep
                # cancelling until the task actually finishes.
                while not task.done():
                    task.cancel()
                    await asyncio.sleep(0)
                if not task.cancelled():
                    task.exception()  # already surfaced via _enqueue_batch
            self._publish_queue = None
            self._teardown_pool()
            # In the finally so mid-cancel / failed runs report their
            # true wall-clock instead of a zero.
            self.stats.elapsed_s = perf_counter() - started
            if watch is not None:
                lw = await watch.stop()
                self.stats.loopwatch_violations = lw.violations
                self.stats.loopwatch_slow_callbacks = lw.slow_callbacks
                self.stats.loopwatch_max_lag_s = lw.max_lag_s
            self._running = False

    async def _drain(self) -> GatewayStats:
        """Graceful shutdown: flush, wait for consumers, close streams."""
        now_s = self._now()
        await self.hub.publish(ControlEvent(kind="draining", time_s=now_s))
        drained = await self.hub.drain(timeout_s=self.config.drain_timeout_s)
        self.stats.drained_clean = drained
        self.stats.n_dropped_events = self.hub.total_dropped()
        await self._stop_sweep()
        for tag_id in [s.tag_id for s in self.control.sessions]:
            await self.deregister_tag(tag_id, reason="gateway drained")
        await self.hub.publish(ControlEvent(kind="drained", time_s=self._now()))
        # Closing puts the end-of-stream sentinel past full queues so
        # every consumer observes the end of stream instead of hanging.
        self.hub.close_all(reason="gateway drained")
        perf.gauge("gateway.tags_live", float(len(self.control)))
        return self.stats


async def run_gateway(
    source: AsyncExcitationSource,
    *,
    config: GatewayConfig | None = None,
    n_tags: int = 1,
    subscribers: int = 1,
) -> GatewayStats:
    """Convenience one-shot: N default tags, M draining subscribers."""
    gw = Gateway(config)
    for i in range(n_tags):
        await gw.register_tag(f"tag-{i:03d}")

    async def consume(sub: Subscriber) -> None:
        # End of stream surfaces as StopAsyncIteration inside the async
        # for; anything else is a real bug and must propagate.
        async for _ in sub:
            pass

    consumers = [
        asyncio.ensure_future(consume(gw.subscribe(f"sub-{j}")))
        for j in range(subscribers)
    ]
    stats = await gw.serve(source)
    results = await asyncio.gather(*consumers, return_exceptions=True)
    for result in results:
        if isinstance(result, BaseException) and not isinstance(
            result, asyncio.CancelledError
        ):
            raise result
    return stats
