"""Async excitation sources: the batch schedules, lifted to a stream.

:class:`AsyncExcitationSource` renders a deterministic
:class:`~repro.sim.traffic.ExcitationSchedule` (same generator, same
arrival times as the batch experiments) and exposes it as an async
iterator of :class:`~repro.sim.traffic.ScheduledPacket`.

``time_scale`` maps schedule time to wall time: ``1.0`` replays in
real time (a live demo), ``0.0`` fast-forwards (tests, benchmarks, and
the equivalence suite) while still yielding to the event loop between
packets so tag tasks and subscribers run interleaved, exactly as they
would at speed.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Sequence

import numpy as np

from repro.phy.protocols import Protocol
from repro.sim.traffic import ExcitationSchedule, ExcitationSource, ScheduledPacket

__all__ = ["AsyncExcitationSource"]


class AsyncExcitationSource:
    """A schedule of excitation packets, streamed packet by packet."""

    def __init__(
        self,
        sources: Sequence[ExcitationSource],
        *,
        duration_s: float,
        rng: np.random.Generator,
        time_scale: float = 0.0,
        max_packets: int | None = None,
    ) -> None:
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.time_scale = time_scale
        # The schedule is rendered eagerly so the packet sequence is a
        # pure function of (sources, duration, rng) -- identical to
        # what the batch driver would replay with the same inputs.
        self.schedule: ExcitationSchedule = ExcitationSchedule.generate(
            list(sources), duration_s=duration_s, rng=rng
        )
        if max_packets is not None:
            self.schedule.packets = self.schedule.packets[:max_packets]
        self._stopped = False

    @property
    def duration_s(self) -> float:
        return self.schedule.duration_s

    def observed_rates(self) -> dict[Protocol, float]:
        """Per-protocol packet rates of the rendered schedule.

        This is the control plane's §4.2.2 decision input: what the
        gateway actually sees on the air, not what the sources were
        configured to emit.
        """
        span = max(self.schedule.duration_s, 1e-12)
        rates: dict[Protocol, float] = {}
        for pkt in self.schedule.packets:
            rates[pkt.protocol] = rates.get(pkt.protocol, 0.0) + 1.0
        return {p: n / span for p, n in rates.items()}

    def stop(self) -> None:
        """Stop the stream after the packet currently being yielded."""
        self._stopped = True

    async def __aiter__(self) -> AsyncIterator[ScheduledPacket]:
        prev_start_s = 0.0
        for scheduled in self.schedule.packets:
            if self._stopped:
                return
            gap_s = (scheduled.start_s - prev_start_s) * self.time_scale
            prev_start_s = scheduled.start_s
            # Always yield to the loop, even fast-forwarded: tag tasks
            # and subscribers must interleave with the air loop.
            await asyncio.sleep(gap_s if gap_s > 0 else 0)
            yield scheduled
