"""Events published on the gateway's data and control planes.

Data-plane traffic is :class:`PacketEvent` -- one per decoded (or
attempted) excitation packet, carrying the full
:class:`~repro.sim.pipeline.PacketOutcome`.  Control-plane traffic is
:class:`ControlEvent` -- registrations, evictions, carrier
assignments, drain notices.  Both are frozen so a slow subscriber can
never mutate what a fast one already consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.protocols import Protocol
from repro.sim.pipeline import PacketOutcome

__all__ = ["PacketEvent", "ControlEvent", "GatewayEvent"]


@dataclass(frozen=True)
class PacketEvent:
    """One excitation packet's journey through the pipeline.

    ``time_s`` is the scheduled (simulation) start of the excitation;
    ``decode_latency_s`` is the wall-clock staged→published cost for
    this packet (the quantity the gateway load test holds against a
    symbol period).  ``stream_seq`` is the gateway-global schedule
    position (1-based, strictly increasing across every tag): the
    sharded decode plane republishes through a reordering buffer, and
    the hub asserts this number never goes backwards, so subscribers
    can rely on schedule order whatever ``decode_workers`` is.
    """

    tag_id: str
    seq: int
    time_s: float
    outcome: PacketOutcome
    decode_latency_s: float
    stream_seq: int = 0


@dataclass(frozen=True)
class ControlEvent:
    """A control-plane notification.

    ``kind`` is one of ``registered``, ``deregistered``, ``evicted``,
    ``subscriber_evicted``, ``carrier_assigned``, ``draining``,
    ``drained``; ``detail`` is human-readable context (eviction
    reason, assignment evidence).
    """

    kind: str
    time_s: float
    tag_id: str | None = None
    protocol: Protocol | None = None
    detail: str = ""


GatewayEvent = PacketEvent | ControlEvent
