"""Data-plane pub/sub with bounded queues and explicit backpressure.

Every subscriber owns a bounded :class:`asyncio.Queue`; what happens
when it fills is the subscriber's declared policy, not an accident:

``BLOCK``
    The publisher waits for space -- but only up to the hub's stall
    timeout, after which the subscriber is evicted.  Lossless for
    consumers that keep up; a stuck consumer cannot wedge the gateway.
``DROP_OLDEST``
    The oldest queued event is discarded to admit the new one (a
    live-telemetry subscriber that prefers fresh data over complete
    data).  Drops are counted per subscriber and in ``repro.perf``.
``DISCONNECT``
    A full queue evicts the subscriber immediately (strict consumers
    that would rather re-sync than process a gapped stream).

Eviction and close always enqueue a sentinel so a blocked ``get()``
wakes up and raises :class:`SubscriptionClosed` instead of hanging.

Shutdown is event-driven: every consume (and every close) pokes the
hub's wakeup event, so :meth:`SubscriptionHub.drain` sleeps until a
queue actually changed instead of polling on a timer.
"""

from __future__ import annotations

import asyncio
import enum
from typing import TYPE_CHECKING, Callable

from repro import perf
from repro.sim import faults

if TYPE_CHECKING:
    from repro.gateway.events import GatewayEvent

__all__ = [
    "Backpressure",
    "SubscriptionClosed",
    "Subscriber",
    "SubscriptionHub",
]


class Backpressure(enum.Enum):
    """Full-queue policy, chosen per subscriber at subscribe time."""

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    DISCONNECT = "disconnect"


class SubscriptionClosed(Exception):
    """Raised by :meth:`Subscriber.get` once the stream has ended."""


#: Queue sentinel that wakes blocked consumers at close/eviction.
_CLOSE = object()


class _NotifyingQueue(asyncio.Queue):
    """Bounded queue that reports every consumed item to the hub.

    CPython's ``Queue.get()`` takes the item via ``get_nowait()`` once
    one is available, so overriding the one method covers both the
    blocking and non-blocking consume paths.  The callback is how
    :meth:`SubscriptionHub.drain` learns a backlog shrank without
    polling.
    """

    def __init__(self, maxsize: int = 0) -> None:
        super().__init__(maxsize)
        self.on_consume: Callable[[], None] | None = None

    def get_nowait(self) -> object:
        item = super().get_nowait()
        if self.on_consume is not None:
            self.on_consume()
        return item


class Subscriber:
    """One consumer's bounded view of the gateway event stream.

    Constructed by :meth:`SubscriptionHub.subscribe`; consumers call
    :meth:`get` (or async-iterate) and must expect
    :class:`SubscriptionClosed` when the gateway drains or evicts
    them.
    """

    def __init__(self, name: str, *, maxlen: int, policy: Backpressure) -> None:
        if maxlen < 1:
            raise ValueError(f"subscriber queue maxlen must be >= 1, got {maxlen}")
        self.name = name
        self.policy = policy
        self.queue: _NotifyingQueue = _NotifyingQueue(maxsize=maxlen)
        self.dropped = 0
        self.delivered = 0
        self.closed = False
        self.close_reason = ""

    def qsize(self) -> int:
        """Current queue depth (sentinels excluded from semantics)."""
        return self.queue.qsize()

    async def get(self) -> "GatewayEvent":
        """Next event; raises :class:`SubscriptionClosed` at stream end.

        This is the instrumented consumer-side fault site: a
        ``hang:site=gateway,name=subscriber:<name>`` spec stalls this
        consumer here, which is how the tests force the slow-consumer
        eviction path.
        """
        await faults.check_async("gateway", name=f"subscriber:{self.name}")
        if self.closed and self.queue.empty():
            raise SubscriptionClosed(self.name + ": " + self.close_reason)
        item = await self.queue.get()
        if item is _CLOSE:
            raise SubscriptionClosed(self.name + ": " + self.close_reason)
        return item  # type: ignore[no-any-return]

    def __aiter__(self) -> "Subscriber":
        return self

    async def __anext__(self) -> "GatewayEvent":
        try:
            return await self.get()
        except SubscriptionClosed:
            raise StopAsyncIteration from None

    def _force_put(self, item: object) -> None:
        """Enqueue unconditionally, shedding oldest events if needed."""
        while True:
            try:
                self.queue.put_nowait(item)
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - racing consumer
                    pass

    def _close(self, reason: str) -> None:
        if self.closed:
            return
        self.closed = True
        self.close_reason = reason
        self._force_put(_CLOSE)


class SubscriptionHub:
    """Fan-out of gateway events to all live subscribers.

    The hub is pure data plane: it never inspects event contents, only
    moves them.  Slow-consumer handling is the policy table above;
    evictions are reported to the caller (the gateway turns them into
    control-plane events) and counted under ``gateway.subscriber.*``
    in :mod:`repro.perf`.
    """

    def __init__(
        self, *, default_maxlen: int = 64, stall_timeout_s: float = 0.5
    ) -> None:
        if default_maxlen < 1:
            raise ValueError("default_maxlen must be >= 1")
        if stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive")
        self.default_maxlen = default_maxlen
        self.stall_timeout_s = stall_timeout_s
        self._subscribers: dict[str, Subscriber] = {}
        # Set whenever a queue shrinks or a subscriber closes; drain()
        # clears it before re-checking so no wakeup is ever lost.
        self._activity = asyncio.Event()
        # Highest data-plane stream_seq seen; the reordering buffer
        # upstream must hand packets over in schedule order, and this
        # guard turns any regression into a loud failure here rather
        # than a silently reordered subscriber stream.
        self._last_stream_seq = 0

    def _notify(self) -> None:
        self._activity.set()

    @property
    def subscribers(self) -> tuple[Subscriber, ...]:
        return tuple(self._subscribers.values())

    def subscribe(
        self,
        name: str,
        *,
        maxlen: int | None = None,
        policy: Backpressure = Backpressure.BLOCK,
    ) -> Subscriber:
        if name in self._subscribers:
            raise ValueError(f"subscriber {name!r} already exists")
        sub = Subscriber(
            name,
            maxlen=maxlen if maxlen is not None else self.default_maxlen,
            policy=policy,
        )
        sub.queue.on_consume = self._notify
        self._subscribers[name] = sub
        perf.count("gateway.subscriber.subscribed")
        return sub

    def unsubscribe(self, name: str, *, reason: str = "unsubscribed") -> None:
        sub = self._subscribers.pop(name, None)
        if sub is not None:
            sub._close(reason)
            self._notify()

    async def publish(self, event: "GatewayEvent") -> list[Subscriber]:
        """Deliver ``event`` to every subscriber per its policy.

        Returns the subscribers evicted by this delivery (stalled
        ``BLOCK`` consumers past the stall timeout, ``DISCONNECT``
        consumers that were full).
        """
        stream_seq = getattr(event, "stream_seq", 0)
        if stream_seq > 0:
            if stream_seq <= self._last_stream_seq:
                raise RuntimeError(
                    f"packet stream_seq went backwards: {stream_seq} after "
                    f"{self._last_stream_seq} (reordering buffer bug)"
                )
            self._last_stream_seq = stream_seq
        evicted: list[Subscriber] = []
        for sub in list(self._subscribers.values()):
            if sub.closed:
                continue
            if sub.policy is Backpressure.BLOCK:
                try:
                    await asyncio.wait_for(
                        sub.queue.put(event), timeout=self.stall_timeout_s
                    )
                    sub.delivered += 1
                except asyncio.TimeoutError:
                    self._evict(sub, "stalled past the block timeout")
                    evicted.append(sub)
            elif sub.policy is Backpressure.DROP_OLDEST:
                dropped_before = sub.dropped
                sub._force_put(event)
                sub.delivered += 1
                if sub.dropped > dropped_before:
                    perf.count(
                        "gateway.subscriber.drops", sub.dropped - dropped_before
                    )
            else:  # DISCONNECT
                try:
                    sub.queue.put_nowait(event)
                    sub.delivered += 1
                except asyncio.QueueFull:
                    self._evict(sub, "queue overflow under disconnect policy")
                    evicted.append(sub)
            perf.gauge(f"gateway.queue_depth.{sub.name}", float(sub.qsize()))
        return evicted

    def _evict(self, sub: Subscriber, reason: str) -> None:
        self._subscribers.pop(sub.name, None)
        sub._close(reason)
        self._notify()
        perf.count("gateway.subscriber.evictions")

    async def drain(self, *, timeout_s: float) -> bool:
        """Wait until every live queue is empty (consumers caught up).

        Event-driven: sleeps on the hub wakeup until a consume or close
        actually changes a queue, re-checking with clear-before-check
        semantics so a wakeup between the check and the wait is never
        lost.  Returns False if the timeout expired first -- the caller
        decides whether that is an error (CI smoke) or acceptable
        (interactive shutdown).
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while True:
            self._activity.clear()
            if not any(
                not s.closed and s.qsize() > 0
                for s in self._subscribers.values()
            ):
                return True
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(self._activity.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return False

    def close_all(self, *, reason: str = "gateway shut down") -> None:
        for name in list(self._subscribers):
            self.unsubscribe(name, reason=reason)

    def total_dropped(self) -> int:
        return sum(s.dropped for s in self._subscribers.values())
