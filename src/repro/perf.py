"""Lightweight performance instrumentation.

Zero-dependency counters and timers for the hot paths: wrap a region
in :func:`timer` (or decorate with :func:`timed`) and bump
:func:`count` for interesting events.  Everything is process-local and
cheap enough to leave on.

Set ``REPRO_PERF=1`` to print a report at interpreter exit -- per-name
call counts and cumulative/mean wall time, plus the waveform/template
cache counters from :mod:`repro.core.wavecache`.  :func:`report`
renders the same table on demand.

Batched-kernel visibility: every PHY/matching kernel entry point
reports its dispatches through :func:`dispatch`, which maintains (a)
``dispatch.<kernel>.batched`` / ``dispatch.<kernel>.scalar`` counters
and (b) a per-kernel batch-size histogram
(:func:`batch_histograms`).  A campaign that silently regresses to the
per-packet path shows up immediately in the ``REPRO_PERF=1`` report:
the scalar counter climbs and the histogram mass sits at batch size 1.

Robustness events from the fault-tolerant Monte-Carlo runner
(:mod:`repro.sim.runner`) land in the counters section under the
``mc.`` prefix -- ``mc.chunk_retries`` (chunks re-run after a
failure), ``mc.chunk_timeouts`` (chunks abandoned at the wall-clock
deadline), ``mc.worker_crashes`` (pool workers that died mid-chunk) --
so a ``REPRO_PERF=1`` run shows at a glance whether its results
needed any recovery.  All three are counted in the parent process;
workers never mutate shared perf state.
"""

from __future__ import annotations

import atexit
import functools
import os
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

__all__ = [
    "timer",
    "timed",
    "count",
    "counters",
    "gauge",
    "gauges",
    "timings",
    "dispatch",
    "batch_histograms",
    "reset",
    "report",
]

_F = TypeVar("_F", bound=Callable)

#: name -> [n_calls, total_seconds]
_TIMINGS: dict[str, list[float]] = defaultdict(lambda: [0, 0.0])

#: name -> count
_COUNTERS: dict[str, int] = defaultdict(int)

#: kernel -> {batch size -> dispatch count}
_BATCH_HIST: dict[str, dict[int, int]] = defaultdict(lambda: defaultdict(int))

#: name -> [last, min, max, n_samples] for level-style metrics
_GAUGES: dict[str, list[float]] = {}


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate wall time of the enclosed block under ``name``."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        cell = _TIMINGS[name]
        cell[0] += 1
        cell[1] += time.perf_counter() - t0


def timed(name: str | None = None) -> Callable[[_F], _F]:
    """Decorator form of :func:`timer` (defaults to the function name)."""

    def deco(fn: _F) -> _F:
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with timer(label):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco


def count(name: str, n: int = 1) -> None:
    """Bump the event counter ``name`` by ``n``."""
    # Telemetry only; worker-side mutations are intentionally local.
    _COUNTERS[name] += n  # reproflow: disable=F001


def counters() -> dict[str, int]:
    """Snapshot of all event counters."""
    return dict(_COUNTERS)


def gauge(name: str, value: float) -> None:
    """Record a level-style sample (queue depth, latency, backlog).

    Unlike :func:`count`, a gauge tracks the *current* value of
    something that goes up and down; the report shows last/min/max so
    a gateway run exposes its high-water queue depths and worst decode
    latency without keeping per-sample history.
    """
    cell = _GAUGES.get(name)
    if cell is None:
        # Telemetry only; process-local like the counters above.
        _GAUGES[name] = [value, value, value, 1]  # reproflow: disable=F001
        return
    cell[0] = value
    cell[1] = min(cell[1], value)
    cell[2] = max(cell[2], value)
    cell[3] += 1


def gauges() -> dict[str, dict[str, float]]:
    """Snapshot of gauges: name -> {last, min, max, n}."""
    return {
        k: {"last": v[0], "min": v[1], "max": v[2], "n": v[3]}
        for k, v in _GAUGES.items()
    }


def dispatch(kernel: str, n: int, *, batched: bool) -> None:
    """Record one kernel dispatch covering ``n`` packets/captures.

    Scalar entry points report ``n=1, batched=False``; batched entry
    points report their group size.  Both feed the per-kernel batch
    histogram and the ``dispatch.<kernel>.{batched,scalar}`` counters.
    """
    _COUNTERS[f"dispatch.{kernel}.{'batched' if batched else 'scalar'}"] += 1  # reproflow: disable=F001
    _BATCH_HIST[kernel][int(n)] += 1  # reproflow: disable=F001


def batch_histograms() -> dict[str, dict[int, int]]:
    """Snapshot of batch-size histograms: kernel -> {size -> count}."""
    return {k: dict(v) for k, v in _BATCH_HIST.items()}


def timings() -> dict[str, tuple[int, float]]:
    """Snapshot of timers: name -> (n_calls, total_seconds)."""
    return {k: (int(v[0]), float(v[1])) for k, v in _TIMINGS.items()}


def reset() -> None:
    """Clear all timers, counters, gauges and batch histograms."""
    _TIMINGS.clear()
    _COUNTERS.clear()
    _BATCH_HIST.clear()
    _GAUGES.clear()


def report() -> str:
    """Render timers, counters and cache statistics as a text table."""
    lines = ["==== repro perf report ===="]
    t = timings()
    if t:
        lines.append("timers (name, calls, total s, mean ms):")
        width = max(len(k) for k in t)
        for name, (calls, total) in sorted(t.items(), key=lambda kv: -kv[1][1]):
            mean_ms = total / calls * 1e3 if calls else 0.0
            lines.append(f"  {name:<{width}s} {calls:8d} {total:10.4f} {mean_ms:10.4f}")
    c = counters()
    if c:
        lines.append("counters:")
        width = max(len(k) for k in c)
        for name, n in sorted(c.items()):
            lines.append(f"  {name:<{width}s} {n:10d}")
    g = gauges()
    if g:
        lines.append("gauges (name, last, min, max, samples):")
        width = max(len(k) for k in g)
        for name, s in sorted(g.items()):
            lines.append(
                f"  {name:<{width}s} {s['last']:12.4f} {s['min']:12.4f} "
                f"{s['max']:12.4f} {int(s['n']):8d}"
            )
    hist = batch_histograms()
    if hist:
        lines.append("batch-size histograms (kernel: size x dispatches):")
        width = max(len(k) for k in hist)
        for kernel, sizes in sorted(hist.items()):
            cells = "  ".join(
                f"{size}x{cnt}" for size, cnt in sorted(sizes.items())
            )
            lines.append(f"  {kernel:<{width}s} {cells}")
    try:
        from repro.core.wavecache import cache_stats

        stats = cache_stats()
    except Exception:  # pragma: no cover - wavecache import failure
        stats = {}
    if stats:
        lines.append("caches (name, hits, misses, evictions, size/max):")
        width = max(len(k) for k in stats)
        for name, s in sorted(stats.items()):
            lines.append(
                f"  {name:<{width}s} {s['hits']:8d} {s['misses']:8d} "
                f"{s['evictions']:6d} {s['size']:5d}/{s['maxsize']}"
            )
    if len(lines) == 1:
        lines.append("(no samples)")
    return "\n".join(lines)


def _atexit_report() -> None:  # pragma: no cover - exercised via subprocess
    print(report())


if os.environ.get("REPRO_PERF", "") not in ("", "0"):
    atexit.register(_atexit_report)
