"""Cross-validation: simulated modem BER vs the analytic waterfalls.

The Fig 13/14 range sweeps rest on closed-form BER models
(`repro.channel.link.ber_*`).  This experiment validates them against
the actual software modems: for each protocol, packets are pushed
through AWGN at controlled Eb/N0 and the measured BER is compared with
the formula.  Differential penalties, imperfect channel estimation and
hard-decision losses mean the modems sit within a couple of dB of the
ideal curves -- close enough that the range cliffs they set are
trustworthy.
"""

from __future__ import annotations

import numpy as np

from repro.channel.link import (
    ber_802154,
    ber_coded_ofdm_bpsk,
    ber_dbpsk,
    ber_gfsk_noncoherent,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.phy import ble, bits as bitlib, wifi_b, wifi_n, zigbee
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table

__all__ = ["run", "format_result", "measure_ber"]

#: Per-protocol: (analytic model, bandwidth/bit-rate processing gain).
_MODELS = {
    Protocol.WIFI_B: (ber_dbpsk, 22e6 / 1e6),
    Protocol.WIFI_N: (ber_coded_ofdm_bpsk, 20e6 / 6.5e6),
    Protocol.BLE: (ber_gfsk_noncoherent, 2e6 / 1e6),
    Protocol.ZIGBEE: (ber_802154, 2e6 / 250e3),
}


def _modulate(protocol: Protocol, payload: bytes):
    if protocol is Protocol.WIFI_B:
        return wifi_b.modulate(payload)
    if protocol is Protocol.WIFI_N:
        return wifi_n.modulate(payload)
    if protocol is Protocol.BLE:
        return ble.modulate(payload)
    return zigbee.modulate(payload)


def _demodulate(protocol: Protocol, wave, n_bits: int) -> np.ndarray:
    if protocol is Protocol.WIFI_B:
        return wifi_b.demodulate(wave, n_payload_bits=n_bits).payload_bits
    if protocol is Protocol.WIFI_N:
        return wifi_n.demodulate(wave, n_psdu_bits=n_bits).psdu_bits
    if protocol is Protocol.BLE:
        return ble.demodulate(wave).payload_bits
    return zigbee.demodulate(wave).payload_bits


def _modulate_batch(protocol: Protocol, payloads: list[bytes]):
    if protocol is Protocol.WIFI_B:
        return wifi_b.modulate_batch(payloads)
    if protocol is Protocol.WIFI_N:
        return wifi_n.modulate_batch(payloads)
    if protocol is Protocol.BLE:
        return ble.modulate_batch(payloads)
    return zigbee.modulate_batch(payloads)


def _demodulate_batch(protocol: Protocol, waves: list, n_bits: int) -> list[np.ndarray]:
    if protocol is Protocol.WIFI_B:
        return [
            r.payload_bits
            for r in wifi_b.demodulate_batch(waves, n_payload_bits=n_bits)
        ]
    if protocol is Protocol.WIFI_N:
        return [r.psdu_bits for r in wifi_n.demodulate_batch(waves, n_psdu_bits=n_bits)]
    if protocol is Protocol.BLE:
        return [r.payload_bits for r in ble.demodulate_batch(waves)]
    return [r.payload_bits for r in zigbee.demodulate_batch(waves)]


def _occupied_bw_hz(protocol: Protocol) -> float:
    """Noise bandwidth at complex baseband equals the sample rate."""
    return {
        Protocol.WIFI_B: 22e6,
        Protocol.WIFI_N: 20e6,
        Protocol.BLE: 8e6,
        Protocol.ZIGBEE: 8e6,
    }[protocol]


def measure_ber(
    protocol: Protocol,
    ebn0_db: float,
    *,
    n_packets: int,
    payload_bytes: int,
    rng: np.random.Generator,
    batched: bool = False,
) -> float:
    """Simulated BER of the real modem at a target Eb/N0.

    The AWGN level is set from Eb/N0 via the protocol's bit rate and
    the simulation's noise bandwidth (= sample rate at complex
    baseband).

    ``batched`` routes every packet through the fused
    ``modulate_batch``/``demodulate_batch`` kernels.  The RNG draw
    order of the scalar loop (payload, then that packet's noise) is
    reproduced exactly -- the waveform length needed to size the noise
    draw is known ahead of time from a dummy modulation, which consumes
    no randomness -- so both paths return bit-identical BER.
    """
    bit_rate = {
        Protocol.WIFI_B: 1e6,
        Protocol.WIFI_N: 6.5e6,
        Protocol.BLE: 1e6,
        Protocol.ZIGBEE: 250e3,
    }[protocol]
    fs = _occupied_bw_hz(protocol)
    # SNR over the full simulation bandwidth for unit-power signal:
    # Eb/N0 = SNR * fs / bit_rate.
    snr_db = ebn0_db - 10.0 * np.log10(fs / bit_rate)
    errors = 0
    total = 0
    if batched:
        n_samples = _modulate(protocol, bytes(payload_bytes)).n_samples
        payloads: list[bytes] = []
        noises: list[np.ndarray] = []
        for _ in range(n_packets):
            payloads.append(
                rng.integers(0, 256, payload_bytes, dtype=np.uint8).tobytes()
            )
            noises.append(
                rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples)
            )
        waves = _modulate_batch(protocol, payloads)
        refs = [bitlib.bits_from_bytes(p) for p in payloads]
        for wave, noise in zip(waves, noises):
            sigma = (
                np.sqrt(wave.mean_power()) * 10.0 ** (-snr_db / 20.0) / np.sqrt(2.0)
            )
            wave.iq = wave.iq + sigma * noise
        for ref, got in zip(refs, _demodulate_batch(protocol, waves, refs[0].size)):
            n = min(got.size, ref.size)
            errors += int(np.count_nonzero(got[:n] != ref[:n])) + (ref.size - n)
            total += ref.size
        return errors / max(total, 1)
    for _ in range(n_packets):
        payload = rng.integers(0, 256, payload_bytes, dtype=np.uint8).tobytes()
        ref = bitlib.bits_from_bytes(payload)
        wave = _modulate(protocol, payload)
        # Scale noise to the waveform's actual power (OQPSK's half-sine
        # shaping averages 0.5, not 1.0).
        sigma = (
            np.sqrt(wave.mean_power()) * 10.0 ** (-snr_db / 20.0) / np.sqrt(2.0)
        )
        wave.iq = wave.iq + sigma * (
            rng.normal(size=wave.n_samples) + 1j * rng.normal(size=wave.n_samples)
        )
        got = _demodulate(protocol, wave, ref.size)
        n = min(got.size, ref.size)
        errors += int(np.count_nonzero(got[:n] != ref[:n])) + (ref.size - n)
        total += ref.size
    return errors / max(total, 1)


@implements("validation_ber")
def run(
    *,
    seed: int,
    ebn0_grid_db: tuple[float, ...] = (4.0, 8.0, 12.0),
    n_packets: int = 4,
    payload_bytes: int = 30,
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    rows = {}
    for protocol, (model, _) in _MODELS.items():
        for ebn0 in ebn0_grid_db:
            measured = measure_ber(
                protocol, ebn0, n_packets=n_packets,
                payload_bytes=payload_bytes, rng=rng,
            )
            analytic = model(10.0 ** (ebn0 / 10.0))
            rows[(protocol, ebn0)] = {"measured": measured, "analytic": analytic}
    return ExperimentResult(
        name="validation_ber",
        data={"rows": rows},
        notes=[
            "modems sit within a couple of dB of the ideal waterfalls",
            "validates the closed forms behind the Fig 13/14 range sweeps",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = [
        [p.value, f"{e:.0f}", f"{v['measured']:.4f}", f"{v['analytic']:.4f}"]
        for (p, e), v in result["rows"].items()
    ]
    return format_table(
        ["protocol", "Eb/N0 (dB)", "simulated BER", "analytic BER"], rows
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("validation_ber", "full").render())
