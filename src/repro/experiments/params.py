"""Typed parameter dataclasses for every registered experiment.

One frozen dataclass per experiment, holding everything a run depends
on -- trial counts, seeds, sweep grids, worker counts.  Field names
match the keyword arguments of the implementing module's ``run``
exactly: the registry dispatches ``run(**fields)``.

This module is deliberately **stdlib-only** (no NumPy, no repro
subpackages): the registry imports it to describe experiments, and
``python -m repro list`` must never pull in implementation code.
Array-valued sweeps are therefore declared as ``(start, stop, step)``
scalars and materialized inside the implementation; enum-valued
parameters (e.g. occlusion material) are declared by value string.

Every dataclass is frozen so preset instances in the registry are
shared safely; derive variants with :func:`dataclasses.replace` (or
``ExperimentSpec.params(preset, **overrides)``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Fig04Params",
    "Fig05Params",
    "Fig07Params",
    "Fig08Params",
    "Fig09Params",
    "Fig12Params",
    "Fig13Params",
    "Fig14Params",
    "Fig15Params",
    "Fig16Params",
    "Fig17Params",
    "Fig18Params",
    "ValidationBerParams",
    "Table2Params",
    "Table3Params",
    "Table4Params",
    "Table5Params",
]


@dataclass(frozen=True)
class Fig04Params:
    """Rectifier comparison: input-power sweep bounds (dBm)."""

    p_start_dbm: float = -35.0
    p_stop_dbm: float = 1.0
    p_step_db: float = 2.5


@dataclass(frozen=True)
class Fig05Params:
    """Envelope distinguishability and (L_p, L_t) accuracy at 20 Msps."""

    n_traces: int = 12
    grid: tuple[tuple[int, int], ...] = ((20, 60), (40, 120), (60, 100))
    seed: int = 5
    n_workers: int | None = None


@dataclass(frozen=True)
class Fig07Params:
    """Blind vs ordered matching at 10 Msps with +-1 quantization."""

    n_traces: int = 12
    n_train: int = 16
    sample_rate_hz: float = 10e6
    power_drop_db: float = 4.0
    seed: int = 7
    n_workers: int | None = None


@dataclass(frozen=True)
class Fig08Params:
    """Low-rate sampling with the extended matching window."""

    n_traces: int = 12
    n_train: int = 8
    seed: int = 8
    n_workers: int | None = None


@dataclass(frozen=True)
class Fig09Params:
    """Two-receiver baseline defects: occlusion BER and offsets."""

    n_packets: int = 400
    seed: int = 9


@dataclass(frozen=True)
class Fig12Params:
    """Mode 1/2/3 productive-vs-tag throughput tradeoffs."""

    n_locations: int = 100
    max_distance_m: float = 8.0
    seed: int = 12


@dataclass(frozen=True)
class Fig13Params:
    """LoS range sweep bounds (metres)."""

    d_start_m: float = 1.0
    d_stop_m: float = 32.0
    d_step_m: float = 1.0


@dataclass(frozen=True)
class Fig14Params:
    """NLoS range sweep bounds (metres)."""

    d_start_m: float = 1.0
    d_stop_m: float = 32.0
    d_step_m: float = 1.0


@dataclass(frozen=True)
class Fig15Params:
    """Occluded-original-channel throughput comparison.

    ``material`` is a :class:`repro.channel.occlusion.Material` value
    string (``"drywall"``, ``"wooden wall"``, ``"concrete wall"``,
    ``"none"``).
    """

    material: str = "drywall"
    distance_m: float = 2.0
    n_packets: int = 500
    seed: int = 15


@dataclass(frozen=True)
class Fig16Params:
    """Time/frequency excitation collisions."""

    n_trials: int = 16
    seed: int = 16


@dataclass(frozen=True)
class Fig17Params:
    """Tag BER across reference-symbol modulations."""

    snr_11b_db: float = 3.0
    snr_11n_db: float = 12.0
    n_packets: int = 6
    seed: int = 17


@dataclass(frozen=True)
class Fig18Params:
    """Excitation diversity: duty-cycled carriers + carrier pick."""

    duration_s: float = 4.0
    duty_period_s: float = 1.0
    seed: int = 18


@dataclass(frozen=True)
class ValidationBerParams:
    """Simulated modem BER vs the analytic waterfalls."""

    ebn0_grid_db: tuple[float, ...] = (4.0, 8.0, 12.0)
    n_packets: int = 4
    payload_bytes: int = 30
    seed: int = 77


@dataclass(frozen=True)
class Table2Params:
    """FPGA resource comparison for identification.

    ``template_size_samples`` replaced the unit-ambiguous
    ``template_size`` field; the registry still accepts the old name as
    a deprecated override key.
    """

    template_size_samples: int = 120


@dataclass(frozen=True)
class Table3Params:
    """COTS prototype power breakdown."""

    adc_rate_hz: float = 20e6


@dataclass(frozen=True)
class Table4Params:
    """Solar-harvesting exchange times (no free parameters)."""


@dataclass(frozen=True)
class Table5Params:
    """Identification power/LUT variants (no free parameters)."""
