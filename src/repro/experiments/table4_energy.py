"""Table 4: average tag-data exchange times under solar harvesting.

One 4.1 V -> 2.6 V discharge of the 0.01 F storage capacitor delivers
~50 mJ = 0.18 s of operation; recharging takes 216.2 s indoors
(500 lux) or 0.78 s outdoors (1.04e5 lux).  Exchange time = recharge
time amortized over the packets one charge supports.

Note: the paper's Table 4 lists 21.7 ms for outdoor ZigBee, but
0.78 s / 3.6 packets = 216.7 ms -- the paper's own arithmetic implies
a dropped digit; we report the arithmetic value (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.core.energy import EnergyBudget, exchange_times, INDOOR_LUX, OUTDOOR_LUX
from repro.experiments.common import ExperimentResult, PROTOCOL_ORDER
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result"]


@implements("table4_energy")
def run() -> ExperimentResult:
    budget = EnergyBudget()
    table = exchange_times(budget)
    return ExperimentResult(
        name="table4_energy",
        data={
            "table": table,
            "harvest_indoor_s": budget.harvest_time_s(INDOOR_LUX),
            "harvest_outdoor_s": budget.harvest_time_s(OUTDOOR_LUX),
            "runtime_s": budget.runtime_per_charge_s,
        },
        notes=[
            "paper Table 4: indoor 0.60 s (WiFi) / 17.2 s (BLE) / 60.1 s (ZigBee)",
            "paper outdoor ZigBee 21.7 ms is inconsistent with its own arithmetic (216.7 ms)",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for protocol in PROTOCOL_ORDER:
        vals = result["table"][protocol]
        rows.append(
            [
                protocol.value,
                f"{vals['exchange_packets']:.1f}",
                f"{vals['indoor_s']:.2f} s",
                f"{vals['outdoor_s'] * 1e3:.1f} ms",
            ]
        )
    table = format_table(
        ["protocol", "exchange packets", "indoor avg", "outdoor avg"], rows
    )
    return table + (
        f"\nharvest time: indoor {result['harvest_indoor_s']:.1f} s, "
        f"outdoor {result['harvest_outdoor_s']:.2f} s; "
        f"runtime/charge {result['runtime_s']:.2f} s"
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("table4_energy", "full").render())
