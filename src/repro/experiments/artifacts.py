"""Versioned, serializable experiment artifacts.

:class:`ExperimentResult` is the one value every experiment returns.
This module promotes it from an in-memory bundle to a durable artifact:
``to_json``/``from_json`` round-trip the full ``data`` payload --
NumPy arrays (dtype- and shape-preserving), ``Protocol``/``Mode``/
``Material`` enum values *and dict keys*, tuple keys, registered
result dataclasses (``AccuracyReport``, ``CarrierEstimate``), and
non-finite floats -- so a saved run is diffable data, and
``python -m repro show artifact.json`` re-renders exactly what the
live run printed.

Serialization is deterministic: the same run (same seed) produces
byte-identical JSON, which the registry contract tests pin.

Encoding uses explicit tags (``{"__kind__": ...}``) instead of pickle:
artifacts stay human-readable, diffable, and safe to load.  New enum
or dataclass types appearing in experiment data must be registered via
:func:`register_enum` / :func:`register_dataclass`; unknown types fail
encoding loudly rather than degrade silently.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.atomicio import atomic_write_text

__all__ = [
    "ARTIFACT_TAG",
    "SCHEMA_VERSION",
    "ArtifactError",
    "ExperimentResult",
    "decode",
    "encode",
    "register_dataclass",
    "register_enum",
]

#: Identifies the artifact format; bumped together with SCHEMA_VERSION.
ARTIFACT_TAG = "repro.experiment-result"

#: Version of the on-disk schema this build writes and reads.
SCHEMA_VERSION = 1

_KIND = "__kind__"

#: enum type name -> (module, attribute).  Imported lazily on use.
_ENUM_TYPES: dict[str, tuple[str, str]] = {
    "Protocol": ("repro.phy.protocols", "Protocol"),
    "Mode": ("repro.core.overlay", "Mode"),
    "Material": ("repro.channel.occlusion", "Material"),
}

#: dataclass type name -> (module, attribute).  Imported lazily on use.
_DATACLASS_TYPES: dict[str, tuple[str, str]] = {
    "AccuracyReport": ("repro.core.identification", "AccuracyReport"),
    "CarrierEstimate": ("repro.core.carrier_select", "CarrierEstimate"),
}


class ArtifactError(ValueError):
    """Raised for malformed or unsupported artifact content."""


def register_enum(cls: type, *, name: str | None = None) -> None:
    """Allow ``cls`` (an ``enum.Enum`` subclass) in artifact data."""
    _ENUM_TYPES[name or cls.__name__] = (cls.__module__, cls.__qualname__)


def register_dataclass(cls: type, *, name: str | None = None) -> None:
    """Allow ``cls`` (a dataclass) in artifact data."""
    if not dataclasses.is_dataclass(cls):
        raise ArtifactError(f"{cls!r} is not a dataclass")
    _DATACLASS_TYPES[name or cls.__name__] = (cls.__module__, cls.__qualname__)


def _load_type(table: dict[str, tuple[str, str]], type_name: str) -> type:
    try:
        module_name, attr = table[type_name]
    except KeyError:
        raise ArtifactError(
            f"unregistered artifact type {type_name!r}; register it with "
            f"repro.experiments.artifacts.register_enum/register_dataclass"
        ) from None
    obj: Any = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj  # type: ignore[no-any-return]


def _registered_name_for(value: Any, table: dict[str, tuple[str, str]]) -> str | None:
    """Registered name whose class is exactly ``type(value)``, if any."""
    cls = type(value)
    for type_name, (module_name, attr) in table.items():
        if cls.__name__ == attr.rsplit(".", 1)[-1] and cls.__module__ == module_name:
            return type_name
    return None


def _encode_float(value: float) -> Any:
    if math.isfinite(value):
        return value
    text = "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")
    return {_KIND: "float", "value": text}


def _finitize(value: Any) -> Any:
    """Replace non-finite floats in ``ndarray.tolist()`` output with
    strings (``"nan"``/``"inf"``/``"-inf"``), which NumPy parses back
    transparently when rebuilding the typed array."""
    if isinstance(value, list):
        return [_finitize(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")
    return value


def _encode_ndarray(arr: np.ndarray) -> dict[str, Any]:
    if arr.dtype == object:
        raise ArtifactError("object-dtype arrays are not serializable")
    doc: dict[str, Any] = {
        _KIND: "ndarray",
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
    }
    if np.issubdtype(arr.dtype, np.complexfloating):
        doc["real"] = _finitize(arr.real.tolist())
        doc["imag"] = _finitize(arr.imag.tolist())
    else:
        doc["data"] = _finitize(arr.tolist())
    return doc


def _decode_ndarray(doc: dict[str, Any]) -> np.ndarray:
    dtype = np.dtype(doc["dtype"])
    shape = tuple(doc["shape"])
    if np.issubdtype(dtype, np.complexfloating):
        real = np.array(doc["real"], dtype=np.float64).reshape(shape)
        imag = np.array(doc["imag"], dtype=np.float64).reshape(shape)
        return (real + 1j * imag).astype(dtype)
    return np.array(doc["data"], dtype=dtype).reshape(shape)


def encode(value: Any) -> Any:
    """Encode ``value`` into JSON-compatible, tagged plain data."""
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, complex):
        return {
            _KIND: "complex",
            "real": _encode_float(value.real),
            "imag": _encode_float(value.imag),
        }
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return _encode_float(float(value))
    if isinstance(value, np.complexfloating):
        return encode(complex(value))
    if isinstance(value, np.ndarray):
        return _encode_ndarray(value)
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode(v) for v in value]}
    if isinstance(value, list):
        return [encode(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _KIND not in value:
            return {k: encode(v) for k, v in value.items()}
        return {
            _KIND: "mapping",
            "items": [[encode(k), encode(v)] for k, v in value.items()],
        }
    if isinstance(value, enum.Enum):
        enum_name = _registered_name_for(value, _ENUM_TYPES)
        if enum_name is None:
            raise ArtifactError(
                f"unregistered enum type {type(value).__name__!r}; register "
                f"it with repro.experiments.artifacts.register_enum"
            )
        return {_KIND: "enum", "type": enum_name, "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        dc_name = _registered_name_for(value, _DATACLASS_TYPES)
        if dc_name is None:
            raise ArtifactError(
                f"unregistered dataclass type {type(value).__name__!r}; "
                f"register it with repro.experiments.artifacts.register_dataclass"
            )
        return {
            _KIND: "dataclass",
            "type": dc_name,
            "fields": {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    raise ArtifactError(
        f"cannot serialize {type(value).__name__!r} in an experiment "
        f"artifact; register the type or store plain data"
    )


def decode(value: Any) -> Any:
    """Inverse of :func:`encode`."""
    if isinstance(value, list):
        return [decode(v) for v in value]
    if not isinstance(value, dict):
        return value
    kind = value.get(_KIND)
    if kind is None:
        return {k: decode(v) for k, v in value.items()}
    if kind == "float":
        return float(value["value"])
    if kind == "complex":
        return complex(decode(value["real"]), decode(value["imag"]))
    if kind == "ndarray":
        return _decode_ndarray(value)
    if kind == "tuple":
        return tuple(decode(v) for v in value["items"])
    if kind == "mapping":
        return {decode(k): decode(v) for k, v in value["items"]}
    if kind == "enum":
        cls = _load_type(_ENUM_TYPES, value["type"])
        return cls[value["name"]]
    if kind == "dataclass":
        cls = _load_type(_DATACLASS_TYPES, value["type"])
        return cls(**{k: decode(v) for k, v in value["fields"].items()})
    raise ArtifactError(f"unknown artifact tag {kind!r}")


@dataclass
class ExperimentResult:
    """A named bundle of series/values -- and a durable artifact.

    ``preset``/``params`` are provenance stamped by the registry when
    the experiment runs through a spec; both survive serialization.
    """

    name: str
    data: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    preset: str | None = None
    params: dict[str, Any] | None = None

    def __getitem__(self, key: str) -> Any:
        try:
            return self.data[key]
        except KeyError:
            available = ", ".join(repr(k) for k in self.data) or "<none>"
            raise KeyError(
                f"experiment {self.name!r} has no data key {key!r}; "
                f"available keys: {available}"
            ) from None

    def keys(self) -> tuple[str, ...]:
        return tuple(self.data)

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        """Paper-style table, driven from the artifact alone."""
        from repro.experiments.registry import get_spec

        return get_spec(self.name).format(self)

    # -- serialization -------------------------------------------------
    def to_json(self, *, indent: int | None = 2) -> str:
        """Deterministic JSON: same run, same bytes."""
        doc = {
            "artifact": ARTIFACT_TAG,
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "preset": self.preset,
            "params": encode(self.params),
            "notes": list(self.notes),
            "data": encode(self.data),
        }
        # No sort_keys: insertion order is deterministic for a seeded
        # run and render() depends on it (tables print in data order).
        return json.dumps(doc, indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("artifact") != ARTIFACT_TAG:
            raise ArtifactError(
                f"not a {ARTIFACT_TAG} artifact (missing/else 'artifact' tag)"
            )
        version = doc.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ArtifactError(
                f"artifact schema_version {version!r} is not supported by "
                f"this build (expected {SCHEMA_VERSION})"
            )
        return cls(
            name=doc["name"],
            data=decode(doc["data"]),
            notes=list(doc.get("notes", [])),
            preset=doc.get("preset"),
            params=decode(doc.get("params")),
        )

    def save(self, path: str | Path) -> Path:
        """Write the artifact to ``path`` atomically (parents created).

        Goes through :func:`repro.core.atomicio.atomic_write_text`
        (tempfile in the destination directory + ``os.replace``), so a
        crash mid-save -- even ``SIGKILL`` -- can never leave a
        truncated artifact at ``path``; set ``REPRO_FSYNC=1`` to also
        fsync for full crash-consistency.
        """
        return atomic_write_text(path, self.to_json() + "\n")

    def save_in(self, out_dir: str | Path) -> Path:
        """Write to ``out_dir/<name>.json`` (the run-directory layout)."""
        return self.save(Path(out_dir) / f"{self.name}.json")

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        """Load from disk; malformed content names the offending path.

        A truncated or otherwise invalid file raises
        :class:`ArtifactError` carrying ``path`` (never a bare
        ``JSONDecodeError``), so a batch loader can report which
        artifact is damaged.  ``FileNotFoundError`` passes through.
        """
        source = Path(path)
        try:
            return cls.from_json(source.read_text())
        except ArtifactError as exc:
            raise ArtifactError(f"artifact {source}: {exc}") from exc
