"""Fig 16: diverse excitations colliding in time and in frequency.

Time-domain collision (Fig 16a/b): 802.11n at 2.417 GHz, 2000 pkt/s,
300 B, plus BLE advertising at 2.432 GHz, 34 pkt/s.  The tag has no
channel filters, so an 11n packet overlapping a BLE packet swamps the
BLE envelope: the tag cannot identify (and hence cannot backscatter)
that BLE packet.  Survival under overlap is *measured* at the signal
level by superimposing packets at their incident powers and running
the real identification pipeline; the throughput model then combines
survival with the Poisson overlap probability.  Paper: 11n barely
changes, BLE drops from 278 to 92 kbps.

Frequency-domain collision (Fig 16c/d): ZigBee at 2.415 GHz (inside
the 11n channel) but not overlapping in time.  Identification is
time-domain template matching, so adjacent-channel energy in
non-overlapping packets is harmless: both throughputs hold (the
signal-level check identifies ZigBee with the 11n packet landing
after it).  The overlapped-in-time variant is also measured, showing
why the paper leaves FDMA-like simultaneous excitations as future
work.
"""

from __future__ import annotations

import numpy as np

from repro.core.identification import IdentificationConfig, ProtocolIdentifier
from repro.core.overlay import Mode
from repro.experiments.registry import implements
from repro.core.throughput import OverlayThroughputModel
from repro.experiments.common import ExperimentResult
from repro.phy.protocols import Protocol
from repro.sim.scene import superimpose
from repro.sim.metrics import format_table
from repro.sim.traffic import packet_airtime_s, random_packet

__all__ = ["run", "format_result", "survival_rate"]

#: Incident powers at the tag (see identification.DEFAULT_INCIDENT_DBM).
_WIFI_DBM = -21.2
_WEAK_DBM = -31.2


def survival_rate(
    identifier: ProtocolIdentifier,
    victim: Protocol,
    victim_dbm: float,
    interferer: Protocol | None,
    interferer_dbm: float,
    *,
    freq_offset_hz: float,
    time_offset_s: float,
    n_trials: int,
    rng: np.random.Generator,
    interferer_bytes: int = 300,
) -> float:
    """Fraction of victim packets the tag still identifies correctly."""
    hits = 0
    for k in range(n_trials):
        v = random_packet(victim, rng, n_payload_bytes=20)
        if interferer is None:
            i = random_packet(victim, rng, n_payload_bytes=20)
            i_dbm = -120.0  # vanishing interferer: clean baseline
            off = 0.0
        else:
            i = random_packet(interferer, rng, n_payload_bytes=interferer_bytes)
            i_dbm = interferer_dbm
            off = time_offset_s
        scene = superimpose(
            v, victim_dbm, i, i_dbm,
            freq_offset_hz=freq_offset_hz,
            time_offset_s=off,
            duration_s=90e-6,
        )
        result = identifier.identify(
            scene, rng=np.random.default_rng(7000 + k), prescaled=True
        )
        hits += result.decision is victim
    return hits / n_trials


@implements("fig16_collisions")
def run(*, seed: int, n_trials: int = 16) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    ident = ProtocolIdentifier(
        IdentificationConfig(
            sample_rate_hz=2.5e6, quantized=True, window_us=38.0, ordered=True
        )
    )

    def rel_survival(victim, victim_dbm, interferer, interferer_dbm, freq_off, ibytes=300):
        clean = survival_rate(
            ident, victim, victim_dbm, None, 0.0,
            freq_offset_hz=freq_off, time_offset_s=0.0,
            n_trials=n_trials, rng=rng,
        )
        hit = survival_rate(
            ident, victim, victim_dbm, interferer, interferer_dbm,
            freq_offset_hz=freq_off, time_offset_s=-50e-6,
            n_trials=n_trials, rng=rng, interferer_bytes=ibytes,
        )
        return (hit / clean if clean > 0 else 0.0), clean, hit

    surv_ble, _, _ = rel_survival(Protocol.BLE, _WEAK_DBM, Protocol.WIFI_N, _WIFI_DBM, -15e6)
    surv_11n, _, _ = rel_survival(
        Protocol.WIFI_N, _WIFI_DBM, Protocol.BLE, _WEAK_DBM, 15e6, ibytes=37
    )
    surv_zigbee_overlap, _, _ = rel_survival(
        Protocol.ZIGBEE, _WEAK_DBM, Protocol.WIFI_N, _WIFI_DBM, 2e6
    )

    # --- Fig 16a/b: time collision -----------------------------------
    wifi_rate = 2000.0
    ble_rate = 34.0
    t_wifi = packet_airtime_s(Protocol.WIFI_N, 300)
    t_ble = packet_airtime_s(Protocol.BLE, 37)
    p_ble_clear = float(np.exp(-wifi_rate * (t_ble + t_wifi)))
    p_11n_clear = float(np.exp(-ble_rate * (t_wifi + t_ble)))

    max_ble = OverlayThroughputModel(Protocol.BLE, mode=Mode.MODE_1).evaluate(2.0)
    max_11n = OverlayThroughputModel(Protocol.WIFI_N, mode=Mode.MODE_1).evaluate(2.0)
    ble_eff = max_ble.aggregate_kbps * (p_ble_clear + (1 - p_ble_clear) * min(surv_ble, 1.0))
    n11_eff = max_11n.aggregate_kbps * (p_11n_clear + (1 - p_11n_clear) * min(surv_11n, 1.0))

    # --- Fig 16c/d: frequency collision, no time overlap --------------
    max_z = OverlayThroughputModel(Protocol.ZIGBEE, mode=Mode.MODE_1).evaluate(2.0)
    surv_z_tdma = survival_rate(
        ident, Protocol.ZIGBEE, _WEAK_DBM, Protocol.WIFI_N, _WIFI_DBM,
        freq_offset_hz=2e6, time_offset_s=400e-6,  # lands after the window
        n_trials=n_trials, rng=rng,
    )
    clean_z = survival_rate(
        ident, Protocol.ZIGBEE, _WEAK_DBM, None, 0.0,
        freq_offset_hz=2e6, time_offset_s=0.0, n_trials=n_trials, rng=rng,
    )
    z_rel_tdma = surv_z_tdma / clean_z if clean_z > 0 else 0.0

    return ExperimentResult(
        name="fig16_collisions",
        data={
            "time_collision": {
                "ble_clean_kbps": max_ble.aggregate_kbps,
                "ble_collided_kbps": ble_eff,
                "wifi_n_clean_kbps": max_11n.aggregate_kbps,
                "wifi_n_collided_kbps": n11_eff,
                "ble_overlap_survival": surv_ble,
                "p_ble_clear": p_ble_clear,
            },
            "freq_collision": {
                "zigbee_clean_kbps": max_z.aggregate_kbps,
                "zigbee_collided_kbps": max_z.aggregate_kbps * min(z_rel_tdma, 1.0),
                "wifi_n_clean_kbps": max_11n.aggregate_kbps,
                "wifi_n_collided_kbps": max_11n.aggregate_kbps,
                "zigbee_overlapped_survival": surv_zigbee_overlap,
            },
        },
        notes=[
            "paper Fig 16b: BLE 278 -> 92 kbps under time collision; 11n ~unchanged",
            "paper Fig 16d: both ~unchanged under frequency collision (TDMA-like)",
            "overlapped-in-time ZigBee survival shows why simultaneous FDMA needs tag filters (future work)",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    tc = result["time_collision"]
    fc = result["freq_collision"]
    rows = [
        ["time", "BLE", f"{tc['ble_clean_kbps']:.0f}", f"{tc['ble_collided_kbps']:.0f}"],
        ["time", "802.11n", f"{tc['wifi_n_clean_kbps']:.0f}", f"{tc['wifi_n_collided_kbps']:.0f}"],
        ["freq", "ZigBee", f"{fc['zigbee_clean_kbps']:.0f}", f"{fc['zigbee_collided_kbps']:.0f}"],
        ["freq", "802.11n", f"{fc['wifi_n_clean_kbps']:.0f}", f"{fc['wifi_n_collided_kbps']:.0f}"],
    ]
    return format_table(
        ["collision", "protocol", "clean (kbps)", "collided (kbps)"], rows
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig16_collisions", "full").render())
