"""Versioned run manifests: the resume ledger for ``run-all``.

A long ``run-all`` campaign that dies at experiment 14 of 17 should
cost 3 experiments to finish, not 17.  The manifest makes run
directories self-describing: ``run-all --out DIR`` writes
``DIR/manifest.json`` up front and updates it (atomically, via
:mod:`repro.core.atomicio`) as each experiment completes, so at any
kill point the directory records exactly which artifacts are complete,
with which preset and seed, and what each one's bytes hash to.
``run-all --resume DIR`` then re-runs only the experiments that are
missing, failed, or whose artifact on disk no longer matches its
recorded hash -- and because every experiment is deterministic given
(preset, seed), the completed directory is byte-identical to one from
an uninterrupted run.

Schema (``schema_version`` 1)::

    {
      "manifest": "repro.run-manifest",
      "schema_version": 1,
      "preset": "quick",
      "seed": null,
      "experiments": {
        "fig04_rectifier": {"status": "done",
                             "artifact": "fig04_rectifier.json",
                             "sha256": "..."},
        "fig05_envelope_id": {"status": "failed", "error": "..."},
        "fig07_ordered":     {"status": "pending"}
      }
    }

Experiment order is registry (paper) order and statuses are the only
mutable state, so a resumed-to-completion manifest is byte-identical
to a fresh one -- the CI crash/resume guard diffs the whole directory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.core.atomicio import atomic_write_text

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_TAG",
    "MANIFEST_SCHEMA_VERSION",
    "ManifestEntry",
    "ManifestError",
    "RunManifest",
]

#: Identifies the manifest format; bumped with MANIFEST_SCHEMA_VERSION.
MANIFEST_TAG = "repro.run-manifest"

#: Version of the on-disk manifest schema this build writes and reads.
MANIFEST_SCHEMA_VERSION = 1

#: File name inside the run directory.
MANIFEST_FILENAME = "manifest.json"

_STATUSES = ("pending", "done", "failed")


class ManifestError(ValueError):
    """Raised for missing, malformed, or inconsistent manifests."""


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for block in iter(lambda: fh.read(65536), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass
class ManifestEntry:
    """Per-experiment ledger line."""

    status: str = "pending"
    artifact: str | None = None
    sha256: str | None = None
    error: str | None = None

    def to_doc(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"status": self.status}
        if self.artifact is not None:
            doc["artifact"] = self.artifact
        if self.sha256 is not None:
            doc["sha256"] = self.sha256
        if self.error is not None:
            doc["error"] = self.error
        return doc

    @classmethod
    def from_doc(cls, name: str, doc: Any) -> "ManifestEntry":
        if not isinstance(doc, dict):
            raise ManifestError(f"manifest entry for {name!r} is not an object")
        status = doc.get("status")
        if status not in _STATUSES:
            raise ManifestError(
                f"manifest entry for {name!r} has status {status!r}; "
                f"expected one of {_STATUSES}"
            )
        return cls(
            status=status,
            artifact=doc.get("artifact"),
            sha256=doc.get("sha256"),
            error=doc.get("error"),
        )


@dataclass
class RunManifest:
    """The ``manifest.json`` of one run directory."""

    out_dir: Path
    preset: str
    seed: int | None
    entries: dict[str, ManifestEntry] = field(default_factory=dict)

    @property
    def path(self) -> Path:
        return self.out_dir / MANIFEST_FILENAME

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        out_dir: str | Path,
        *,
        preset: str,
        seed: int | None,
        names: Iterable[str],
    ) -> "RunManifest":
        """Start a fresh ledger (all experiments pending) and write it."""
        manifest = cls(
            out_dir=Path(out_dir),
            preset=preset,
            seed=seed,
            entries={name: ManifestEntry() for name in names},
        )
        manifest.save()
        return manifest

    @classmethod
    def load(cls, out_dir: str | Path) -> "RunManifest":
        """Read the ledger of ``out_dir``; :class:`ManifestError` if unusable."""
        path = Path(out_dir) / MANIFEST_FILENAME
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise ManifestError(
                f"no manifest at {path}; only directories written by "
                f"'run-all --out' can be resumed"
            ) from None
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("manifest") != MANIFEST_TAG:
            raise ManifestError(f"{path} is not a {MANIFEST_TAG} manifest")
        version = doc.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ManifestError(
                f"manifest schema_version {version!r} is not supported by "
                f"this build (expected {MANIFEST_SCHEMA_VERSION})"
            )
        preset = doc.get("preset")
        if not isinstance(preset, str):
            raise ManifestError(f"manifest {path} has no preset stamp")
        seed = doc.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ManifestError(f"manifest {path} has a non-integer seed {seed!r}")
        experiments = doc.get("experiments")
        if not isinstance(experiments, dict):
            raise ManifestError(f"manifest {path} has no experiments table")
        entries = {
            name: ManifestEntry.from_doc(name, entry)
            for name, entry in experiments.items()
        }
        return cls(out_dir=Path(out_dir), preset=preset, seed=seed, entries=entries)

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        doc = {
            "manifest": MANIFEST_TAG,
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "preset": self.preset,
            "seed": self.seed,
            "experiments": {
                name: entry.to_doc() for name, entry in self.entries.items()
            },
        }
        return json.dumps(doc, indent=2) + "\n"

    def save(self) -> Path:
        """Atomically rewrite the manifest (crash-safe at every update)."""
        return atomic_write_text(self.path, self.to_json())

    # -- updates --------------------------------------------------------
    def _entry(self, name: str) -> ManifestEntry:
        try:
            return self.entries[name]
        except KeyError:
            raise ManifestError(
                f"experiment {name!r} is not in the manifest for {self.out_dir}"
            ) from None

    def mark_done(self, name: str, artifact_path: str | Path) -> None:
        """Record a completed experiment and the hash of its artifact."""
        entry = self._entry(name)
        artifact = Path(artifact_path)
        entry.status = "done"
        entry.artifact = artifact.name
        entry.sha256 = _sha256_file(artifact)
        entry.error = None
        self.save()

    def mark_failed(self, name: str, error: str) -> None:
        entry = self._entry(name)
        entry.status = "failed"
        entry.artifact = None
        entry.sha256 = None
        entry.error = error
        self.save()

    # -- queries --------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        return tuple(self.entries)

    def artifact_ok(self, name: str) -> bool:
        """Is ``name`` done with an on-disk artifact matching its hash?"""
        entry = self._entry(name)
        if entry.status != "done" or not entry.artifact or not entry.sha256:
            return False
        path = self.out_dir / entry.artifact
        if not path.is_file():
            return False
        return _sha256_file(path) == entry.sha256

    def pending(self) -> tuple[str, ...]:
        """Experiments still owed: not done, or artifact missing/corrupt."""
        return tuple(name for name in self.entries if not self.artifact_ok(name))

    def completed(self) -> tuple[str, ...]:
        return tuple(name for name in self.entries if self.artifact_ok(name))
