"""Fig 18: leveraging excitation diversity.

(a) Two duty-cycled carriers (802.11b and 802.11n, 50 % each,
    anti-phased): a multiscatter tag transmits continuously, a
    single-protocol 802.11b tag idles half the time.
(b) Intelligent carrier pick: with abundant 802.11n and spotty
    802.11b excitations, the multiscatter tag selects 802.11n and
    meets a 6.3 kbps on-body goodput goal; the 802.11b-only tag fails.
"""

from __future__ import annotations

import numpy as np

from repro.core.carrier_select import CarrierSelector, diversity_timeline
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table
from repro.sim.traffic import ExcitationSchedule, ExcitationSource

__all__ = ["run", "format_result", "GOODPUT_GOAL_KBPS"]

#: The smart-bracelet goodput requirement of §4.2.2.
GOODPUT_GOAL_KBPS = 6.3


@implements("fig18_diversity")
def run(
    *,
    seed: int,
    duration_s: float = 4.0,
    duty_period_s: float = 1.0,
) -> ExperimentResult:
    rng = np.random.default_rng(seed)

    # ---- (a) duty-cycled carriers ------------------------------------
    sources = [
        ExcitationSource(
            Protocol.WIFI_B, rate_pkts=300, duty_cycle=0.5,
            period_s=duty_period_s, phase_s=0.0,
        ),
        ExcitationSource(
            Protocol.WIFI_N, rate_pkts=300, duty_cycle=0.5,
            period_s=duty_period_s, phase_s=duty_period_s / 2,
        ),
    ]
    schedule = ExcitationSchedule.generate(sources, duration_s, rng)
    multi = diversity_timeline(schedule, tag_protocols=tuple(Protocol))
    single = diversity_timeline(schedule, tag_protocols=(Protocol.WIFI_B,))

    # ---- (b) intelligent carrier pick --------------------------------
    observed_rates = {Protocol.WIFI_N: 2000.0, Protocol.WIFI_B: 3.0}
    selector = CarrierSelector()
    best, estimates = selector.pick(observed_rates, goal_kbps=GOODPUT_GOAL_KBPS)
    single_b = selector.estimate(Protocol.WIFI_B, observed_rates[Protocol.WIFI_B])

    return ExperimentResult(
        name="fig18_diversity",
        data={
            "timeline_multi": multi,
            "timeline_single": single,
            "multi_active_fraction": float(np.mean(multi["tag_kbps"] > 0)),
            "single_active_fraction": float(np.mean(single["tag_kbps"] > 0)),
            "multi_mean_kbps": float(np.mean(multi["tag_kbps"])),
            "single_mean_kbps": float(np.mean(single["tag_kbps"])),
            "picked": best,
            "estimates": estimates,
            "single_protocol_goodput_kbps": single_b.tag_goodput_kbps,
            "goal_kbps": GOODPUT_GOAL_KBPS,
        },
        notes=[
            "paper Fig 18a: multiscatter busy 100% of time, single-protocol idle 50%",
            "paper Fig 18b: multiscatter picks 802.11n and meets 6.3 kbps; 11b tag fails",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = [
        [
            "multiscatter",
            f"{result['multi_active_fraction'] * 100:.0f}%",
            f"{result['multi_mean_kbps']:.1f}",
        ],
        [
            "802.11b-only",
            f"{result['single_active_fraction'] * 100:.0f}%",
            f"{result['single_mean_kbps']:.1f}",
        ],
    ]
    part_a = format_table(["tag", "active time", "mean tag kbps"], rows)
    picked = result["picked"]
    part_b = (
        f"\nintelligent pick: chose {picked.value if picked else 'none'} "
        f"(goal {result['goal_kbps']} kbps); "
        f"802.11b-only goodput: {result['single_protocol_goodput_kbps']:.1f} kbps"
    )
    return part_a + part_b


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig18_diversity", "full").render())
