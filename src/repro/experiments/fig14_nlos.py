"""Fig 14: NLoS backscatter RSSI / BER / throughput across distances.

The transmitter and tag sit in the office, the receiver in the
hallway: the tag-to-receiver path crosses the office wall.  Paper
headline: NLoS max ranges 22 m (WiFi), 18 m (ZigBee), 16 m (BLE);
ZigBee RSSI falls below -80 dBm past ~4 m.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, PROTOCOL_ORDER
from repro.experiments.fig13_los import sweep
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result", "OFFICE_WALL_LOSS_DB"]

#: One-way office-wall loss calibrated so NLoS ranges track Fig 14
#: (light partition wall with door openings).
OFFICE_WALL_LOSS_DB = 1.8


@implements("fig14_nlos")
def run(
    *, d_start_m: float = 1.0, d_stop_m: float = 32.0, d_step_m: float = 1.0
) -> ExperimentResult:
    distances = np.arange(d_start_m, d_stop_m, d_step_m)
    return ExperimentResult(
        name="fig14_nlos",
        data=sweep(extra_loss_db=OFFICE_WALL_LOSS_DB, distances=distances),
        notes=[
            "paper: NLoS max ranges 22 m WiFi / 18 m ZigBee / 16 m BLE",
            "paper: ZigBee RSSI < -80 dBm beyond ~4 m NLoS",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    per = result["per_protocol"]
    d = result["distances_m"]
    i6 = int(np.argmin(np.abs(d - 6.0)))
    rows = []
    for protocol in PROTOCOL_ORDER:
        data = per[protocol]
        rows.append(
            [
                protocol.value,
                f"{data['max_range_m']:.1f}",
                f"{data['rssi_dbm'][i6]:.1f}",
                f"{data['aggregate_kbps'][0]:.1f}",
            ]
        )
    return format_table(
        ["protocol", "max range (m)", "RSSI@6m (dBm)", "peak agg (kbps)"], rows
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig14_nlos", "full").render())
