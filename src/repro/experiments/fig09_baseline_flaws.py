"""Fig 9: the two defects of two-receiver baselines.

(a) Tag-data BER of Hitchhike/FreeRider as the *original* channel is
    occluded (none / wooden wall / concrete wall).  Paper: 0.2 % with
    no obstruction rising to 59 % behind concrete.
(b) Hitchhike's modulation offsets across ranges: up to 8 symbols.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import FreeRider, Hitchhike
from repro.channel.occlusion import Material
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result"]

MATERIALS = (Material.NONE, Material.WOOD, Material.CONCRETE)


@implements("fig09_baseline_flaws")
def run(*, seed: int, n_packets: int = 400) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    hh = Hitchhike()
    fr = FreeRider()
    bers = {
        "hitchhike": {m: hh.tag_ber(m, rng, n_packets=n_packets) for m in MATERIALS},
        "freerider": {m: fr.tag_ber(m, rng, n_packets=n_packets) for m in MATERIALS},
    }
    distances = np.array([2.0, 4.0, 6.0, 8.0, 10.0])
    offsets = {
        float(d): [hh.sample_offset(float(d), rng) for _ in range(400)]
        for d in distances
    }
    return ExperimentResult(
        name="fig09_baseline_flaws",
        data={"bers": bers, "offsets": offsets, "distances": distances},
        notes=[
            "paper Fig 9a: BER 0.2% (clear) -> 59% (concrete) for 802.11b carriers",
            "paper Fig 9b: Hitchhike offsets as far as 8 symbols",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for system, by_material in result["bers"].items():
        rows.append(
            [system] + [f"{by_material[m] * 100:.1f}%" for m in MATERIALS]
        )
    part_a = format_table(
        ["system"] + [m.value for m in MATERIALS], rows
    )
    rows_b = []
    for d, offs in result["offsets"].items():
        arr = np.array(offs)
        rows_b.append([f"{d:.0f}", f"{arr.mean():.2f}", f"{arr.max()}"])
    part_b = format_table(["range (m)", "mean offset", "max offset"], rows_b)
    return part_a + "\n\n" + part_b


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig09_baseline_flaws", "full").render())
