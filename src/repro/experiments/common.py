"""Shared helpers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.sim.traffic import random_packet

__all__ = ["ExperimentResult", "labeled_traces", "PROTOCOL_ORDER"]

#: Presentation order used across result tables.
PROTOCOL_ORDER = (Protocol.WIFI_N, Protocol.WIFI_B, Protocol.BLE, Protocol.ZIGBEE)


@dataclass
class ExperimentResult:
    """A named bundle of series/values plus the rendered table."""

    name: str
    data: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


def labeled_traces(
    n_per_protocol: int,
    *,
    seed: int = 1234,
    n_payload_bytes: int = 40,
) -> list[tuple[Protocol, Waveform]]:
    """Identification trace set: random payloads for all four protocols."""
    rng = np.random.default_rng(seed)
    traces: list[tuple[Protocol, Waveform]] = []
    for protocol in Protocol:
        for _ in range(n_per_protocol):
            traces.append(
                (protocol, random_packet(protocol, rng, n_payload_bytes=n_payload_bytes))
            )
    return traces
