"""Shared helpers for the experiment harness."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.experiments.artifacts import ExperimentResult
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.sim.runner import resolve_workers
from repro.sim.traffic import random_packet

__all__ = ["ExperimentResult", "labeled_traces", "PROTOCOL_ORDER"]

#: Presentation order used across result tables.
PROTOCOL_ORDER = (Protocol.WIFI_N, Protocol.WIFI_B, Protocol.BLE, Protocol.ZIGBEE)


def _build_trace(
    protocol: Protocol,
    seed_seq: np.random.SeedSequence,
    n_payload_bytes: int,
) -> Waveform:
    """One trace from its own stream (also the worker entry point)."""
    rng = np.random.default_rng(seed_seq)
    return random_packet(protocol, rng, n_payload_bytes=n_payload_bytes)


def labeled_traces(
    n_per_protocol: int,
    *,
    seed: int = 1234,
    n_payload_bytes: int = 40,
    n_workers: int | None = None,
) -> list[tuple[Protocol, Waveform]]:
    """Identification trace set: random payloads for all four protocols.

    Every trace draws from its own stream spawned off one root
    ``SeedSequence``, so the set is reproducible from ``seed`` and can
    be modulated in parallel (``n_workers`` follows the shared
    ``REPRO_WORKERS`` knob, see :func:`repro.sim.runner.resolve_workers`)
    with bit-identical output for any worker count.
    """
    protocols = [p for p in Protocol for _ in range(n_per_protocol)]
    children = np.random.SeedSequence(seed).spawn(len(protocols))
    workers = min(resolve_workers(n_workers), max(len(protocols), 1))
    if workers <= 1:
        waves = [
            _build_trace(p, s, n_payload_bytes)
            for p, s in zip(protocols, children)
        ]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            waves = list(
                pool.map(
                    _build_trace,
                    protocols,
                    children,
                    [n_payload_bytes] * len(protocols),
                    chunksize=max(len(protocols) // workers, 1),
                )
            )
    return list(zip(protocols, waves))
