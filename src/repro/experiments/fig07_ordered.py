"""Fig 7: blind vs ordered matching at 10 Msps with +-1 quantization.

The paper reports average accuracy 0.906 (blind) vs 0.976 (ordered);
the gain comes from the four signals' different resilience to the
lossy quantization/downsampling.  Ordered thresholds are derived with
the same brute-force search the paper uses (§2.3.2), on a separate
training trace set.
"""

from __future__ import annotations

import numpy as np

from repro.core.identification import (
    DEFAULT_INCIDENT_DBM,
    IdentificationConfig,
    ProtocolIdentifier,
    evaluate_identifier,
)
from repro.core.matching import search_thresholds
from repro.experiments.common import ExperimentResult, PROTOCOL_ORDER, labeled_traces
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result"]


@implements("fig07_ordered")
def run(
    *,
    seed: int,
    n_traces: int = 12,
    n_train: int = 16,
    sample_rate_hz: float = 10e6,
    power_drop_db: float = 4.0,
    n_workers: int | None = None,
) -> ExperimentResult:
    """``power_drop_db`` places the tag slightly farther from the
    radios than the 0.8 m default (~1.3 m at 4 dB) -- the operating
    point where the blind/ordered distinction emerges."""
    config = IdentificationConfig(
        sample_rate_hz=sample_rate_hz, quantized=True, window_us=6.0
    )
    ident = ProtocolIdentifier(config)
    powers = {p: v - power_drop_db for p, v in DEFAULT_INCIDENT_DBM.items()}

    # Train ordered thresholds on a disjoint trace set (paper §2.3.2).
    train = labeled_traces(n_train, seed=seed + 1000, n_workers=n_workers)
    rng = np.random.default_rng(seed)
    labeled_scores = [
        (truth, ident.scores(w, incident_power_dbm=powers[truth], rng=rng))
        for truth, w in train
    ]
    matcher, train_acc = search_thresholds(labeled_scores)

    test = labeled_traces(n_traces, seed=seed, n_workers=n_workers)
    blind_report = evaluate_identifier(
        ident, test, rng=np.random.default_rng(seed + 1), incident_power_dbm=powers
    )
    ident.matcher = matcher
    ordered_report = evaluate_identifier(
        ident, test, rng=np.random.default_rng(seed + 1), incident_power_dbm=powers
    )
    return ExperimentResult(
        name="fig07_ordered",
        data={
            "blind": blind_report,
            "ordered": ordered_report,
            "thresholds": dict(zip(matcher.order, matcher.thresholds)),
            "train_accuracy": train_acc,
        },
        notes=["paper: blind 0.906 -> ordered 0.976 at 10 Msps quantized"],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for label in ("blind", "ordered"):
        report = result[label]
        row = [label]
        row.extend(f"{report.per_protocol.get(p, 0.0):.3f}" for p in PROTOCOL_ORDER)
        row.append(f"{report.average:.3f}")
        rows.append(row)
    headers = ["matching"] + [p.value for p in PROTOCOL_ORDER] + ["avg"]
    return format_table(headers, rows)


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig07_ordered", "full").render())
