"""Fig 4: rectifier front-end comparison.

(a) Output voltage vs input power: the clamp circuit produces usable
    output where the basic rectifier's diode stays off.
(b) 802.11b envelope fidelity: the WISP front end (RFID-rate RC)
    smears the 11 Mchip/s envelope; the tuned clamp rectifier tracks
    it.  Fidelity is the correlation between the detected baseband and
    the true envelope.

Also reports the §2.2.1 downlink-range estimate: 30 dBm excitation,
0.15 V output threshold.
"""

from __future__ import annotations

import numpy as np

from repro.channel.pathloss import log_distance_path_loss_db
from repro.core.rectifier import BasicRectifier, ClampRectifier, WispRectifier
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.phy import wifi_b
from repro.sim.metrics import format_table

__all__ = ["run", "format_result", "downlink_range_m"]


def _envelope_fidelity(rectifier, wave, power_dbm: float) -> float:
    """Correlation of the rectifier baseband with the true envelope."""
    out = rectifier.rectify(wave, power_dbm).voltage
    truth = np.abs(wave.iq)
    seg = slice(500, min(5000, out.size))
    a = out[seg] - out[seg].mean()
    b = truth[seg] - truth[seg].mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    return float(np.dot(a, b) / denom) if denom > 1e-12 else 0.0


def downlink_range_m(
    *,
    tx_power_dbm: float = 30.0,
    tx_gain_dbi: float = 3.0,
    threshold_v: float = 0.15,
    d_max: float = 5.0,
) -> float:
    """Maximum distance at which the clamp rectifier's output clears
    the 0.15 V threshold (§2.2.1 reports 0.9 m)."""
    rect = ClampRectifier(noise_v_rms=0.0)
    best = 0.0
    for d in np.arange(0.05, d_max, 0.05):
        incident = tx_power_dbm + tx_gain_dbi - log_distance_path_loss_db(float(d))
        if rect.output_for_constant_input(incident) >= threshold_v:
            best = float(d)
        else:
            break
    return best


@implements("fig04_rectifier")
def run(
    *,
    p_start_dbm: float = -35.0,
    p_stop_dbm: float = 1.0,
    p_step_db: float = 2.5,
) -> ExperimentResult:
    powers = np.arange(p_start_dbm, p_stop_dbm, p_step_db)
    basic = BasicRectifier(noise_v_rms=0.0)
    clamp = ClampRectifier(noise_v_rms=0.0)
    wisp = WispRectifier(noise_v_rms=0.0)

    out_basic = [basic.output_for_constant_input(p) for p in powers]
    out_clamp = [clamp.output_for_constant_input(p) for p in powers]

    wave = wifi_b.modulate(b"\x5a" * 16)
    fidelity_ours = _envelope_fidelity(clamp, wave, -10.0)
    fidelity_wisp = _envelope_fidelity(wisp, wave, -10.0)

    return ExperimentResult(
        name="fig04_rectifier",
        data={
            "powers_dbm": powers,
            "basic_out_v": np.array(out_basic),
            "clamp_out_v": np.array(out_clamp),
            "fidelity_ours": fidelity_ours,
            "fidelity_wisp": fidelity_wisp,
            "downlink_range_m": downlink_range_m(),
        },
        notes=[
            "paper: clamp produces higher voltage at 2.4 GHz (Fig 4a)",
            "paper: WISP distorts 802.11b baseband, ours fits (Fig 4b)",
            "paper: downlink range ~0.9 m at 30 dBm, 0.15 V threshold",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = [
        [f"{p:.1f}", f"{b * 1e3:.1f}", f"{c * 1e3:.1f}"]
        for p, b, c in zip(
            result["powers_dbm"], result["basic_out_v"], result["clamp_out_v"]
        )
    ]
    table = format_table(["P_in (dBm)", "basic (mV)", "clamp (mV)"], rows)
    tail = (
        f"\n802.11b envelope fidelity: ours={result['fidelity_ours']:.3f} "
        f"wisp={result['fidelity_wisp']:.3f}"
        f"\ndownlink range @30 dBm, 0.15 V threshold: "
        f"{result['downlink_range_m']:.2f} m (paper: 0.9 m)"
    )
    return table + tail


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig04_rectifier", "full").render())
