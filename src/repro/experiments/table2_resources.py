"""Table 2: FPGA resource comparison for multiprotocol identification.

Naive full-precision correlation (120-tap templates, 9-bit samples)
needs 133,364 D-flip-flops -- 21x more than the AGLN250 has; the +-1
quantized design fits in 2,860.
"""

from __future__ import annotations

from repro.core.resources import (
    AGLN250_DFF,
    naive_correlator_dffs,
    quantized_correlator_dffs,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table
from repro.types import Samples

__all__ = ["run", "format_result"]


@implements("table2_resources")
def run(*, template_size_samples: Samples = 120) -> ExperimentResult:
    naive = naive_correlator_dffs(template_size_samples, n_protocols=4)
    quantized = quantized_correlator_dffs(template_size_samples, n_protocols=4)
    return ExperimentResult(
        name="table2_resources",
        data={
            "template_size_samples": template_size_samples,
            "per_protocol_multipliers": template_size_samples,
            "per_protocol_adders": template_size_samples - 1,
            "per_protocol_dffs": naive["dffs_per_protocol"],
            "naive_total_dffs": naive["dffs_total"],
            "nano_impl_dffs": quantized,
            "agln250_dffs": AGLN250_DFF,
        },
        notes=["paper Table 2: 33,341 DFFs/protocol naive; 2,860 total quantized"],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for p in Protocol:
        rows.append(
            [
                p.value,
                result["per_protocol_multipliers"],
                result["per_protocol_adders"],
                result["per_protocol_dffs"],
            ]
        )
    rows.append(
        [
            "Total (Naive)",
            4 * result["per_protocol_multipliers"],
            4 * result["per_protocol_adders"],
            result["naive_total_dffs"],
        ]
    )
    rows.append(["Nano FPGA Impl.", "-", "-", result["nano_impl_dffs"]])
    table = format_table(["protocol", "multipliers", "adders", "D-flip-flops"], rows)
    return table + f"\nAGLN250 budget: {result['agln250_dffs']} DFFs"


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("table2_resources", "full").render())
