"""Declarative experiment registry.

Every paper table/figure is *declared* here as an
:class:`ExperimentSpec` -- name, paper reference, one-line
description, a typed parameter dataclass, and ``quick``/``full``/
``paper`` presets -- while the implementation lives in its own module
under :mod:`repro.experiments` and self-registers with the
:func:`implements` decorator:

    from repro.experiments.registry import implements

    @implements("fig13_los")
    def run(*, d_start_m: float = 1.0, ...) -> ExperimentResult: ...

The split keeps introspection cheap: this module (and
:mod:`repro.experiments.params`) import only the standard library, so
listing experiments -- ``python -m repro list`` -- never touches
NumPy-heavy implementation code.  Implementations load lazily, on the
first ``spec.run(...)`` / ``spec.format(...)`` call.

Adding an experiment is declaring it: add a params dataclass, one
:func:`register` call (or call :func:`register` from your own package
for out-of-tree workloads), and decorate the entry point.

Typical use::

    from repro.experiments import registry

    spec = registry.get_spec("fig13_los")
    result = spec.run("quick")            # preset name
    result = spec.run("full", d_step_m=0.5)  # preset + overrides
    print(spec.format(result))            # paper-style table

    registry.run_preset("fig09_baseline_flaws", "quick", seed=7)
"""

from __future__ import annotations

import dataclasses
import importlib
import warnings
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.experiments import params as _p

if TYPE_CHECKING:  # heavy import, runtime use is lazy
    from repro.experiments.artifacts import ExperimentResult

__all__ = [
    "ExperimentSpec",
    "RegistryError",
    "UnknownExperimentError",
    "PRESET_NAMES",
    "get_spec",
    "implements",
    "names",
    "register",
    "run_preset",
    "specs",
]

#: Every spec must provide exactly these presets.
PRESET_NAMES = ("quick", "full", "paper")

#: Parameter fields validated centrally (see repro.sim.runner.validate_bounds).
_COUNT_FIELDS = ("n_trials", "n_traces", "n_train", "n_packets", "n_locations")


class RegistryError(Exception):
    """A spec or implementation violates the registry contract."""


class UnknownExperimentError(RegistryError, KeyError):
    """Lookup of an experiment name that was never declared."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One declared experiment: metadata, typed params, lazy impl.

    ``presets`` maps ``quick``/``full``/``paper`` to instances of
    ``params_type``; ``module`` is the dotted path of the implementing
    module, imported only when the experiment actually runs or
    renders.
    """

    name: str
    paper_ref: str
    description: str
    params_type: type
    presets: Mapping[str, Any]
    module: str
    #: renamed parameter fields still accepted as override keys:
    #: old name -> current field name (a DeprecationWarning is issued)
    deprecated_params: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: MappingProxyType({})
    )

    # -- parameters ----------------------------------------------------
    def preset_names(self) -> tuple[str, ...]:
        return tuple(self.presets)

    def has_param(self, field_name: str) -> bool:
        return any(f.name == field_name for f in dataclasses.fields(self.params_type))

    def _remap_deprecated(self, overrides: dict[str, Any]) -> dict[str, Any]:
        for old, new in self.deprecated_params.items():
            if old not in overrides:
                continue
            if new in overrides:
                raise RegistryError(
                    f"experiment {self.name!r}: both {old!r} (deprecated) "
                    f"and {new!r} given"
                )
            warnings.warn(
                f"parameter {old!r} of experiment {self.name!r} is "
                f"deprecated; use {new!r}",
                DeprecationWarning,
                stacklevel=4,
            )
            overrides[new] = overrides.pop(old)
        return overrides

    def params(self, preset: str = "full", **overrides: Any) -> Any:
        """Preset instance with ``overrides`` applied field-wise."""
        overrides = self._remap_deprecated(overrides)
        try:
            base = self.presets[preset]
        except KeyError:
            raise RegistryError(
                f"experiment {self.name!r} has no preset {preset!r}; "
                f"available: {', '.join(self.presets)}"
            ) from None
        return dataclasses.replace(base, **overrides)

    # -- execution -----------------------------------------------------
    def run(self, preset: str = "full", **overrides: Any) -> "ExperimentResult":
        """Run one preset (plus overrides) and stamp provenance."""
        return self.run_params(self.params(preset, **overrides), preset=preset)

    def run_params(self, params: Any, *, preset: str | None = None) -> "ExperimentResult":
        """Run from an explicit params instance."""
        if not isinstance(params, self.params_type):
            raise RegistryError(
                f"experiment {self.name!r} expects {self.params_type.__name__}, "
                f"got {type(params).__name__}"
            )
        kwargs = {
            f.name: getattr(params, f.name) for f in dataclasses.fields(params)
        }
        self._validate(kwargs)
        result = self._resolve()(**kwargs)
        if result.name != self.name:
            raise RegistryError(
                f"implementation of {self.name!r} returned a result named "
                f"{result.name!r}"
            )
        result.preset = preset
        result.params = kwargs
        return result

    def _validate(self, kwargs: dict[str, Any]) -> None:
        """Bounds-check counts in one shared place (sim.runner)."""
        from repro.sim.runner import validate_bounds

        for field_name in _COUNT_FIELDS:
            if field_name in kwargs:
                validate_bounds(
                    n_trials=kwargs[field_name],
                    where=f"{self.name}.{field_name}",
                )
        if kwargs.get("n_workers") is not None:
            validate_bounds(
                n_workers=kwargs["n_workers"], where=f"{self.name}.n_workers"
            )

    def _resolve(self) -> Callable[..., "ExperimentResult"]:
        importlib.import_module(self.module)
        try:
            return _IMPLS[self.name]
        except KeyError:
            raise RegistryError(
                f"module {self.module!r} imported but did not register an "
                f"implementation for {self.name!r} (missing @implements?)"
            ) from None

    # -- rendering -----------------------------------------------------
    def format(self, result: "ExperimentResult") -> str:
        """Render a result (live or loaded from an artifact)."""
        module = importlib.import_module(self.module)
        formatter = getattr(module, "format_result", None)
        if formatter is None:
            raise RegistryError(
                f"module {self.module!r} defines no format_result()"
            )
        return str(formatter(result))


_SPECS: dict[str, ExperimentSpec] = {}
_IMPLS: dict[str, Callable[..., "ExperimentResult"]] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Declare an experiment.  Validates the spec contract eagerly."""
    if spec.name in _SPECS:
        raise RegistryError(f"experiment {spec.name!r} already registered")
    if not spec.description or not spec.paper_ref:
        raise RegistryError(f"experiment {spec.name!r} needs a description and paper_ref")
    if not dataclasses.is_dataclass(spec.params_type):
        raise RegistryError(f"experiment {spec.name!r}: params_type must be a dataclass")
    missing = [p for p in PRESET_NAMES if p not in spec.presets]
    if missing:
        raise RegistryError(
            f"experiment {spec.name!r} is missing presets: {', '.join(missing)}"
        )
    for preset, value in spec.presets.items():
        if not isinstance(value, spec.params_type):
            raise RegistryError(
                f"experiment {spec.name!r} preset {preset!r} is not a "
                f"{spec.params_type.__name__}"
            )
    _SPECS[spec.name] = spec
    return spec


def implements(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: bind ``run(**params fields)`` to a declared spec."""
    if name not in _SPECS:
        raise RegistryError(
            f"cannot implement undeclared experiment {name!r}; declare it "
            f"with registry.register() first"
        )

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        _IMPLS[name] = fn
        return fn

    return decorator


def names() -> tuple[str, ...]:
    """Registered experiment names, in declaration (paper) order."""
    return tuple(_SPECS)


def specs() -> tuple[ExperimentSpec, ...]:
    return tuple(_SPECS.values())


def get_spec(name: str) -> ExperimentSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(_SPECS)}"
        ) from None


def run_preset(name: str, preset: str = "full", **overrides: Any) -> "ExperimentResult":
    """Convenience: ``get_spec(name).run(preset, **overrides)``."""
    return get_spec(name).run(preset, **overrides)


def _declare(
    name: str,
    paper_ref: str,
    description: str,
    params_type: type,
    *,
    quick: Any = None,
    paper: Any = None,
    deprecated: Mapping[str, str] | None = None,
) -> None:
    """Catalog helper: ``full`` is the dataclass defaults; ``quick``/
    ``paper`` default to ``full`` when an experiment has no scale knob."""
    full = params_type()
    register(
        ExperimentSpec(
            name=name,
            paper_ref=paper_ref,
            description=description,
            params_type=params_type,
            presets=MappingProxyType(
                {
                    "quick": quick if quick is not None else full,
                    "full": full,
                    "paper": paper if paper is not None else full,
                }
            ),
            module=f"repro.experiments.{name}",
            deprecated_params=MappingProxyType(dict(deprecated or {})),
        )
    )


# ----------------------------------------------------------------------
# The catalog: every paper table/figure, in paper order.  Seeds live
# here (in the params defaults/presets), not in the modules.
# ----------------------------------------------------------------------

_declare(
    "fig04_rectifier",
    "Fig. 4",
    "clamp vs basic rectifier outputs; ours vs WISP envelope fidelity",
    _p.Fig04Params,
    quick=_p.Fig04Params(p_start_dbm=-30.0, p_stop_dbm=-5.0, p_step_db=10.0),
    paper=_p.Fig04Params(p_step_db=1.0),
)
_declare(
    "fig05_envelope_id",
    "Fig. 5",
    "protocol envelopes and (L_p, L_t) identification accuracy at 20 Msps",
    _p.Fig05Params,
    quick=_p.Fig05Params(n_traces=2, grid=((40, 120),)),
    paper=_p.Fig05Params(n_traces=24),
)
_declare(
    "fig07_ordered",
    "Fig. 7",
    "blind vs ordered matching at 10 Msps with +-1 quantization",
    _p.Fig07Params,
    quick=_p.Fig07Params(n_traces=2, n_train=2),
    paper=_p.Fig07Params(n_traces=24, n_train=32),
)
_declare(
    "fig08_sampling",
    "Fig. 8",
    "low-rate sampling with the extended matching window",
    _p.Fig08Params,
    quick=_p.Fig08Params(n_traces=2, n_train=2),
    paper=_p.Fig08Params(n_traces=24, n_train=16),
)
_declare(
    "fig09_baseline_flaws",
    "Fig. 9",
    "two-receiver baseline defects: occlusion BER and symbol offsets",
    _p.Fig09Params,
    quick=_p.Fig09Params(n_packets=30),
    paper=_p.Fig09Params(n_packets=1000),
)
_declare(
    "fig12_tradeoffs",
    "Fig. 12",
    "productive/tag throughput tradeoffs across overlay modes (Table 6)",
    _p.Fig12Params,
    quick=_p.Fig12Params(n_locations=4),
)
_declare(
    "fig13_los",
    "Fig. 13",
    "LoS RSSI / BER / throughput across distances",
    _p.Fig13Params,
    quick=_p.Fig13Params(d_step_m=5.0),
    paper=_p.Fig13Params(d_step_m=0.5),
)
_declare(
    "fig14_nlos",
    "Fig. 14",
    "NLoS RSSI / BER / throughput across distances",
    _p.Fig14Params,
    quick=_p.Fig14Params(d_step_m=5.0),
    paper=_p.Fig14Params(d_step_m=0.5),
)
_declare(
    "fig15_occlusion",
    "Fig. 15",
    "tag throughput with the original channel occluded",
    _p.Fig15Params,
    quick=_p.Fig15Params(n_packets=40),
    paper=_p.Fig15Params(n_packets=1000),
)
_declare(
    "fig16_collisions",
    "Fig. 16",
    "diverse excitations colliding in time and in frequency",
    _p.Fig16Params,
    quick=_p.Fig16Params(n_trials=2),
    paper=_p.Fig16Params(n_trials=48),
)
_declare(
    "fig17_refmod",
    "Fig. 17",
    "tag BER across reference-symbol modulations",
    _p.Fig17Params,
    quick=_p.Fig17Params(n_packets=1),
    paper=_p.Fig17Params(n_packets=24),
)
_declare(
    "fig18_diversity",
    "Fig. 18",
    "excitation diversity: duty-cycled carriers and intelligent pick",
    _p.Fig18Params,
    quick=_p.Fig18Params(duration_s=0.5),
    paper=_p.Fig18Params(duration_s=10.0),
)
_declare(
    "validation_ber",
    "Figs. 13-14 (validation)",
    "simulated modem BER vs the analytic waterfalls",
    _p.ValidationBerParams,
    quick=_p.ValidationBerParams(ebn0_grid_db=(8.0,), n_packets=1, payload_bytes=16),
    paper=_p.ValidationBerParams(
        ebn0_grid_db=(2.0, 4.0, 6.0, 8.0, 10.0, 12.0), n_packets=8
    ),
)
_declare(
    "table2_resources",
    "Table 2",
    "FPGA resource comparison for multiprotocol identification",
    _p.Table2Params,
    deprecated={"template_size": "template_size_samples"},
)
_declare(
    "table3_power",
    "Table 3",
    "COTS prototype power breakdown",
    _p.Table3Params,
)
_declare(
    "table4_energy",
    "Table 4",
    "solar-harvesting tag-data exchange times",
    _p.Table4Params,
)
_declare(
    "table5_idpower",
    "Table 5",
    "hardware resources and power of identification variants",
    _p.Table5Params,
)
