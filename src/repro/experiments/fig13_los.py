"""Fig 13: LoS backscatter RSSI / BER / throughput across distances.

Paper headline: maximum LoS ranges 28 m (WiFi 11b/n), 22 m (ZigBee),
20 m (BLE); BERs stay low out to 16 m; peak aggregate throughputs
278.4 / 219.8 / 101.2 / 26.2 kbps (BLE / 11b / 11n / ZigBee).
"""

from __future__ import annotations

import numpy as np

from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
from repro.core.overlay import Mode
from repro.core.throughput import OverlayThroughputModel
from repro.experiments.common import ExperimentResult, PROTOCOL_ORDER
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result", "sweep"]


def sweep(
    *,
    extra_loss_db: float = 0.0,
    distances: np.ndarray | None = None,
) -> dict:
    """Shared Fig 13 / Fig 14 machinery (NLoS adds wall loss)."""
    d = distances if distances is not None else np.arange(1.0, 32.0, 1.0)
    data: dict = {"distances_m": d, "per_protocol": {}}
    for protocol in PROTOCOL_ORDER:
        link = BackscatterLink(
            PROTOCOL_LINK_DEFAULTS[protocol], extra_loss_db=extra_loss_db
        )
        model = OverlayThroughputModel(protocol, mode=Mode.MODE_1, link=link)
        points = model.sweep(d)
        data["per_protocol"][protocol] = {
            "rssi_dbm": np.array([p.rssi_dbm for p in points]),
            "ber": np.array([link.ber(float(x)) for x in d]),
            "aggregate_kbps": np.array([p.aggregate_kbps for p in points]),
            "max_range_m": link.max_range_m(d_max=60.0),
        }
    return data


@implements("fig13_los")
def run(
    *, d_start_m: float = 1.0, d_stop_m: float = 32.0, d_step_m: float = 1.0
) -> ExperimentResult:
    distances = np.arange(d_start_m, d_stop_m, d_step_m)
    return ExperimentResult(
        name="fig13_los",
        data=sweep(extra_loss_db=0.0, distances=distances),
        notes=[
            "paper: LoS max ranges 28 m WiFi / 22 m ZigBee / 20 m BLE",
            "paper: low BER out to 16 m for all protocols",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    per = result["per_protocol"]
    d = result["distances_m"]
    i10 = int(np.argmin(np.abs(d - 10.0)))
    i16 = int(np.argmin(np.abs(d - 16.0)))
    rows = []
    for protocol in PROTOCOL_ORDER:
        data = per[protocol]
        rows.append(
            [
                protocol.value,
                f"{data['max_range_m']:.1f}",
                f"{data['rssi_dbm'][i10]:.1f}",
                f"{data['ber'][i16]:.2e}",
                f"{data['aggregate_kbps'][0]:.1f}",
            ]
        )
    return format_table(
        ["protocol", "max range (m)", "RSSI@10m (dBm)", "BER@16m", "peak agg (kbps)"],
        rows,
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig13_los", "full").render())
