"""Experiment harness: one module per paper table and figure.

Each module exposes ``run(...)`` returning a structured result and
``format_result(result)`` rendering the same rows/series the paper
reports.  The ``benchmarks/`` tree wraps these with pytest-benchmark;
the modules are also directly runnable (``python -m
repro.experiments.fig05_envelope_id``).

| Module                  | Paper artifact |
|-------------------------|----------------|
| fig04_rectifier         | Fig 4: clamp vs basic rectifier; ours vs WISP |
| fig05_envelope_id       | Fig 5: envelopes + (L_p, L_t) accuracy at 20 Msps |
| fig07_ordered           | Fig 7: blind vs ordered matching at 10 Msps |
| fig08_sampling          | Fig 8: 2.5/1 Msps, short vs extended window |
| fig09_baseline_flaws    | Fig 9: baseline occlusion BER + offsets |
| fig12_tradeoffs         | Fig 12 + Table 6: mode 1/2/3 throughputs |
| fig13_los / fig14_nlos  | Figs 13-14: RSSI/BER/throughput vs distance |
| fig15_occlusion         | Fig 15: occluded-original-channel throughput |
| fig16_collisions        | Fig 16: time/frequency excitation collisions |
| fig17_refmod            | Fig 17: reference-symbol modulation BERs |
| fig18_diversity         | Fig 18: excitation diversity |
| table2_resources        | Table 2: FPGA DFF counts |
| table3_power            | Table 3: prototype power breakdown |
| table4_energy           | Table 4: energy-harvesting exchange times |
| table5_idpower          | Table 5: identification power/LUTs |
"""
