"""Table 5: hardware resources and power of identification variants.

Simulated Artix-7 cost of three designs: 20 Msps full precision
(564 mW / 34,751 LUTs), 20 Msps with +-1 quantization (12 mW / 1,574
LUTs), and the shipping 2.5 Msps quantized design (2 mW / 1,070 LUTs)
-- a 282x power reduction end to end.
"""

from __future__ import annotations

from repro.core.resources import CorrelatorDesign
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result", "VARIANTS"]

#: (label, sample rate, window us, quantized) per Table 5 row.
VARIANTS = (
    ("20MS/s, no +-1 quan.", 20e6, 8.0, False),
    ("20MS/s, +-1 quan.", 20e6, 8.0, True),
    ("2.5MS/s, +-1 quan.", 2.5e6, 40.0, True),
)


@implements("table5_idpower")
def run() -> ExperimentResult:
    rows = {}
    for label, rate, window, quantized in VARIANTS:
        design = CorrelatorDesign(
            sample_rate_hz=rate, window_us=window, quantized=quantized
        )
        rows[label] = {
            "power_mw": design.power_mw,
            "luts": design.luts,
            "taps": design.total_taps,
        }
    baseline = rows[VARIANTS[0][0]]["power_mw"]
    final = rows[VARIANTS[2][0]]["power_mw"]
    return ExperimentResult(
        name="table5_idpower",
        data={"rows": rows, "reduction_factor": baseline / final},
        notes=["paper Table 5: 564 mW -> 12 mW -> 2 mW (282x reduction)"],
    )


def format_result(result: ExperimentResult) -> str:
    baseline = result["rows"][VARIANTS[0][0]]["power_mw"]
    rows = []
    for label, vals in result["rows"].items():
        pct = vals["power_mw"] / baseline * 100.0
        rows.append([label, f"{vals['power_mw']:.0f} ({pct:.2f}%)", vals["luts"]])
    table = format_table(["setup", "power (mW)", "LUTs"], rows)
    return table + f"\npower reduction: {result['reduction_factor']:.0f}x"


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("table5_idpower", "full").render())
