"""Fig 5: envelope distinguishability and (L_p, L_t) accuracy at 20 Msps.

(a) The four protocols' baseband envelopes (first 40 us) -- returned as
    series for plotting/inspection.
(b) Identification accuracy at 20 Msps, 9-bit samples, full-precision
    correlation, for a small grid of (L_p, L_t); the paper reports
    99.3 % minimum / 99.7 % average at L_p=40, L_t=120.
"""

from __future__ import annotations

import numpy as np

from repro.core.adc import Adc
from repro.core.identification import (
    IdentificationConfig,
    ProtocolIdentifier,
    evaluate_identifier,
)
from repro.core.rectifier import ClampRectifier
from repro.core.templates import reference_waveform
from repro.experiments.common import ExperimentResult, PROTOCOL_ORDER, labeled_traces
from repro.experiments.registry import implements
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table

__all__ = ["run", "format_result"]

SAMPLE_RATE = 20e6


def envelope_traces(duration_us: float = 40.0) -> dict[Protocol, np.ndarray]:
    """Fig 5a: clean rectified envelopes per protocol."""
    rect = ClampRectifier(noise_v_rms=0.0)
    adc = Adc(sample_rate=SAMPLE_RATE)
    out = {}
    for protocol in Protocol:
        wave = reference_waveform(protocol)
        analog = rect.rectify(wave, -15.0)
        cap = adc.capture(analog, duration_s=duration_us * 1e-6)
        out[protocol] = cap.volts()
    return out


@implements("fig05_envelope_id")
def run(
    *,
    seed: int,
    n_traces: int = 12,
    grid: tuple[tuple[int, int], ...] = ((20, 60), (40, 120), (60, 100)),
    n_workers: int | None = None,
) -> ExperimentResult:
    """``grid`` holds (L_p, L_t) pairs in 20 Msps samples."""
    traces = labeled_traces(n_traces, seed=seed, n_workers=n_workers)
    results = {}
    for l_p, l_t in grid:
        config = IdentificationConfig(
            sample_rate_hz=SAMPLE_RATE,
            preprocess_us=l_p / SAMPLE_RATE * 1e6,
            window_us=l_t / SAMPLE_RATE * 1e6,
        )
        ident = ProtocolIdentifier(config)
        report = evaluate_identifier(ident, traces, rng=np.random.default_rng(seed))
        results[(l_p, l_t)] = report
    return ExperimentResult(
        name="fig05_envelope_id",
        data={
            "grid_reports": results,
            "envelopes": envelope_traces(),
        },
        notes=[
            "paper: L_p=40, L_t=120 gives min 99.3% / avg 99.7% accuracy",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for (l_p, l_t), report in result["grid_reports"].items():
        row = [f"{l_p}", f"{l_t}"]
        row.extend(f"{report.per_protocol.get(p, 0.0):.3f}" for p in PROTOCOL_ORDER)
        row.append(f"{report.average:.3f}")
        row.append(f"{report.minimum:.3f}")
        rows.append(row)
    headers = ["L_p", "L_t"] + [p.value for p in PROTOCOL_ORDER] + ["avg", "min"]
    return format_table(headers, rows)


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig05_envelope_id", "full").render())
