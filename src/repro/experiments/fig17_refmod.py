"""Fig 17: tag-data BER under different reference-symbol modulations.

Overlay modulation only requires that a tag flip turn a symbol into a
*different* decodable symbol, so it composes with whatever modulation
the reference symbols use.  This experiment measures tag BER at the
signal level for:

* 802.11b reference symbols: DSSS-DBPSK (1 Mbps), DSSS-DQPSK (2 Mbps),
  CCK (5.5 Mbps);
* 802.11n reference symbols: OFDM-BPSK (MCS0), OFDM-QPSK (MCS1),
  OFDM-16QAM (MCS3).

Paper: all BERs stay below ~0.6 % (11b) and in a stable band (11n).
We run at a reduced SNR so BER is resolvable with simulation-scale bit
counts; the claim under test is *stability across modulations*.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.phy import wifi_b, wifi_n
from repro.sim.metrics import format_table

__all__ = ["run", "format_result", "wifi_b_tag_ber", "wifi_n_tag_ber"]

_KAPPA = 8
_GAMMA = 4
_KAPPA_N = 4
_GAMMA_N = 2


def _bits_per_symbol_11b(rate: float) -> int:
    return {1.0: 1, 2.0: 2, 5.5: 4}[rate]


def wifi_b_tag_ber(
    rate_mbps: float,
    *,
    snr_db: float,
    n_packets: int,
    n_sequences: int = 24,
    rng: np.random.Generator,
) -> float:
    """Tag BER over an 802.11b carrier at one reference modulation."""
    bps = _bits_per_symbol_11b(rate_mbps)
    errors = 0
    total = 0
    for _ in range(n_packets):
        # Craft on-air PSDU: each sequence repeats one reference symbol
        # kappa times (overlay carrier), in the scrambled domain.
        ref_syms = rng.integers(0, 1 << bps, n_sequences)
        onair = np.concatenate(
            [
                np.tile([int(b) for b in np.binary_repr(s, bps)[::-1]], _KAPPA)
                for s in ref_syms
            ]
        ).astype(np.uint8)
        cfg = wifi_b.WifiBConfig(rate_mbps=rate_mbps)
        wave = wifi_b.modulate(onair, cfg, scrambled_domain=True)

        # Tag: gamma-symbol phase flips, differentially precoded.
        n_symbols = wave.annotations["n_payload_symbols"]
        tag_bits = rng.integers(0, 2, n_sequences).astype(np.uint8)
        flags = np.zeros(n_symbols, dtype=bool)
        for s, bit in enumerate(tag_bits):
            if bit:
                base = s * _KAPPA + 1
                flags[base : base + _GAMMA] = True
        state = np.cumsum(flags.astype(int)) % 2
        start = wave.annotations["payload_start"]
        sym_len = wave.annotations["samples_per_symbol"]
        tagged = wave.copy()
        for idx in np.flatnonzero(state):
            lo = start + int(idx) * sym_len
            tagged.iq[lo : lo + sym_len] *= -1.0

        noise_scale = 10.0 ** (-snr_db / 20.0) / np.sqrt(2.0)
        tagged.iq = tagged.iq + noise_scale * (
            rng.normal(size=tagged.n_samples) + 1j * rng.normal(size=tagged.n_samples)
        )

        result = wifi_b.demodulate(tagged)
        onair_rx = result.onair_bits
        for s in range(n_sequences):
            seq = onair_rx[s * _KAPPA * bps : (s + 1) * _KAPPA * bps]
            if seq.size < _KAPPA * bps:
                break
            ref = seq[:bps]
            votes = 0
            for g in range(_GAMMA):
                sym = seq[(1 + g) * bps : (2 + g) * bps]
                votes += int(not np.array_equal(sym, ref))
            decoded = int(votes * 2 > _GAMMA)
            errors += decoded != tag_bits[s]
            total += 1
    return errors / max(total, 1)


def wifi_n_tag_ber(
    mcs: int,
    *,
    snr_db: float,
    n_packets: int,
    n_sequences: int = 12,
    rng: np.random.Generator,
) -> float:
    """Tag BER over an 802.11n carrier at one constellation."""
    cfg = wifi_n.WifiNConfig(mcs=mcs)
    n_dbps = cfg.n_dbps
    errors = 0
    total = 0
    for _ in range(n_packets):
        groups = [np.zeros(n_dbps, np.uint8)]  # service/filler symbol
        ref_groups = []
        for _ in range(n_sequences):
            ref = rng.integers(0, 2, n_dbps).astype(np.uint8)
            ref_groups.append(ref)
            groups.extend([ref.copy() for _ in range(_KAPPA_N)])
        wave = wifi_n.modulate(b"", data_bits=np.concatenate(groups), config=cfg)

        tag_bits = rng.integers(0, 2, n_sequences).astype(np.uint8)
        start = wave.annotations["payload_start"]
        tagged = wave.copy()
        for s, bit in enumerate(tag_bits):
            if bit:
                base = 1 + s * _KAPPA_N + 1
                for g in range(_GAMMA_N):
                    lo = start + (base + g) * wifi_n.SYMBOL_LEN
                    tagged.iq[lo : lo + wifi_n.SYMBOL_LEN] *= -1.0

        noise_scale = 10.0 ** (-snr_db / 20.0) / np.sqrt(2.0)
        tagged.iq = tagged.iq + noise_scale * (
            rng.normal(size=tagged.n_samples) + 1j * rng.normal(size=tagged.n_samples)
        )

        result = wifi_n.demodulate(tagged)
        lo_q = n_dbps // 4
        hi_q = n_dbps - lo_q
        for s in range(n_sequences):
            base = 1 + s * _KAPPA_N
            if base + _KAPPA_N > len(result.symbol_bits):
                break
            ref = result.symbol_bits[base]
            votes = 0
            for g in range(_GAMMA_N):
                sym = result.symbol_bits[base + 1 + g]
                diff = np.mean(sym[lo_q:hi_q] != ref[lo_q:hi_q])
                votes += int(diff > 0.25)
            decoded = int(votes * 2 > _GAMMA_N)
            errors += decoded != tag_bits[s]
            total += 1
    return errors / max(total, 1)


@implements("fig17_refmod")
def run(
    *,
    seed: int,
    snr_11b_db: float = 3.0,
    snr_11n_db: float = 12.0,
    n_packets: int = 6,
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    bers_11b = {
        "DSSS-BPSK (1M)": wifi_b_tag_ber(1.0, snr_db=snr_11b_db, n_packets=n_packets, rng=rng),
        "DSSS-DQPSK (2M)": wifi_b_tag_ber(2.0, snr_db=snr_11b_db, n_packets=n_packets, rng=rng),
        "CCK (5.5M)": wifi_b_tag_ber(5.5, snr_db=snr_11b_db, n_packets=n_packets, rng=rng),
    }
    bers_11n = {
        "OFDM-BPSK (MCS0)": wifi_n_tag_ber(0, snr_db=snr_11n_db, n_packets=n_packets, rng=rng),
        "OFDM-QPSK (MCS1)": wifi_n_tag_ber(1, snr_db=snr_11n_db, n_packets=n_packets, rng=rng),
        "OFDM-16QAM (MCS3)": wifi_n_tag_ber(3, snr_db=snr_11n_db, n_packets=n_packets, rng=rng),
    }
    return ExperimentResult(
        name="fig17_refmod",
        data={"wifi_b": bers_11b, "wifi_n": bers_11n,
              "snr_11b_db": snr_11b_db, "snr_11n_db": snr_11n_db},
        notes=[
            "paper: 11b tag BER < 0.6% across DSSS-BPSK/DQPSK/CCK",
            "paper: stable BER band across OFDM-BPSK/QPSK/16QAM",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for name, ber in {**result["wifi_b"], **result["wifi_n"]}.items():
        rows.append([name, f"{ber * 100:.2f}%"])
    return format_table(["reference modulation", "tag BER"], rows)


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig17_refmod", "full").render())
