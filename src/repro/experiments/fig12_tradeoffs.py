"""Fig 12 + Table 6: productive/tag throughput tradeoffs across modes.

Mode 1 splits throughput ~1:1 between productive and tag data, mode 2
shifts to 3:1 tag-heavy, mode 3 sends a single productive bit per
packet.  The paper averages 100 tag locations; we average the analytic
model over random short-range locations.  Headlines: BLE mode-1
aggregate 278.4 kbps (141.6 productive + 136.8 tag), 802.11b 219.8,
802.11n 101.2, ZigBee 26.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.overlay import Mode
from repro.core.throughput import OverlayThroughputModel
from repro.experiments.common import ExperimentResult, PROTOCOL_ORDER
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result"]


@implements("fig12_tradeoffs")
def run(*, seed: int, n_locations: int = 100, max_distance_m: float = 8.0) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    distances = rng.uniform(1.0, max_distance_m, size=n_locations)
    table: dict[tuple, dict[str, float]] = {}
    for protocol in PROTOCOL_ORDER:
        for mode in Mode:
            model = OverlayThroughputModel(protocol, mode=mode)
            prods, tags = [], []
            for d in distances:
                point = model.evaluate(float(d))
                prods.append(point.productive_kbps)
                tags.append(point.tag_kbps)
            table[(protocol, mode)] = {
                "productive_kbps": float(np.mean(prods)),
                "tag_kbps": float(np.mean(tags)),
                "kappa": model.codec.config.kappa,
                "gamma": model.codec.config.gamma,
            }
    return ExperimentResult(
        name="fig12_tradeoffs",
        data={"table": table},
        notes=[
            "paper: BLE mode-1 aggregate 278.4 kbps (141.6 + 136.8)",
            "paper: mode-1 aggregates 219.8 (11b), 101.2 (11n), 26.2 (ZigBee) kbps",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for (protocol, mode), vals in result["table"].items():
        agg = vals["productive_kbps"] + vals["tag_kbps"]
        rows.append(
            [
                protocol.value,
                mode.name,
                vals["kappa"],
                vals["gamma"],
                f"{vals['productive_kbps']:.1f}",
                f"{vals['tag_kbps']:.1f}",
                f"{agg:.1f}",
            ]
        )
    return format_table(
        ["protocol", "mode", "kappa", "gamma", "productive kbps", "tag kbps", "aggregate"],
        rows,
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig12_tradeoffs", "full").render())
