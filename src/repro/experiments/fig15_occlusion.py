"""Fig 15: tag-data throughput when the original channel is occluded.

A drywall blocks the transmitter-to-original-receiver path.  The two-
receiver baselines lose most of their throughput because their decode
needs the original packets; multiscatter decodes from the backscatter
channel alone.  Paper: multiscatter 136 kbps (BLE) / 121 kbps (11b) vs
Hitchhike 94 kbps and FreeRider 33 kbps.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import FreeRider, Hitchhike
from repro.channel.occlusion import Material
from repro.core.overlay import Mode
from repro.core.throughput import OverlayThroughputModel
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.phy.protocols import Protocol
from repro.sim.metrics import format_table

__all__ = ["run", "format_result"]


@implements("fig15_occlusion")
def run(
    *,
    seed: int,
    material: str = "drywall",
    distance_m: float = 2.0,
    n_packets: int = 500,
) -> ExperimentResult:
    obstruction = Material(material)
    rng = np.random.default_rng(seed)
    multi_ble = OverlayThroughputModel(Protocol.BLE, mode=Mode.MODE_1).evaluate(
        distance_m
    )
    multi_11b = OverlayThroughputModel(Protocol.WIFI_B, mode=Mode.MODE_1).evaluate(
        distance_m
    )
    hh = Hitchhike().tag_throughput_kbps(obstruction, rng, n_packets=n_packets)
    fr = FreeRider().tag_throughput_kbps(obstruction, rng, n_packets=n_packets)
    return ExperimentResult(
        name="fig15_occlusion",
        data={
            "multiscatter_ble_kbps": multi_ble.tag_kbps,
            "multiscatter_11b_kbps": multi_11b.tag_kbps,
            "hitchhike_kbps": hh,
            "freerider_kbps": fr,
            "material": obstruction,
        },
        notes=[
            "paper: multiscatter 136 (BLE) / 121 (11b) vs Hitchhike 94, FreeRider 33 kbps",
            "multiscatter's tag decode never touches the occluded original channel",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = [
        ["multiscatter (BLE)", f"{result['multiscatter_ble_kbps']:.1f}"],
        ["multiscatter (11b)", f"{result['multiscatter_11b_kbps']:.1f}"],
        ["Hitchhike", f"{result['hitchhike_kbps']:.1f}"],
        ["FreeRider", f"{result['freerider_kbps']:.1f}"],
    ]
    return (
        f"original channel occluded by: {result['material'].value}\n"
        + format_table(["system", "tag throughput (kbps)"], rows)
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig15_occlusion", "full").render())
