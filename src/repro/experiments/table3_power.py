"""Table 3: power breakdown of the COTS prototype (peak, 20 Msps).

Three modules -- packet detection (FPGA + ADC), modulation (FPGA +
RF switch), clock -- totalling 279.5 mW, dominated by the AD9235 ADC.
Also reports the 2.5 Msps operating point the paper argues future ASIC
designs would use.
"""

from __future__ import annotations

from repro.core.energy import PROTOTYPE_POWER
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result"]


@implements("table3_power")
def run(*, adc_rate_hz: float = 20e6) -> ExperimentResult:
    peak = PROTOTYPE_POWER
    scaled = peak.at_adc_rate(adc_rate_hz)
    low_rate = peak.at_adc_rate(2.5e6)
    return ExperimentResult(
        name="table3_power",
        data={
            "rows": scaled.rows(),
            "total_mw": scaled.total_mw,
            "total_at_2p5msps_mw": low_rate.total_mw,
        },
        notes=["paper Table 3: total 279.5 mW at 20 Msps"],
    )


def format_result(result: ExperimentResult) -> str:
    rows = [[part, device, f"{mw:.1f}"] for part, device, mw in result["rows"]]
    rows.append(["Total", "", f"{result['total_mw']:.1f}"])
    table = format_table(["logical part", "device", "power (mW)"], rows)
    return table + (
        f"\nat 2.5 Msps ADC rate: {result['total_at_2p5msps_mw']:.1f} mW"
    )


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("table3_power", "full").render())
