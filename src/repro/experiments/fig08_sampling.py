"""Fig 8: low-rate sampling with ordered matching and the extended
matching window (§2.3.2).

Three panels:
(a) 2.5 Msps, 8 us base window    -- paper: average accuracy 0.485
(b) 2.5 Msps, 40 us extended window -- paper: 0.93
    (94.3% 11n, 95.9% 11b, 81.8% BLE, 99.9% ZigBee)
(c) 1 Msps, extended window        -- paper: ~0.5
"""

from __future__ import annotations

import numpy as np

from repro.core.identification import (
    DEFAULT_INCIDENT_DBM,
    IdentificationConfig,
    ProtocolIdentifier,
    evaluate_identifier,
)
from repro.core.matching import search_thresholds
from repro.experiments.common import ExperimentResult, PROTOCOL_ORDER, labeled_traces
from repro.experiments.registry import implements
from repro.sim.metrics import format_table

__all__ = ["run", "format_result", "PANELS"]

#: (label, sample rate, matching window us) for the three panels.
PANELS = (
    ("2.5Msps/base", 2.5e6, 6.0),
    ("2.5Msps/extended", 2.5e6, 38.0),
    ("1Msps/extended", 1e6, 38.0),
)


@implements("fig08_sampling")
def run(
    *, seed: int, n_traces: int = 12, n_train: int = 8, n_workers: int | None = None
) -> ExperimentResult:
    reports = {}
    for label, rate, window in PANELS:
        config = IdentificationConfig(
            sample_rate_hz=rate, quantized=True, window_us=window
        )
        ident = ProtocolIdentifier(config)
        train = labeled_traces(n_train, seed=seed + 1000, n_workers=n_workers)
        rng = np.random.default_rng(seed)
        labeled_scores = [
            (t, ident.scores(w, incident_power_dbm=DEFAULT_INCIDENT_DBM[t], rng=rng))
            for t, w in train
        ]
        matcher, _ = search_thresholds(labeled_scores)
        ident.matcher = matcher
        test = labeled_traces(n_traces, seed=seed, n_workers=n_workers)
        reports[label] = evaluate_identifier(
            ident, test, rng=np.random.default_rng(seed + 1)
        )
    return ExperimentResult(
        name="fig08_sampling",
        data={"reports": reports},
        notes=[
            "paper: 0.485 (2.5M base) -> 0.93 (2.5M extended); 1M ~ 0.5",
            "paper per-protocol at 2.5M ext: 11n 94.3 / 11b 95.9 / BLE 81.8 / ZigBee 99.9",
        ],
    )


def format_result(result: ExperimentResult) -> str:
    rows = []
    for label, report in result["reports"].items():
        row = [label]
        row.extend(f"{report.per_protocol.get(p, 0.0):.3f}" for p in PROTOCOL_ORDER)
        row.append(f"{report.average:.3f}")
        rows.append(row)
    headers = ["panel"] + [p.value for p in PROTOCOL_ORDER] + ["avg"]
    return format_table(headers, rows)


if __name__ == "__main__":
    from repro.experiments.registry import run_preset

    print(run_preset("fig08_sampling", "full").render())
