"""FreeRider model (Zhang et al., CoNEXT'17): multi-protocol codeword
translation, still two-receiver.

FreeRider generalizes Hitchhike's codeword translation to 802.11b/g,
ZigBee and BLE, at the cost of longer effective codewords (multiple
symbols per tag bit), so its raw tag rate is lower; its multi-packet
framing keeps the two receivers better aligned than Hitchhike, but the
fundamental original-channel dependence remains (paper Fig 9a / 15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hitchhike import Hitchhike

__all__ = ["FreeRider"]


@dataclass
class FreeRider(Hitchhike):
    """Two-receiver multi-protocol baseline.

    Differences from :class:`Hitchhike`: one tag bit per 8 symbols
    (longer translation blocks across its supported protocols) and a
    tighter inter-receiver offset distribution.
    """

    bits_per_symbol: float = 1.0 / 8.0
    offset_spread_per_m: float = 0.15
