"""X-Tandem model (Zhao et al., MobiCom'18): multi-hop backscatter
with commodity WiFi.

X-Tandem chains tags: each tag re-backscatters the (already
backscattered) packet and splices its own data in via codeword
translation, so one WiFi packet accumulates data from several tags.
Two properties matter for the paper's comparison (Table 1):

* decoding still requires the original-channel packet (the same
  two-receiver dependence as Hitchhike/FreeRider);
* every additional hop stacks another backscatter reflection loss, so
  RSSI falls geometrically with hop count -- multi-hop buys reach at a
  steep SNR price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hitchhike import Hitchhike
from repro.channel.link import PROTOCOL_LINK_DEFAULTS, ber_dbpsk
from repro.channel.noise import noise_floor_dbm
from repro.channel.pathloss import log_distance_path_loss_db

__all__ = ["XTandem"]


@dataclass
class XTandem(Hitchhike):
    """Multi-hop two-receiver baseline.

    ``n_hops`` tags relay in series, ``d_hop_m`` apart; the receiver
    sits ``d_backscatter_m`` after the last tag.  Each tag contributes
    ``bits_per_symbol`` of its own data per hop, so the *aggregate*
    tag capacity grows with hops while the per-hop SNR shrinks.
    """

    n_hops: int = 2
    #: Tag-to-tag spacing: passive relays only work at very short hops
    #: because every hop multiplies in another full path loss.
    d_hop_m: float = 0.3
    #: Distance from the (high-power) AP to the first tag.
    d_tx_tag1_m: float = 0.5
    #: X-Tandem excites with a strong AP; extra headroom over the
    #: commodity-NIC budget the single-hop systems use.
    tx_boost_db: float = 10.0

    def chain_rssi_dbm(self) -> float:
        """RSSI at the receiver after all hops."""
        budget = PROTOCOL_LINK_DEFAULTS[self.protocol]
        power = budget.tx_power_dbm + self.tx_boost_db + budget.tx_gain_dbi
        power -= log_distance_path_loss_db(self.d_tx_tag1_m)  # AP -> tag 1
        for hop in range(self.n_hops):
            power -= budget.backscatter_loss_db
            if hop < self.n_hops - 1:
                power -= log_distance_path_loss_db(self.d_hop_m)
        # Final segment: last tag to the receiver.
        power -= log_distance_path_loss_db(
            max(self.d_backscatter_m - self.d_hop_m, 0.1)
        )
        return power + budget.rx_gain_dbi + budget.calibration_offset_db

    def backscatter_ber(self) -> float:
        budget = PROTOCOL_LINK_DEFAULTS[self.protocol]
        snr = self.chain_rssi_dbm() - noise_floor_dbm(
            budget.bandwidth_hz, budget.noise_figure_db
        )
        ebn0 = 10.0 ** ((snr + budget.processing_gain_db) / 10.0)
        return ber_dbpsk(ebn0)

    def tag_bits_per_packet(self) -> int:
        """Each hop splices its own translated codewords: the packet's
        tag capacity is shared across the chain, one region per tag."""
        per_tag = int(self.n_payload_bytes * 8 * self.bits_per_symbol) // max(
            self.n_hops, 1
        )
        return per_tag * self.n_hops
