"""Hitchhike model (Zhang et al., SenSys'16): 802.11b codeword
translation with two-receiver decoding.

Hitchhike flips one tag bit per 802.11b DSSS codeword (symbol), giving
high raw tag rates, but decoding XORs the streams of a receiver on the
original channel and one on the shifted channel.  The model reproduces
its two measured weaknesses (paper Fig 9): original-channel occlusion
feeding straight into tag BER, and per-packet modulation offsets
between the unsynchronized receivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.codeword import TwoReceiverDecoder
from repro.channel import pathloss
from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink, ber_dbpsk
from repro.channel.noise import noise_floor_dbm
from repro.channel.occlusion import Material, OccludedChannel
from repro.phy.protocols import Protocol
from repro.rng import fallback_rng
from repro.sim.traffic import packet_airtime_s

__all__ = ["Hitchhike"]


@dataclass
class Hitchhike:
    """Two-receiver 802.11b backscatter baseline.

    Geometry defaults follow the paper's occlusion experiments: the
    original-channel receiver sits ``d_original_m`` from the
    transmitter behind the (optional) obstruction; the backscatter
    receiver is ``d_backscatter_m`` from the tag with a clear path.
    ``original_margin_db`` is the clear-sky SNR margin of the original
    link above its decoding threshold -- occlusion eats into it.
    """

    protocol: Protocol = Protocol.WIFI_B
    d_original_m: float = 8.0
    d_backscatter_m: float = 2.0
    original_margin_db: float = 4.0
    n_payload_bytes: int = 300
    #: Tag bits per PHY symbol (codeword translation: 1 per codeword).
    bits_per_symbol: float = 1.0
    #: Spread of the inter-receiver modulation offset, symbols per
    #: meter of range (Fig 9b: offsets grow to ~8 symbols).
    offset_spread_per_m: float = 0.42
    _rng: np.random.Generator = field(
        default_factory=lambda: fallback_rng(None), repr=False
    )

    # ------------------------------------------------------------------
    # original channel quality
    # ------------------------------------------------------------------
    def original_channel(self, material: Material) -> OccludedChannel:
        return OccludedChannel(material)

    def _original_snr_db(self, loss_db: float) -> float:
        """Original-link SNR after the sampled occlusion loss.

        The clear-path link is provisioned ``original_margin_db`` above
        the DBPSK waterfall's knee, as a realistic marginal indoor
        deployment (the paper's walls are what push it under).
        """
        budget = PROTOCOL_LINK_DEFAULTS[self.protocol]
        knee_snr = 7.0 - budget.processing_gain_db  # Eb/N0 ~ 7 dB knee
        return knee_snr + self.original_margin_db - loss_db

    def original_packet_stats(
        self, material: Material, rng: np.random.Generator, n_packets: int = 200
    ) -> tuple[float, float]:
        """(mean BER of received packets, packet loss rate) of the
        original channel via Monte Carlo over shadowing."""
        chan = self.original_channel(material)
        budget = PROTOCOL_LINK_DEFAULTS[self.protocol]
        bers = []
        lost = 0
        n_bits = self.n_payload_bytes * 8
        for _ in range(n_packets):
            loss = chan.sample_loss_db(rng)
            snr = self._original_snr_db(loss)
            ebn0 = 10.0 ** ((snr + budget.processing_gain_db) / 10.0)
            ber = ber_dbpsk(ebn0)
            # Preamble miss: a deeply faded packet is not detected.
            if ber > 0.08:
                lost += 1
                continue
            bers.append(ber)
        loss_rate = lost / n_packets
        mean_ber = float(np.mean(bers)) if bers else 0.5
        return mean_ber, loss_rate

    # ------------------------------------------------------------------
    # backscatter channel quality
    # ------------------------------------------------------------------
    def backscatter_ber(self) -> float:
        link = BackscatterLink(PROTOCOL_LINK_DEFAULTS[self.protocol])
        return link.ber(self.d_backscatter_m)

    # ------------------------------------------------------------------
    # the two measured defects
    # ------------------------------------------------------------------
    def sample_offset(self, distance_m: float, rng: np.random.Generator) -> int:
        """Modulation offset (symbols) between the two receivers at a
        given range (Fig 9b): grows with distance, capped at 8."""
        spread = max(self.offset_spread_per_m * distance_m, 0.05)
        offset = int(round(abs(rng.normal(scale=spread))))
        return min(offset, 8)

    def offset_aligned_probability(
        self, distance_m: float, rng: np.random.Generator, n_samples: int = 2000
    ) -> float:
        """Fraction of packets whose offset happens to be zero."""
        hits = sum(
            1 for _ in range(n_samples) if self.sample_offset(distance_m, rng) == 0
        )
        return hits / n_samples

    def tag_ber(
        self,
        material: Material,
        rng: np.random.Generator,
        *,
        n_packets: int = 200,
    ) -> float:
        """Fig 9a: tag-data BER as a function of original-channel
        occlusion (perfect receiver alignment assumed)."""
        orig_ber, loss_rate = self.original_packet_stats(material, rng, n_packets)
        decoder = TwoReceiverDecoder(
            original_ber=orig_ber,
            backscatter_ber=self.backscatter_ber(),
            original_loss_rate=loss_rate,
        )
        return decoder.tag_bit_error_rate()

    # ------------------------------------------------------------------
    # throughput (Fig 15)
    # ------------------------------------------------------------------
    def tag_bits_per_packet(self) -> int:
        return int(self.n_payload_bytes * 8 * self.bits_per_symbol)

    def saturated_packet_rate(self) -> float:
        return 1.0 / (packet_airtime_s(self.protocol, self.n_payload_bytes) + 150e-6)

    def tag_throughput_kbps(
        self,
        material: Material,
        rng: np.random.Generator,
        *,
        n_packets: int = 500,
    ) -> float:
        """Delivered tag goodput with the original channel occluded
        (Fig 15): bits survive only when the original packet arrived,
        the two receivers happened to align, and the XOR was clean."""
        orig_ber, loss_rate = self.original_packet_stats(material, rng, n_packets)
        back_ber = self.backscatter_ber()
        decoder = TwoReceiverDecoder(
            original_ber=orig_ber,
            backscatter_ber=back_ber,
            original_loss_rate=0.0,  # loss handled as a rate factor
        )
        per_bit = decoder.tag_bit_error_rate()
        n_bits = self.tag_bits_per_packet()
        p_aligned = self.offset_aligned_probability(self.d_original_m, rng)
        rate = self.saturated_packet_rate()
        goodput = (
            n_bits
            * rate
            * (1.0 - loss_rate)
            * p_aligned
            * max(1.0 - 2.0 * per_bit, 0.0)
        )
        return goodput / 1e3