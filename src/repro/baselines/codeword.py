"""Codeword-translation primitives shared by Hitchhike and FreeRider.

Codeword translation (Hitchhike's key idea) flips valid codewords into
other valid codewords; the tag data is the flip pattern.  Recovering
the flips requires the *original* codeword stream, which these systems
obtain from a second receiver parked on the original channel:

    tag_bits = codewords(original RX) XOR codewords(backscatter RX)

Two practical defects follow (paper §2.4.1 / Fig 9):

* the original stream inherits the original channel's errors and
  losses, so occlusion of that channel corrupts tag data even when the
  backscattered packet is error-free;
* the two receivers are not symbol-synchronized, so the XOR can be
  misaligned by several codewords ("modulation offset").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["xor_decode", "TwoReceiverDecoder"]


def xor_decode(
    original: np.ndarray, backscattered: np.ndarray, offset: int = 0
) -> np.ndarray:
    """XOR the two codeword streams with a symbol ``offset`` misalignment.

    ``offset`` > 0 means the backscatter receiver's stream lags: its
    codeword *i* is compared against original codeword *i - offset*.
    Out-of-range comparisons decode as zeros (what a real implementation
    emits when it runs off the end).
    """
    a = np.asarray(original, dtype=np.uint8)
    b = np.asarray(backscattered, dtype=np.uint8)
    n = min(a.size, b.size)
    out = np.zeros(n, dtype=np.uint8)
    for i in range(n):
        j = i - offset
        if 0 <= j < a.size:
            out[i] = b[i] ^ a[j]
    return out


@dataclass
class TwoReceiverDecoder:
    """Bit-level Monte-Carlo model of two-receiver tag decoding.

    ``original_ber``/``backscatter_ber`` are the channels' raw bit
    error rates; ``original_loss_rate`` the probability the original
    packet is entirely lost (preamble miss under deep fade).  When the
    original packet is lost, the tag data of that packet is
    unrecoverable -- there is nothing to XOR against.
    """

    original_ber: float
    backscatter_ber: float
    original_loss_rate: float = 0.0

    def tag_bit_error_rate(self) -> float:
        """Closed form: a tag bit errs if exactly one stream erred, and
        is a coin flip when the original packet is lost."""
        p1, p2 = self.original_ber, self.backscatter_ber
        per_bit = p1 * (1 - p2) + p2 * (1 - p1)
        return float(
            self.original_loss_rate * 0.5 + (1 - self.original_loss_rate) * per_bit
        )

    def simulate_packet(
        self,
        tag_bits: np.ndarray,
        rng: np.random.Generator,
        *,
        offset: int = 0,
    ) -> np.ndarray | None:
        """One packet's decode; ``None`` when the original was lost."""
        bits = np.asarray(tag_bits, dtype=np.uint8)
        if rng.uniform() < self.original_loss_rate:
            return None
        carrier = rng.integers(0, 2, bits.size).astype(np.uint8)
        onair = carrier ^ bits
        rx_orig = carrier ^ (rng.uniform(size=bits.size) < self.original_ber)
        rx_back = onair ^ (rng.uniform(size=bits.size) < self.backscatter_ber)
        return xor_decode(
            rx_orig.astype(np.uint8), rx_back.astype(np.uint8), offset=offset
        )
