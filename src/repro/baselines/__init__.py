"""Prior-art baselines: Hitchhike and FreeRider (two-receiver decoding).

Both systems modulate tag data by codeword translation, but decoding
XORs codewords captured by *two* receivers -- one on the original
channel, one on the backscatter channel.  The models here reproduce
the two failure modes the paper measures (Fig 9): BER blow-up when the
original channel is occluded, and symbol-level modulation offsets
between the two receivers.
"""

from repro.baselines.codeword import TwoReceiverDecoder, xor_decode
from repro.baselines.hitchhike import Hitchhike
from repro.baselines.freerider import FreeRider
from repro.baselines.xtandem import XTandem

__all__ = ["TwoReceiverDecoder", "xor_decode", "Hitchhike", "FreeRider", "XTandem"]
