"""Shared array type aliases for the reproduction.

These names make the dtype invariants of the signal chain visible in
signatures (and checkable by mypy + reprolint R003):

* ``ComplexIQ`` — 1-D complex-baseband samples, always ``complex128``
  (:class:`repro.phy.waveform.Waveform` normalizes to this on
  construction; kernels must not silently narrow or widen).
* ``FloatArray`` — real-valued traces: envelopes, voltages, scores.
* ``BitArray`` — on-air / payload bits, ``uint8`` with values {0, 1}.
* ``ChipArray`` — spread-spectrum chip streams (ZigBee 32-chip PN
  sequences, 802.11b Barker/CCK), ``uint8`` or ±1 ``float64``
  depending on the stage; the alias marks intent, the contracts in
  :mod:`repro.core.contracts` check the concrete dtype at entry
  points.
* ``IntArray`` — indices, symbol codes, ADC codes.

``numpy.typing.NDArray`` is parameterized by *scalar* type only, so
1-D-ness is asserted by the runtime contracts rather than the static
aliases.

Scalar quantities carry physical units instead of dtypes; the
``Annotated`` unit vocabulary for those (``Hertz``, ``Seconds``,
``Samples``, ``Decibels``, ...) lives in :mod:`repro.types.units` and
is checked by the :mod:`tools.reproflow` dataflow analyzer.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

from repro.types.units import (
    Bits,
    Bytes,
    Chips,
    DbmPower,
    Decibels,
    Hertz,
    Meters,
    Microseconds,
    Milliwatts,
    Ratio,
    Samples,
    Seconds,
    Symbols,
    Unit,
    Volts,
    Watts,
)

__all__ = [
    "ComplexIQ",
    "FloatArray",
    "BitArray",
    "ChipArray",
    "IntArray",
    # unit vocabulary (repro.types.units)
    "Unit",
    "Hertz",
    "Seconds",
    "Microseconds",
    "Samples",
    "Chips",
    "Symbols",
    "Bits",
    "Bytes",
    "Decibels",
    "DbmPower",
    "Milliwatts",
    "Watts",
    "Volts",
    "Meters",
    "Ratio",
]

ComplexIQ: TypeAlias = npt.NDArray[np.complex128]
FloatArray: TypeAlias = npt.NDArray[np.float64]
BitArray: TypeAlias = npt.NDArray[np.uint8]
ChipArray: TypeAlias = npt.NDArray[np.uint8]
IntArray: TypeAlias = npt.NDArray[np.int64]
