"""Physical-unit annotation vocabulary for the reproduction.

Multiscatter's correctness hinges on quantity bookkeeping across
layers: ADC sample rates vs. protocol chip rates (§2.2–§2.3
identification), κ/γ symbol counts in overlay modulation (§2.4), and
dB-vs-linear SNR in the channel.  The aliases here make those
quantities visible in signatures — ``def capture(duration_s: Seconds)``
— and feed :mod:`tools.reproflow`, the whole-program dataflow analyzer
that propagates them through assignments, arithmetic, and call
boundaries (U-series rules, docs/STATIC_ANALYSIS.md).

Each alias is ``Annotated[float-or-int, <Unit marker>]``: at runtime
and under mypy it is exactly ``float``/``int``, so adopting the
vocabulary never changes behavior.  reproflow recognizes both the
alias *names* in annotations and the naming-convention seeds
(``_hz``/``_us``/``_db`` suffixes, ``sample_rate``-style well-known
names) listed in ``tools/reproflow/unitlattice.py``.

Two deliberate modeling choices:

* **Scale variants are distinct units.**  ``Seconds`` and
  ``Microseconds`` are both time, but ``window_us + duration_s`` is
  exactly the silent 1e6 bug this vocabulary exists to catch, so the
  lattice keeps them apart.
* **Log-domain quantities are their own family.**  ``Decibels``
  (relative gain/loss) and ``DbmPower`` (absolute log power) may be
  combined with each other (dBm + dB = dBm, dBm − dBm = dB) but never
  with linear-power quantities (U002).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated, TypeAlias

__all__ = [
    "Unit",
    "HZ",
    "S",
    "US",
    "SAMPLES",
    "CHIPS",
    "SYMBOLS",
    "BITS",
    "BYTES",
    "DB",
    "DBM",
    "MILLIWATTS",
    "WATTS",
    "VOLTS",
    "METERS",
    "RATIO",
    "Hertz",
    "Seconds",
    "Microseconds",
    "Samples",
    "Chips",
    "Symbols",
    "Bits",
    "Bytes",
    "Decibels",
    "DbmPower",
    "Milliwatts",
    "Watts",
    "Volts",
    "Meters",
    "Ratio",
]


@dataclass(frozen=True)
class Unit:
    """A unit marker carried in ``Annotated`` metadata.

    ``symbol`` is the canonical short name (also what reproflow prints
    in findings); ``dimension`` groups scale variants of one physical
    dimension (``s`` and ``us`` are both ``time``) and log-domain
    families (``db``/``dbm`` are both ``log-power``).
    """

    symbol: str
    dimension: str

    def __repr__(self) -> str:
        return f"Unit({self.symbol!r})"


HZ = Unit("Hz", "rate")
S = Unit("s", "time")
US = Unit("us", "time")
SAMPLES = Unit("samples", "count")
CHIPS = Unit("chips", "count")
SYMBOLS = Unit("symbols", "count")
BITS = Unit("bits", "count")
BYTES = Unit("bytes", "count")
DB = Unit("dB", "log-power")
DBM = Unit("dBm", "log-power")
MILLIWATTS = Unit("mW", "linear-power")
WATTS = Unit("W", "linear-power")
VOLTS = Unit("V", "voltage")
METERS = Unit("m", "length")
RATIO = Unit("ratio", "dimensionless")

#: Frequencies and rates: sample rates, chip rates, CFO, bandwidths.
Hertz: TypeAlias = Annotated[float, HZ]

#: Wall-clock / on-air durations in seconds.
Seconds: TypeAlias = Annotated[float, S]

#: Window lengths and short intervals in microseconds (the paper's
#: natural scale for L_p/L_m windows; distinct from :data:`Seconds`).
Microseconds: TypeAlias = Annotated[float, US]

#: ADC / baseband sample counts and indices measured in samples.
Samples: TypeAlias = Annotated[int, SAMPLES]

#: Spread-spectrum chip counts (ZigBee 32-chip PN, 802.11b Barker/CCK).
Chips: TypeAlias = Annotated[int, CHIPS]

#: PHY symbol counts (κ/γ overlay accounting, OFDM symbols).
Symbols: TypeAlias = Annotated[int, SYMBOLS]

#: Bit counts (payload, PSDU, tag bits).
Bits: TypeAlias = Annotated[int, BITS]

#: Byte counts (payload sizes).
Bytes: TypeAlias = Annotated[int, BYTES]

#: Relative log-domain gain/loss (SNR, path loss, antenna gain).
Decibels: TypeAlias = Annotated[float, DB]

#: Absolute log-domain power referenced to 1 mW.
DbmPower: TypeAlias = Annotated[float, DBM]

#: Absolute linear power in milliwatts (0 dBm == 1 mW).
Milliwatts: TypeAlias = Annotated[float, MILLIWATTS]

#: Absolute linear power in watts.
Watts: TypeAlias = Annotated[float, WATTS]

#: Analog voltages (rectifier output, ADC reference).
Volts: TypeAlias = Annotated[float, VOLTS]

#: Distances in meters.
Meters: TypeAlias = Annotated[float, METERS]

#: Dimensionless ratios and fractions (duty cycles, efficiencies,
#: normalized correlation scores, samples-per-symbol factors).
Ratio: TypeAlias = Annotated[float, RATIO]
