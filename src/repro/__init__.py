"""multiscatter: multiprotocol backscatter for personal IoT sensors.

A signal-level Python reproduction of Gong, Yuan, Wang & Zhao,
"Multiprotocol Backscatter for Personal IoT Sensors" (CoNEXT 2020).

Package layout:

* :mod:`repro.phy`         -- 802.11b/n, BLE, ZigBee modems + sync
* :mod:`repro.channel`     -- path loss, noise, fading, link budgets
* :mod:`repro.core`        -- the multiscatter tag (identification,
  overlay modulation, energy, resources)
* :mod:`repro.baselines`   -- Hitchhike / FreeRider comparison models
* :mod:`repro.sim`         -- traffic, scenes, geometry, system loop
* :mod:`repro.experiments` -- one module per paper table/figure

Run ``python -m repro list`` for the experiment catalogue.
"""

__version__ = "1.0.0"

import os as _os

if _os.environ.get("REPRO_PERF", "") not in ("", "0"):
    # Arms the atexit perf report (timers/counters/cache hit rates).
    from repro import perf as _perf  # noqa: F401
