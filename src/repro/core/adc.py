"""Tag ADC model (AD9235 in the prototype, §3).

Samples a rectifier's baseband voltage at a configurable rate and
resolution.  Three paper-relevant behaviours:

* **rate**: 20 Msps down to 1 Msps (the Fig 7/8 sweeps);
* **reference voltage tuning** (§2.3 note 3): codes are spread over
  [0, v_ref], so matching v_ref to the input's full-scale range uses
  more of the output codes;
* **EN duty-cycling** (§2.3 note 1): the FPGA gates the ADC between
  packets; modeled as an enable window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import FloatArray, Hertz, Seconds, Volts
from scipy import signal as sp_signal

from repro.core.rectifier import RectifierOutput

__all__ = ["Adc", "AdcCapture"]


@dataclass
class AdcCapture:
    """Digitized baseband: integer codes plus acquisition metadata."""

    codes: np.ndarray
    sample_rate: Hertz
    v_ref: Volts
    n_bits: int

    def volts(self) -> FloatArray:
        """Codes converted back to volts."""
        full_scale = (1 << self.n_bits) - 1
        return self.codes.astype(float) * self.v_ref / full_scale


@dataclass(frozen=True)
class Adc:
    """A sampling + quantization stage.

    ``sample_rate`` is the output rate (samples are taken at uniform
    times via linear interpolation of the analog trace, so any
    rectifier-side rate is accepted).  ``n_bits`` is the code width
    (the paper's correlator uses 9 of the AD9235's bits).
    """

    sample_rate: Hertz = 20e6
    n_bits: int = 9
    v_ref: Volts = 0.25
    antialias: bool = True

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if not 1 <= self.n_bits <= 16:
            raise ValueError("n_bits must be in 1..16")
        if self.v_ref <= 0:
            raise ValueError("v_ref must be positive")

    def _bandlimit(self, analog: RectifierOutput) -> FloatArray:
        """Anti-aliasing low-pass of the ADC driver stage.

        The converter's input network band-limits the envelope to
        ~0.4x the sampling rate; without this, sub-sample timing
        jitter aliases the fast DSSS/OFDM envelope ripple into noise
        and template correlation collapses at low rates.
        """
        cutoff = 0.4 * self.sample_rate
        nyq = analog.sample_rate / 2.0
        if not self.antialias or cutoff >= nyq:
            return analog.voltage
        sos = sp_signal.butter(4, cutoff / nyq, output="sos")
        # Start the filter in steady state at the first sample's level
        # so the capture window is not polluted by a startup ramp.
        zi = sp_signal.sosfilt_zi(sos) * analog.voltage[0] if analog.voltage.size else None
        if zi is None:
            return analog.voltage
        filtered, _ = sp_signal.sosfilt(sos, analog.voltage, zi=zi)
        return filtered

    def capture(
        self,
        analog: RectifierOutput,
        *,
        start_s: Seconds = 0.0,
        duration_s: Seconds | None = None,
        phase_s: Seconds = 0.0,
    ) -> AdcCapture:
        """Digitize ``analog`` from ``start_s`` for ``duration_s``.

        ``phase_s`` offsets the sampling grid (sub-sample timing is not
        synchronized to the packet in a real tag).
        """
        total_s = analog.voltage.size / analog.sample_rate
        if duration_s is None:
            duration_s = total_s - start_s
        t0 = start_s + phase_s
        n_out = max(int(np.floor(duration_s * self.sample_rate)), 0)
        times = t0 + np.arange(n_out) / self.sample_rate
        times = np.clip(times, 0.0, total_s - 1.0 / analog.sample_rate)
        src_t = np.arange(analog.voltage.size) / analog.sample_rate
        volts = np.interp(times, src_t, self._bandlimit(analog))
        full_scale = (1 << self.n_bits) - 1
        codes = np.clip(
            np.round(volts / self.v_ref * full_scale), 0, full_scale
        ).astype(np.int32)
        return AdcCapture(
            codes=codes,
            sample_rate=self.sample_rate,
            v_ref=self.v_ref,
            n_bits=self.n_bits,
        )

    def tuned_to(self, full_scale_v: Volts) -> "Adc":
        """Reference-voltage tuning (§2.3 note 3): match v_ref to the
        input's full-scale range so more output codes are used."""
        if full_scale_v <= 0:
            raise ValueError("full_scale_v must be positive")
        return Adc(
            sample_rate=self.sample_rate, n_bits=self.n_bits, v_ref=full_scale_v
        )
