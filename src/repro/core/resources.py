"""FPGA resource and power models (paper Tables 2 and 5).

The paper motivates 1-bit quantization by counting D-flip-flops: a
9x9 multiplier costs 259 DFFs and a 9x9 adder 19 DFFs, so naive
4-template correlation at template size 120 needs 133,364 DFFs --
far beyond the AGLN250's 6,144.  Quantizing samples to +-1 turns the
correlator into adder trees (2,860 DFFs).

Table 5 reports simulated Artix-7 power/LUTs for three identification
variants; the LUT and power coefficients here are fitted once to the
paper's published triples and then used for every configuration the
benchmarks sweep (an affine model in tap count and toggle rate).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.types import Hertz, Microseconds, Milliwatts, Samples

__all__ = [
    "DFF_PER_MULT_9X9",
    "DFF_PER_ADD_9X9",
    "AGLN250_DFF",
    "AGLN250_STORAGE_BITS",
    "naive_correlator_dffs",
    "quantized_correlator_dffs",
    "CorrelatorDesign",
    "identification_power_mw",
    "identification_luts",
]

#: Per-element DFF costs quoted in §2.3.1.
DFF_PER_MULT_9X9 = 259
DFF_PER_ADD_9X9 = 19

#: Igloo nano AGLN250 limits (§2.1, §2.3).
AGLN250_DFF = 6144
AGLN250_STORAGE_BITS = 36 * 1024

#: Fitted quantized-correlator DFF cost per template tap (calibrated to
#: the paper's 2,860 DFFs for 4 x 120 taps: popcount trees plus shared
#: control).
_DFF_PER_QUANT_TAP = 2860 / (4 * 120)

# Table 5 fit: LUTs = _LUT_BASE + taps * per-tap cost.
_LUT_BASE = 230.0
_LUT_PER_TAP_QUANT = (1574.0 - 230.0) / 640.0  # 2.1
_LUT_PER_TAP_FULL = (34751.0 - 230.0) / 640.0  # 53.9

# Table 5 fit: power = static + c * LUTs * f_sample (multipliers toggle
# harder than adder trees).
_POWER_STATIC_MW = 1.07
_POWER_PER_LUT_MHZ_QUANT = 3.472e-4
_POWER_PER_LUT_MHZ_FULL = 8.09e-4


def _deprecated_size(
    new: int | None, old: int | None, func: str
) -> int:
    """Resolve the deprecated ``template_size=`` keyword alias."""
    if old is not None:
        warnings.warn(
            f"{func}(template_size=...) is deprecated; "
            "use template_size_samples=...",
            DeprecationWarning,
            stacklevel=3,
        )
        if new is None:
            new = old
    if new is None:
        raise TypeError(f"{func}() missing argument 'template_size_samples'")
    return new


def naive_correlator_dffs(
    template_size_samples: Samples | None = None,
    n_protocols: int = 4,
    *,
    template_size: int | None = None,  # reproflow: disable=U004
) -> dict[str, int]:
    """Table 2's naive implementation: full-precision correlation.

    Returns the per-protocol and total resource counts.
    ``template_size=`` is a deprecated alias of ``template_size_samples=``.
    """
    template_size_samples = _deprecated_size(
        template_size_samples, template_size, "naive_correlator_dffs"
    )
    if template_size_samples < 1 or n_protocols < 1:
        raise ValueError("template_size_samples and n_protocols must be positive")
    mults = template_size_samples
    adds = template_size_samples - 1
    per_protocol = mults * DFF_PER_MULT_9X9 + adds * DFF_PER_ADD_9X9
    return {
        "multipliers": mults * n_protocols,
        "adders": adds * n_protocols,
        "dffs_per_protocol": per_protocol,
        "dffs_total": per_protocol * n_protocols,
    }


def quantized_correlator_dffs(
    template_size_samples: Samples | None = None,
    n_protocols: int = 4,
    *,
    template_size: int | None = None,  # reproflow: disable=U004
) -> int:
    """The nano implementation: +-1 samples, adders only (Table 2).

    ``template_size=`` is a deprecated alias of ``template_size_samples=``.
    """
    template_size_samples = _deprecated_size(
        template_size_samples, template_size, "quantized_correlator_dffs"
    )
    if template_size_samples < 1 or n_protocols < 1:
        raise ValueError("template_size_samples and n_protocols must be positive")
    return round(_DFF_PER_QUANT_TAP * template_size_samples * n_protocols)


def identification_luts(total_taps: int, *, quantized: bool) -> int:
    """Artix-7 LUT estimate for a correlator with ``total_taps`` taps
    across all templates (Table 5 fit)."""
    if total_taps < 1:
        raise ValueError("total_taps must be positive")
    per_tap = _LUT_PER_TAP_QUANT if quantized else _LUT_PER_TAP_FULL
    return round(_LUT_BASE + per_tap * total_taps)


def identification_power_mw(
    total_taps: int, sample_rate_hz: Hertz, *, quantized: bool
) -> Milliwatts:
    """Artix-7 dynamic+static power estimate (Table 5 fit)."""
    if sample_rate_hz <= 0:
        raise ValueError("sample_rate_hz must be positive")
    luts = identification_luts(total_taps, quantized=quantized)
    c = _POWER_PER_LUT_MHZ_QUANT if quantized else _POWER_PER_LUT_MHZ_FULL
    return _POWER_STATIC_MW + c * luts * (sample_rate_hz / 1e6)


@dataclass(frozen=True)
class CorrelatorDesign:
    """A concrete identification design point.

    ``window_us`` and ``sample_rate_hz`` determine the per-template tap
    count; resource properties answer "does this fit the AGLN250?" and
    "what would it cost on the Artix-7?".
    """

    sample_rate_hz: Hertz
    window_us: Microseconds
    quantized: bool
    n_protocols: int = 4

    @property
    def taps_per_template(self) -> int:
        return max(int(round(self.window_us * 1e-6 * self.sample_rate_hz)), 1)

    @property
    def total_taps(self) -> int:
        return self.taps_per_template * self.n_protocols

    @property
    def dffs(self) -> int:
        if self.quantized:
            return quantized_correlator_dffs(self.taps_per_template, self.n_protocols)
        return naive_correlator_dffs(self.taps_per_template, self.n_protocols)[
            "dffs_total"
        ]

    @property
    def template_storage_bits(self) -> int:
        """1 bit per tap per template when quantized, 9 bits otherwise."""
        bits = 1 if self.quantized else 9
        return self.total_taps * bits

    def fits_agln250(self) -> bool:
        return (
            self.dffs <= AGLN250_DFF
            and self.template_storage_bits <= AGLN250_STORAGE_BITS
        )

    @property
    def luts(self) -> int:
        return identification_luts(self.total_taps, quantized=self.quantized)

    @property
    def power_mw(self) -> float:
        return identification_power_mw(
            self.total_taps, self.sample_rate_hz, quantized=self.quantized
        )
