"""Tag-side backscatter modulation on IQ waveforms (paper §2.4).

The tag is a reflector: it can toggle its antenna impedance, which at
complex baseband means multiplying the incident waveform by a
switching function.  Per protocol:

* **802.11b** (DSSS-PSK): a pi phase toggle per DSSS symbol.  Because
  the receiver decodes differentially, the tag *differentially
  precodes* its flip stream -- it toggles its phase state at the start
  of every symbol whose demodulated bit should flip, which is exactly
  the natural behaviour of holding a reflection phase until the next
  toggle.
* **802.11n** (OFDM): a pi flip across the whole OFDM symbol(s) of a
  gamma-group.
* **ZigBee** (OQPSK): a pi flip across whole PN symbols; the half-chip
  I/Q offset means the flip boundary cuts one Q pulse, damaging at
  most the boundary symbol -- the reason gamma must be >= 2-3 (§2.4
  "ZigBee").
* **BLE** (GFSK): the tag toggles at f_shift +- 500 kHz; the surviving
  mixing sideband mirrors the symbol's frequency deviation, turning a
  1 into a 0 (§2.4 "Bluetooth").  At complex baseband the mirrored
  sideband is the conjugate of the original signal.

``frequency_shift_hz`` moves the backscattered packet to an adjacent
channel to avoid self-interference with the excitation (§2.4, footnote
6-7); the receiver listens on the shifted channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.overlay import OverlayCodec
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform

__all__ = ["TagModulator", "DEFAULT_SHIFT_HZ", "BLE_DELTA_F_HZ"]

#: Default backscatter frequency shift (one WiFi channel spacing would
#: be 5 MHz; tags commonly shift by 10-20 MHz.  The simulation treats
#: the shifted channel as clean, so the value only needs to be nonzero
#: to model the retune).
DEFAULT_SHIFT_HZ = 10e6

#: BLE tag-data FSK offset: Delta f = 500 kHz turns f0 into f1 (§2.4).
BLE_DELTA_F_HZ = 500e3


@dataclass
class TagModulator:
    """Applies overlay tag modulation to an excitation waveform.

    ``codec`` provides the flip layout (which payload symbols encode
    which tag bit); this class turns flags into waveform operations.

    ``clock_ppm`` models the tag's oscillator error: the tag times its
    symbol boundaries off its own 20 MHz clock, so a frequency error
    of e ppm makes the k-th boundary drift by ``k * T_sym * e * 1e-6``
    -- the same physics behind Hitchhike's inter-receiver modulation
    offsets (Fig 9b), here bounded by the tag's per-packet resync at
    the identified preamble.
    """

    codec: OverlayCodec
    frequency_shift_hz: float = DEFAULT_SHIFT_HZ
    clock_ppm: float = 0.0

    def _payload_symbol_span(self, wave: Waveform, index: int) -> tuple[int, int]:
        start = wave.annotations["payload_start"]
        sym = wave.annotations["samples_per_symbol"]
        lo = start + index * sym
        hi = lo + sym
        if self.clock_ppm:
            # Boundaries drift linearly from the (resynced) packet head.
            drift = self.clock_ppm * 1e-6
            lo = start + int(round(index * sym * (1.0 + drift)))
            hi = start + int(round((index + 1) * sym * (1.0 + drift)))
        return lo, hi

    def modulate(
        self, wave: Waveform, tag_bits: np.ndarray | list[int]
    ) -> Waveform:
        """Backscatter ``tag_bits`` onto ``wave``.

        Returns the tag's reflected waveform (channel effects are
        applied separately).  The frequency shift is tracked via the
        waveform's ``center_offset_hz`` so the receiver model knows
        where to listen.
        """
        protocol = self.codec.config.protocol
        ann = wave.annotations
        if ann.get("protocol") is not protocol:
            raise ValueError(
                f"waveform protocol {ann.get('protocol')} does not match "
                f"codec protocol {protocol}"
            )
        n_symbols = ann["n_payload_symbols"]
        flags = self.codec.tag_flip_flags(tag_bits, n_symbols)
        out = wave.copy()

        if protocol in (Protocol.WIFI_N, Protocol.ZIGBEE):
            for idx in np.flatnonzero(flags):
                lo, hi = self._payload_symbol_span(wave, int(idx))
                out.iq[lo:hi] *= -1.0
        elif protocol is Protocol.WIFI_B:
            # Differential precoding: phase state toggles at flip starts.
            state = np.cumsum(flags.astype(int)) % 2
            for idx in np.flatnonzero(state):
                lo, hi = self._payload_symbol_span(wave, int(idx))
                out.iq[lo:hi] *= -1.0
        elif protocol is Protocol.BLE:
            # Mirror contiguous runs of flagged symbols as one segment:
            # the tag holds a single toggling mode across the run, so
            # the mirrored waveform is phase-continuous inside it
            # (per-symbol phase patching would shatter the spectrum).
            idx = np.flatnonzero(flags)
            run_start = None
            prev = None
            runs: list[tuple[int, int]] = []
            for i in idx:
                if run_start is None:
                    run_start = prev = int(i)
                elif i == prev + 1:
                    prev = int(i)
                else:
                    runs.append((run_start, prev))
                    run_start = prev = int(i)
            if run_start is not None:
                runs.append((run_start, prev))
            for a, b in runs:
                lo, _ = self._payload_symbol_span(wave, a)
                _, hi = self._payload_symbol_span(wave, b)
                seg = out.iq[lo:hi]
                # Surviving sideband of the f +- 500 kHz toggle: the
                # spectrum mirrors, swapping f0 and f1.  Preserve the
                # boundary phase so the discriminator only glitches
                # once per run edge.
                mirrored = np.conj(seg)
                if mirrored.size:
                    mirrored *= np.exp(2j * np.angle(seg[0]))
                out.iq[lo:hi] = mirrored
        else:  # pragma: no cover - exhaustive over Protocol
            raise ValueError(f"unsupported protocol {protocol}")

        if self.frequency_shift_hz:
            out = out.frequency_shifted(self.frequency_shift_hz)
        return out.with_annotations(tag_flip_flags=flags)

    def received_at_shifted_channel(self, wave: Waveform) -> Waveform:
        """The receiver retunes to the shifted channel: undo the shift
        so the PHY demodulators (which expect centered baseband) apply."""
        if not self.frequency_shift_hz:
            return wave
        return wave.frequency_shifted(-self.frequency_shift_hz)
