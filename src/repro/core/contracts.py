"""Lightweight runtime array contracts for PHY/matcher entry points.

The reproduction's invariants are *shape and dtype* invariants: a
ZigBee symbol is exactly 32 chips, a waveform is 1-D ``complex128``,
an on-air bit array is ``uint8``.  The :func:`shapes` and
:func:`dtypes` decorators make those contracts executable without
taxing the hot path:

* **Disabled (the default)** the decorators return the wrapped
  function *unchanged* — zero wrapper, zero overhead, byte-identical
  behavior.  Enable by setting ``REPRO_CONTRACTS=1`` in the
  environment before import, or calling :func:`set_enabled` before the
  decorated module is imported (tests use :func:`checked` instead,
  which binds eagerly).
* **Enabled** each call validates ndarray positional arguments (and
  optionally the return value) and raises :class:`ContractError` with
  the offending argument, expected and actual shape/dtype.

Shape mini-language (``shapes``)::

    @shapes("n_sym,64 -> n_sym*80")     # (n_sym, 64) in, (n_sym*80,) out
    @shapes("n ; n -> n")               # two 1-D inputs of equal length
    @shapes("n_bits ->")                # input-only contract

Dimensions are integer literals (checked exactly), symbol names (bound
on first sight, checked for consistency after), ``_`` (wildcard), or
arithmetic over previously-bound symbols (``n_sym*80``, ``n+2``) —
expressions are evaluated with the bound symbols once all inputs are
seen, so they are most useful on the output side.  ``;`` separates
consecutive ndarray positional arguments; non-array positionals are
skipped when matching specs to arguments.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterator, Sequence, TypeVar

import numpy as np

__all__ = [
    "ContractError",
    "enabled",
    "set_enabled",
    "shapes",
    "dtypes",
    "checked",
]

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = {"1", "true", "yes", "on"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "0").strip().lower() in _TRUTHY


_ENABLED: bool = _env_enabled()


class ContractError(TypeError):
    """An array argument or return value violated a declared contract."""


def enabled() -> bool:
    """Whether contract decorators are active (``REPRO_CONTRACTS``)."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Toggle contract checking for *subsequently decorated* functions.

    Functions decorated while checking was disabled stay unwrapped (the
    zero-overhead guarantee cuts both ways); use :func:`checked` to
    build an always-validating wrapper explicitly, e.g. in tests.
    """
    global _ENABLED
    _ENABLED = bool(flag)


# ----------------------------------------------------------------------
# shape spec parsing
# ----------------------------------------------------------------------
def _parse_spec(spec: str) -> tuple[list[list[str]], list[str] | None]:
    """``"n,64 ; m -> n*80"`` -> ([["n","64"], ["m"]], ["n*80"])."""
    if "->" in spec:
        lhs, _, rhs = spec.partition("->")
        rhs = rhs.strip()
        out_dims = [d.strip() for d in rhs.split(",") if d.strip()] if rhs else None
    else:
        lhs, out_dims = spec, None
    in_specs: list[list[str]] = []
    lhs = lhs.strip()
    if lhs:
        for arg_spec in lhs.split(";"):
            dims = [d.strip() for d in arg_spec.split(",") if d.strip()]
            if not dims:
                raise ValueError(f"empty argument spec in shape contract {spec!r}")
            in_specs.append(dims)
    return in_specs, out_dims


def _check_dims(
    dims: Sequence[str],
    shape: tuple[int, ...],
    binding: dict[str, int],
    *,
    where: str,
    fname: str,
) -> list[tuple[str, int]]:
    """Match one shape against its dim specs; returns deferred exprs."""
    if len(shape) != len(dims):
        raise ContractError(
            f"{fname}: {where} has {len(shape)} dimension(s) {shape}, "
            f"contract expects {len(dims)} ({','.join(dims)})"
        )
    deferred: list[tuple[str, int]] = []
    for dim, actual in zip(dims, shape):
        if dim == "_":
            continue
        if dim.isdigit():
            if actual != int(dim):
                raise ContractError(
                    f"{fname}: {where} dimension is {actual}, contract requires {dim}"
                )
        elif dim.isidentifier():
            bound = binding.setdefault(dim, actual)
            if bound != actual:
                raise ContractError(
                    f"{fname}: {where} dimension {dim}={actual} conflicts "
                    f"with earlier binding {dim}={bound}"
                )
        else:
            # Arithmetic over symbols: evaluate once all inputs bound.
            deferred.append((dim, actual))
    return deferred


def _eval_deferred(
    deferred: Sequence[tuple[str, int]],
    binding: dict[str, int],
    *,
    fname: str,
) -> None:
    for expr, actual in deferred:
        try:
            expected = eval(expr, {"__builtins__": {}}, dict(binding))  # noqa: S307
        except Exception as exc:
            raise ContractError(
                f"{fname}: cannot evaluate shape expression {expr!r} "
                f"with bindings {binding}: {exc}"
            ) from exc
        if int(expected) != actual:
            raise ContractError(
                f"{fname}: dimension is {actual}, contract expression "
                f"{expr!r} = {int(expected)} (bindings {binding})"
            )


def _iter_arrays(args: tuple[Any, ...]) -> Iterator[np.ndarray]:
    for a in args:
        if isinstance(a, np.ndarray):
            yield a


def _shape_wrapper(spec: str, fn: F, *, force: bool = False) -> F:
    import functools

    in_specs, out_dims = _parse_spec(spec)
    fname = getattr(fn, "__qualname__", repr(fn))

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not (_ENABLED or force):
            return fn(*args, **kwargs)
        binding: dict[str, int] = {}
        deferred: list[tuple[str, int]] = []
        arrays = list(_iter_arrays(args))
        if len(arrays) < len(in_specs):
            raise ContractError(
                f"{fname}: contract declares {len(in_specs)} array "
                f"argument(s), call supplied {len(arrays)}"
            )
        for i, (dims, arr) in enumerate(zip(in_specs, arrays)):
            deferred += _check_dims(
                dims, arr.shape, binding, where=f"array argument {i}", fname=fname
            )
        _eval_deferred(deferred, binding, fname=fname)
        result = fn(*args, **kwargs)
        if out_dims is not None and isinstance(result, np.ndarray):
            out_deferred = _check_dims(
                out_dims, result.shape, binding, where="return value", fname=fname
            )
            _eval_deferred(out_deferred, binding, fname=fname)
        return result

    return wrapper  # type: ignore[return-value]


def _dtype_wrapper(
    arg_dtypes: tuple[Any, ...], out: Any, fn: F, *, force: bool = False
) -> F:
    import functools

    fname = getattr(fn, "__qualname__", repr(fn))
    expected = tuple(np.dtype(d) if d is not None else None for d in arg_dtypes)
    out_dtype = np.dtype(out) if out is not None else None

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not (_ENABLED or force):
            return fn(*args, **kwargs)
        arrays = list(_iter_arrays(args))
        for i, (want, arr) in enumerate(zip(expected, arrays)):
            if want is not None and arr.dtype != want:
                raise ContractError(
                    f"{fname}: array argument {i} has dtype {arr.dtype}, "
                    f"contract requires {want}"
                )
        result = fn(*args, **kwargs)
        if out_dtype is not None and isinstance(result, np.ndarray):
            if result.dtype != out_dtype:
                raise ContractError(
                    f"{fname}: return value has dtype {result.dtype}, "
                    f"contract requires {out_dtype}"
                )
        return result

    return wrapper  # type: ignore[return-value]


# ----------------------------------------------------------------------
# public decorators
# ----------------------------------------------------------------------
def shapes(spec: str) -> Callable[[F], F]:
    """Declare a shape contract; no-op unless ``REPRO_CONTRACTS`` is set.

    See the module docstring for the mini-language.  When checking is
    disabled at decoration time the function is returned *unchanged*.
    """
    _parse_spec(spec)  # fail fast on malformed specs even when disabled

    def decorate(fn: F) -> F:
        if not _ENABLED:
            return fn
        return _shape_wrapper(spec, fn)

    return decorate


def dtypes(*arg_dtypes: Any, out: Any = None) -> Callable[[F], F]:
    """Declare dtypes for consecutive ndarray positional args (and return).

    ``None`` entries skip an array.  When checking is disabled at
    decoration time the function is returned *unchanged*.
    """

    def decorate(fn: F) -> F:
        if not _ENABLED:
            return fn
        return _dtype_wrapper(arg_dtypes, out, fn)

    return decorate


def checked(
    fn: Callable[..., Any],
    *,
    shape: str | None = None,
    arg_dtypes: tuple[Any, ...] = (),
    out: Any = None,
) -> Callable[..., Any]:
    """Build an *always-on* contract wrapper around ``fn``.

    Unlike the decorators, this validates regardless of the global
    toggle — intended for tests and debugging sessions.
    """
    wrapped = fn
    if arg_dtypes or out is not None:
        wrapped = _dtype_wrapper(tuple(arg_dtypes), out, wrapped, force=True)
    if shape is not None:
        wrapped = _shape_wrapper(shape, wrapped, force=True)
    return wrapped
