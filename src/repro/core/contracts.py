"""Lightweight runtime array contracts for PHY/matcher entry points.

The reproduction's invariants are *shape and dtype* invariants: a
ZigBee symbol is exactly 32 chips, a waveform is 1-D ``complex128``,
an on-air bit array is ``uint8``.  The :func:`shapes` and
:func:`dtypes` decorators make those contracts executable without
taxing the hot path:

* **Disabled (the default)** the decorators return the wrapped
  function *unchanged* — zero wrapper, zero overhead, byte-identical
  behavior.  Enable by setting ``REPRO_CONTRACTS=1`` in the
  environment before import, or calling :func:`set_enabled` before the
  decorated module is imported (tests use :func:`checked` instead,
  which binds eagerly).
* **Enabled** each call validates ndarray positional arguments (and
  optionally the return value) and raises :class:`ContractError` with
  the offending argument, expected and actual shape/dtype.

Shape mini-language (``shapes``)::

    @shapes("n_sym,64 -> n_sym*80")     # (n_sym, 64) in, (n_sym*80,) out
    @shapes("n ; n -> n")               # two 1-D inputs of equal length
    @shapes("n_bits ->")                # input-only contract

Dimensions are integer literals (checked exactly), symbol names (bound
on first sight, checked for consistency after), ``_`` (wildcard), or
arithmetic over previously-bound symbols (``n_sym*80``, ``n+2``) —
expressions are evaluated with the bound symbols once all inputs are
seen, so they are most useful on the output side.  ``;`` separates
consecutive ndarray positional arguments; non-array positionals are
skipped when matching specs to arguments.

Ragged batch entry points (``modulate_batch``-style functions taking a
*sequence* of per-item arrays) use the bracketed per-item form::

    @shapes("[n_codes] ->")             # each capture in the sequence is 1-D

A bracketed argument spec matches either a list/tuple whose ndarray
elements each satisfy the inner dims (with an independent symbol
binding per item, so ragged batches bind ``n_codes`` per capture), or
a stacked ndarray with one extra leading batch axis.

The mini-language is shared with the static verifier
(``tools/reproshape``): :func:`parse_shape_spec` returns the parsed
:class:`ShapeSpec` and :func:`eval_shape_expr` evaluates one dimension
expression under a symbol binding.  Both are pure and importable
without touching the runtime toggle, so the static and runtime
semantics cannot drift.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence, TypeVar

import numpy as np

__all__ = [
    "ContractError",
    "ArgSpec",
    "ShapeSpec",
    "DIM_WILDCARD",
    "parse_shape_spec",
    "dim_kind",
    "eval_shape_expr",
    "enabled",
    "set_enabled",
    "shapes",
    "dtypes",
    "checked",
]

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = {"1", "true", "yes", "on"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "0").strip().lower() in _TRUTHY


_ENABLED: bool = _env_enabled()


class ContractError(TypeError):
    """An array argument or return value violated a declared contract."""


def enabled() -> bool:
    """Whether contract decorators are active (``REPRO_CONTRACTS``)."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Toggle contract checking for *subsequently decorated* functions.

    Functions decorated while checking was disabled stay unwrapped (the
    zero-overhead guarantee cuts both ways); use :func:`checked` to
    build an always-validating wrapper explicitly, e.g. in tests.
    """
    global _ENABLED
    _ENABLED = bool(flag)


# ----------------------------------------------------------------------
# shape spec parsing (the public, statically-reusable DSL surface)
# ----------------------------------------------------------------------
#: The anonymous any-size dimension token.
DIM_WILDCARD = "_"

#: AST nodes a dimension expression may contain.  Shared by the runtime
#: evaluator below and the symbolic evaluator in ``tools/reproshape`` —
#: one grammar, two interpretations.
_EXPR_NODES = (
    ast.Expression,
    ast.BinOp,
    ast.UnaryOp,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.FloorDiv,
    ast.Div,
    ast.Mod,
    ast.Pow,
    ast.USub,
    ast.UAdd,
    ast.Constant,
    ast.Name,
)


@dataclass(frozen=True)
class ArgSpec:
    """Shape spec for one ndarray positional argument.

    ``per_item`` marks the bracketed form (``"[n_codes]"``): the
    argument is a *sequence* of arrays (or a stacked array with one
    extra leading batch axis) whose items each match ``dims``.
    """

    dims: tuple[str, ...]
    per_item: bool = False


@dataclass(frozen=True)
class ShapeSpec:
    """A parsed ``@shapes(...)`` contract: input arg specs + output dims."""

    args: tuple[ArgSpec, ...]
    out_dims: tuple[str, ...] | None


def dim_kind(dim: str) -> str:
    """Classify one dim token: ``wildcard``, ``literal``, ``symbol`` or ``expr``."""
    if dim == DIM_WILDCARD:
        return "wildcard"
    if dim.isdigit():
        return "literal"
    if dim.isidentifier():
        return "symbol"
    return "expr"


def parse_dim_expr(expr: str) -> ast.Expression:
    """Parse one arithmetic dim expression, enforcing the DSL grammar.

    Only integer literals, symbol names and ``+ - * // / % **`` (plus
    unary sign and parentheses) are admitted; anything else raises
    ``ValueError``.  Returns the validated ``ast.Expression`` so both
    the runtime and the symbolic evaluator interpret one tree.
    """
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise ValueError(f"malformed shape expression {expr!r}: {exc.msg}") from exc
    for node in ast.walk(tree):
        if not isinstance(node, _EXPR_NODES) and not isinstance(
            node, (ast.operator, ast.unaryop, ast.expr_context)
        ):
            raise ValueError(
                f"shape expression {expr!r} uses unsupported syntax "
                f"({type(node).__name__})"
            )
        if isinstance(node, ast.Constant) and not isinstance(node.value, int):
            raise ValueError(
                f"shape expression {expr!r} contains a non-integer literal"
            )
    return tree


def eval_shape_expr(expr: str, binding: Mapping[str, int]) -> int:
    """Evaluate a dim expression under a symbol binding (pure function).

    Raises ``ValueError`` for grammar violations and ``KeyError`` for
    unbound symbols; division follows Python semantics (``//`` exact,
    ``/`` truncated to int at the end, matching the historical
    behavior of output-side expressions like ``n/2``).
    """
    tree = parse_dim_expr(expr)

    def fold(node: ast.expr) -> float:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return binding[node.id]
        if isinstance(node, ast.UnaryOp):
            value = fold(node.operand)
            return -value if isinstance(node.op, ast.USub) else +value
        assert isinstance(node, ast.BinOp)
        left, right = fold(node.left), fold(node.right)
        op = node.op
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Div):
            return left / right
        if isinstance(op, ast.Mod):
            return left % right
        assert isinstance(op, ast.Pow)
        return left**right

    return int(fold(tree.body))


def parse_shape_spec(spec: str) -> ShapeSpec:
    """Parse the shape mini-language into a :class:`ShapeSpec`.

    ``"n,64 ; m -> n*80"`` -> ``ShapeSpec((ArgSpec(("n","64")),
    ArgSpec(("m",))), ("n*80",))``; ``"[n] ->"`` marks a per-item
    (ragged batch) argument.  Raises ``ValueError`` on malformed specs.
    """
    if "->" in spec:
        lhs, _, rhs = spec.partition("->")
        rhs = rhs.strip()
        out_dims = (
            tuple(d.strip() for d in rhs.split(",") if d.strip()) if rhs else None
        )
    else:
        lhs, out_dims = spec, None
    if out_dims is not None and any(
        "[" in d or "]" in d for d in out_dims
    ):
        raise ValueError(
            f"per-item brackets are not allowed on the output side: {spec!r}"
        )
    args: list[ArgSpec] = []
    lhs = lhs.strip()
    if lhs:
        for arg_spec in lhs.split(";"):
            arg_spec = arg_spec.strip()
            per_item = arg_spec.startswith("[")
            if per_item:
                if not arg_spec.endswith("]"):
                    raise ValueError(
                        f"unbalanced per-item brackets in shape contract {spec!r}"
                    )
                arg_spec = arg_spec[1:-1]
            if "[" in arg_spec or "]" in arg_spec:
                raise ValueError(
                    f"stray bracket inside argument spec in shape contract {spec!r}"
                )
            dims = tuple(d.strip() for d in arg_spec.split(",") if d.strip())
            if not dims:
                raise ValueError(f"empty argument spec in shape contract {spec!r}")
            for dim in dims:
                if dim_kind(dim) == "expr":
                    parse_dim_expr(dim)  # fail fast on grammar violations
            args.append(ArgSpec(dims=dims, per_item=per_item))
    if out_dims is not None:
        for dim in out_dims:
            if dim_kind(dim) == "expr":
                parse_dim_expr(dim)
    return ShapeSpec(args=tuple(args), out_dims=out_dims)


def _parse_spec(spec: str) -> tuple[list[list[str]], list[str] | None]:
    """Historical tuple form of :func:`parse_shape_spec` (kept for tests)."""
    parsed = parse_shape_spec(spec)
    return (
        [list(a.dims) for a in parsed.args],
        list(parsed.out_dims) if parsed.out_dims is not None else None,
    )


def _check_dims(
    dims: Sequence[str],
    shape: tuple[int, ...],
    binding: dict[str, int],
    *,
    where: str,
    fname: str,
) -> list[tuple[str, int]]:
    """Match one shape against its dim specs; returns deferred exprs."""
    if len(shape) != len(dims):
        raise ContractError(
            f"{fname}: {where} has {len(shape)} dimension(s) {shape}, "
            f"contract expects {len(dims)} ({','.join(dims)})"
        )
    deferred: list[tuple[str, int]] = []
    for dim, actual in zip(dims, shape):
        if dim == "_":
            continue
        if dim.isdigit():
            if actual != int(dim):
                raise ContractError(
                    f"{fname}: {where} dimension is {actual}, contract requires {dim}"
                )
        elif dim.isidentifier():
            bound = binding.setdefault(dim, actual)
            if bound != actual:
                raise ContractError(
                    f"{fname}: {where} dimension {dim}={actual} conflicts "
                    f"with earlier binding {dim}={bound}"
                )
        else:
            # Arithmetic over symbols: evaluate once all inputs bound.
            deferred.append((dim, actual))
    return deferred


def _eval_deferred(
    deferred: Sequence[tuple[str, int]],
    binding: dict[str, int],
    *,
    fname: str,
) -> None:
    for expr, actual in deferred:
        try:
            expected = eval_shape_expr(expr, binding)
        except Exception as exc:
            raise ContractError(
                f"{fname}: cannot evaluate shape expression {expr!r} "
                f"with bindings {binding}: {exc}"
            ) from exc
        if expected != actual:
            raise ContractError(
                f"{fname}: dimension is {actual}, contract expression "
                f"{expr!r} = {expected} (bindings {binding})"
            )


def _iter_arrays(args: tuple[Any, ...]) -> Iterator[np.ndarray]:
    for a in args:
        if isinstance(a, np.ndarray):
            yield a


def _check_per_item(
    dims: Sequence[str],
    value: Any,
    *,
    where: str,
    fname: str,
) -> None:
    """Validate a bracketed per-item argument (sequence or stacked array).

    Each item gets an *independent* symbol binding — ragged batches
    legitimately bind ``n`` differently per item — so only literals,
    expressions and intra-item symbol consistency are enforced.
    """
    if isinstance(value, np.ndarray):
        if value.ndim != len(dims) + 1:
            raise ContractError(
                f"{fname}: {where} is a stacked array with {value.ndim} "
                f"dimension(s) {value.shape}, per-item contract expects "
                f"{len(dims) + 1} (batch axis + {','.join(dims)})"
            )
        binding: dict[str, int] = {}
        deferred = _check_dims(
            dims, value.shape[1:], binding, where=f"{where} items", fname=fname
        )
        _eval_deferred(deferred, binding, fname=fname)
        return
    for i, item in enumerate(value):
        if not isinstance(item, np.ndarray):
            continue
        item_binding: dict[str, int] = {}
        deferred = _check_dims(
            dims,
            item.shape,
            item_binding,
            where=f"{where} item {i}",
            fname=fname,
        )
        _eval_deferred(deferred, item_binding, fname=fname)


def _is_sequence_arg(value: Any) -> bool:
    return isinstance(value, (list, tuple))


def _shape_wrapper(spec: str, fn: F, *, force: bool = False) -> F:
    import functools

    parsed = parse_shape_spec(spec)
    fname = getattr(fn, "__qualname__", repr(fn))
    has_per_item = any(a.per_item for a in parsed.args)
    plain_specs = [a.dims for a in parsed.args if not a.per_item]
    out_dims = parsed.out_dims

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not (_ENABLED or force):
            return fn(*args, **kwargs)
        binding: dict[str, int] = {}
        deferred: list[tuple[str, int]] = []
        if has_per_item:
            # Generalized left-to-right matching: plain specs consume
            # the next ndarray positional, per-item specs the next
            # sequence (or stacked-ndarray) positional.
            cursor = 0
            for spec_i, arg_spec in enumerate(parsed.args):
                match = None
                while cursor < len(args):
                    candidate = args[cursor]
                    cursor += 1
                    if arg_spec.per_item and (
                        _is_sequence_arg(candidate)
                        or isinstance(candidate, np.ndarray)
                    ):
                        match = candidate
                        break
                    if not arg_spec.per_item and isinstance(
                        candidate, np.ndarray
                    ):
                        match = candidate
                        break
                if match is None:
                    raise ContractError(
                        f"{fname}: contract declares {len(parsed.args)} array "
                        f"argument(s), call supplied no match for spec "
                        f"{spec_i} ({'per-item ' if arg_spec.per_item else ''}"
                        f"{','.join(arg_spec.dims)})"
                    )
                if arg_spec.per_item:
                    _check_per_item(
                        arg_spec.dims,
                        match,
                        where=f"argument {spec_i}",
                        fname=fname,
                    )
                else:
                    deferred += _check_dims(
                        arg_spec.dims,
                        match.shape,
                        binding,
                        where=f"array argument {spec_i}",
                        fname=fname,
                    )
        else:
            arrays = list(_iter_arrays(args))
            if len(arrays) < len(plain_specs):
                raise ContractError(
                    f"{fname}: contract declares {len(plain_specs)} array "
                    f"argument(s), call supplied {len(arrays)}"
                )
            for i, (dims, arr) in enumerate(zip(plain_specs, arrays)):
                deferred += _check_dims(
                    dims, arr.shape, binding, where=f"array argument {i}", fname=fname
                )
        _eval_deferred(deferred, binding, fname=fname)
        result = fn(*args, **kwargs)
        if out_dims is not None and isinstance(result, np.ndarray):
            out_deferred = _check_dims(
                out_dims, result.shape, binding, where="return value", fname=fname
            )
            _eval_deferred(out_deferred, binding, fname=fname)
        return result

    return wrapper  # type: ignore[return-value]


def _dtype_wrapper(
    arg_dtypes: tuple[Any, ...], out: Any, fn: F, *, force: bool = False
) -> F:
    import functools

    fname = getattr(fn, "__qualname__", repr(fn))
    expected = tuple(np.dtype(d) if d is not None else None for d in arg_dtypes)
    out_dtype = np.dtype(out) if out is not None else None

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not (_ENABLED or force):
            return fn(*args, **kwargs)
        arrays = list(_iter_arrays(args))
        for i, (want, arr) in enumerate(zip(expected, arrays)):
            if want is not None and arr.dtype != want:
                raise ContractError(
                    f"{fname}: array argument {i} has dtype {arr.dtype}, "
                    f"contract requires {want}"
                )
        result = fn(*args, **kwargs)
        if out_dtype is not None and isinstance(result, np.ndarray):
            if result.dtype != out_dtype:
                raise ContractError(
                    f"{fname}: return value has dtype {result.dtype}, "
                    f"contract requires {out_dtype}"
                )
        return result

    return wrapper  # type: ignore[return-value]


# ----------------------------------------------------------------------
# public decorators
# ----------------------------------------------------------------------
def shapes(spec: str) -> Callable[[F], F]:
    """Declare a shape contract; no-op unless ``REPRO_CONTRACTS`` is set.

    See the module docstring for the mini-language.  When checking is
    disabled at decoration time the function is returned *unchanged*.
    """
    parse_shape_spec(spec)  # fail fast on malformed specs even when disabled

    def decorate(fn: F) -> F:
        if not _ENABLED:
            return fn
        return _shape_wrapper(spec, fn)

    return decorate


def dtypes(*arg_dtypes: Any, out: Any = None) -> Callable[[F], F]:
    """Declare dtypes for consecutive ndarray positional args (and return).

    ``None`` entries skip an array.  When checking is disabled at
    decoration time the function is returned *unchanged*.
    """

    def decorate(fn: F) -> F:
        if not _ENABLED:
            return fn
        return _dtype_wrapper(arg_dtypes, out, fn)

    return decorate


def checked(
    fn: Callable[..., Any],
    *,
    shape: str | None = None,
    arg_dtypes: tuple[Any, ...] = (),
    out: Any = None,
) -> Callable[..., Any]:
    """Build an *always-on* contract wrapper around ``fn``.

    Unlike the decorators, this validates regardless of the global
    toggle — intended for tests and debugging sessions.
    """
    wrapped = fn
    if arg_dtypes or out is not None:
        wrapped = _dtype_wrapper(tuple(arg_dtypes), out, wrapped, force=True)
    if shape is not None:
        wrapped = _shape_wrapper(shape, wrapped, force=True)
    return wrapped
