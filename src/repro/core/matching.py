"""Template correlation and the blind / ordered matching rules (§2.3).

The matcher consumes ADC captures.  Full-precision scoring is the
normalized correlation of the (DC-removed, normalized) matching window
with the template; quantized scoring replaces samples and template with
their +-1 signs, which is what lets the FPGA trade all multipliers for
adders (§2.3.1, Table 2).

Blind matching picks the protocol with the highest score; ordered
matching (§2.3.2) tests protocols one after another -- ZigBee, then
BLE, then 802.11b, then 802.11n -- against per-protocol thresholds,
exploiting their different resilience to quantization/downsampling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import perf
from repro.core import contracts
from repro.core.backend import get_backend
from repro.core.templates import TemplateBank
from repro.phy.batch import run_grouped
from repro.phy.protocols import Protocol

__all__ = [
    "dc_estimate",
    "score_capture",
    "score_capture_batch",
    "BlindMatcher",
    "OrderedMatcher",
    "DEFAULT_ORDER",
    "DEFAULT_THRESHOLDS",
    "search_thresholds",
]

def dc_estimate(preprocess_window: np.ndarray) -> float:
    """DC level from the settled half of the preprocessing window.

    The window sits on the packet's power-up ramp; using only its
    second half keeps the +-1 quantization threshold at the settled
    envelope level instead of being dragged low by the ramp.
    """
    arr = np.asarray(preprocess_window, dtype=float)
    return float(arr[arr.size // 2 :].mean()) if arr.size else 0.0


#: The matching order of Fig 6.
DEFAULT_ORDER: tuple[Protocol, ...] = (
    Protocol.ZIGBEE,
    Protocol.BLE,
    Protocol.WIFI_B,
    Protocol.WIFI_N,
)

#: Empirically optimized thresholds (the paper's brute-force search;
#: re-derivable with :func:`search_thresholds`).
DEFAULT_THRESHOLDS: dict[Protocol, float] = {
    Protocol.ZIGBEE: 0.55,
    Protocol.BLE: 0.45,
    Protocol.WIFI_B: 0.40,
    Protocol.WIFI_N: 0.35,
}


@contracts.shapes("n_codes ->")
def score_capture(
    codes: np.ndarray,
    bank: TemplateBank,
    *,
    quantized: bool,
    offsets: tuple[int, ...] = (0,),
) -> dict[Protocol, float]:
    """Correlation score per protocol, maximized over sample offsets.

    ``codes`` must cover ``l_p + l_m + max(offsets)`` samples; for each
    offset the first ``l_p`` samples (after the offset) estimate the DC
    level, the next ``l_m`` are correlated.
    """
    perf.dispatch("matching.score_capture", 1, batched=False)
    arr = np.asarray(codes, dtype=float)
    l_p = bank.l_p
    l_m = bank.l_m
    valid = [o for o in offsets if 0 <= o and o + l_p + l_m <= arr.size]
    scores: dict[Protocol, float] = {p: -1.0 for p in bank.templates}
    if not valid:
        return scores

    # Stack all candidate windows: rows are offsets (sliding detection,
    # as a continuously-correlating tag would do).  All templates are
    # stacked too, so one (offsets x samples) @ (samples x protocols)
    # product scores every protocol at every offset.
    off = np.asarray(valid)
    win = np.lib.stride_tricks.sliding_window_view(arr, l_p + l_m)
    sel = win[off]
    window = sel[:, l_p:]
    if quantized:
        pre = sel[:, :l_p]
        dc = pre[:, l_p // 2 :].mean(axis=1, keepdims=True)
        q = np.where(window - dc >= 0.0, 1.0, -1.0)
        protocols, mat = bank.stacked(quantized=True)
        best = (q @ mat.T).max(axis=0) / l_m
    else:
        # Normalized correlation without materializing the centered /
        # unit-norm window copies: correlate the raw windows in one
        # GEMM, then correct per offset.  With x the raw window, m a
        # template, s = sum(m):
        #   (x - mean(x)) . m / ||x - mean(x)||
        #     = (x . m - mean(x) * s) / sqrt(sum(x^2) - l_m * mean^2)
        # and the per-offset sums come from prefix sums of the capture.
        protocols, mat = bank.stacked(quantized=False)
        raw = window @ mat.T  # (n_offsets, n_protocols)
        c1 = np.concatenate([[0.0], np.cumsum(arr)])
        c2 = np.concatenate([[0.0], np.cumsum(arr * arr)])
        s = c1[off + l_p + l_m] - c1[off + l_p]
        ss = c2[off + l_p + l_m] - c2[off + l_p]
        mean = s / l_m
        norm = np.sqrt(np.maximum(ss - s * mean, 0.0))
        norm = np.where(norm <= 1e-12, 1.0, norm)
        tsum = mat.sum(axis=1)
        best = ((raw - mean[:, None] * tsum[None, :]) / norm[:, None]).max(axis=0)
    for p, v in zip(protocols, best):
        scores[p] = float(v)
    return scores


@contracts.shapes("[n_codes] ->")
def score_capture_batch(
    captures: Sequence[np.ndarray],
    bank: TemplateBank,
    *,
    quantized: bool,
    offsets: tuple[int, ...] = (0,),
) -> list[dict[Protocol, float]]:
    """Score many captures at once; bit-identical to per-capture calls.

    Captures are grouped by length (the valid-offset set depends on
    it); each group runs the sliding correlation as one stacked GEMM
    over all captures and offsets instead of one GEMM per capture.
    """
    arrays = [np.asarray(c, dtype=float) for c in captures]
    return run_grouped(
        arrays,
        key_fn=lambda a: a.size,
        group_fn=lambda group: _score_group(
            group, bank, quantized=quantized, offsets=offsets
        ),
        where="matching.score_capture_batch",
    )


def _score_group(
    arrays: Sequence[np.ndarray],
    bank: TemplateBank,
    *,
    quantized: bool,
    offsets: tuple[int, ...],
) -> list[dict[Protocol, float]]:
    """Sliding correlation for one group of equal-length captures."""
    backend = get_backend()
    xp = backend.xp
    n_batch = len(arrays)
    perf.dispatch("matching.score_capture", n_batch, batched=True)

    l_p = bank.l_p
    l_m = bank.l_m
    size = arrays[0].size
    valid = [o for o in offsets if 0 <= o and o + l_p + l_m <= size]
    if not valid:
        return [{p: -1.0 for p in bank.templates} for _ in range(n_batch)]

    arr = xp.stack([backend.asarray(a) for a in arrays])
    off = np.asarray(valid)
    win = np.lib.stride_tricks.sliding_window_view(np.asarray(arr), l_p + l_m, axis=1)
    # ascontiguousarray: the fancy-indexed offset rows come back with a
    # strided layout whose reductions sum in a different order than the
    # scalar path's contiguous copies.
    sel = xp.ascontiguousarray(win[:, off])  # (n_batch, n_offsets, l_p + l_m)
    window = sel[:, :, l_p:]
    if quantized:
        pre = sel[:, :, :l_p]
        dc = pre[:, :, l_p // 2 :].mean(axis=2, keepdims=True)
        q = xp.where(window - dc >= 0.0, 1.0, -1.0)
        protocols, mat = bank.stacked(quantized=True)
        best = (q @ mat.T).max(axis=1) / l_m  # (n_batch, n_protocols)
    else:
        protocols, mat = bank.stacked(quantized=False)
        raw = window @ mat.T  # (n_batch, n_offsets, n_protocols)
        zero = xp.zeros((n_batch, 1))
        c1 = xp.concatenate([zero, xp.cumsum(arr, axis=1)], axis=1)
        c2 = xp.concatenate([zero, xp.cumsum(arr * arr, axis=1)], axis=1)
        s = c1[:, off + l_p + l_m] - c1[:, off + l_p]
        ss = c2[:, off + l_p + l_m] - c2[:, off + l_p]
        mean = s / l_m
        norm = xp.sqrt(xp.maximum(ss - s * mean, 0.0))
        norm = xp.where(norm <= 1e-12, 1.0, norm)
        tsum = mat.sum(axis=1)
        best = (
            (raw - mean[:, :, None] * tsum[None, None, :]) / norm[:, :, None]
        ).max(axis=1)
    best_np = backend.to_numpy(best)
    results = []
    for b in range(n_batch):
        scores: dict[Protocol, float] = {p: -1.0 for p in bank.templates}
        for p, v in zip(protocols, best_np[b]):
            scores[p] = float(v)
        results.append(scores)
    return results


@dataclass(frozen=True)
class BlindMatcher:
    """Pick the highest-scoring protocol (the Fig 7a baseline rule)."""

    def decide(self, scores: dict[Protocol, float]) -> Protocol:
        return max(scores, key=lambda p: scores[p])


@dataclass(frozen=True)
class OrderedMatcher:
    """Sequential threshold decisions (Fig 6): the first protocol whose
    score clears its threshold wins; if none does, fall back to the
    highest score."""

    order: tuple[Protocol, ...] = DEFAULT_ORDER
    thresholds: tuple[float, ...] = tuple(
        DEFAULT_THRESHOLDS[p] for p in DEFAULT_ORDER
    )

    def __post_init__(self) -> None:
        if len(self.order) != len(self.thresholds):
            raise ValueError("order and thresholds must have equal length")

    def decide(self, scores: dict[Protocol, float]) -> Protocol:
        for protocol, threshold in zip(self.order, self.thresholds):
            if scores.get(protocol, -1.0) >= threshold:
                return protocol
        return max(scores, key=lambda p: scores[p])


def search_thresholds(
    labeled_scores: list[tuple[Protocol, dict[Protocol, float]]],
    *,
    order: tuple[Protocol, ...] = DEFAULT_ORDER,
    grid: np.ndarray | None = None,
) -> tuple[OrderedMatcher, float]:
    """Brute-force threshold search (the paper's §2.3.2 optimization).

    ``labeled_scores`` pairs each trace's true protocol with its score
    dict.  Returns the best :class:`OrderedMatcher` and its average
    per-protocol accuracy on the training data.
    """
    if grid is None:
        grid = np.arange(0.2, 0.81, 0.15)
    best: tuple[OrderedMatcher, float, float] | None = None
    for combo in itertools.product(grid, repeat=len(order) - 1):
        # The last protocol in the order is the fallback; its threshold
        # is irrelevant, keep it at -1 so it always accepts.
        matcher = OrderedMatcher(order=order, thresholds=tuple(combo) + (-1.0,))
        correct: dict[Protocol, list[bool]] = {p: [] for p in order}
        for truth, scores in labeled_scores:
            correct[truth].append(matcher.decide(scores) is truth)
        accuracies = [np.mean(v) for v in correct.values() if v]
        avg = float(np.mean(accuracies)) if accuracies else 0.0
        # Tie-break toward higher (more conservative) thresholds: early
        # protocols only claim a packet on strong evidence, which
        # generalizes better than the lowest tied combination.
        margin = float(np.sum(combo))
        if best is None or (avg, margin) > (best[1], best[2]):
            best = (matcher, avg, margin)
    assert best is not None
    return best[0], best[1]
