"""Optional FEC for tag data (the paper's footnote-8 future work).

The paper protects tag bits only by gamma-fold repetition with majority
voting.  This module adds a Hamming(7,4) layer on top, so the ablation
benchmark can quantify what a modest block code buys over pure
repetition at equal overhead.
"""

from __future__ import annotations

import numpy as np

from repro.types import BitArray

__all__ = ["hamming74_encode", "hamming74_decode", "repetition_encode", "repetition_decode"]

# Generator: data bits d0..d3 -> codeword (p0 p1 d0 p2 d1 d2 d3),
# standard Hamming(7,4) with parity at positions 1, 2, 4.
_PARITY_SETS = {
    0: (2, 4, 6),  # p0 covers positions 3,5,7 (0-indexed 2,4,6)
    1: (2, 5, 6),  # p1 covers positions 3,6,7
    3: (4, 5, 6),  # p2 covers positions 5,6,7
}


def hamming74_encode(bits: np.ndarray | list[int]) -> BitArray:
    """Encode a bit stream (padded to a nibble multiple) to Hamming(7,4)."""
    arr = np.asarray(bits, dtype=np.uint8)
    pad = (-arr.size) % 4
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, np.uint8)])
    out = np.empty(arr.size // 4 * 7, dtype=np.uint8)
    for i in range(arr.size // 4):
        d = arr[4 * i : 4 * i + 4]
        cw = np.zeros(7, dtype=np.uint8)
        cw[2], cw[4], cw[5], cw[6] = d
        for p, covered in _PARITY_SETS.items():
            cw[p] = int(sum(int(cw[c]) for c in covered) % 2)
        out[7 * i : 7 * i + 7] = cw
    return out


def hamming74_decode(coded: np.ndarray | list[int]) -> BitArray:
    """Decode with single-error correction per 7-bit block."""
    arr = np.asarray(coded, dtype=np.uint8)
    if arr.size % 7:
        raise ValueError("coded length must be a multiple of 7")
    out = np.empty(arr.size // 7 * 4, dtype=np.uint8)
    for i in range(arr.size // 7):
        cw = arr[7 * i : 7 * i + 7].copy()
        syndrome = 0
        for bit, (p, covered) in enumerate(_PARITY_SETS.items()):
            parity = (int(cw[p]) + sum(int(cw[c]) for c in covered)) % 2
            if parity:
                syndrome |= 1 << bit
        # Syndrome bits address the erroneous position (1-indexed
        # weights 1, 2, 4 over positions p0,p1,p2 mapping).
        if syndrome:
            pos_map = {1: 0, 2: 1, 3: 2, 4: 3, 5: 4, 6: 5, 7: 6}
            cw[pos_map[syndrome]] ^= 1
        out[4 * i : 4 * i + 4] = (cw[2], cw[4], cw[5], cw[6])
    return out


def repetition_encode(bits: np.ndarray | list[int], n: int) -> BitArray:
    """n-fold repetition (the paper's baseline tag-data protection)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return np.repeat(np.asarray(bits, dtype=np.uint8), n)


def repetition_decode(coded: np.ndarray | list[int], n: int) -> BitArray:
    """Majority-vote decode of n-fold repetition."""
    arr = np.asarray(coded, dtype=np.uint8)
    if n < 1 or arr.size % n:
        raise ValueError("coded length must be a multiple of n")
    votes = arr.reshape(-1, n).sum(axis=1)
    return (votes * 2 > n).astype(np.uint8)
