"""Overlay modulation (paper §2.4): reference-based tag modulation.

A productive carrier is structured as *modulatable sequences* of
``kappa`` PHY symbols: the first symbol is the **reference symbol**
carrying one unit of productive data, and the remaining ``kappa - 1``
symbols repeat its content and are modulatable by the tag.  The tag
spends ``gamma`` symbols per tag bit (its repetition/robustness factor,
Table 6), so each sequence carries ``floor((kappa-1)/gamma)`` tag bits.
A single commodity radio decodes the packet normally, reads productive
data off the reference symbols, and recovers tag data by comparing each
modulatable symbol against its reference.

Per-protocol comparison domains (see :mod:`repro.core.overlay_decoder`):

* 802.11b -- on-air (scrambled-domain) DSSS symbol bits.  The 802.11b
  scrambler is self-synchronizing, so host software can re-derive the
  on-air bits from the received PSDU exactly.
* 802.11n -- per-OFDM-symbol decoded bit groups, compared over their
  middle half (the scrambler+BCC transients of §2.4 "802.11n").
* BLE -- raw post-access-address bits (whitening is additive, so it
  commutes with the comparison).
* ZigBee -- best-match PN symbol indices.

``Mode`` reproduces Table 6: mode 1 has as many modulatable symbols as
reference symbols (kappa = 2 gamma), mode 2 triples the ratio
(kappa = 4 gamma), mode 3 stretches one sequence over the whole payload
(a single productive bit per packet).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.phy import ble, wifi_b, wifi_n, zigbee
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.types import Symbols

__all__ = [
    "Mode",
    "DEFAULT_GAMMA",
    "OverlayConfig",
    "OverlayCodec",
    "ZIGBEE_SYMBOL_FOR_BIT",
]

#: Tag spreading factors gamma of Table 6.
DEFAULT_GAMMA: dict[Protocol, int] = {
    Protocol.WIFI_B: 4,
    Protocol.WIFI_N: 2,
    Protocol.BLE: 4,
    Protocol.ZIGBEE: 2,
}

#: ZigBee productive bit -> reference PN symbol (0 and 8 are far apart
#: in chip space and survive the tag's pi flips distinguishably).
ZIGBEE_SYMBOL_FOR_BIT = {0: 0x0, 1: 0x8}
_ZIGBEE_BIT_FOR_SYMBOL = {v: k for k, v in ZIGBEE_SYMBOL_FOR_BIT.items()}


class Mode(enum.Enum):
    """The three productive/tag tradeoff modes of Table 6."""

    MODE_1 = 1
    MODE_2 = 2
    MODE_3 = 3


@dataclass(frozen=True)
class OverlayConfig:
    """One protocol's overlay parameters.

    ``kappa`` is the productive-data spread factor (sequence length in
    symbols), ``gamma`` the tag-data spread factor.  Tag bits per
    sequence = floor((kappa - 1) / gamma).
    """

    protocol: Protocol
    kappa: Symbols
    gamma: Symbols

    def __post_init__(self) -> None:
        if self.gamma < 1:
            raise ValueError("gamma must be >= 1")
        if self.kappa < 2:
            raise ValueError("kappa must be >= 2 (reference + modulatable)")
        if self.kappa <= self.gamma:
            raise ValueError("kappa must exceed gamma to fit a tag bit")

    @classmethod
    def for_mode(
        cls,
        protocol: Protocol,
        mode: Mode,
        *,
        payload_symbols: int | None = None,
        gamma: int | None = None,
    ) -> "OverlayConfig":
        """Table 6 construction: kappa = 2 gamma / 4 gamma / gamma*n."""
        g = gamma if gamma is not None else DEFAULT_GAMMA[protocol]
        if mode is Mode.MODE_1:
            kappa = 2 * g
        elif mode is Mode.MODE_2:
            kappa = 4 * g
        else:
            if payload_symbols is None:
                raise ValueError("mode 3 needs payload_symbols (kappa = gamma*n)")
            # Leave one symbol of headroom for protocols that reserve a
            # leading payload symbol (802.11n's SERVICE filler).
            n = max((payload_symbols - 1) // g, 2)
            kappa = g * n
        return cls(protocol=protocol, kappa=kappa, gamma=g)

    @property
    def tag_bits_per_sequence(self) -> int:
        return (self.kappa - 1) // self.gamma

    @property
    def productive_bits_per_sequence(self) -> int:
        return 1


class OverlayCodec:
    """Builds overlay carriers, places tag flips, and decodes both data
    streams from a single receiver's symbol stream."""

    def __init__(self, config: OverlayConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    @property
    def first_sequence_symbol(self) -> int:
        """Payload-symbol index where sequences start (802.11n reserves
        symbol 0 for the SERVICE-field filler)."""
        return 1 if self.config.protocol is Protocol.WIFI_N else 0

    def n_sequences(self, n_payload_symbols: int) -> int:
        usable = n_payload_symbols - self.first_sequence_symbol
        return max(usable // self.config.kappa, 0)

    def capacity(self, n_payload_symbols: int) -> tuple[int, int]:
        """(productive bits, tag bits) that fit in a payload."""
        n_seq = self.n_sequences(n_payload_symbols)
        return n_seq, n_seq * self.config.tag_bits_per_sequence

    def sequence_start(self, seq_index: int) -> int:
        """Payload-symbol index of a sequence's reference symbol."""
        return self.first_sequence_symbol + seq_index * self.config.kappa

    def tag_symbol_groups(self, seq_index: int) -> list[list[int]]:
        """Payload-symbol indices of each tag bit's gamma-group."""
        base = self.sequence_start(seq_index) + 1
        groups = []
        for j in range(self.config.tag_bits_per_sequence):
            groups.append(list(range(base + j * self.config.gamma,
                                     base + (j + 1) * self.config.gamma)))
        return groups

    # ------------------------------------------------------------------
    # productive-carrier construction
    # ------------------------------------------------------------------
    def reference_symbol_value(self, bit: int) -> int:
        """The symbol content that encodes one productive bit."""
        if self.config.protocol is Protocol.ZIGBEE:
            return ZIGBEE_SYMBOL_FOR_BIT[int(bit)]
        return int(bit)

    def productive_bit_from_symbol(self, value: int | np.ndarray) -> int:
        """Inverse of :meth:`reference_symbol_value` (receiver side)."""
        if self.config.protocol is Protocol.WIFI_N:
            group = np.asarray(value)
            return int(group.mean() > 0.5)
        if self.config.protocol is Protocol.ZIGBEE:
            if int(value) in _ZIGBEE_BIT_FOR_SYMBOL:
                return _ZIGBEE_BIT_FOR_SYMBOL[int(value)]
            # Fall back to the nearest reference symbol in chip space.
            chips = zigbee.PN_TABLE[int(value)]
            d0 = int(np.count_nonzero(chips != zigbee.PN_TABLE[0x0]))
            d1 = int(np.count_nonzero(chips != zigbee.PN_TABLE[0x8]))
            return 0 if d0 <= d1 else 1
        return int(value)

    def build_carrier(
        self,
        productive_bits: np.ndarray | list[int],
        *,
        trailing_symbols: int = 0,
    ) -> Waveform:
        """Modulate a crafted carrier whose payload spreads each
        productive bit over one kappa-symbol sequence."""
        bits = np.asarray(productive_bits, dtype=np.uint8)
        cfg = self.config
        protocol = cfg.protocol
        symbol_values = []
        for b in bits:
            symbol_values.extend([self.reference_symbol_value(int(b))] * cfg.kappa)
        symbol_values.extend([0] * trailing_symbols)

        if protocol is Protocol.WIFI_B:
            onair = np.array(symbol_values, dtype=np.uint8)
            return wifi_b.modulate(onair, scrambled_domain=True)
        if protocol is Protocol.BLE:
            return ble.modulate(np.array(symbol_values, dtype=np.uint8))
        if protocol is Protocol.ZIGBEE:
            sym = np.array(symbol_values, dtype=np.uint8)
            if sym.size % 2:
                sym = np.concatenate([sym, np.zeros(1, np.uint8)])
            return zigbee.modulate(zigbee.bits_from_symbols(sym))
        # 802.11n: craft the data-bit stream; payload symbol 0 carries
        # the SERVICE field + filler, sequences start at symbol 1.
        n_dbps = 26  # MCS0
        stream = [np.zeros(n_dbps, np.uint8)]  # symbol 0 (service+fill)
        for v in symbol_values:
            stream.append(np.full(n_dbps, v, dtype=np.uint8))
        return wifi_n.modulate(b"", data_bits=np.concatenate(stream))

    # ------------------------------------------------------------------
    # decoding (single commodity receiver)
    # ------------------------------------------------------------------
    def _values_differ(self, a, b) -> bool:
        if self.config.protocol is Protocol.WIFI_N:
            a = np.asarray(a)
            b = np.asarray(b)
            lo = a.size // 4
            hi = a.size - a.size // 4
            return float(np.mean(a[lo:hi] != b[lo:hi])) > 0.25
        return int(a) != int(b)

    def decode_symbols(self, symbol_values: list) -> tuple[np.ndarray, np.ndarray]:
        """Recover (productive_bits, tag_bits) from the receiver's
        per-symbol decisions.

        ``symbol_values`` are payload-symbol decisions in the
        protocol's comparison domain (bits, PN indices, or 26-bit
        groups).  Tag bits are majority votes of "differs from the
        reference" across each gamma-group -- the XOR decoding of
        §2.4 generalized to all four protocols.
        """
        cfg = self.config
        n_seq = self.n_sequences(len(symbol_values))
        productive = np.zeros(n_seq, dtype=np.uint8)
        tag = np.zeros(n_seq * cfg.tag_bits_per_sequence, dtype=np.uint8)
        for s in range(n_seq):
            ref = symbol_values[self.sequence_start(s)]
            productive[s] = self.productive_bit_from_symbol(ref)
            for j, group in enumerate(self.tag_symbol_groups(s)):
                votes = [
                    self._values_differ(symbol_values[idx], ref) for idx in group
                ]
                tag[s * cfg.tag_bits_per_sequence + j] = int(
                    np.count_nonzero(votes) * 2 > len(votes)
                )
        return productive, tag

    # ------------------------------------------------------------------
    # tag-side flip layout
    # ------------------------------------------------------------------
    def tag_flip_flags(
        self, tag_bits: np.ndarray | list[int], n_payload_symbols: int
    ) -> np.ndarray:
        """Boolean per payload symbol: does the tag flip it?

        Consumes tag bits sequence by sequence; unused capacity is left
        unmodulated.
        """
        bits = np.asarray(tag_bits, dtype=np.uint8)
        flags = np.zeros(n_payload_symbols, dtype=bool)
        n_seq = self.n_sequences(n_payload_symbols)
        per_seq = self.config.tag_bits_per_sequence
        k = 0
        for s in range(n_seq):
            for group in self.tag_symbol_groups(s):
                if k >= bits.size:
                    return flags
                if bits[k]:
                    for idx in group:
                        if idx < n_payload_symbols:
                            flags[idx] = True
                k += 1
        return flags
