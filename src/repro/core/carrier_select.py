"""Excitation-diversity logic (paper §4.2, Fig 18).

Two behaviours are modeled:

* **Adaptation to discontinuous excitations** (Fig 18a): with several
  duty-cycled carriers on the air, a multiscatter tag transmits
  whenever *any* carrier is present, while a single-protocol tag idles
  during its carrier's off phases.
* **Intelligent carrier pick** (Fig 18b): given the observed excitation
  rates, the tag estimates the backscattered goodput of each protocol
  and selects the carrier that meets the application's goodput goal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.overlay import Mode
from repro.core.throughput import OverlayThroughputModel
from repro.phy.protocols import Protocol
from repro.sim.traffic import ExcitationSchedule

__all__ = ["CarrierEstimate", "CarrierSelector", "diversity_timeline"]


@dataclass
class CarrierEstimate:
    """Estimated tag goodput over one carrier (Fig 18b's decision
    evidence)."""

    protocol: Protocol
    observed_rate_pkts: float
    tag_goodput_kbps: float


class CarrierSelector:
    """Pick the excitation that maximizes tag goodput (§4.2.2)."""

    def __init__(
        self,
        *,
        mode: Mode = Mode.MODE_1,
        distance_m: float = 2.0,
        payload_bytes: dict[Protocol, int] | None = None,
    ) -> None:
        self.mode = mode
        self.distance_m = distance_m
        self.payload_bytes = payload_bytes or {}

    def estimate(
        self, protocol: Protocol, observed_rate_pkts: float
    ) -> CarrierEstimate:
        model = OverlayThroughputModel(
            protocol,
            mode=self.mode,
            n_payload_bytes=self.payload_bytes.get(protocol),
        )
        point = model.evaluate(self.distance_m, packet_rate=observed_rate_pkts)
        return CarrierEstimate(
            protocol=protocol,
            observed_rate_pkts=observed_rate_pkts,
            tag_goodput_kbps=point.tag_kbps,
        )

    def pick(
        self,
        observed_rates: dict[Protocol, float],
        *,
        goal_kbps: float = 0.0,
    ) -> tuple[Protocol | None, list[CarrierEstimate]]:
        """The best carrier and all estimates; ``None`` if no carrier
        meets ``goal_kbps``."""
        estimates = [
            self.estimate(p, rate) for p, rate in observed_rates.items() if rate > 0
        ]
        estimates.sort(key=lambda e: e.tag_goodput_kbps, reverse=True)
        if not estimates or estimates[0].tag_goodput_kbps < goal_kbps:
            return None, estimates
        return estimates[0].protocol, estimates


def diversity_timeline(
    schedule: ExcitationSchedule,
    *,
    bin_s: float = 0.05,
    tag_protocols: tuple[Protocol, ...] = tuple(Protocol),
    mode: Mode = Mode.MODE_1,
    distance_m: float = 2.0,
) -> dict[str, np.ndarray]:
    """Tag throughput over time under a packet schedule (Fig 18a).

    Returns per-bin tag throughput (kbps) for a tag that can use
    ``tag_protocols``.  A multiscatter tag passes all four protocols; a
    single-protocol tag passes one.
    """
    n_bins = max(int(np.ceil(schedule.duration_s / bin_s)), 1)
    bins = np.zeros(n_bins)
    models: dict[Protocol, OverlayThroughputModel] = {}
    for pkt in schedule.packets:
        if pkt.protocol not in tag_protocols:
            continue
        if pkt.protocol not in models:
            models[pkt.protocol] = OverlayThroughputModel(pkt.protocol, mode=mode)
        model = models[pkt.protocol]
        payload = pkt.source.resolved_payload()
        model_bits = OverlayThroughputModel(
            pkt.protocol, mode=mode, n_payload_bytes=payload
        )
        _, tag_bits = model_bits.bits_per_packet()
        per = model.link.per(distance_m, payload * 8)
        idx = min(int(pkt.start_s / bin_s), n_bins - 1)
        bins[idx] += tag_bits * (1.0 - per)
    return {
        "time_s": np.arange(n_bins) * bin_s,
        "tag_kbps": bins / bin_s / 1e3,
    }
