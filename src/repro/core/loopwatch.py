"""Event-loop lag sanitizer: the runtime counterpart to reproasync C001.

Static analysis proves no *known* blocking primitive is reachable from
async code; this module measures the loop itself, so anything the
analyzer cannot see (a slow C extension, an unexpectedly large batch)
still gets caught.  Enable with ``REPRO_LOOPWATCH=1``:

* a monitor task sleeps for a short interval and records how late it
  wakes up -- that lag is exactly how long some callback monopolized
  the loop; every tick feeds the ``loopwatch.lag_s`` gauge in
  :mod:`repro.perf`;
* a wake-up later than ``REPRO_LOOPWATCH_THRESHOLD_S`` (default 0.25 s)
  counts as a **violation** (``loopwatch.violations``), which the
  gateway surfaces in :class:`~repro.gateway.service.GatewayStats` and
  ``python -m repro serve --require-clean`` treats as a failure;
* under ``PYTHONASYNCIODEBUG=1`` asyncio logs every callback slower
  than ``loop.slow_callback_duration``; the watcher aligns that knob
  with its own threshold and counts those log records too
  (``slow_callbacks``), so the static C001 story is corroborated by
  two independent runtime signals.

The monitor is wall-clock-only: it draws no RNG and touches no
pipeline state, so enabling it cannot perturb replay determinism.
"""

from __future__ import annotations

import asyncio
import logging
import os
from dataclasses import dataclass

from repro import perf

__all__ = [
    "ENV_FLAG",
    "ENV_THRESHOLD",
    "LoopWatchStats",
    "LoopWatch",
    "enabled",
    "maybe_start",
]

ENV_FLAG = "REPRO_LOOPWATCH"
ENV_THRESHOLD = "REPRO_LOOPWATCH_THRESHOLD_S"

#: A callback holding the loop longer than this is a violation.  Heavy
#: PHY kernels run ~0.1-3 ms, so a quarter second means something is
#: blocking the loop outright, not just computing.
DEFAULT_THRESHOLD_S = 0.25

#: Monitor tick; small enough to catch one-off stalls, large enough to
#: stay invisible in the latency gauges.
DEFAULT_INTERVAL_S = 0.02


def enabled() -> bool:
    """Is the sanitizer requested via ``REPRO_LOOPWATCH``?"""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def threshold_s() -> float:
    raw = os.environ.get(ENV_THRESHOLD, "")
    try:
        value = float(raw) if raw else DEFAULT_THRESHOLD_S
    except ValueError:
        value = DEFAULT_THRESHOLD_S
    return value if value > 0 else DEFAULT_THRESHOLD_S


@dataclass
class LoopWatchStats:
    """What one monitored stretch of event loop observed."""

    ticks: int = 0
    max_lag_s: float = 0.0
    #: monitor wake-ups later than the threshold
    violations: int = 0
    #: asyncio-debug "Executing ... took" log records (needs
    #: ``PYTHONASYNCIODEBUG=1``; 0 otherwise)
    slow_callbacks: int = 0


class _SlowCallbackCounter(logging.Handler):
    """Counts asyncio debug-mode slow-callback warnings."""

    def __init__(self, stats: LoopWatchStats) -> None:
        super().__init__(level=logging.WARNING)
        self.stats = stats

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if "Executing" in message and "took" in message:
            self.stats.slow_callbacks += 1
            perf.count("loopwatch.slow_callbacks")


class LoopWatch:
    """One lag monitor; :meth:`start` inside a running loop."""

    def __init__(
        self,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        threshold: float | None = None,
    ) -> None:
        self.interval_s = interval_s
        self.threshold_s = threshold if threshold is not None else threshold_s()
        self.stats = LoopWatchStats()
        self._task: asyncio.Task | None = None
        self._handler: _SlowCallbackCounter | None = None

    def start(self) -> None:
        if self._task is not None:
            return
        loop = asyncio.get_running_loop()
        # Align asyncio's own debug-mode slow-callback reporting with
        # our budget so both signals agree on what "too slow" means.
        loop.slow_callback_duration = self.threshold_s
        self._handler = _SlowCallbackCounter(self.stats)
        logging.getLogger("asyncio").addHandler(self._handler)
        self._task = asyncio.ensure_future(self._run(loop))

    async def _run(self, loop: asyncio.AbstractEventLoop) -> None:
        last = loop.time()
        while True:
            await asyncio.sleep(self.interval_s)
            now = loop.time()
            lag = max(0.0, (now - last) - self.interval_s)
            last = now
            self.stats.ticks += 1
            if lag > self.stats.max_lag_s:
                self.stats.max_lag_s = lag
            perf.gauge("loopwatch.lag_s", lag)
            if lag >= self.threshold_s:
                self.stats.violations += 1
                perf.count("loopwatch.violations")

    async def stop(self) -> LoopWatchStats:
        """Cancel the monitor and return what it saw."""
        if self._handler is not None:
            logging.getLogger("asyncio").removeHandler(self._handler)
            self._handler = None
        task = self._task
        self._task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        perf.gauge("loopwatch.max_lag_s", self.stats.max_lag_s)
        return self.stats


def maybe_start() -> LoopWatch | None:
    """Start a watcher iff ``REPRO_LOOPWATCH`` asks for one."""
    if not enabled():
        return None
    watch = LoopWatch()
    watch.start()
    return watch
