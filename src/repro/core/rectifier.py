"""Envelope-detector (rectifier) behavioral models (paper §2.2.1).

Three front ends are modeled:

* :class:`BasicRectifier` -- single diode + RC (Fig 3a).  Output is the
  envelope minus the diode turn-on voltage; weak signals never turn the
  diode on.
* :class:`ClampRectifier` -- the paper's design (Fig 3c): a clamp stage
  roughly doubles the swing and removes most of the turn-on loss, and
  the RC time constant is tuned for 20 MHz baseband
  (1/f_c << tau << 1/f_b), at the cost of a resistive divider that
  halves the output (the 6 dB SNR sacrifice of §2.2.1).
* :class:`WispRectifier` -- the WISP 5.0 reference: tuned for RFID-rate
  (40-160 kbps) baseband, so its long time constant smears high-
  bandwidth envelopes (Fig 4b).

The simulation operates on the complex-baseband envelope |iq|, which is
exactly what an ideal square-law front end extracts from the 2.4 GHz
carrier.  Two front-end physics effects are included because the
identification results depend on them:

* **FM-to-AM conversion** (``fm_am_slope``): the antenna/matching
  network's response is not flat across the channel, so constant-
  envelope FSK/OQPSK signals (BLE, ZigBee) acquire a data-dependent
  amplitude ripple -- without it their envelopes would be featureless
  and Fig 5a's distinguishable shapes impossible.
* **Output noise** (``noise_v_rms``): diode shot/flicker plus following
  stage noise, which sets the envelope SNR at a given incident power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import DbmPower, FloatArray, Hertz, Seconds, Volts

from repro.phy.waveform import Waveform
from repro.rng import fallback_rng

__all__ = [
    "RectifierOutput",
    "BasicRectifier",
    "ClampRectifier",
    "WispRectifier",
    "incident_peak_voltage",
    "recommended_tau",
]

#: Antenna reference impedance.
_R_ANTENNA_OHM = 50.0


def incident_peak_voltage(power_dbm: DbmPower, *, matching_boost: float = 4.0) -> Volts:
    """Peak RF voltage at the rectifier input for a given incident power.

    ``matching_boost`` models the passive voltage gain of the antenna
    matching network (moderate-Q LC step-up).
    """
    power_w = 10.0 ** ((power_dbm - 30.0) / 10.0)
    return float(np.sqrt(2.0 * power_w * _R_ANTENNA_OHM) * matching_boost)


def recommended_tau(f_carrier_hz: Hertz = 2.4e9, f_baseband_hz: Hertz = 20e6) -> Seconds:
    """Geometric-mean RC constant satisfying 1/f_c << tau << 1/f_b."""
    if f_carrier_hz <= f_baseband_hz:
        raise ValueError("carrier must exceed baseband frequency")
    return float(1.0 / np.sqrt(f_carrier_hz * f_baseband_hz))


@dataclass
class RectifierOutput:
    """Baseband voltage trace produced by a rectifier."""

    voltage: np.ndarray
    sample_rate: Hertz

    @property
    def mean_v(self) -> Volts:
        return float(self.voltage.mean()) if self.voltage.size else 0.0

    @property
    def peak_v(self) -> Volts:
        return float(self.voltage.max()) if self.voltage.size else 0.0


def _instantaneous_freq(iq: np.ndarray, fs: float) -> FloatArray:
    """Instantaneous frequency in Hz from phase differences."""
    if iq.size < 2:
        return np.zeros(iq.size)
    dphi = np.angle(iq[1:] * np.conj(iq[:-1]))
    f = dphi * fs / (2.0 * np.pi)
    return np.concatenate([[f[0]], f])


def _diode_rc(v_in: np.ndarray, fs: float, tau_s: float) -> FloatArray:
    """Ideal-diode peak detector with exponential discharge.

    The diode charges the capacitor instantly (charge time constant
    << 1/fs) and the resistor discharges it with ``tau_s``:
    v[n] = max(v_in[n], v[n-1] * exp(-dt/tau)).  Computed exactly in
    blocks via a weighted running maximum.
    """
    if v_in.size == 0:
        return v_in.copy()
    rate = 1.0 / (fs * tau_s)
    if rate > 25.0:
        # Discharge completes within one sample: output tracks input.
        return v_in.copy()
    decay = np.exp(-rate)
    out = np.empty_like(v_in)
    # Keep decay**-block within float range (exp(600) ~ 1e260).
    block = max(int(min(512.0, 600.0 / max(rate, 1e-12))), 1)
    carry = 0.0
    inv_decay_pow = decay ** -np.arange(block, dtype=float)
    decay_pow = decay ** np.arange(block, dtype=float)
    for start in range(0, v_in.size, block):
        seg = v_in[start : start + block]
        n = seg.size
        cand = np.maximum(seg * inv_decay_pow[:n], carry * inv_decay_pow[:n] * decay)
        running = np.maximum.accumulate(cand)
        res = running * decay_pow[:n]
        out[start : start + n] = res
        carry = res[-1]
    return out


class _EnvelopeRectifier:
    """Shared machinery for all three rectifier models."""

    #: Effective turn-on voltage subtracted from the input swing.
    turn_on_v: Volts
    #: Input swing multiplier (clamp stage ~= 2, plain diode = 1).
    swing_gain: float
    #: Resistive divider after detection (loading of the tuned R1).
    output_divider: float
    #: Discharge time constant.
    tau_s: Seconds
    #: FM-to-AM conversion slope (fractional amplitude per MHz).
    fm_am_slope: float
    #: Output-referred noise, volts RMS.
    noise_v_rms: Volts

    def rectify(
        self,
        wave: Waveform,
        incident_power_dbm: float | None,
        *,
        rng: np.random.Generator | None = None,
        matching_boost: float = 4.0,
    ) -> RectifierOutput:
        """Produce the baseband voltage for a waveform.

        With ``incident_power_dbm`` given, the waveform's own scale is
        normalized away and power is set by that value.  With ``None``
        the waveform is taken as already being in antenna volts --
        composite (multi-packet) scenes are built that way so relative
        interferer powers survive (Fig 16).
        """
        rms = np.sqrt(wave.mean_power())
        if rms <= 0:
            env = np.zeros(wave.n_samples)
            f_inst = np.zeros(wave.n_samples)
        else:
            if incident_power_dbm is None:
                env = np.abs(wave.iq) * matching_boost
            else:
                scale = incident_peak_voltage(
                    incident_power_dbm, matching_boost=matching_boost
                )
                env = np.abs(wave.iq) / rms * scale
            f_inst = _instantaneous_freq(wave.iq, wave.sample_rate)
        # FM-to-AM conversion in the matching network.
        env = env * (1.0 + self.fm_am_slope * f_inst / 1e6)
        env = np.clip(env, 0.0, None)

        swing = np.clip(self.swing_gain * env - self.turn_on_v, 0.0, None)
        detected = _diode_rc(swing, wave.sample_rate, self.tau_s)
        out = detected * self.output_divider
        if self.noise_v_rms > 0:
            rng = fallback_rng(rng)
            out = out + rng.normal(scale=self.noise_v_rms, size=out.size)
        return RectifierOutput(voltage=out, sample_rate=wave.sample_rate)

    def output_for_constant_input(self, incident_power_dbm: DbmPower, *, matching_boost: float = 4.0) -> Volts:
        """Steady-state output for an unmodulated carrier (no noise)."""
        v = incident_peak_voltage(incident_power_dbm, matching_boost=matching_boost)
        return max(self.swing_gain * v - self.turn_on_v, 0.0) * self.output_divider


class BasicRectifier(_EnvelopeRectifier):
    """Single-diode detector (Fig 3a): loses the diode turn-on voltage."""

    def __init__(self, *, tau_s: float | None = None, noise_v_rms: float = 2.3e-3) -> None:
        self.turn_on_v = 0.25
        self.swing_gain = 1.0
        self.output_divider = 1.0
        self.tau_s = tau_s if tau_s is not None else recommended_tau()
        self.fm_am_slope = 0.3
        self.noise_v_rms = noise_v_rms


class ClampRectifier(_EnvelopeRectifier):
    """The paper's clamp + tuned-RC design (Fig 3c).

    The clamp doubles the usable swing and reduces the effective
    turn-on to the clamp diode's residual; the tuned (small) R1 both
    speeds the detector up (tau for 20 MHz baseband) and divides the
    output -- the deliberate SNR-for-bandwidth trade of §2.2.1.
    """

    def __init__(self, *, tau_s: float | None = None, noise_v_rms: float = 1.0e-3) -> None:
        self.turn_on_v = 0.02
        self.swing_gain = 2.0
        self.output_divider = 0.2
        self.tau_s = tau_s if tau_s is not None else recommended_tau()
        self.fm_am_slope = 0.3
        self.noise_v_rms = noise_v_rms


class WispRectifier(_EnvelopeRectifier):
    """WISP 5.0 reference front end: RFID-rate RC, high output, slow.

    Its time constant suits 40-160 kbps reader signaling, so a 1 Mbps /
    11 Mchip 802.11b envelope is heavily smeared (Fig 4b).
    """

    def __init__(self, *, tau_s: float = 2e-6, noise_v_rms: float = 1e-3) -> None:
        self.turn_on_v = 0.25
        self.swing_gain = 1.0
        self.output_divider = 1.0
        self.tau_s = tau_s
        self.fm_am_slope = 0.3
        self.noise_v_rms = noise_v_rms
