"""Tag state machines: multiscatter vs single-protocol (paper Fig 2/18).

:class:`MultiscatterTag` chains identification -> per-protocol overlay
modulation: whatever excitation arrives, it recognizes the protocol and
backscatters tag data onto it.  :class:`SingleProtocolTag` models the
prior-art comparison point: it only reacts to its one protocol and sits
idle otherwise (Fig 18a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.identification import IdentificationConfig, ProtocolIdentifier
from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
from repro.core.tag_modulation import TagModulator
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform

__all__ = ["TagReaction", "MultiscatterTag", "SingleProtocolTag"]


@dataclass
class TagReaction:
    """What the tag did with one excitation packet."""

    identified: Protocol | None
    correct: bool
    backscattered: Waveform | None
    tag_bits_sent: np.ndarray

    @property
    def transmitted(self) -> bool:
        return self.backscattered is not None


class MultiscatterTag:
    """The paper's tag: identify any of the four protocols, then overlay
    tag data onto the carrier with the protocol-appropriate modulation.
    """

    def __init__(
        self,
        *,
        identification: IdentificationConfig | None = None,
        mode: Mode = Mode.MODE_1,
        frequency_shift_hz: float = 10e6,
    ) -> None:
        self.identifier = ProtocolIdentifier(
            identification
            or IdentificationConfig(
                sample_rate_hz=2.5e6,
                quantized=True,
                window_us=38.0,
                ordered=True,
            )
        )
        self.mode = mode
        self.frequency_shift_hz = frequency_shift_hz
        self._modulators: dict[Protocol, TagModulator] = {}

    def modulator_for(self, protocol: Protocol, n_payload_symbols: int | None = None) -> TagModulator:
        """The per-protocol overlay modulator (cached for modes 1/2)."""
        if self.mode is Mode.MODE_3:
            if n_payload_symbols is None:
                raise ValueError("mode 3 needs the payload size")
            codec = OverlayCodec(
                OverlayConfig.for_mode(
                    protocol, self.mode, payload_symbols=n_payload_symbols
                )
            )
            return TagModulator(codec, frequency_shift_hz=self.frequency_shift_hz)
        if protocol not in self._modulators:
            codec = OverlayCodec(OverlayConfig.for_mode(protocol, self.mode))
            self._modulators[protocol] = TagModulator(
                codec, frequency_shift_hz=self.frequency_shift_hz
            )
        return self._modulators[protocol]

    def react(
        self,
        wave: Waveform,
        tag_bits: np.ndarray | list[int],
        *,
        incident_power_dbm: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> TagReaction:
        """Identify the excitation and backscatter ``tag_bits`` onto it.

        A misidentification means the tag modulates with the wrong
        symbol timing; the backscattered packet is then useless, which
        the reaction reports as ``correct=False`` /
        ``backscattered=None``.
        """
        truth = wave.annotations.get("protocol")
        result = self.identifier.identify(
            wave, incident_power_dbm=incident_power_dbm, rng=rng
        )
        bits = np.asarray(tag_bits, dtype=np.uint8)
        if result.decision is not truth:
            return TagReaction(
                identified=result.decision,
                correct=False,
                backscattered=None,
                tag_bits_sent=np.zeros(0, np.uint8),
            )
        modulator = self.modulator_for(truth, wave.annotations.get("n_payload_symbols"))
        _, tag_capacity = modulator.codec.capacity(
            wave.annotations["n_payload_symbols"]
        )
        used = bits[:tag_capacity]
        return TagReaction(
            identified=result.decision,
            correct=True,
            backscattered=modulator.modulate(wave, used),
            tag_bits_sent=used,
        )


@dataclass
class SingleProtocolTag:
    """Prior-art comparison tag: bound to one protocol, idle otherwise."""

    protocol: Protocol
    mode: Mode = Mode.MODE_1
    frequency_shift_hz: float = 10e6
    _modulator: TagModulator | None = field(default=None, repr=False)

    def react(
        self,
        wave: Waveform,
        tag_bits: np.ndarray | list[int],
        **_: object,
    ) -> TagReaction:
        truth = wave.annotations.get("protocol")
        if truth is not self.protocol:
            return TagReaction(
                identified=None,
                correct=False,
                backscattered=None,
                tag_bits_sent=np.zeros(0, np.uint8),
            )
        if self._modulator is None:
            codec = OverlayCodec(OverlayConfig.for_mode(self.protocol, self.mode))
            self._modulator = TagModulator(
                codec, frequency_shift_hz=self.frequency_shift_hz
            )
        bits = np.asarray(tag_bits, dtype=np.uint8)
        _, cap = self._modulator.codec.capacity(wave.annotations["n_payload_symbols"])
        used = bits[:cap]
        return TagReaction(
            identified=self.protocol,
            correct=True,
            backscattered=self._modulator.modulate(wave, used),
            tag_bits_sent=used,
        )
