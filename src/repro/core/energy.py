"""Power and energy-harvesting models (paper Tables 3 and 4, §3).

Table 3 is the prototype's peak power breakdown at 20 Msps; the ADC
dominates (260 mW), which is why the paper argues for modern
tens-of-uW ADC IP at 2.5 Msps.  Table 4 follows from closed-form
energy arithmetic: a 0.01 F storage capacitor cycled between 4.1 V and
2.6 V delivers ~50 mJ, runs the tag for E/P seconds, and each solar
recharge takes E / P_harvest(lux).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.protocols import DEFAULT_PACKET_RATES, Protocol

__all__ = [
    "PowerBreakdown",
    "PROTOTYPE_POWER",
    "SolarHarvester",
    "StorageCapacitor",
    "EnergyBudget",
    "exchange_times",
]


@dataclass(frozen=True)
class PowerBreakdown:
    """Component power draws in mW (Table 3 structure)."""

    pkt_det_fpga_mw: float = 2.5
    adc_mw: float = 260.0
    modulation_fpga_mw: float = 1.0
    rf_switch_mw: float = 0.1
    oscillator_mw: float = 15.9

    @property
    def total_mw(self) -> float:
        return (
            self.pkt_det_fpga_mw
            + self.adc_mw
            + self.modulation_fpga_mw
            + self.rf_switch_mw
            + self.oscillator_mw
        )

    def at_adc_rate(self, sample_rate_hz: float) -> "PowerBreakdown":
        """ADC power scales roughly linearly with sampling rate (the
        AD9235's 260 mW figure is at 20 Msps)."""
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        scale = sample_rate_hz / 20e6
        return PowerBreakdown(
            pkt_det_fpga_mw=self.pkt_det_fpga_mw,
            adc_mw=self.adc_mw * scale,
            modulation_fpga_mw=self.modulation_fpga_mw,
            rf_switch_mw=self.rf_switch_mw,
            oscillator_mw=self.oscillator_mw,
        )

    def rows(self) -> list[tuple[str, str, float]]:
        """(logical part, device, power) rows as printed in Table 3."""
        return [
            ("Pkt det.", "Pkt det.(FPGA)", self.pkt_det_fpga_mw),
            ("Pkt det.", "ADC (20 Msps)", self.adc_mw),
            ("Modulation", "FPGA (Modulation)", self.modulation_fpga_mw),
            ("Modulation", "RF-switch", self.rf_switch_mw),
            ("Clock", "Oscillator (20 MHz)", self.oscillator_mw),
        ]


#: The COTS prototype's measured breakdown (Table 3; totals 279.5 mW).
PROTOTYPE_POWER = PowerBreakdown()


@dataclass(frozen=True)
class StorageCapacitor:
    """BQ25570-managed storage capacitor (§3 'Power consumption')."""

    capacitance_f: float = 0.01
    v_start: float = 4.1
    v_cutoff: float = 2.6

    @property
    def usable_energy_j(self) -> float:
        """E = C/2 (V1^2 - V2^2) ~= 50 mJ for the prototype."""
        return 0.5 * self.capacitance_f * (self.v_start**2 - self.v_cutoff**2)

    def runtime_s(self, power_mw: float) -> float:
        """How long one discharge sustains ``power_mw``."""
        if power_mw <= 0:
            raise ValueError("power must be positive")
        return self.usable_energy_j / (power_mw / 1e3)


@dataclass(frozen=True)
class SolarHarvester:
    """MP3-37 panel + BQ25570 harvest model.

    Calibrated to the paper's two measurements: 50 mJ in 216.2 s at
    500 lux (indoor) and in 0.78 s at 1.04e5 lux (outdoor).  Harvested
    power is interpolated as a power law between those points.
    """

    #: (lux, harvested power in mW) calibration anchors.
    indoor_point: tuple[float, float] = (500.0, 50.25 / 216.2 * 1e0)
    outdoor_point: tuple[float, float] = (1.04e5, 50.25 / 0.78 * 1e0)

    def power_mw(self, lux: float) -> float:
        if lux <= 0:
            raise ValueError("lux must be positive")
        import numpy as np

        (l1, p1), (l2, p2) = self.indoor_point, self.outdoor_point
        alpha = np.log(p2 / p1) / np.log(l2 / l1)
        return float(p1 * (lux / l1) ** alpha)

    def harvest_time_s(self, energy_j: float, lux: float) -> float:
        if energy_j <= 0:
            raise ValueError("energy must be positive")
        return energy_j / (self.power_mw(lux) / 1e3)


@dataclass
class EnergyBudget:
    """Ties the pieces together for Table 4's exchange-time arithmetic."""

    power: PowerBreakdown = field(default_factory=lambda: PROTOTYPE_POWER)
    capacitor: StorageCapacitor = field(default_factory=StorageCapacitor)
    harvester: SolarHarvester = field(default_factory=SolarHarvester)

    @property
    def runtime_per_charge_s(self) -> float:
        return self.capacitor.runtime_s(self.power.total_mw)

    def packets_per_charge(self, packet_rate_hz: float) -> float:
        """Backscattered packets per discharge (360 for 2000 pkt/s)."""
        if packet_rate_hz <= 0:
            raise ValueError("packet_rate_hz must be positive")
        return packet_rate_hz * self.runtime_per_charge_s

    def harvest_time_s(self, lux: float) -> float:
        return self.harvester.harvest_time_s(self.capacitor.usable_energy_j, lux)

    def exchange_time_s(self, packet_rate_hz: float, lux: float) -> float:
        """Average time between two tag-data exchanges of one packet:
        one recharge amortized over the packets a charge supports."""
        return self.harvest_time_s(lux) / self.packets_per_charge(packet_rate_hz)


#: Illuminances used in Table 4.
INDOOR_LUX = 500.0
OUTDOOR_LUX = 1.04e5


def exchange_times(
    budget: EnergyBudget | None = None,
    *,
    packet_rates: dict[Protocol, float] | None = None,
) -> dict[Protocol, dict[str, float]]:
    """Reproduce Table 4: per-protocol packets/charge and average
    exchange times indoor and outdoor."""
    b = budget or EnergyBudget()
    rates = packet_rates or DEFAULT_PACKET_RATES
    out: dict[Protocol, dict[str, float]] = {}
    for protocol, rate in rates.items():
        out[protocol] = {
            "exchange_packets": b.packets_per_charge(rate),
            "indoor_s": b.exchange_time_s(rate, INDOOR_LUX),
            "outdoor_s": b.exchange_time_s(rate, OUTDOOR_LUX),
        }
    return out
