"""A minimal link layer for tag data.

Overlay modulation hands the application a per-packet budget of tag
bits (the codec's capacity).  Real sensors send *messages* that span
many excitation packets and arrive over a lossy channel, so this
module adds the thin framing a deployment needs:

* messages are split into frames of at most ``frame_payload_bits``;
* each frame carries a 4-bit sequence number, a 4-bit length field,
  and a CRC-8 over header+payload;
* the decoder validates CRCs, tolerates lost/corrupted frames, and
  reassembles in-order message bytes (gaps are reported, not
  invented).

The paper stops at raw tag bits; this is the §2.4.3 "range of
practical applications" layer made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import BitArray

from repro.phy.bits import bits_from_int, int_from_bits

__all__ = ["TagLinkConfig", "TagFrame", "encode_message", "FrameDecoder"]

_CRC8_POLY = 0x07  # CRC-8/ATM


def crc8(bits: np.ndarray) -> int:
    """CRC-8 over a bit array (MSB-first shifting)."""
    reg = 0
    for b in np.asarray(bits, dtype=np.uint8):
        fb = ((reg >> 7) & 1) ^ int(b)
        reg = (reg << 1) & 0xFF
        if fb:
            reg ^= _CRC8_POLY
    return reg


@dataclass(frozen=True)
class TagLinkConfig:
    """Framing parameters.

    ``frame_payload_bits`` is chosen to fit the overlay capacity of
    the smallest carrier the deployment expects (a BLE advertising
    packet in mode 1 offers ~37 tag bits; 16 header+CRC bits leave 21
    -- the default 16 keeps frames byte-aligned).
    """

    frame_payload_bits: int = 16

    def __post_init__(self) -> None:
        if not 1 <= self.frame_payload_bits <= 15 * 8:
            raise ValueError("frame_payload_bits must be in 1..120")

    @property
    def header_bits(self) -> int:
        return 8  # 4-bit seq + 4-bit payload length (in nibbles)

    @property
    def crc_bits(self) -> int:
        return 8

    @property
    def frame_bits(self) -> int:
        return self.header_bits + self.frame_payload_bits + self.crc_bits


@dataclass
class TagFrame:
    """One on-air frame of tag data."""

    seq: int
    payload_bits: np.ndarray

    def to_bits(self, config: TagLinkConfig) -> BitArray:
        if self.payload_bits.size > config.frame_payload_bits:
            raise ValueError("payload exceeds the frame budget")
        pad = config.frame_payload_bits - self.payload_bits.size
        body = np.concatenate(
            [self.payload_bits, np.zeros(pad, np.uint8)]
        )
        n_nibbles = (self.payload_bits.size + 3) // 4
        header = np.concatenate(
            [bits_from_int(self.seq & 0xF, 4), bits_from_int(n_nibbles & 0xF, 4)]
        )
        crc = bits_from_int(crc8(np.concatenate([header, body])), 8)
        return np.concatenate([header, body, crc])


def encode_message(
    message: bytes, config: TagLinkConfig | None = None, *, start_seq: int = 0
) -> list[np.ndarray]:
    """Split a message into framed bit arrays ready for the overlay
    modulator."""
    cfg = config or TagLinkConfig()
    from repro.phy.bits import bits_from_bytes

    bits = bits_from_bytes(message)
    frames = []
    seq = start_seq
    for lo in range(0, bits.size, cfg.frame_payload_bits):
        chunk = bits[lo : lo + cfg.frame_payload_bits]
        frames.append(TagFrame(seq=seq & 0xF, payload_bits=chunk).to_bits(cfg))
        seq += 1
    return frames


@dataclass
class FrameDecoder:
    """Validates and reassembles received tag frames.

    Feed each packet's decoded tag bits to :meth:`push`; read the
    in-order reassembled payload with :meth:`message_bits`.  Frames
    with bad CRCs are dropped (counted in ``n_rejected``); sequence
    gaps are visible in ``received_seqs``.
    """

    config: TagLinkConfig = field(default_factory=TagLinkConfig)
    frames: dict[int, np.ndarray] = field(default_factory=dict)
    n_rejected: int = 0
    _order: list[int] = field(default_factory=list)

    def push(self, bits: np.ndarray) -> bool:
        """Consume one frame's bits; True when accepted."""
        cfg = self.config
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.size < cfg.frame_bits:
            self.n_rejected += 1
            return False
        arr = arr[: cfg.frame_bits]
        header = arr[: cfg.header_bits]
        body = arr[cfg.header_bits : cfg.header_bits + cfg.frame_payload_bits]
        crc_rx = int_from_bits(arr[cfg.header_bits + cfg.frame_payload_bits :])
        if crc8(np.concatenate([header, body])) != crc_rx:
            self.n_rejected += 1
            return False
        seq = int_from_bits(header[:4])
        n_nibbles = int_from_bits(header[4:8])
        payload = body[: min(n_nibbles * 4, body.size)]
        if seq not in self.frames:
            self._order.append(seq)
        self.frames[seq] = payload
        return True

    @property
    def received_seqs(self) -> list[int]:
        return sorted(self.frames)

    def missing_seqs(self) -> list[int]:
        """Gaps in the modulo-16 sequence space seen so far."""
        if not self.frames:
            return []
        present = set(self.frames)
        hi = max(present)
        return [s for s in range(hi + 1) if s not in present]

    def message_bits(self) -> BitArray:
        """Concatenate payloads of the frames received, in seq order."""
        if not self.frames:
            return np.zeros(0, np.uint8)
        return np.concatenate([self.frames[s] for s in sorted(self.frames)])

    def message_bytes(self) -> bytes:
        """Reassembled bytes (truncated to whole bytes)."""
        bits = self.message_bits()
        usable = bits.size - bits.size % 8
        if usable == 0:
            return b""
        from repro.phy.bits import bytes_from_bits

        return bytes_from_bits(bits[:usable])
