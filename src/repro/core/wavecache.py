"""Waveform and template caching (perf tier 3).

Monte-Carlo experiments remodulate the same packet heads thousands of
times: identification trials rebuild reference templates per sweep
point, and excitation traffic regenerates the (payload-independent)
preamble of every packet.  The caches collected here memoize those
deterministic parts; payloads stay fresh.

Two kinds of caches are tracked:

* :class:`LruCache` instances with hit/miss/eviction counters, used
  where the cached value is a mutable object (waveforms) that callers
  receive as defensive copies;
* ``functools.lru_cache``-wrapped functions inside the PHY modules
  (scrambler cycles, 802.11b packet heads, 802.11n training fields),
  registered here so :func:`cache_stats` and :func:`clear_caches`
  cover them too.

Cache keys always include every input that shapes the cached value --
``(protocol, config fields, payload hash)`` for waveform-level caches
-- so a hit can never alias two distinct signals.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = [
    "LruCache",
    "cache_stats",
    "clear_caches",
    "register_functools_cache",
]

#: All named LruCache instances, in creation order.
_CACHES: "OrderedDict[str, LruCache]" = OrderedDict()

#: Registered functools.lru_cache-wrapped callables (name -> wrapper).
_FUNCTOOLS_CACHES: "OrderedDict[str, Any]" = OrderedDict()


class LruCache:
    """Least-recently-used cache with hit/miss/eviction counters.

    Values are stored as-is; callers that hand out mutable objects must
    copy on the way out (see ``templates.reference_waveform``).
    """

    def __init__(self, maxsize: int = 64, name: str | None = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.name = name
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if name is not None:
            _CACHES[name] = self

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most recently used."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the least recently used entry."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = factory()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


def register_functools_cache(name: str, wrapper: Any) -> None:
    """Track a ``functools.lru_cache``-wrapped function by name."""
    _FUNCTOOLS_CACHES[name] = wrapper


def _register_phy_caches() -> None:
    """Register the PHY-module lru_caches (idempotent, import-lazy)."""
    from repro.phy import bits, wifi_b, wifi_n

    for name, fn in (
        ("phy.bits.lfsr_cycle", bits._lfsr_cycle),
        ("phy.bits.ble_whiten_cycle", bits._ble_whiten_cycle),
        ("phy.wifi_b.cached_head", wifi_b._cached_head),
        ("phy.wifi_n.l_stf", wifi_n._l_stf),
        ("phy.wifi_n.l_ltf", wifi_n._l_ltf),
        ("phy.wifi_n.ht_ltf", wifi_n._ht_ltf),
        ("phy.wifi_n.l_sig", wifi_n._l_sig),
        ("phy.wifi_n.ht_sig", wifi_n._ht_sig),
        ("phy.wifi_n.ht_permutation", wifi_n._ht_permutation),
    ):
        _FUNCTOOLS_CACHES.setdefault(name, fn)


def cache_stats() -> dict[str, dict[str, int]]:
    """Counters for every tracked cache, keyed by cache name."""
    _register_phy_caches()
    out: dict[str, dict[str, int]] = {}
    for name, cache in _CACHES.items():
        out[name] = cache.stats()
    for name, fn in _FUNCTOOLS_CACHES.items():
        info = fn.cache_info()
        out[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "evictions": 0,
            "size": info.currsize,
            "maxsize": info.maxsize if info.maxsize is not None else -1,
        }
    return out


def clear_caches() -> None:
    """Empty every tracked cache (LruCache and functools alike)."""
    _register_phy_caches()
    for cache in _CACHES.values():
        cache.clear()
    for fn in _FUNCTOOLS_CACHES.values():
        fn.cache_clear()
