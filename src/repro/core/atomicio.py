"""Crash-safe file writes.

A ``write_text`` interrupted mid-flight (``SIGKILL``, OOM, power loss)
leaves a truncated file *at the destination path*, which downstream
readers then mistake for a corrupt artifact.  Every durable output in
this repository (experiment artifacts, run manifests) goes through
:func:`atomic_write_text` instead: the bytes land in a uniquely named
temporary file in the *destination directory* (same filesystem, so the
final rename cannot cross a device boundary) and are published with
``os.replace``, which POSIX guarantees atomic.  A reader therefore
sees either the complete old content or the complete new content,
never a prefix.

Durability vs. speed: by default the data is atomic but not fsynced
(a kernel crash within the writeback window can still lose the -- whole,
never partial -- file).  Set ``REPRO_FSYNC=1`` (or pass
``fsync=True``) to fsync the temporary file and its directory before
and after the rename, the full crash-consistency dance.

The module instruments the gap between "temp file complete" and
"rename published" as the ``save`` fault site of
:mod:`repro.sim.faults`, the exact window a crash-mid-save test needs
to hit.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "fsync_enabled", "TMP_SUFFIX"]

#: Suffix of in-flight temporary files (leftovers indicate a crash).
TMP_SUFFIX = ".tmp"


def fsync_enabled(fsync: bool | None = None) -> bool:
    """Resolve the fsync opt-in: explicit argument, else ``REPRO_FSYNC``."""
    if fsync is not None:
        return fsync
    return os.environ.get("REPRO_FSYNC", "") not in ("", "0")


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(
    path: str | Path, text: str, *, fsync: bool | None = None
) -> Path:
    """Write ``text`` to ``path`` atomically (parents created).

    On any failure the destination is untouched and the temporary file
    is removed; an interrupting crash can at worst leave a stray
    ``<name>.*.tmp`` alongside an intact destination.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=out.parent, prefix=out.name + ".", suffix=TMP_SUFFIX
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            if fsync_enabled(fsync):
                fh.flush()
                os.fsync(fh.fileno())
        if os.environ.get("REPRO_FAULTS", ""):
            # Lazy import: the fault harness lives with the runner and
            # is only consulted when injection is armed.
            from repro.sim.faults import check

            check("save", name=str(out))
        os.replace(tmp, out)
        if fsync_enabled(fsync):
            _fsync_dir(out.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return out
