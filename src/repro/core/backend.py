"""Array-backend seam for the batched PHY/matching kernels.

The batched kernels (``modulate_batch`` / ``demodulate_batch`` in
:mod:`repro.phy`, :func:`repro.core.matching.score_capture_batch`,
:func:`repro.phy.viterbi.decode_batch`) are written against a thin
:class:`ArrayBackend` object instead of importing :mod:`numpy`
directly.  The backend exposes the array namespace as ``xp`` plus the
handful of conversion hooks batching needs, so a CuPy or Torch backend
can drop in later without touching kernel code -- the kernels only use
the NumPy-compatible subset (elementwise ufuncs, ``matmul``,
``reshape``/fancy indexing, axis reductions, ``fft``).

Selection
---------
:func:`get_backend` resolves the active backend once per process:

* an explicit :func:`set_backend` call wins (tests use this);
* otherwise the ``REPRO_BACKEND`` environment variable is consulted
  (``numpy`` is the only built-in; unknown names raise with the
  registered alternatives listed);
* otherwise the default ``numpy`` backend is used.

:func:`selection_source` reports which of the three paths picked the
active backend (``"set"``, ``"env"`` or ``"default"``) -- CI runs the
fast suite with ``REPRO_BACKEND=numpy`` and asserts ``"env"`` so the
seam can never silently stop honoring the knob.  Every resolution also
bumps the ``backend.select.<name>`` perf counter.

Adding a backend
----------------
Register a zero-argument factory; import the heavyweight module inside
the factory so listing backends stays cheap::

    def _cupy() -> ArrayBackend:
        import cupy
        return ArrayBackend(name="cupy", xp=cupy,
                            to_numpy=lambda a: cupy.asnumpy(a))

    register_backend("cupy", _cupy)

Kernels must not assume device-side arrays are NumPy arrays: convert
results that cross back into scalar code with ``backend.to_numpy``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "reset",
    "selection_source",
    "set_backend",
]

#: Environment knob naming the backend to activate.
ENV_VAR = "REPRO_BACKEND"


def _identity(array: Any) -> np.ndarray:
    return np.asarray(array)


@dataclass(frozen=True)
class ArrayBackend:
    """A NumPy-compatible array namespace plus conversion hooks.

    ``xp`` is the array module the batched kernels dispatch through
    (``numpy`` for the built-in backend).  ``to_numpy`` materializes a
    backend array as a host-side ``numpy.ndarray`` -- the identity for
    NumPy, a device copy for an accelerator backend.
    """

    name: str
    xp: ModuleType
    to_numpy: Callable[[Any], np.ndarray] = field(default=_identity)

    def asarray(self, array: Any, dtype: Any = None) -> Any:
        """Backend-side array from arbitrary input."""
        if dtype is None:
            return self.xp.asarray(array)
        return self.xp.asarray(array, dtype=dtype)


def _numpy_backend() -> ArrayBackend:
    return ArrayBackend(name="numpy", xp=np)


#: name -> zero-argument factory (imports happen inside the factory).
_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {"numpy": _numpy_backend}

_LOCK = threading.Lock()
_ACTIVE: ArrayBackend | None = None
_SOURCE: str | None = None


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites allowed).

    The factory runs the first time the backend is selected, so heavy
    imports (cupy, torch) belong inside it.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    with _LOCK:
        _FACTORIES[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def set_backend(name: str) -> ArrayBackend:
    """Explicitly activate a registered backend (wins over the env)."""
    backend = _resolve(name)
    global _ACTIVE, _SOURCE
    with _LOCK:
        _ACTIVE = backend
        _SOURCE = "set"
    _count_selection(backend.name)
    return backend


def get_backend() -> ArrayBackend:
    """The active backend, resolving ``REPRO_BACKEND`` on first use."""
    global _ACTIVE, _SOURCE
    with _LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
    raw = os.environ.get(ENV_VAR, "").strip()
    backend = _resolve(raw) if raw else _resolve("numpy")
    source = "env" if raw else "default"
    with _LOCK:
        if _ACTIVE is None:
            # Per-process selection cache, rebuilt in each worker.
            _ACTIVE = backend  # reproflow: disable=F001
            _SOURCE = source  # reproflow: disable=F001
        backend = _ACTIVE
    _count_selection(backend.name)
    return backend


def selection_source() -> str | None:
    """How the active backend was chosen: ``"set"``/``"env"``/``"default"``.

    ``None`` until the first :func:`get_backend`/:func:`set_backend`
    call resolves one.
    """
    with _LOCK:
        return _SOURCE


def reset() -> None:
    """Drop the cached selection (tests re-resolving ``REPRO_BACKEND``)."""
    global _ACTIVE, _SOURCE
    with _LOCK:
        _ACTIVE = None
        _SOURCE = None


def _resolve(name: str) -> ArrayBackend:
    with _LOCK:
        factory = _FACTORIES.get(name)
        known = tuple(sorted(_FACTORIES))
    if factory is None:
        raise ValueError(
            f"unknown {ENV_VAR} backend {name!r}; registered: {', '.join(known)}"
        )
    backend = factory()
    if backend.name != name:
        raise ValueError(
            f"backend factory for {name!r} returned backend named "
            f"{backend.name!r}"
        )
    return backend


def _count_selection(name: str) -> None:
    from repro import perf

    perf.count(f"backend.select.{name}")
