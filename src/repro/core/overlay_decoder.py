"""Single-commodity-radio decoding of overlay-modulated packets (§2.4).

The receiver demodulates the (frequency-shifted) backscattered packet
with its ordinary PHY chain, then recovers *both* data streams from the
single symbol stream: productive bits from reference symbols, tag bits
from reference-vs-modulatable comparisons.  No second receiver, no
original-channel packet -- the property Figs 9/15 contrast against
Hitchhike and FreeRider.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.overlay import OverlayCodec
from repro.phy import ble, wifi_b, wifi_n, zigbee
from repro.phy.batch import require_batch
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform

__all__ = ["OverlayDecodeOutput", "OverlayDecoder"]


@dataclass
class OverlayDecodeOutput:
    """Both data streams recovered from one packet."""

    productive_bits: np.ndarray
    tag_bits: np.ndarray
    symbol_values: list

    @property
    def n_productive(self) -> int:
        return int(self.productive_bits.size)

    @property
    def n_tag(self) -> int:
        return int(self.tag_bits.size)


class OverlayDecoder:
    """Runs the protocol's commodity receive chain and the overlay
    comparison decode."""

    def __init__(self, codec: OverlayCodec) -> None:
        self.codec = codec

    def symbol_values(self, wave: Waveform) -> list:
        """Per-payload-symbol decisions in the comparison domain."""
        protocol = self.codec.config.protocol
        if protocol is Protocol.WIFI_B:
            result = wifi_b.demodulate(wave)
            return [int(b) for b in result.onair_bits]
        if protocol is Protocol.BLE:
            result = ble.demodulate(wave)
            return [int(b) for b in result.onair_bits]
        if protocol is Protocol.ZIGBEE:
            result = zigbee.demodulate(wave)
            return [int(s) for s in result.symbols]
        result = wifi_n.demodulate(wave)
        return list(result.symbol_bits)

    def symbol_values_batch(self, waves: Sequence[Waveform]) -> list[list]:
        """Batched :meth:`symbol_values`: one vectorized PHY dispatch.

        Routes through the batched commodity receivers
        (``demodulate_batch``), which are bit-identical to per-waveform
        ``demodulate`` calls -- so the comparison-domain decisions, and
        therefore both decoded data streams, match the scalar path
        exactly at any batch size (including 1).
        """
        require_batch(waves, "OverlayDecoder.symbol_values_batch")
        protocol = self.codec.config.protocol
        if protocol is Protocol.WIFI_B:
            return [
                [int(b) for b in r.onair_bits]
                for r in wifi_b.demodulate_batch(waves)
            ]
        if protocol is Protocol.BLE:
            return [
                [int(b) for b in r.onair_bits]
                for r in ble.demodulate_batch(waves)
            ]
        if protocol is Protocol.ZIGBEE:
            return [
                [int(s) for s in r.symbols]
                for r in zigbee.demodulate_batch(waves)
            ]
        return [list(r.symbol_bits) for r in wifi_n.demodulate_batch(waves)]

    def decode(self, wave: Waveform) -> OverlayDecodeOutput:
        """Decode productive and tag data from a received waveform.

        ``wave`` must be centered on the receiver's channel (use
        :meth:`repro.core.tag_modulation.TagModulator.received_at_shifted_channel`
        first if the tag shifted it).
        """
        values = self.symbol_values(wave)
        productive, tag = self.codec.decode_symbols(values)
        return OverlayDecodeOutput(
            productive_bits=productive, tag_bits=tag, symbol_values=values
        )

    def decode_batch(self, waves: Sequence[Waveform]) -> list[OverlayDecodeOutput]:
        """Batched :meth:`decode`: bit-identical to the scalar loop.

        All waveforms must belong to this decoder's protocol/mode (one
        codec describes one overlay layout).  The PHY stage is a single
        grouped dispatch through the batched receive chains; the
        comparison decode is per-packet integer logic.
        """
        out = []
        for values in self.symbol_values_batch(waves):
            productive, tag = self.codec.decode_symbols(values)
            out.append(
                OverlayDecodeOutput(
                    productive_bits=productive, tag_bits=tag, symbol_values=values
                )
            )
        return out
