"""End-to-end multiprotocol identification (paper §2.2-§2.3).

:class:`ProtocolIdentifier` chains rectifier -> ADC -> template
correlation -> (blind | ordered) decision, and is the object the
Fig 5/7/8 experiments sweep: sampling rate, quantization, window
length, and matching rule are all configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # runtime import stays local to avoid a cycle
    from repro.core.resources import CorrelatorDesign

from repro.core.adc import Adc
from repro.core.matching import (
    BlindMatcher,
    OrderedMatcher,
    score_capture,
)
from repro.core.rectifier import ClampRectifier, _EnvelopeRectifier
from repro.core.templates import BASE_WINDOW_US, cached_bank
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.rng import fallback_rng
from repro.types import DbmPower, Hertz, Microseconds, Samples

__all__ = ["IdentificationConfig", "ProtocolIdentifier", "IdentificationResult"]


@dataclass(frozen=True)
class IdentificationConfig:
    """Identification pipeline configuration.

    Attributes map to the paper's sweeps: ``sample_rate_hz`` (20 M /
    10 M / 2.5 M / 1 Msps), ``quantized`` (+-1 quantization, §2.3.1),
    ``window_us`` (8 us base vs 40 us extended, §2.3.2), ``ordered``
    (blind vs ordered matching, Fig 7).
    """

    sample_rate_hz: Hertz = 20e6
    n_bits: int = 9
    quantized: bool = False
    window_us: Microseconds = BASE_WINDOW_US
    preprocess_us: Microseconds = 2.0
    ordered: bool = False
    search_offsets: tuple[int, ...] | None = None
    incident_power_dbm: DbmPower = -15.0

    def resolved_offsets(self) -> tuple[int, ...]:
        """Sliding-correlation search range.

        The tag detects the packet edge from the envelope rise, so
        residual timing uncertainty is a few ADC samples.
        """
        if self.search_offsets is not None:
            return self.search_offsets
        return (0, 1, 2, 3)

    @property
    def l_p(self) -> Samples:
        return max(int(round(self.preprocess_us * 1e-6 * self.sample_rate_hz)), 1)

    @property
    def l_m(self) -> Samples:
        return max(int(round(self.window_us * 1e-6 * self.sample_rate_hz)), 2)


@dataclass
class IdentificationResult:
    """One identification decision with its evidence."""

    decision: Protocol
    scores: dict[Protocol, float]


class ProtocolIdentifier:
    """The tag's packet-identification stage.

    Parameters
    ----------
    config:
        Pipeline settings (see :class:`IdentificationConfig`).
    rectifier:
        Front end; defaults to the paper's clamp rectifier.
    matcher:
        Decision rule; defaults to blind or ordered per
        ``config.ordered``.
    """

    def __init__(
        self,
        config: IdentificationConfig | None = None,
        *,
        rectifier: _EnvelopeRectifier | None = None,
        matcher: BlindMatcher | OrderedMatcher | None = None,
    ) -> None:
        self.config = config or IdentificationConfig()
        self.rectifier = rectifier or ClampRectifier()
        self.adc = Adc(
            sample_rate=self.config.sample_rate_hz, n_bits=self.config.n_bits
        )
        # Template derivation ignores the live rectifier (banks are
        # always built through a noiseless clamp front end), so the
        # bank depends only on the ADC + window configuration and is
        # shared through the wavecache instead of re-derived per
        # identifier -- see :func:`repro.core.templates.cached_bank`.
        self.bank = cached_bank(
            self.adc,
            window_us=self.config.window_us,
            preprocess_us=self.config.preprocess_us,
            incident_power_dbm=self.config.incident_power_dbm,
        )
        if matcher is not None:
            self.matcher = matcher
        elif self.config.ordered:
            self.matcher = OrderedMatcher()
        else:
            self.matcher = BlindMatcher()

    def scores(
        self,
        wave: Waveform,
        *,
        incident_power_dbm: float | None = None,
        rng: np.random.Generator | None = None,
        sampling_phase_s: float | None = None,
        prescaled: bool = False,
    ) -> dict[Protocol, float]:
        """Correlation scores for a packet waveform (head-aligned).

        ``prescaled=True`` treats the waveform as already being in
        antenna volts (composite interference scenes, Fig 16).
        """
        cfg = self.config
        power: float | None
        if prescaled:
            power = None
        elif incident_power_dbm is not None:
            power = incident_power_dbm
        else:
            power = cfg.incident_power_dbm
        rng = fallback_rng(rng)
        if sampling_phase_s is None:
            sampling_phase_s = float(rng.uniform(0.0, 1.0 / cfg.sample_rate_hz))
        analog = self.rectifier.rectify(wave, power, rng=rng)
        offsets = cfg.resolved_offsets()
        need = cfg.l_p + cfg.l_m + max(offsets) + 2
        capture = self.adc.capture(
            analog,
            duration_s=need / cfg.sample_rate_hz,
            phase_s=sampling_phase_s,
        )
        return score_capture(
            capture.codes,
            self.bank,
            quantized=cfg.quantized,
            offsets=offsets,
        )

    def power_profile(self) -> "CorrelatorDesign":
        """FPGA resource/power estimate of this configuration (the
        Table 2/5 models applied to the live pipeline settings)."""
        from repro.core.resources import CorrelatorDesign

        return CorrelatorDesign(
            sample_rate_hz=self.config.sample_rate_hz,
            window_us=self.config.window_us + self.config.preprocess_us,
            quantized=self.config.quantized,
        )

    def detect_and_identify(
        self,
        stream: Waveform,
        *,
        incident_power_dbm: float | None = None,
        rng: np.random.Generator | None = None,
        threshold_frac: float = 0.35,
    ) -> tuple[int, IdentificationResult] | None:
        """Find a packet in a stream by its envelope rise, then classify.

        This is how the real tag triggers: the FPGA watches the ADC
        output and starts correlating when the envelope jumps (§2.3
        note 1's duty-cycled EN signal).  Returns (ADC sample index of
        the detected edge, identification result), or ``None`` when no
        edge is found.
        """
        cfg = self.config
        rng = fallback_rng(rng)
        power = (
            incident_power_dbm
            if incident_power_dbm is not None
            else cfg.incident_power_dbm
        )
        analog = self.rectifier.rectify(stream, power, rng=rng)
        capture = self.adc.capture(analog)
        codes = capture.codes.astype(float)
        if codes.size < cfg.l_p + cfg.l_m + 4:
            return None
        # Edge detector: smoothed level crossing a fraction of the
        # stream's peak, with a small noise guard.
        smooth = np.convolve(codes, np.ones(4) / 4.0, mode="same")
        peak = smooth.max()
        # Idle-air level from a low percentile (the packet may occupy
        # most of the stream, so the median would sit inside it).
        noise_floor = float(np.percentile(smooth, 10))
        if peak <= noise_floor + 4.0:
            return None
        threshold = noise_floor + threshold_frac * (peak - noise_floor)
        above = np.flatnonzero(smooth > threshold)
        if above.size == 0:
            return None
        # Back off a few samples: slow-rising envelopes (ZigBee's
        # half-sine ramp) cross the threshold into the packet.
        start = max(int(above[0]) - 4, 0)
        # Residual edge uncertainty is a few samples: widen the
        # correlation search beyond the synchronized default.
        offsets = tuple(range(10))
        window = codes[start : start + cfg.l_p + cfg.l_m + max(offsets) + 2]
        scores = score_capture(
            window, self.bank, quantized=cfg.quantized, offsets=offsets
        )
        return start, IdentificationResult(
            decision=self.matcher.decide(scores), scores=scores
        )

    def identify(
        self,
        wave: Waveform,
        *,
        incident_power_dbm: float | None = None,
        rng: np.random.Generator | None = None,
        prescaled: bool = False,
    ) -> IdentificationResult:
        """Classify one packet waveform."""
        scores = self.scores(
            wave,
            incident_power_dbm=incident_power_dbm,
            rng=rng,
            prescaled=prescaled,
        )
        return IdentificationResult(decision=self.matcher.decide(scores), scores=scores)


@dataclass
class AccuracyReport:
    """Per-protocol and average identification accuracy."""

    per_protocol: dict[Protocol, float] = field(default_factory=dict)
    confusion: dict[tuple[Protocol, Protocol], int] = field(default_factory=dict)

    @property
    def average(self) -> float:
        if not self.per_protocol:
            return 0.0
        return float(np.mean(list(self.per_protocol.values())))

    @property
    def minimum(self) -> float:
        if not self.per_protocol:
            return 0.0
        return float(min(self.per_protocol.values()))


#: Incident power at the tag 0.8 m from each excitation radio, from
#: the calibrated link budget (WiFi NIC at 14 dBm, CC2540/CC2530 at
#: 4 dBm, 3 dBi antennas, PL(0.8 m) ~= 38.3 dB).
DEFAULT_INCIDENT_DBM: dict[Protocol, float] = {
    Protocol.WIFI_B: -21.2,
    Protocol.WIFI_N: -21.2,
    Protocol.BLE: -31.2,
    Protocol.ZIGBEE: -31.2,
}


def evaluate_identifier(
    identifier: ProtocolIdentifier,
    traces: list[tuple[Protocol, Waveform]],
    *,
    rng: np.random.Generator | None = None,
    incident_power_dbm: DbmPower | dict[Protocol, float] | None = None,
) -> AccuracyReport:
    """Run the identifier over labeled traces and tabulate accuracy.

    ``incident_power_dbm`` may be one value, a per-protocol dict, or
    None for the calibrated defaults (:data:`DEFAULT_INCIDENT_DBM`).
    """
    rng = rng or np.random.default_rng(0)
    if incident_power_dbm is None:
        powers: dict[Protocol, float] = dict(DEFAULT_INCIDENT_DBM)
    elif isinstance(incident_power_dbm, dict):
        powers = incident_power_dbm
    else:
        powers = {p: float(incident_power_dbm) for p in Protocol}
    totals: dict[Protocol, int] = {}
    hits: dict[Protocol, int] = {}
    report = AccuracyReport()
    for truth, wave in traces:
        result = identifier.identify(
            wave, incident_power_dbm=powers.get(truth), rng=rng
        )
        totals[truth] = totals.get(truth, 0) + 1
        if result.decision is truth:
            hits[truth] = hits.get(truth, 0) + 1
        key = (truth, result.decision)
        report.confusion[key] = report.confusion.get(key, 0) + 1
    for p, n in totals.items():
        report.per_protocol[p] = hits.get(p, 0) / n
    return report
