"""The multiscatter tag: the paper's primary contribution.

Pipeline (paper Fig 2): the tag rectifies incident 2.4 GHz signals into
a baseband envelope (:mod:`repro.core.rectifier`), samples it
(:mod:`repro.core.adc`), identifies the excitation protocol by template
correlation (:mod:`repro.core.templates`, :mod:`repro.core.matching`,
:mod:`repro.core.identification`), then overlays tag data onto the
productive carrier (:mod:`repro.core.overlay`,
:mod:`repro.core.tag_modulation`) so a single commodity radio decodes
both (:mod:`repro.core.overlay_decoder`).

Resource/power/energy accounting for the FPGA prototype lives in
:mod:`repro.core.resources` and :mod:`repro.core.energy`;
:mod:`repro.core.tag` glues everything into a
:class:`~repro.core.tag.MultiscatterTag`.
"""

from repro.core.rectifier import BasicRectifier, ClampRectifier, WispRectifier
from repro.core.adc import Adc
from repro.core.overlay import OverlayConfig, OverlayCodec, Mode
from repro.core.identification import ProtocolIdentifier, IdentificationConfig
from repro.core.tag import MultiscatterTag, SingleProtocolTag

__all__ = [
    "BasicRectifier",
    "ClampRectifier",
    "WispRectifier",
    "Adc",
    "OverlayConfig",
    "OverlayCodec",
    "Mode",
    "ProtocolIdentifier",
    "IdentificationConfig",
    "MultiscatterTag",
    "SingleProtocolTag",
]
