"""Analytic overlay throughput model (Figs 12, 13c, 14c, 15, 16).

Combines protocol timing (:func:`repro.sim.traffic.packet_airtime_s`),
overlay capacity (:class:`repro.core.overlay.OverlayCodec`), and the
link budget's PER to predict productive and tag throughput at a given
tag-receiver distance.

Two traffic regimes matter in the paper:

* **saturated** (Fig 12's "maximal throughput"): the excitation radio
  sends back-to-back packets separated by an inter-frame space, so the
  packet rate is 1 / (airtime + IFS);
* **rate-limited** (Figs 13/16/18): the excitation runs at a measured
  packet rate (2000/s WiFi, 34-70/s BLE advertising, 20/s ZigBee).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
from repro.core.overlay import Mode, OverlayCodec, OverlayConfig
from repro.phy.protocols import Protocol
from repro.types import Hertz, Meters
from repro.sim.traffic import packet_airtime_s

__all__ = [
    "payload_symbols",
    "SATURATION_PAYLOAD_BYTES",
    "INTERFRAME_SPACE_S",
    "ThroughputPoint",
    "OverlayThroughputModel",
]

#: Payload sizes for the saturated-throughput experiments (WiFi frames
#: of 300 B as in §4.1.4; BLE with data-length extension; ZigBee's
#: 127 B maximum PSDU).
SATURATION_PAYLOAD_BYTES = {
    Protocol.WIFI_B: 300,
    Protocol.WIFI_N: 300,
    Protocol.BLE: 255,
    Protocol.ZIGBEE: 127,
}

#: Inter-frame spacing per protocol (DIFS-ish for WiFi, the BLE
#: minimum inter-PDU gap, 802.15.4 LIFS).
INTERFRAME_SPACE_S = {
    Protocol.WIFI_B: 150e-6,
    Protocol.WIFI_N: 150e-6,
    Protocol.BLE: 150e-6,
    Protocol.ZIGBEE: 640e-6,
}


def payload_symbols(protocol: Protocol, n_payload_bytes: int) -> int:
    """Overlay symbol slots a PSDU of ``n_payload_bytes`` provides."""
    bits = n_payload_bytes * 8
    if protocol in (Protocol.WIFI_B, Protocol.BLE):
        return bits  # 1 bit per DSSS symbol / GFSK bit
    if protocol is Protocol.ZIGBEE:
        return (bits + 3) // 4
    # 802.11n MCS0: 26 data bits per OFDM symbol (incl. service/tail).
    return int(np.ceil((16 + bits + 6) / 26.0))


@dataclass
class ThroughputPoint:
    """Predicted throughputs at one operating point."""

    protocol: Protocol
    distance_m: Meters
    packet_rate: Hertz
    productive_kbps: float
    tag_kbps: float
    per: float
    rssi_dbm: float

    @property
    def aggregate_kbps(self) -> float:
        return self.productive_kbps + self.tag_kbps


class OverlayThroughputModel:
    """Productive/tag throughput vs distance for one protocol+mode."""

    def __init__(
        self,
        protocol: Protocol,
        *,
        mode: Mode = Mode.MODE_1,
        link: BackscatterLink | None = None,
        n_payload_bytes: int | None = None,
        gamma: int | None = None,
    ) -> None:
        self.protocol = protocol
        self.mode = mode
        self.link = link or BackscatterLink(PROTOCOL_LINK_DEFAULTS[protocol])
        self.n_payload_bytes = (
            n_payload_bytes
            if n_payload_bytes is not None
            else SATURATION_PAYLOAD_BYTES[protocol]
        )
        self.n_symbols = payload_symbols(protocol, self.n_payload_bytes)
        self.codec = OverlayCodec(
            OverlayConfig.for_mode(
                protocol, mode, payload_symbols=self.n_symbols, gamma=gamma
            )
        )

    @property
    def airtime_s(self) -> float:
        return packet_airtime_s(self.protocol, self.n_payload_bytes)

    def saturated_packet_rate(self) -> Hertz:
        """Back-to-back excitation: 1 / (airtime + IFS)."""
        return 1.0 / (self.airtime_s + INTERFRAME_SPACE_S[self.protocol])

    def bits_per_packet(self) -> tuple[int, int]:
        """(productive, tag) bits carried by one packet."""
        return self.codec.capacity(self.n_symbols)

    def evaluate(
        self,
        distance_m: Meters,
        *,
        packet_rate: Hertz | None = None,
    ) -> ThroughputPoint:
        """Throughput at ``distance_m``; saturated rate by default."""
        rate = packet_rate if packet_rate is not None else self.saturated_packet_rate()
        productive_bits, tag_bits = self.bits_per_packet()
        per = self.link.per(distance_m, self.n_payload_bytes * 8)
        good = rate * (1.0 - per)
        return ThroughputPoint(
            protocol=self.protocol,
            distance_m=distance_m,
            packet_rate=rate,
            productive_kbps=productive_bits * good / 1e3,
            tag_kbps=tag_bits * good / 1e3,
            per=per,
            rssi_dbm=self.link.rssi_dbm(distance_m),
        )

    def sweep(
        self,
        distances_m: np.ndarray,
        *,
        packet_rate: Hertz | None = None,
    ) -> list[ThroughputPoint]:
        """Evaluate across a distance sweep (Fig 13/14 curves)."""
        return [
            self.evaluate(float(d), packet_rate=packet_rate) for d in distances_m
        ]

    def evaluate_faded(
        self,
        distance_m: Meters,
        rng: np.random.Generator,
        *,
        packet_rate: Hertz | None = None,
        n_samples: int = 200,
        k_factor_db: float = 6.0,
    ) -> ThroughputPoint:
        """Throughput averaged over Rician small-scale fading.

        The paper's Fig 12 averages 100 tag locations; per-location
        fading perturbs the backscatter SNR around the distance mean.
        ``k_factor_db`` is the LoS-to-scatter ratio (6 dB ~ indoor LoS
        hallway).
        """
        from repro.channel.fading import rician_gain
        from repro.channel.link import _BER_MODEL

        rate = packet_rate if packet_rate is not None else self.saturated_packet_rate()
        productive_bits, tag_bits = self.bits_per_packet()
        n_bits = self.n_payload_bytes * 8
        ebn0_db = self.link.ebn0_db(distance_m)
        model = _BER_MODEL[self.link.budget.protocol]
        pers = []
        for _ in range(n_samples):
            gain = np.abs(rician_gain(k_factor_db, rng)) ** 2
            ebn0 = 10.0 ** (ebn0_db / 10.0) * gain
            ber = model(ebn0)
            pers.append(1.0 - (1.0 - ber) ** n_bits)
        per = float(np.mean(pers))
        good = rate * (1.0 - per)
        return ThroughputPoint(
            protocol=self.protocol,
            distance_m=distance_m,
            packet_rate=rate,
            productive_kbps=productive_bits * good / 1e3,
            tag_kbps=tag_bits * good / 1e3,
            per=per,
            rssi_dbm=self.link.rssi_dbm(distance_m),
        )
