"""Identification templates (paper §2.2.2 and §2.3.2).

A template is the expected ADC-domain envelope of a protocol's packet
head.  It has two parts: a *preprocessing window* (L_p samples) used by
the matcher to estimate DC level and scale, and a *matching window*
(L_m samples) that is correlated against the live capture.

Two window lengths matter in the paper:

* the **base window** of 8 us -- the BLE preamble, the shortest packet-
  detection field among the four protocols;
* the **extended window** of 40 us (§2.3.2) -- made possible because
  BLE advertising packets carry a fixed access address right after the
  preamble, and 802.11n carries fixed HT-STF/HT-LTF fields behind the
  legacy preamble.  This is what rescues accuracy at 2.5 Msps (Fig 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adc import Adc
from repro.core.rectifier import ClampRectifier, _EnvelopeRectifier
from repro.core.wavecache import LruCache
from repro.phy import ble, wifi_b, wifi_n, zigbee
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.types import Bits, Microseconds, Samples

__all__ = [
    "Template",
    "TemplateBank",
    "cached_bank",
    "reference_waveform",
    "BASE_WINDOW_US",
    "EXTENDED_WINDOW_US",
]

#: 8 us: the BLE preamble bounds the shared base window (§2.2.2).
BASE_WINDOW_US = 8.0

#: 40 us: the §2.3.2 extension (BLE adv access address, 11n HT fields).
EXTENDED_WINDOW_US = 40.0


#: Memoizes the deterministic reference waveforms (all-zero payload),
#: keyed (protocol, n_payload_bytes).  Callers get defensive copies.
_REFERENCE_CACHE = LruCache(maxsize=16, name="core.templates.reference_waveform")


def _build_reference(protocol: Protocol, n_payload_bytes: int) -> Waveform:
    payload = bytes(n_payload_bytes)
    if protocol is Protocol.WIFI_B:
        return wifi_b.modulate(payload)
    if protocol is Protocol.WIFI_N:
        return wifi_n.modulate(payload)
    if protocol is Protocol.BLE:
        return ble.modulate(payload)
    if protocol is Protocol.ZIGBEE:
        return zigbee.modulate(payload)
    raise ValueError(f"unknown protocol {protocol}")


def reference_waveform(protocol: Protocol, *, n_payload_bytes: int = 16) -> Waveform:
    """A clean, deterministic waveform whose head serves as template.

    The template region is payload-independent for every protocol: the
    802.11b SYNC scrambler seed is fixed, the BLE advertising access
    address is a constant, ZigBee's SHR is all zero symbols, and the
    802.11n training fields are standard sequences.

    The waveform is fully deterministic, so it is cached; the returned
    copy is the caller's to mutate.
    """
    wave = _REFERENCE_CACHE.get_or_create(
        (protocol, n_payload_bytes),
        lambda: _build_reference(protocol, n_payload_bytes),
    )
    return wave.copy()


@dataclass
class Template:
    """One protocol's expected envelope in the ADC domain.

    ``matching`` is zero-mean/unit-norm (full-precision correlation);
    ``matching_q`` is the +-1 quantized form used by the low-power FPGA
    implementation (§2.3.1).
    """

    protocol: Protocol
    l_p: Samples
    matching: np.ndarray
    matching_q: np.ndarray

    @property
    def l_m(self) -> Samples:
        return self.matching.size

    @property
    def storage_bits(self) -> Bits:
        """On-tag storage for the quantized template (1 bit/sample)."""
        return self.matching_q.size


@dataclass
class TemplateBank:
    """Templates for all four protocols at one ADC configuration."""

    adc: Adc
    window_us: Microseconds
    preprocess_us: Microseconds
    templates: dict[Protocol, Template] = field(default_factory=dict)
    #: Stacked-matrix cache for the batched correlator; keyed by the
    #: quantization flag plus the identity of every template so any
    #: replacement invalidates it.
    _stacked: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        adc: Adc,
        *,
        window_us: float = BASE_WINDOW_US,
        preprocess_us: float = 2.0,
        rectifier: _EnvelopeRectifier | None = None,
        incident_power_dbm: float = -15.0,
        protocols: tuple[Protocol, ...] = tuple(Protocol),
    ) -> "TemplateBank":
        """Build templates by running clean references through the same
        rectifier + ADC pipeline that live packets will see (noiseless).
        """
        rect = rectifier or ClampRectifier(noise_v_rms=0.0)
        noise_backup = rect.noise_v_rms
        rect.noise_v_rms = 0.0
        try:
            bank = cls(adc=adc, window_us=window_us, preprocess_us=preprocess_us)
            l_p = max(int(round(preprocess_us * 1e-6 * adc.sample_rate)), 1)
            l_m = max(int(round(window_us * 1e-6 * adc.sample_rate)), 2)
            for protocol in protocols:
                wave = reference_waveform(protocol)
                analog = rect.rectify(wave, incident_power_dbm)
                capture = adc.capture(
                    analog, duration_s=(l_p + l_m + 4) / adc.sample_rate
                )
                from repro.core.matching import dc_estimate

                window = capture.codes[l_p : l_p + l_m].astype(float)
                dc = dc_estimate(capture.codes[:l_p].astype(float))
                centered = window - window.mean()
                norm = np.linalg.norm(centered)
                matching = centered / norm if norm > 1e-12 else centered
                quantized = np.where(window - dc >= 0.0, 1.0, -1.0)
                bank.templates[protocol] = Template(
                    protocol=protocol,
                    l_p=l_p,
                    matching=matching,
                    matching_q=quantized,
                )
            return bank
        finally:
            rect.noise_v_rms = noise_backup

    def stacked(self, *, quantized: bool) -> tuple[tuple[Protocol, ...], np.ndarray]:
        """Templates stacked into one ``(n_protocols, l_m)`` matrix.

        Lets the matcher score every protocol with a single GEMM
        instead of one GEMV per template.  Rebuilt whenever a template
        object is swapped out.
        """
        ident = tuple((p, id(t)) for p, t in self.templates.items())
        if self._stacked.get("ident") != ident:
            self._stacked.clear()
            self._stacked["ident"] = ident
        hit = self._stacked.get(quantized)
        if hit is not None:
            return hit
        protocols = tuple(self.templates)
        rows = [
            t.matching_q if quantized else t.matching
            for t in self.templates.values()
        ]
        value = (protocols, np.vstack(rows))
        self._stacked[quantized] = value
        return value

    @property
    def l_p(self) -> Samples:
        return next(iter(self.templates.values())).l_p

    @property
    def l_m(self) -> int:
        return next(iter(self.templates.values())).l_m

    def total_storage_bits(self) -> Bits:
        """Template storage on the tag (§2.3 note 2)."""
        return sum(t.storage_bits for t in self.templates.values())


#: Memoizes built template banks for the default (noiseless clamp
#: rectifier) derivation path, keyed by every input that shapes the
#: templates.  Banks are deterministic and treated as read-only by
#: their consumers (the matcher only reads them), so one instance can
#: back any number of identifiers.
_BANK_CACHE = LruCache(maxsize=16, name="core.templates.bank")


def cached_bank(
    adc: Adc,
    *,
    window_us: float = BASE_WINDOW_US,
    preprocess_us: float = 2.0,
    incident_power_dbm: float = -15.0,
    protocols: tuple[Protocol, ...] = tuple(Protocol),
) -> TemplateBank:
    """A shared, memoized :meth:`TemplateBank.build` for the default
    derivation path.

    Every :class:`~repro.core.identification.ProtocolIdentifier` (and
    therefore every ``MultiscatterTag``) needs a template bank, and
    building one renders four reference packets through the rectifier
    and ADC.  Batch sweeps and the gateway hot loop construct tags by
    the hundred, so the bank is hoisted behind a
    :class:`~repro.core.wavecache.LruCache`: the key covers the ADC
    configuration and every derivation parameter, and the build itself
    is fully deterministic (noiseless rectifier), so a hit can never
    alias two distinct banks.  Callers that need a bespoke rectifier
    must call :meth:`TemplateBank.build` directly.
    """
    key = (
        float(adc.sample_rate),
        int(adc.n_bits),
        float(adc.v_ref),
        bool(adc.antialias),
        float(window_us),
        float(preprocess_us),
        float(incident_power_dbm),
        protocols,
    )
    bank = _BANK_CACHE.get_or_create(
        key,
        lambda: TemplateBank.build(
            adc,
            window_us=window_us,
            preprocess_us=preprocess_us,
            incident_power_dbm=incident_power_dbm,
            protocols=protocols,
        ),
    )
    assert isinstance(bank, TemplateBank)
    return bank
