"""Energy-aware tag operation (paper §3 'Power consumption').

A battery-free multiscatter tag alternates between harvesting into its
storage capacitor and short active bursts.  :class:`EnergyAwareTag`
wraps a tag with that lifecycle: packets arriving while the capacitor
is below the BQ25570 cutoff are missed; each active second drains the
budgeted power.  This is the machinery behind Table 4's "average
exchange time" numbers, driven per-packet instead of in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.energy import EnergyBudget
from repro.core.tag import MultiscatterTag, SingleProtocolTag, TagReaction
from repro.phy.waveform import Waveform
from repro.sim.traffic import ExcitationSchedule

__all__ = ["EnergyAwareTag", "EnergyTimeline"]


@dataclass
class EnergyTimeline:
    """Record of charge state and activity over a schedule run."""

    times_s: list[float] = field(default_factory=list)
    stored_j: list[float] = field(default_factory=list)
    reacted: list[bool] = field(default_factory=list)

    @property
    def n_reacted(self) -> int:
        return sum(self.reacted)

    @property
    def duty_cycle(self) -> float:
        if not self.reacted:
            return 0.0
        return self.n_reacted / len(self.reacted)


class EnergyAwareTag:
    """A tag gated by its harvested-energy state.

    The capacitor charges at the harvester's rate for the ambient
    ``lux``; when full (``v_start``) the tag becomes active and each
    handled packet costs ``active power x packet airtime``.  When the
    stored energy hits the cutoff the tag goes dark until recharged --
    the behaviour Table 4 averages over.
    """

    def __init__(
        self,
        tag: MultiscatterTag | SingleProtocolTag,
        *,
        budget: EnergyBudget | None = None,
        lux: float = 500.0,
        start_full: bool = True,
    ) -> None:
        self.tag = tag
        self.budget = budget or EnergyBudget()
        self.lux = lux
        self._capacity_j = self.budget.capacitor.usable_energy_j
        self.stored_j = self._capacity_j if start_full else 0.0
        self._charging = not start_full
        self._last_t = 0.0

    @property
    def harvest_w(self) -> float:
        return self.budget.harvester.power_mw(self.lux) / 1e3

    @property
    def active_power_w(self) -> float:
        return self.budget.power.total_mw / 1e3

    def _advance(self, t: float) -> None:
        """Harvest between the previous event and ``t``."""
        dt = max(t - self._last_t, 0.0)
        self._last_t = t
        self.stored_j = min(self.stored_j + self.harvest_w * dt, self._capacity_j)
        if self._charging and self.stored_j >= self._capacity_j:
            self._charging = False  # BQ25570 re-enables the load

    def can_react(self, t: float, airtime_s: float) -> bool:
        """Is the tag awake with enough charge for one more packet?"""
        self._advance(t)
        if self._charging:
            return False
        return self.stored_j >= self.active_power_w * airtime_s

    def react(
        self,
        t: float,
        wave: Waveform,
        tag_bits: np.ndarray | list[int],
        **kwargs,
    ) -> TagReaction | None:
        """Handle one packet at time ``t``; ``None`` when dark."""
        airtime = wave.duration_s
        if not self.can_react(t, airtime):
            return None
        reaction = self.tag.react(wave, tag_bits, **kwargs)
        self.stored_j -= self.active_power_w * airtime
        if self.stored_j <= 0.0:
            self.stored_j = 0.0
            self._charging = True  # cutoff reached: back to harvesting
        return reaction

    def timeline(
        self,
        schedule: ExcitationSchedule,
        *,
        energy_per_packet_j: float | None = None,
    ) -> EnergyTimeline:
        """Fast accounting pass: which scheduled packets the energy
        state would allow, without waveform synthesis."""
        out = EnergyTimeline()
        for pkt in schedule.packets:
            cost = (
                energy_per_packet_j
                if energy_per_packet_j is not None
                else self.active_power_w * pkt.airtime_s
            )
            self._advance(pkt.start_s)
            ok = (not self._charging) and self.stored_j >= cost
            if ok:
                self.stored_j -= cost
                if self.stored_j <= 0.0:
                    self.stored_j = 0.0
                    self._charging = True
            out.times_s.append(pkt.start_s)
            out.stored_j.append(self.stored_j)
            out.reacted.append(ok)
        return out
