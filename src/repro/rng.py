"""Determinism policy for random number generation.

Every stochastic function in this repo threads an explicit
``np.random.Generator`` (or derives one from a ``SeedSequence``);
reprolint rule R001 bans hidden global state (``np.random.<fn>``,
stdlib ``random``) and *time-seeded* generators, because one stray
call breaks the bit-identical parallel Monte-Carlo guarantee
(docs/STATIC_ANALYSIS.md).

:func:`fallback_rng` is the one sanctioned way to default an optional
``rng`` parameter: the fallback is seeded with a fixed constant, so an
``rng=None`` call is reproducible run-to-run instead of time-seeded.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "fallback_rng"]

#: Seed used whenever a caller does not supply a Generator.
DEFAULT_SEED: int = 0


def fallback_rng(
    rng: np.random.Generator | None, seed: int = DEFAULT_SEED
) -> np.random.Generator:
    """Return ``rng`` if given, else a fresh deterministically-seeded one."""
    if rng is not None:
        return rng
    return np.random.default_rng(seed)
