"""Excitation traffic generation.

Produces the packet mixes the paper's experiments use: random payloads
per protocol (identification trace sets, §2.2-§2.3), Poisson/periodic
packet schedules at the measured rates (2000 pkt/s WiFi, 70 pkt/s BLE
advertising, 20 pkt/s ZigBee, §3), duty-cycled carriers (Fig 18a), and
time/frequency-colliding excitation pairs (Fig 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import FloatArray

from repro.phy import ble, wifi_b, wifi_n, zigbee
from repro.phy.protocols import DEFAULT_PACKET_RATES, Protocol
from repro.phy.waveform import Waveform

__all__ = [
    "random_packet",
    "packet_airtime_s",
    "ExcitationSource",
    "ExcitationSchedule",
    "ScheduledPacket",
]

#: Payload sizes used in the paper's experiments (bytes).
DEFAULT_PAYLOAD_BYTES = {
    Protocol.WIFI_B: 300,
    Protocol.WIFI_N: 300,
    Protocol.BLE: 37,
    Protocol.ZIGBEE: 100,
}


def random_packet(
    protocol: Protocol,
    rng: np.random.Generator,
    *,
    n_payload_bytes: int | None = None,
) -> Waveform:
    """One excitation packet with a random payload.

    The payload is drawn fresh from ``rng`` on every call; the
    payload-independent packet head is cheap because the modulators
    memoize it (the 802.11b PLCP preamble+header chips and the 802.11n
    training/signaling fields are cached per configuration -- see
    :mod:`repro.core.wavecache`), so repeated calls only pay for
    modulating the new payload.
    """
    n = n_payload_bytes
    if n is None:
        n = DEFAULT_PAYLOAD_BYTES[protocol]
    payload = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
    if protocol is Protocol.WIFI_B:
        return wifi_b.modulate(payload)
    if protocol is Protocol.WIFI_N:
        return wifi_n.modulate(payload)
    if protocol is Protocol.BLE:
        return ble.modulate(payload[: min(n, 255)])
    if protocol is Protocol.ZIGBEE:
        return zigbee.modulate(payload[: min(n, 127)])
    raise ValueError(f"unknown protocol {protocol}")


def packet_airtime_s(protocol: Protocol, n_payload_bytes: int) -> float:
    """On-air duration of a packet with an ``n_payload_bytes`` PSDU.

    Computed from protocol timing (preamble/header overhead plus
    payload at the base rate); used by the analytic throughput model.
    """
    bits = n_payload_bytes * 8
    if protocol is Protocol.WIFI_B:
        return 192e-6 + bits / 1e6  # long PLCP + 1 Mbps PSDU
    if protocol is Protocol.WIFI_N:
        n_sym = int(np.ceil((16 + bits + 6) / 26.0))  # MCS0
        return 36e-6 + n_sym * 4e-6
    if protocol is Protocol.BLE:
        return (8 + 32 + 16 + bits + 24) / 1e6  # preamble+AA+hdr+CRC
    if protocol is Protocol.ZIGBEE:
        n_sym = 10 + 2 + int(np.ceil(bits / 4.0))  # SHR + PHR + PSDU
        return n_sym * 16e-6
    raise ValueError(f"unknown protocol {protocol}")


@dataclass(frozen=True)
class ExcitationSource:
    """One radio emitting packets of one protocol.

    ``rate_pkts`` is the average packet rate; ``periodic`` emits on a
    fixed grid (the paper's controlled experiments), otherwise arrival
    times are Poisson.  ``duty_cycle``/``period_s`` gate the source on
    and off (Fig 18a's intermittent carriers); ``phase_s`` offsets the
    gate.  ``center_offset_hz`` places the channel relative to the band
    reference (Fig 16's frequency collisions).
    """

    protocol: Protocol
    rate_pkts: float | None = None
    n_payload_bytes: int | None = None
    periodic: bool = True
    duty_cycle: float = 1.0
    period_s: float = 1.0
    phase_s: float = 0.0
    center_offset_hz: float = 0.0

    def resolved_rate(self) -> float:
        if self.rate_pkts is not None:
            return self.rate_pkts
        return DEFAULT_PACKET_RATES[self.protocol]

    def resolved_payload(self) -> int:
        if self.n_payload_bytes is not None:
            return self.n_payload_bytes
        return DEFAULT_PAYLOAD_BYTES[self.protocol]

    def is_active(self, t: float) -> bool:
        """Whether the duty-cycle gate is open at time ``t``."""
        if self.duty_cycle >= 1.0:
            return True
        frac = ((t - self.phase_s) % self.period_s) / self.period_s
        return frac < self.duty_cycle

    def arrival_times(self, duration_s: float, rng: np.random.Generator) -> FloatArray:
        """Packet start times within [0, duration_s), gate applied."""
        rate = self.resolved_rate()
        if rate <= 0:
            return np.zeros(0)
        if self.periodic:
            times = np.arange(0.0, duration_s, 1.0 / rate)
            times = times + rng.uniform(0.0, 1.0 / rate)
            times = times[times < duration_s]
        else:
            n_expect = rng.poisson(rate * duration_s)
            times = np.sort(rng.uniform(0.0, duration_s, size=n_expect))
        return np.array([t for t in times if self.is_active(t)])


@dataclass
class ScheduledPacket:
    """A packet occurrence on the shared air."""

    protocol: Protocol
    start_s: float
    airtime_s: float
    source: ExcitationSource

    @property
    def end_s(self) -> float:
        return self.start_s + self.airtime_s


@dataclass
class ExcitationSchedule:
    """Packet arrivals from several sources over a time horizon.

    ``collisions`` finds time-overlapping packet pairs -- what the tag
    experiences in Fig 16a since it has no channel filters.
    """

    duration_s: float
    packets: list[ScheduledPacket] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        sources: list[ExcitationSource],
        duration_s: float,
        rng: np.random.Generator,
    ) -> "ExcitationSchedule":
        sched = cls(duration_s=duration_s)
        for src in sources:
            airtime = packet_airtime_s(src.protocol, src.resolved_payload())
            for t in src.arrival_times(duration_s, rng):
                sched.packets.append(
                    ScheduledPacket(
                        protocol=src.protocol,
                        start_s=float(t),
                        airtime_s=airtime,
                        source=src,
                    )
                )
        sched.packets.sort(key=lambda p: p.start_s)
        return sched

    def collisions(self) -> list[tuple[ScheduledPacket, ScheduledPacket]]:
        """Pairs of packets overlapping in time (any channel)."""
        out = []
        for i, a in enumerate(self.packets):
            for b in self.packets[i + 1 :]:
                if b.start_s >= a.end_s:
                    break
                out.append((a, b))
        return out

    def packets_of(self, protocol: Protocol) -> list[ScheduledPacket]:
        return [p for p in self.packets if p.protocol is protocol]

    def airtime_utilization(self) -> float:
        """Fraction of the horizon covered by at least one packet."""
        if not self.packets:
            return 0.0
        events = sorted((p.start_s, p.end_s) for p in self.packets)
        covered = 0.0
        cur_start, cur_end = events[0]
        for s, e in events[1:]:
            if s > cur_end:
                covered += cur_end - cur_start
                cur_start, cur_end = s, e
            else:
                cur_end = max(cur_end, e)
        covered += cur_end - cur_start
        return float(min(covered / self.duration_s, 1.0))
