"""Per-packet airlink pipeline core (excite -> identify -> backscatter
-> channel -> decode).

This is the reusable heart of the Fig 1 loop, refactored out of the
batch-only :mod:`repro.sim.airlink` so the same signal path can serve
two drivers:

* the **batch driver** (:func:`repro.sim.airlink.run_airlink`), which
  replays a whole :class:`~repro.sim.traffic.ExcitationSchedule` and
  aggregates a report -- byte-identical to the pre-refactor monolith;
* the **streaming gateway** (:mod:`repro.gateway`), which feeds the
  pipeline one scheduled packet at a time from an asyncio air loop and
  fans the decoded bits out to subscribers.

The pipeline itself is pure: it owns no payload cursor and draws no
hidden randomness -- every stochastic stage threads the caller's
``rng``, so a packet-at-a-time replay of a schedule produces the same
:class:`PacketOutcome` sequence as the batch driver on the same seed.

Receiver-side construction (overlay codec, tag modulator, commodity
decoder, calibrated link) is hoisted behind
:mod:`repro.core.wavecache`: the monolith rebuilt this per-protocol
receiver/template set on every call, which the gateway hot loop cannot
afford.  The decode stage dispatches through the PR-6 batched kernels
(``demodulate_batch``), which are bit-identical to the scalar receive
chains at every batch size, so batching pending receptions never
changes a decoded bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
from repro.channel.noise import awgn
from repro.core.identification import DEFAULT_INCIDENT_DBM
from repro.core.overlay import OverlayCodec, OverlayConfig
from repro.core.overlay_decoder import OverlayDecoder
from repro.core.tag import MultiscatterTag, SingleProtocolTag, TagReaction
from repro.core.tag_modulation import TagModulator
from repro.core.wavecache import LruCache
from repro.phy.protocols import Protocol
from repro.phy.waveform import Waveform
from repro.sim import faults
from repro.sim.traffic import ScheduledPacket, random_packet

__all__ = [
    "PacketOutcome",
    "PendingReception",
    "DecodePayload",
    "ReceiverSet",
    "AirlinkPipeline",
    "receiver_set",
    "pending_to_payload",
    "payload_to_pending",
    "decode_pending_many",
    "decode_worker_group",
]

#: Productive bits crafted into every overlay excitation packet (the
#: monolithic loop's historical constant; changing it changes every
#: seeded experiment).
N_PRODUCTIVE_BITS = 24


@dataclass
class PacketOutcome:
    """What happened to one excitation packet."""

    protocol: Protocol
    start_s: float
    identified: Protocol | None
    backscattered: bool
    tag_bits_sent: int
    tag_bits_correct: int
    productive_bits_correct: int
    productive_bits_total: int
    tag_bits_decoded: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))


@dataclass(frozen=True)
class ReceiverSet:
    """One protocol/mode's hoisted receive-side construction.

    Everything here is deterministic, stateless across packets, and
    shared: the overlay codec (layout arithmetic), a reference tag
    modulator (used for carrier construction and for retuning the
    receiver to the shifted channel), the single-receiver overlay
    decoder, and the calibrated link budget.
    """

    codec: OverlayCodec
    modulator: TagModulator
    decoder: OverlayDecoder
    link: BackscatterLink


#: (OverlayConfig, frequency_shift_hz) -> ReceiverSet.  Hit rates are
#: visible in the REPRO_PERF=1 report; see repro.core.wavecache.
_RECEIVER_CACHE = LruCache(maxsize=32, name="sim.pipeline.receiver_set")


def receiver_set(config: OverlayConfig, frequency_shift_hz: float) -> ReceiverSet:
    """The memoized per-overlay-layout receiver/template set.

    The batch driver used to rebuild codec, modulator, decoder and
    link objects per packet; the construction is deterministic from
    the frozen :class:`OverlayConfig` (no RNG draws), so hoisting it
    behind the wavecache changes no decoded bit while the gateway hot
    loop stops re-deriving receivers.
    """

    def build() -> ReceiverSet:
        codec = OverlayCodec(config)
        return ReceiverSet(
            codec=codec,
            modulator=TagModulator(codec, frequency_shift_hz=frequency_shift_hz),
            decoder=OverlayDecoder(codec),
            link=BackscatterLink(PROTOCOL_LINK_DEFAULTS[config.protocol]),
        )

    out = _RECEIVER_CACHE.get_or_create((config, float(frequency_shift_hz)), build)
    assert isinstance(out, ReceiverSet)
    return out


@dataclass
class PendingReception:
    """A backscattered packet after the channel, awaiting decode.

    Splitting the decode stage off lets the gateway batch several
    pending receptions into one grouped kernel dispatch (PR-6 batched
    receive chains) without perturbing any earlier RNG draw.
    """

    protocol: Protocol
    start_s: float
    identified: Protocol | None
    received: Waveform
    reaction: TagReaction
    productive: np.ndarray
    receivers: ReceiverSet

    def _decode_key(self) -> tuple[OverlayConfig, float]:
        cfg = self.receivers.codec.config
        return (cfg, self.receivers.modulator.frequency_shift_hz)


@dataclass
class DecodePayload:
    """A pickle-safe :class:`PendingReception` for the decode pool.

    Carries the reception's data plus the *key* of its receiver set
    (overlay config and frequency shift) instead of the constructed
    :class:`ReceiverSet`: the worker rebuilds the receivers through
    :func:`receiver_set`, so the first group a worker process sees
    warms its own wavecache and every later group hits it.  All fields
    are plain dataclasses/arrays, so the payload crosses the process
    boundary without dragging decoder state along.
    """

    protocol: Protocol
    start_s: float
    identified: Protocol | None
    received: Waveform
    reaction: TagReaction
    productive: np.ndarray
    config: OverlayConfig
    frequency_shift_hz: float


def pending_to_payload(pending: PendingReception) -> DecodePayload:
    """Strip a pending reception down to its picklable decode inputs."""
    config, shift = pending._decode_key()
    return DecodePayload(
        protocol=pending.protocol,
        start_s=pending.start_s,
        identified=pending.identified,
        received=pending.received,
        reaction=pending.reaction,
        productive=pending.productive,
        config=config,
        frequency_shift_hz=shift,
    )


def payload_to_pending(payload: DecodePayload) -> PendingReception:
    """Rebuild a decodable reception in the receiving process.

    ``receiver_set`` is memoized per process, so this is the worker's
    cache-warmup path: construction cost is paid once per (config,
    shift) per worker, never per packet.
    """
    return PendingReception(
        protocol=payload.protocol,
        start_s=payload.start_s,
        identified=payload.identified,
        received=payload.received,
        reaction=payload.reaction,
        productive=payload.productive,
        receivers=receiver_set(payload.config, payload.frequency_shift_hz),
    )


class AirlinkPipeline:
    """The per-packet excite -> identify -> backscatter -> channel ->
    decode pipeline for one tag.

    Parameters
    ----------
    tag:
        The reacting tag (multiscatter or single-protocol).
    d_tag_rx_m:
        Tag-to-receiver distance; sets the calibrated decode SNR.
    """

    def __init__(
        self,
        tag: MultiscatterTag | SingleProtocolTag,
        *,
        d_tag_rx_m: float = 2.0,
    ) -> None:
        self.tag = tag
        self.d_tag_rx_m = d_tag_rx_m

    # -- stage 1: excitation ------------------------------------------
    def _modulator_for(self, protocol: Protocol) -> TagModulator | None:
        """The overlay modulator used to craft this packet's carrier.

        ``None`` means the tag ignores this protocol entirely (a
        single-protocol tag seeing foreign excitation).
        """
        tag = self.tag
        if isinstance(tag, MultiscatterTag):
            return tag.modulator_for(protocol)
        if protocol is not tag.protocol:
            return None
        config = OverlayConfig.for_mode(protocol, tag.mode)
        return receiver_set(config, tag.frequency_shift_hz).modulator

    def _foreign_packet_outcome(
        self, scheduled: ScheduledPacket, rng: np.random.Generator
    ) -> PacketOutcome:
        """A single-protocol tag's non-reaction to foreign excitation.

        The excitation is a plain random packet (the tag has no codec
        for it, and ignores it anyway); the RNG draw order matches the
        historical batch loop exactly.
        """
        excitation = random_packet(scheduled.protocol, rng, n_payload_bytes=20)
        reaction = self.tag.react(excitation, [])
        return PacketOutcome(
            protocol=scheduled.protocol,
            start_s=scheduled.start_s,
            identified=reaction.identified,
            backscattered=False,
            tag_bits_sent=0,
            tag_bits_correct=0,
            productive_bits_correct=0,
            productive_bits_total=0,
        )

    # -- stages 1-4: excite, identify, backscatter, channel ------------
    def excite_and_react(
        self,
        scheduled: ScheduledPacket,
        payload: np.ndarray,
        cursor: int,
        rng: np.random.Generator,
    ) -> tuple[PacketOutcome | PendingReception, int]:
        """Run every stage up to (not including) the decode.

        Returns either a finished :class:`PacketOutcome` (the tag did
        not transmit) or a :class:`PendingReception` ready for the
        decode stage, plus the advanced payload cursor.
        """
        protocol = scheduled.protocol
        modulator = self._modulator_for(protocol)
        if modulator is None:
            return self._foreign_packet_outcome(scheduled, rng), cursor

        codec = modulator.codec
        receivers = receiver_set(codec.config, modulator.frequency_shift_hz)
        productive = rng.integers(0, 2, N_PRODUCTIVE_BITS).astype(np.uint8)
        excitation = codec.build_carrier(productive)
        _, capacity = codec.capacity(excitation.annotations["n_payload_symbols"])

        chunk = payload[cursor : cursor + capacity]
        reaction: TagReaction = self.tag.react(
            excitation,
            chunk,
            incident_power_dbm=DEFAULT_INCIDENT_DBM[protocol],
            rng=rng,
        )
        if not reaction.transmitted:
            return (
                PacketOutcome(
                    protocol=protocol,
                    start_s=scheduled.start_s,
                    identified=reaction.identified,
                    backscattered=False,
                    tag_bits_sent=0,
                    tag_bits_correct=0,
                    productive_bits_correct=0,
                    productive_bits_total=N_PRODUCTIVE_BITS,
                ),
                cursor,
            )
        cursor += reaction.tag_bits_sent.size

        # Channel: calibrated backscatter SNR at the receiver.
        snr_db = receivers.link.snr_db(self.d_tag_rx_m)
        assert reaction.backscattered is not None
        received = modulator.received_at_shifted_channel(reaction.backscattered)
        received = awgn(received, snr_db=snr_db, rng=rng)
        received.annotations = dict(excitation.annotations)
        return (
            PendingReception(
                protocol=protocol,
                start_s=scheduled.start_s,
                identified=reaction.identified,
                received=received,
                reaction=reaction,
                productive=productive,
                receivers=receivers,
            ),
            cursor,
        )

    # -- stage 5: decode ------------------------------------------------
    @staticmethod
    def _outcome_from_decode(
        pending: PendingReception, symbol_values: list
    ) -> PacketOutcome:
        codec = pending.receivers.codec
        productive_bits, tag_bits = codec.decode_symbols(symbol_values)
        sent = pending.reaction.tag_bits_sent
        got_tag = tag_bits[: sent.size]
        tag_correct = int(np.count_nonzero(got_tag == sent)) if sent.size else 0
        got_prod = productive_bits[:N_PRODUCTIVE_BITS]
        prod_correct = int(
            np.count_nonzero(got_prod == pending.productive[: got_prod.size])
        )
        return PacketOutcome(
            protocol=pending.protocol,
            start_s=pending.start_s,
            identified=pending.identified,
            backscattered=True,
            tag_bits_sent=int(sent.size),
            tag_bits_correct=tag_correct,
            productive_bits_correct=prod_correct,
            productive_bits_total=N_PRODUCTIVE_BITS,
            tag_bits_decoded=np.asarray(got_tag, dtype=np.uint8),
        )

    def decode(self, pending: PendingReception) -> PacketOutcome:
        """Decode one pending reception (batch of one).

        The batched receive chains are bit-identical to the scalar
        demodulators at every batch size, so this is the same result
        the monolithic loop produced.
        """
        return self.decode_many([pending])[0]

    def decode_many(
        self, pendings: list[PendingReception]
    ) -> list[PacketOutcome]:
        """Decode pending receptions with grouped batched kernels.

        Receptions are grouped by (protocol, mode, shift); each group
        is one ``demodulate_batch`` dispatch.  Results come back in
        input order and are bit-identical to per-packet decodes.
        """
        return decode_pending_many(pendings)

    # -- the whole loop for one packet ----------------------------------
    def process(
        self,
        scheduled: ScheduledPacket,
        payload: np.ndarray,
        cursor: int,
        rng: np.random.Generator,
    ) -> tuple[PacketOutcome, int]:
        """Run one scheduled packet through every stage.

        Returns the outcome and the advanced payload cursor.  Driving
        a schedule through this packet-at-a-time is byte-identical to
        :func:`repro.sim.airlink.run_airlink` on the same seed.
        """
        staged, cursor = self.excite_and_react(scheduled, payload, cursor, rng)
        if isinstance(staged, PacketOutcome):
            return staged, cursor
        return self.decode(staged), cursor


def decode_pending_many(pendings: list[PendingReception]) -> list[PacketOutcome]:
    """Decode pending receptions with grouped batched kernels.

    Module-level (tag-independent) so the gateway's decode pool can run
    it in worker processes: the decode stage reads only the reception
    and its receivers, never tag or pipeline state, and draws no RNG.
    Receptions are grouped by (protocol, mode, shift); each group is
    one ``demodulate_batch`` dispatch.  Results come back in input
    order and are bit-identical to per-packet decodes.
    """
    outcomes: list[PacketOutcome | None] = [None] * len(pendings)
    groups: dict[tuple[OverlayConfig, float], list[int]] = {}
    for i, pending in enumerate(pendings):
        groups.setdefault(pending._decode_key(), []).append(i)
    for idx in groups.values():
        decoder = pendings[idx[0]].receivers.decoder
        waves = [pendings[i].received for i in idx]
        for i, values in zip(idx, decoder.symbol_values_batch(waves)):
            outcomes[i] = AirlinkPipeline._outcome_from_decode(pendings[i], values)
    return [o for o in outcomes if o is not None]


def decode_worker_group(
    payloads: list[DecodePayload],
    group_index: int,
    group_name: str,
    attempt: int,
) -> list[PacketOutcome]:
    """Decode one receiver-config group inside a pool worker.

    This is the gateway's executor entry point: payloads in a group
    share one (config, shift) key, so the whole group is a single
    fused ``demodulate_batch`` dispatch after the memoized receiver
    rebuild.  The ``decode`` fault site fires first so tests can model
    a worker that crashes (``kill``) or wedges (``hang``) mid-decode
    and prove the retry-in-pool recovery is bit-identical.
    """
    faults.check("decode", index=group_index, name=group_name, attempt=attempt)
    pendings = [payload_to_pending(p) for p in payloads]
    return decode_pending_many(pendings)
