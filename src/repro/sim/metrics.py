"""Shared metric helpers: BER, throughput, confusion tables."""

from __future__ import annotations

import numpy as np

from repro.phy.protocols import Protocol

__all__ = ["ber", "throughput_kbps", "confusion_table", "format_table"]


def ber(reference: np.ndarray, received: np.ndarray) -> float:
    """Bit error rate over the overlapping prefix of two bit arrays."""
    a = np.asarray(reference).ravel()
    b = np.asarray(received).ravel()
    n = min(a.size, b.size)
    if n == 0:
        return 1.0
    errors = int(np.count_nonzero(a[:n] != b[:n]))
    # Bits missing from the received stream count as errors.
    errors += abs(a.size - b.size) if b.size < a.size else 0
    return errors / max(a.size, 1)


def throughput_kbps(n_bits: float, duration_s: float) -> float:
    """Delivered bits over wall time, in kbps."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return n_bits / duration_s / 1e3


def confusion_table(
    confusion: dict[tuple[Protocol, Protocol], int]
) -> str:
    """Render a confusion-count dict as an aligned text table."""
    protocols = list(Protocol)
    header = "truth\\pred " + " ".join(f"{p.value:>9s}" for p in protocols)
    lines = [header]
    for t in protocols:
        row = [f"{t.value:<10s}"]
        for d in protocols:
            row.append(f"{confusion.get((t, d), 0):>9d}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Simple aligned text table used by the benchmark harness."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(r) for r in str_rows)
    return "\n".join(out)
