"""Deterministic fault injection for robustness testing.

The fault-tolerance paths in :mod:`repro.sim.runner` (per-chunk retry,
chunk timeouts, worker-crash recovery) and :mod:`repro.core.atomicio`
(crash-safe artifact writes) are only trustworthy if tests can *force*
each failure mode on demand.  This module is that switch: a tiny,
fully deterministic harness driven by the ``REPRO_FAULTS`` environment
variable, so faults propagate unchanged into pool workers and CLI
subprocesses and the same spec always kills the same trial on the same
attempt.

Spec grammar (semicolon-separated entries)::

    REPRO_FAULTS = entry [ ";" entry ]*
    entry        = kind ":" key "=" value [ "," key "=" value ]*

``kind`` selects the action at the matched site:

============  ======================================================
``raise``     raise :class:`FaultInjected`
``hang``      ``time.sleep(hang_s)`` (default 30 s) -- a stuck worker
``kill``      ``os._exit(13)`` -- a hard crash, no cleanup, no excuse
============  ======================================================

Keys:

``site``      required; one of ``trial``, ``chunk``, ``save``,
              ``gateway``, ``decode``
``index``     integer; fire only at this trial/chunk index
``name``      substring matched against the site name (e.g. the
              artifact path for ``save`` sites)
``attempts``  fire only while ``attempt <= attempts`` (default 1), so
              a retried chunk succeeds once the budget is spent
``hang_s``    sleep duration for ``hang`` faults, in seconds

Examples::

    REPRO_FAULTS="raise:site=trial,index=3,attempts=2"
    REPRO_FAULTS="hang:site=chunk,index=0,attempts=1,hang_s=60"
    REPRO_FAULTS="kill:site=save,name=fig15_occlusion"

Instrumented code calls :func:`check` at each site; with the
environment variable unset this is a dictionary lookup and a return.
:func:`install`/:func:`clear` set/unset the variable for the current
process tree, which keeps the environment the single source of truth
(no module globals, so fault checks stay fork-safe and side-effect
free in workers).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

__all__ = [
    "FaultInjected",
    "FaultSpecError",
    "FaultSpec",
    "ENV_VAR",
    "SITES",
    "KINDS",
    "active_faults",
    "check",
    "check_async",
    "clear",
    "install",
    "parse_spec",
]

#: The one knob: a fault spec string (see module docstring).
ENV_VAR = "REPRO_FAULTS"

#: Sites instrumented code may pass to :func:`check`.
#: ``gateway`` sites live inside the asyncio service
#: (:mod:`repro.gateway`): subscriber delivery stalls and tag-task
#: crashes are forced through the same grammar, with names like
#: ``tag:<tag_id>`` and ``subscriber:<name>``.  ``decode`` sites run
#: inside the gateway's decode worker pool
#: (:func:`repro.sim.pipeline.decode_worker_group`): ``kill`` models a
#: crashed decode worker, ``hang`` a stuck one; ``index`` is the
#: dispatch counter and ``name`` the receiver-group label.
SITES = ("trial", "chunk", "save", "gateway", "decode")

#: Supported fault actions.
KINDS = ("raise", "hang", "kill")


class FaultInjected(RuntimeError):
    """The failure deliberately raised by a ``raise`` fault."""


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` value that does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault entry."""

    kind: str
    site: str
    index: int | None = None
    name: str | None = None
    attempts: int = 1
    hang_s: float = 30.0

    def matches(
        self,
        site: str,
        *,
        index: int | None,
        name: str | None,
        attempt: int,
    ) -> bool:
        if self.site != site or attempt > self.attempts:
            return False
        if self.index is not None and self.index != index:
            return False
        if self.name is not None and (name is None or self.name not in name):
            return False
        return True


def _parse_entry(text: str) -> FaultSpec:
    kind, _, body = text.partition(":")
    kind = kind.strip()
    if kind not in KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} in {text!r}; expected one of {KINDS}"
        )
    fields: dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise FaultSpecError(f"malformed fault field {item!r} in {text!r}")
        fields[key.strip()] = value.strip()
    site = fields.pop("site", "")
    if site not in SITES:
        raise FaultSpecError(
            f"fault entry {text!r} needs site=<{'|'.join(SITES)}>, got {site!r}"
        )
    try:
        index = int(fields.pop("index")) if "index" in fields else None
        attempts = int(fields.pop("attempts", "1"))
        hang_s = float(fields.pop("hang_s", "30"))
    except ValueError as exc:
        raise FaultSpecError(f"non-numeric fault field in {text!r}: {exc}") from None
    name = fields.pop("name", None)
    if fields:
        raise FaultSpecError(
            f"unknown fault field(s) {sorted(fields)} in {text!r}"
        )
    if attempts < 1:
        raise FaultSpecError(f"attempts must be >= 1 in {text!r}")
    return FaultSpec(
        kind=kind, site=site, index=index, name=name, attempts=attempts, hang_s=hang_s
    )


def parse_spec(text: str) -> tuple[FaultSpec, ...]:
    """Parse a full ``REPRO_FAULTS`` value (may hold several entries)."""
    return tuple(
        _parse_entry(entry)
        for entry in text.split(";")
        if entry.strip()
    )


def active_faults() -> tuple[FaultSpec, ...]:
    """Faults currently installed via the environment (may be empty)."""
    text = os.environ.get(ENV_VAR, "")
    if not text:
        return ()
    return parse_spec(text)


def install(spec: str) -> tuple[FaultSpec, ...]:
    """Install ``spec`` for this process tree (validates it first)."""
    parsed = parse_spec(spec)
    os.environ[ENV_VAR] = spec
    return parsed


def clear() -> None:
    """Remove any installed fault spec."""
    os.environ.pop(ENV_VAR, None)


def check(
    site: str,
    *,
    index: int | None = None,
    name: str | None = None,
    attempt: int = 1,
) -> None:
    """Fire any installed fault matching this site.  No-op otherwise.

    ``raise`` faults raise :class:`FaultInjected`; ``hang`` faults
    sleep; ``kill`` faults terminate the process without cleanup
    (simulating ``SIGKILL``).  A malformed spec raises
    :class:`FaultSpecError` loudly rather than silently disabling
    injection.
    """
    text = os.environ.get(ENV_VAR, "")
    if not text:
        return
    for fault in parse_spec(text):
        if not fault.matches(site, index=index, name=name, attempt=attempt):
            continue
        where = f"{site}[{index if index is not None else name or '*'}]"
        if fault.kind == "raise":
            raise FaultInjected(
                f"injected fault at {where} (attempt {attempt})"
            )
        if fault.kind == "hang":
            time.sleep(fault.hang_s)
        elif fault.kind == "kill":
            os._exit(13)


async def check_async(
    site: str,
    *,
    index: int | None = None,
    name: str | None = None,
    attempt: int = 1,
) -> None:
    """:func:`check` for coroutine sites (the gateway's event loop).

    ``hang`` faults must not block the loop -- a synchronous
    ``time.sleep`` would freeze every tag task and subscriber at once,
    which is not the failure being modeled (one stuck participant).
    They ``await asyncio.sleep`` instead; ``raise``/``kill`` behave as
    in :func:`check`.
    """
    import asyncio

    text = os.environ.get(ENV_VAR, "")
    if not text:
        return
    for fault in parse_spec(text):
        if not fault.matches(site, index=index, name=name, attempt=attempt):
            continue
        where = f"{site}[{index if index is not None else name or '*'}]"
        if fault.kind == "raise":
            raise FaultInjected(
                f"injected fault at {where} (attempt {attempt})"
            )
        if fault.kind == "hang":
            await asyncio.sleep(fault.hang_s)
        elif fault.kind == "kill":
            os._exit(13)
