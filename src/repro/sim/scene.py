"""Composite RF scenes: several packets superimposed at the tag.

The tag's front end has no channel filters (paper §4.1.4), so packets
on different 2.4 GHz channels still add up in its envelope.  A scene
is built in *antenna volts* (each packet scaled to its incident power
before summation) and centered on the victim packet's channel, so the
victim's envelope signature lines up with the identification
templates; the interferer rides at its channel offset.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

from repro.core.rectifier import incident_peak_voltage
from repro.phy.waveform import Waveform

__all__ = ["superimpose"]


def superimpose(
    victim: Waveform,
    victim_dbm: float,
    interferer: Waveform,
    interferer_dbm: float,
    *,
    freq_offset_hz: float,
    time_offset_s: float = 0.0,
    scene_rate_hz: float = 50e6,
    duration_s: float | None = None,
) -> Waveform:
    """Sum two packets into a prescaled scene (antenna volts).

    ``freq_offset_hz`` is the interferer's channel center minus the
    victim's; ``time_offset_s`` shifts the interferer start relative to
    the victim start (negative = interferer started earlier).  The
    result is meant for ``rectify(..., incident_power_dbm=None)`` /
    ``identify(..., prescaled=True)``.
    """
    # Pad before resampling so the polyphase filter's edge transient
    # falls in the padding, not on the packet head the templates match.
    pad_v = 64
    v = victim.padded(before=pad_v).resampled(scene_rate_hz)
    pad_scaled = int(round(pad_v * scene_rate_hz / victim.sample_rate))
    v = v.sliced(pad_scaled)
    v.annotations = dict(victim.annotations)
    i = interferer.padded(before=64).resampled(scene_rate_hz)
    i = i.sliced(int(round(64 * scene_rate_hz / interferer.sample_rate)))

    # Scale to unboosted antenna volts.
    def to_volts(w: Waveform, dbm: float) -> FloatArray:
        rms = np.sqrt(w.mean_power())
        if rms <= 0:
            return w.iq
        return w.iq / rms * incident_peak_voltage(dbm, matching_boost=1.0)

    v_iq = to_volts(v, victim_dbm)
    i_iq = to_volts(i, interferer_dbm)

    if freq_offset_hz:
        t = np.arange(i_iq.size) / scene_rate_hz
        i_iq = i_iq * np.exp(2j * np.pi * freq_offset_hz * t)

    n = v_iq.size if duration_s is None else int(duration_s * scene_rate_hz)
    scene = np.zeros(n, dtype=complex)
    scene[: min(v_iq.size, n)] = v_iq[:n]

    shift = int(round(time_offset_s * scene_rate_hz))
    src_lo = max(-shift, 0)
    dst_lo = max(shift, 0)
    span = min(i_iq.size - src_lo, n - dst_lo)
    if span > 0:
        scene[dst_lo : dst_lo + span] += i_iq[src_lo : src_lo + span]

    ann = dict(v.annotations)
    return Waveform(
        iq=scene,
        sample_rate=scene_rate_hz,
        annotations=ann,
    )
