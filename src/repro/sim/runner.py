"""Monte-Carlo experiment runner.

Small utility for experiments that repeat a trial function over seeded
RNGs and aggregate scalar metrics -- keeps seeding policy (independent
spawned streams) and aggregation consistent across the experiment
modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["MonteCarlo", "TrialStats"]


@dataclass
class TrialStats:
    """Aggregate of one scalar metric across trials."""

    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if self.values.size else float("nan")

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if self.values.size > 1 else 0.0

    @property
    def n(self) -> int:
        return int(self.values.size)

    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% confidence half-width."""
        if self.values.size < 2:
            return 0.0
        return float(1.96 * self.std / np.sqrt(self.values.size))


@dataclass
class MonteCarlo:
    """Run ``trial(rng) -> dict[str, float]`` over independent streams.

    Seeds are spawned from one root ``SeedSequence`` so trials are
    independent yet the whole run is reproducible from ``seed``.
    """

    n_trials: int
    seed: int = 0

    def run(self, trial: Callable[[np.random.Generator], dict[str, float]]) -> dict[str, TrialStats]:
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        root = np.random.SeedSequence(self.seed)
        streams = [np.random.default_rng(s) for s in root.spawn(self.n_trials)]
        collected: dict[str, list[float]] = {}
        for rng in streams:
            metrics = trial(rng)
            for key, value in metrics.items():
                collected.setdefault(key, []).append(float(value))
        return {k: TrialStats(np.array(v)) for k, v in collected.items()}
