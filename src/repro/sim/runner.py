"""Monte-Carlo experiment runner.

Small utility for experiments that repeat a trial function over seeded
RNGs and aggregate scalar metrics -- keeps seeding policy (independent
spawned streams) and aggregation consistent across the experiment
modules.

Trials are embarrassingly parallel: every trial gets its own stream
spawned from one root ``SeedSequence``, so the runner can hand
contiguous chunks of the stream list to a process pool and reassemble
the results in trial order.  A parallel run is bit-identical to a
serial run with the same seed -- worker count only changes wall-clock
time, never values.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["MonteCarlo", "TrialStats", "resolve_workers", "validate_bounds"]


def validate_bounds(
    *,
    n_trials: int | None = None,
    n_workers: int | None = None,
    where: str = "",
) -> None:
    """Validate the shared count/worker knobs in one place.

    ``n_trials`` covers every repeat-count style parameter (trials,
    traces, packets, locations, ...); ``n_workers`` is the pool size.
    ``None`` means "not supplied" and is always accepted.  ``where``
    names the caller in the error message.
    """
    ctx = f" in {where}" if where else ""
    if n_trials is not None:
        if not isinstance(n_trials, int) or isinstance(n_trials, bool):
            raise ValueError(f"count{ctx} must be an int, got {n_trials!r}")
        if n_trials < 1:
            raise ValueError(f"count{ctx} must be >= 1, got {n_trials}")
    if n_workers is not None:
        if not isinstance(n_workers, int) or isinstance(n_workers, bool):
            raise ValueError(f"n_workers{ctx} must be an int, got {n_workers!r}")
        if n_workers < 1:
            raise ValueError(f"n_workers{ctx} must be >= 1, got {n_workers}")


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve the shared worker-count knob.

    Explicit argument wins; otherwise the ``REPRO_WORKERS`` environment
    variable (set by the CLI's ``--workers`` flag); otherwise 1.
    """
    if n_workers is None:
        try:
            n_workers = int(os.environ.get("REPRO_WORKERS", "1"))
        except ValueError:
            n_workers = 1
    return max(int(n_workers), 1)


@dataclass
class TrialStats:
    """Aggregate of one scalar metric across trials."""

    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if self.values.size else float("nan")

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if self.values.size > 1 else 0.0

    @property
    def n(self) -> int:
        return int(self.values.size)

    def ci95_halfwidth(self) -> float:
        """95% confidence half-width, Student-t for small n.

        Uses the t quantile at ``n - 1`` degrees of freedom, which the
        normal approximation (1.96) understates badly for the small
        trial counts quick runs use; the two agree asymptotically.
        """
        if self.values.size < 2:
            return 0.0
        from scipy import stats as sp_stats

        t = float(sp_stats.t.ppf(0.975, self.values.size - 1))
        return float(t * self.std / np.sqrt(self.values.size))


def _run_chunk(
    trial: Callable[[np.random.Generator], dict[str, float]],
    seeds: list[np.random.SeedSequence],
) -> list[dict[str, float]]:
    """Run a contiguous chunk of trials (also the worker entry point)."""
    return [trial(np.random.default_rng(s)) for s in seeds]


@dataclass
class MonteCarlo:
    """Run ``trial(rng) -> dict[str, float]`` over independent streams.

    Seeds are spawned from one root ``SeedSequence`` so trials are
    independent yet the whole run is reproducible from ``seed``.

    ``n_workers`` > 1 fans contiguous chunks of trials out to a process
    pool (``None`` defers to :func:`resolve_workers`, i.e. the
    ``REPRO_WORKERS`` knob).  Results are reassembled in trial order,
    so ``TrialStats.values`` is bit-identical for every worker count;
    ``trial`` must then be picklable (a module-level function).
    """

    n_trials: int
    seed: int = 0
    n_workers: int | None = None

    def run(self, trial: Callable[[np.random.Generator], dict[str, float]]) -> dict[str, TrialStats]:
        validate_bounds(n_trials=self.n_trials, where="MonteCarlo")
        root = np.random.SeedSequence(self.seed)
        seeds = root.spawn(self.n_trials)
        workers = min(resolve_workers(self.n_workers), self.n_trials)
        if workers <= 1:
            results = _run_chunk(trial, seeds)
        else:
            bounds = np.linspace(0, self.n_trials, workers + 1).astype(int)
            chunks = [seeds[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [pool.submit(_run_chunk, trial, c) for c in chunks]
                results = [metrics for f in futures for metrics in f.result()]
        collected: dict[str, list[float]] = {}
        for metrics in results:
            for key, value in metrics.items():
                collected.setdefault(key, []).append(float(value))
        return {k: TrialStats(np.array(v)) for k, v in collected.items()}
