"""Monte-Carlo experiment runner.

Small utility for experiments that repeat a trial function over seeded
RNGs and aggregate scalar metrics -- keeps seeding policy (independent
spawned streams) and aggregation consistent across the experiment
modules.

Trials are embarrassingly parallel: every trial gets its own stream
spawned from one root ``SeedSequence``, so the runner can hand
contiguous chunks of the stream list to a process pool and reassemble
the results in trial order.  A parallel run is bit-identical to a
serial run with the same seed -- worker count only changes wall-clock
time, never values.

Fault tolerance: long sweeps die mid-flight (OOM-killed workers, hung
BLAS calls, transient node failures), so the runner treats a *chunk*
as the unit of recovery.  A chunk that raises, crashes its worker, or
exceeds the wall-clock timeout is retried with exponential backoff --
re-running the same seed list, so a retried run stays bit-identical to
an undisturbed one.  When the retry budget is exhausted the runner
cancels sibling futures, terminates the pool, and raises
:class:`ChunkError` naming the chunk, its trial range, and the attempt
count; per-trial failures inside a chunk surface as
:class:`TrialError` with the offending trial index.  Retry/timeout
events are counted in :mod:`repro.perf` (``mc.*`` counters in the
``REPRO_PERF=1`` report), and every recovery path is provable on
demand via the deterministic fault harness in :mod:`repro.sim.faults`.

Knobs (field first, environment fallback): ``max_retries`` /
``REPRO_RETRIES`` (extra attempts per chunk, default 0), ``timeout_s``
/ ``REPRO_TIMEOUT_S`` (per-chunk wall clock, parallel path only --
a single-process run cannot preempt itself), ``backoff_s`` /
``REPRO_BACKOFF_S`` (base of the exponential inter-attempt sleep).
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import perf
from repro.sim import faults

__all__ = [
    "ChunkError",
    "MonteCarlo",
    "SEED_BOUND",
    "TrialError",
    "TrialStats",
    "resolve_backoff_s",
    "resolve_retries",
    "resolve_timeout_s",
    "resolve_workers",
    "validate_bounds",
]

#: Exclusive upper bound for user-supplied seeds: one 64-bit entropy
#: word.  ``numpy.random.SeedSequence`` would accept arbitrarily large
#: non-negative integers, but artifacts, manifests and CLI flags store
#: seeds as plain integers that must round-trip through JSON and shell
#: history unambiguously, so the public contract pins one word.
SEED_BOUND: int = 2**64

#: One trial: rng in, named scalar metrics out.
Trial = Callable[[np.random.Generator], dict[str, float]]

#: Exponential backoff is capped at ``backoff_s * 2**_BACKOFF_CAP_EXP``.
_BACKOFF_CAP_EXP = 6


class TrialError(RuntimeError):
    """One trial failed; carries the global trial index and attempt.

    Constructed with positional args only so instances survive the
    pickle round-trip out of pool workers.
    """

    def __init__(self, trial_index: int, attempt: int, detail: str) -> None:
        super().__init__(trial_index, attempt, detail)
        self.trial_index = trial_index
        self.attempt = attempt
        self.detail = detail

    def __str__(self) -> str:
        return (
            f"trial {self.trial_index} failed on attempt {self.attempt}: "
            f"{self.detail}"
        )


class ChunkError(RuntimeError):
    """A chunk exhausted its retry budget; names chunk, trials, attempts."""

    def __init__(
        self, chunk_index: int, trial_start: int, trial_stop: int,
        attempts: int, detail: str,
    ) -> None:
        super().__init__(chunk_index, trial_start, trial_stop, attempts, detail)
        self.chunk_index = chunk_index
        self.trial_start = trial_start
        self.trial_stop = trial_stop
        self.attempts = attempts
        self.detail = detail

    def __str__(self) -> str:
        return (
            f"chunk {self.chunk_index} (trials {self.trial_start}.."
            f"{self.trial_stop - 1}) failed after {self.attempts} "
            f"attempt(s): {self.detail}"
        )


def validate_bounds(
    *,
    n_trials: int | None = None,
    n_workers: int | None = None,
    max_retries: int | None = None,
    timeout_s: float | None = None,
    backoff_s: float | None = None,
    seed: int | None = None,
    where: str = "",
) -> None:
    """Validate the shared count/worker/robustness knobs in one place.

    ``n_trials`` covers every repeat-count style parameter (trials,
    traces, packets, locations, ...); ``n_workers`` is the pool size;
    ``max_retries``/``timeout_s``/``backoff_s`` are the fault-tolerance
    knobs; ``seed`` must satisfy ``0 <= seed < 2**64``
    (:data:`SEED_BOUND`).  ``None`` means "not supplied" and is always
    accepted.  ``where`` names the caller in the error message.
    """
    ctx = f" in {where}" if where else ""
    if seed is not None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"seed{ctx} must be an int, got {seed!r}")
        if not 0 <= seed < SEED_BOUND:
            raise ValueError(
                f"seed{ctx} must satisfy 0 <= seed < 2**64, got {seed}"
            )
    if n_trials is not None:
        if not isinstance(n_trials, int) or isinstance(n_trials, bool):
            raise ValueError(f"count{ctx} must be an int, got {n_trials!r}")
        if n_trials < 1:
            raise ValueError(f"count{ctx} must be >= 1, got {n_trials}")
    if n_workers is not None:
        if not isinstance(n_workers, int) or isinstance(n_workers, bool):
            raise ValueError(f"n_workers{ctx} must be an int, got {n_workers!r}")
        if n_workers < 1:
            raise ValueError(f"n_workers{ctx} must be >= 1, got {n_workers}")
    if max_retries is not None:
        if not isinstance(max_retries, int) or isinstance(max_retries, bool):
            raise ValueError(
                f"max_retries{ctx} must be an int, got {max_retries!r}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries{ctx} must be >= 0, got {max_retries}")
    if timeout_s is not None:
        if isinstance(timeout_s, bool) or not isinstance(timeout_s, (int, float)):
            raise ValueError(f"timeout_s{ctx} must be a number, got {timeout_s!r}")
        if not timeout_s > 0:
            raise ValueError(f"timeout_s{ctx} must be > 0, got {timeout_s}")
    if backoff_s is not None:
        if isinstance(backoff_s, bool) or not isinstance(backoff_s, (int, float)):
            raise ValueError(f"backoff_s{ctx} must be a number, got {backoff_s!r}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s{ctx} must be >= 0, got {backoff_s}")


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve the shared worker-count knob.

    An explicit argument wins and is validated strictly (``0``/``-3``
    raise instead of being silently clamped to 1).  Otherwise the
    ``REPRO_WORKERS`` environment variable (set by the CLI's
    ``--workers`` flag) is consulted; a value that does not parse as a
    positive integer is a *misconfiguration*, reported with a
    ``RuntimeWarning`` before falling back to 1 worker.
    """
    if n_workers is not None:
        validate_bounds(n_workers=n_workers, where="resolve_workers")
        return n_workers
    raw = os.environ.get("REPRO_WORKERS", "")
    if not raw:
        return 1
    try:
        value = int(raw)
        validate_bounds(n_workers=value, where="REPRO_WORKERS")
    except ValueError as exc:
        warnings.warn(
            f"ignoring invalid REPRO_WORKERS={raw!r} ({exc}); using 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return value


def resolve_retries(max_retries: int | None = None) -> int:
    """Per-chunk retry budget: explicit arg, else ``REPRO_RETRIES``, else 0."""
    if max_retries is not None:
        validate_bounds(max_retries=max_retries, where="resolve_retries")
        return max_retries
    raw = os.environ.get("REPRO_RETRIES", "")
    if not raw:
        return 0
    try:
        value = int(raw)
        validate_bounds(max_retries=value, where="REPRO_RETRIES")
    except ValueError as exc:
        warnings.warn(
            f"ignoring invalid REPRO_RETRIES={raw!r} ({exc}); using 0 retries",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    return value


def resolve_timeout_s(timeout_s: float | None = None) -> float | None:
    """Per-chunk timeout: explicit arg, else ``REPRO_TIMEOUT_S``, else none."""
    if timeout_s is not None:
        validate_bounds(timeout_s=timeout_s, where="resolve_timeout_s")
        return float(timeout_s)
    raw = os.environ.get("REPRO_TIMEOUT_S", "")
    if not raw:
        return None
    try:
        value = float(raw)
        validate_bounds(timeout_s=value, where="REPRO_TIMEOUT_S")
    except ValueError as exc:
        warnings.warn(
            f"ignoring invalid REPRO_TIMEOUT_S={raw!r} ({exc}); no timeout",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value


def resolve_backoff_s(backoff_s: float | None = None) -> float:
    """Backoff base: explicit arg, else ``REPRO_BACKOFF_S``, else 0.05 s."""
    if backoff_s is not None:
        validate_bounds(backoff_s=backoff_s, where="resolve_backoff_s")
        return float(backoff_s)
    raw = os.environ.get("REPRO_BACKOFF_S", "")
    if not raw:
        return 0.05
    try:
        value = float(raw)
        validate_bounds(backoff_s=value, where="REPRO_BACKOFF_S")
    except ValueError as exc:
        warnings.warn(
            f"ignoring invalid REPRO_BACKOFF_S={raw!r} ({exc}); using 0.05 s",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0.05
    return value


@dataclass
class TrialStats:
    """Aggregate of one scalar metric across trials."""

    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if self.values.size else float("nan")

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if self.values.size > 1 else 0.0

    @property
    def n(self) -> int:
        return int(self.values.size)

    def ci95_halfwidth(self) -> float:
        """95% confidence half-width, Student-t for small n.

        Uses the t quantile at ``n - 1`` degrees of freedom, which the
        normal approximation (1.96) understates badly for the small
        trial counts quick runs use; the two agree asymptotically.
        """
        if self.values.size < 2:
            return 0.0
        from scipy import stats as sp_stats

        t = float(sp_stats.t.ppf(0.975, self.values.size - 1))
        return float(t * self.std / np.sqrt(self.values.size))


def _run_chunk(
    trial: Trial,
    seeds: list[np.random.SeedSequence],
    chunk_index: int = 0,
    start: int = 0,
    attempt: int = 1,
) -> list[dict[str, float]]:
    """Run a contiguous chunk of trials (also the worker entry point).

    A trial exception is re-raised as :class:`TrialError` carrying the
    *global* trial index, so a failure three chunks deep in a pool
    still names the trial that caused it.

    A trial exposing a callable ``run_batch(rngs) -> list[metrics]``
    gets the whole chunk in one call: every trial still receives its
    own independently spawned generator (seeding policy unchanged, so
    values stay bit-identical to the per-trial path), only the kernel
    dispatch is fused.  Per-trial fault injection points are checked
    before the fused call so the deterministic fault harness covers
    both paths.
    """
    faults.check("chunk", index=chunk_index, attempt=attempt)
    run_batch = getattr(trial, "run_batch", None)
    if callable(run_batch):
        rngs: list[np.random.Generator] = []
        for offset, seed_seq in enumerate(seeds):
            trial_index = start + offset
            try:
                faults.check("trial", index=trial_index, attempt=attempt)
            except Exception as exc:
                raise TrialError(
                    trial_index, attempt, f"{type(exc).__name__}: {exc}"
                ) from exc
            rngs.append(np.random.default_rng(seed_seq))
        perf.count("mc.batched_chunks")
        try:
            fused = list(run_batch(rngs))
        except Exception as exc:
            raise TrialError(
                start, attempt, f"{type(exc).__name__}: {exc}"
            ) from exc
        if len(fused) != len(seeds):
            raise TrialError(
                start,
                attempt,
                f"run_batch returned {len(fused)} results for "
                f"{len(seeds)} trials",
            )
        return fused
    out: list[dict[str, float]] = []
    for offset, seed_seq in enumerate(seeds):
        trial_index = start + offset
        try:
            faults.check("trial", index=trial_index, attempt=attempt)
            out.append(trial(np.random.default_rng(seed_seq)))
        except Exception as exc:
            raise TrialError(
                trial_index, attempt, f"{type(exc).__name__}: {exc}"
            ) from exc
    return out


def _sleep_backoff(backoff_s: float, attempt: int) -> None:
    if backoff_s > 0:
        time.sleep(backoff_s * 2 ** min(attempt - 1, _BACKOFF_CAP_EXP))


def _shutdown_pool(pool: ProcessPoolExecutor, *, force: bool) -> None:
    """Shut a pool down; with ``force`` also terminate hung workers."""
    pool.shutdown(wait=not force, cancel_futures=True)
    if force:
        processes: Any = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            proc.terminate()
        for proc in list(processes.values()):
            proc.join(timeout=5.0)


@dataclass
class MonteCarlo:
    """Run ``trial(rng) -> dict[str, float]`` over independent streams.

    Seeds are spawned from one root ``SeedSequence`` so trials are
    independent yet the whole run is reproducible from ``seed``.

    ``n_workers`` > 1 fans contiguous chunks of trials out to a process
    pool (``None`` defers to :func:`resolve_workers`, i.e. the
    ``REPRO_WORKERS`` knob).  Results are reassembled in trial order,
    so ``TrialStats.values`` is bit-identical for every worker count;
    ``trial`` must then be picklable (a module-level function).

    ``max_retries``/``timeout_s``/``backoff_s`` configure per-chunk
    fault tolerance (``None`` defers to ``REPRO_RETRIES`` /
    ``REPRO_TIMEOUT_S`` / ``REPRO_BACKOFF_S``); a retried chunk re-runs
    the identical seed list, so recovery never changes values.  The
    timeout applies to the pooled path only: a serial run cannot
    preempt its own trial.

    A ``trial`` object that also exposes ``run_batch(rngs) ->
    list[metrics]`` has each chunk dispatched as one fused call (one
    generator per trial, spawned exactly as in the per-trial path);
    see :func:`_run_chunk`.  Fused chunks are counted under
    ``mc.batched_chunks`` in the ``REPRO_PERF=1`` report.
    """

    n_trials: int
    seed: int = 0
    n_workers: int | None = None
    max_retries: int | None = None
    timeout_s: float | None = None
    backoff_s: float | None = None

    def run(self, trial: Trial) -> dict[str, TrialStats]:
        validate_bounds(n_trials=self.n_trials, where="MonteCarlo")
        retries = resolve_retries(self.max_retries)
        timeout_s = resolve_timeout_s(self.timeout_s)
        backoff_s = resolve_backoff_s(self.backoff_s)
        root = np.random.SeedSequence(self.seed)
        seeds = root.spawn(self.n_trials)
        workers = min(resolve_workers(self.n_workers), self.n_trials)
        if workers <= 1:
            results = self._run_serial(trial, seeds, retries, backoff_s)
        else:
            results = self._run_parallel(
                trial, seeds, workers, retries, timeout_s, backoff_s
            )
        return _collect(results)

    # -- serial ---------------------------------------------------------
    def _run_serial(
        self,
        trial: Trial,
        seeds: list[np.random.SeedSequence],
        retries: int,
        backoff_s: float,
    ) -> list[dict[str, float]]:
        attempt = 0
        while True:
            attempt += 1
            try:
                return _run_chunk(trial, seeds, 0, 0, attempt)
            except Exception as exc:
                if attempt > retries:
                    raise ChunkError(
                        0, 0, len(seeds), attempt,
                        f"{type(exc).__name__}: {exc}",
                    ) from exc
                perf.count("mc.chunk_retries")
                _sleep_backoff(backoff_s, attempt)

    # -- parallel -------------------------------------------------------
    def _run_parallel(
        self,
        trial: Trial,
        seeds: list[np.random.SeedSequence],
        workers: int,
        retries: int,
        timeout_s: float | None,
        backoff_s: float,
    ) -> list[dict[str, float]]:
        bounds = np.linspace(0, self.n_trials, workers + 1).astype(int)
        chunks: dict[int, tuple[int, list[np.random.SeedSequence]]] = {}
        for chunk_index, (a, b) in enumerate(zip(bounds[:-1], bounds[1:])):
            if b > a:
                chunks[chunk_index] = (int(a), seeds[a:b])
        results: dict[int, list[dict[str, float]]] = {}
        attempts = dict.fromkeys(chunks, 0)
        pending = dict(chunks)
        while pending:
            wave = pending
            pending = {}
            pool = ProcessPoolExecutor(max_workers=min(workers, len(wave)))
            futures: dict[int, Future[list[dict[str, float]]]] = {
                ci: pool.submit(
                    _run_chunk, trial, chunk_seeds, ci, start, attempts[ci] + 1
                )
                for ci, (start, chunk_seeds) in wave.items()
            }
            deadline = None if timeout_s is None else time.monotonic() + timeout_s
            hung = False
            failures: dict[int, BaseException] = {}
            for ci, future in futures.items():
                try:
                    if deadline is None:
                        results[ci] = future.result()
                    else:
                        remaining = max(deadline - time.monotonic(), 0.0)
                        results[ci] = future.result(timeout=remaining)
                except Exception as exc:
                    if isinstance(exc, FuturesTimeoutError):
                        hung = True
                        perf.count("mc.chunk_timeouts")
                        detail = f"timed out after {timeout_s} s"
                    elif isinstance(exc, BrokenExecutor):
                        perf.count("mc.worker_crashes")
                        detail = f"worker crashed: {type(exc).__name__}: {exc}"
                    else:
                        detail = f"{type(exc).__name__}: {exc}"
                    tried = attempts[ci] + 1
                    if tried > retries:
                        # Fatal: cancel unstarted siblings, kill the
                        # rest, and surface full chunk/trial context.
                        _shutdown_pool(pool, force=True)
                        start, chunk_seeds = wave[ci]
                        raise ChunkError(
                            ci, start, start + len(chunk_seeds), tried, detail
                        ) from exc
                    failures[ci] = exc
            _shutdown_pool(pool, force=hung)
            for ci in failures:
                attempts[ci] += 1
                perf.count("mc.chunk_retries")
                pending[ci] = wave[ci]
            if pending:
                _sleep_backoff(backoff_s, max(attempts[ci] for ci in pending))
        return [metrics for ci in sorted(results) for metrics in results[ci]]


def _collect(results: list[dict[str, float]]) -> dict[str, TrialStats]:
    """Aggregate per-trial metric dicts, rejecting misaligned key sets.

    Silently merging trials that disagree on their metric keys would
    produce per-key ``TrialStats`` with different ``n`` -- means over
    different trial subsets presented as one population.  The first
    trial defines the contract; any deviation names the trial and the
    key diff.
    """
    collected: dict[str, list[float]] = {}
    first_keys: set[str] = set()
    for index, metrics in enumerate(results):
        keys = set(metrics)
        if index == 0:
            first_keys = keys
        elif keys != first_keys:
            missing = ", ".join(sorted(first_keys - keys)) or "<none>"
            extra = ", ".join(sorted(keys - first_keys)) or "<none>"
            raise ValueError(
                f"trial {index} returned a different metric key set than "
                f"trial 0 (missing: {missing}; unexpected: {extra}); every "
                f"trial must return the same metrics"
            )
        for key, value in metrics.items():
            collected.setdefault(key, []).append(float(value))
    return {k: TrialStats(np.array(v)) for k, v in collected.items()}
