"""Waveform-level end-to-end system simulation (batch driver).

Ties everything together: an excitation schedule is rendered packet by
packet into real waveforms, the multiscatter tag identifies each one
and backscatters tag data, the channel attenuates and adds noise, and
per-protocol commodity receivers decode both data streams.  This is
the whole Fig 1 loop at the signal level -- the integration surface
the unit tests cannot cover.

The per-packet signal path lives in :mod:`repro.sim.pipeline`; this
module is the thin batch driver that replays a schedule through it and
aggregates an :class:`AirlinkReport`.  The split exists so the
streaming gateway (:mod:`repro.gateway`) can drive the identical
pipeline one packet at a time -- both drivers produce byte-identical
:class:`~repro.sim.pipeline.PacketOutcome` sequences on the same seed.

Kept deliberately packet-sequential (no waveform-level packet
overlap): the collision regime is studied separately in
:mod:`repro.experiments.fig16_collisions` with composite scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tag import MultiscatterTag, SingleProtocolTag
from repro.rng import fallback_rng
from repro.sim.pipeline import AirlinkPipeline, PacketOutcome
from repro.sim.traffic import ExcitationSchedule

__all__ = ["PacketOutcome", "AirlinkReport", "run_airlink"]


@dataclass
class AirlinkReport:
    """Aggregate outcome of a schedule run through the full loop."""

    outcomes: list[PacketOutcome] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def n_packets(self) -> int:
        return len(self.outcomes)

    @property
    def identification_accuracy(self) -> float:
        if not self.outcomes:
            return 0.0
        hits = sum(1 for o in self.outcomes if o.identified is o.protocol)
        return hits / len(self.outcomes)

    @property
    def tag_bit_error_rate(self) -> float:
        sent = sum(o.tag_bits_sent for o in self.outcomes)
        if sent == 0:
            return 1.0
        good = sum(o.tag_bits_correct for o in self.outcomes)
        return 1.0 - good / sent

    def tag_throughput_kbps(self) -> float:
        good = sum(o.tag_bits_correct for o in self.outcomes)
        return good / max(self.duration_s, 1e-12) / 1e3

    def productive_throughput_kbps(self) -> float:
        good = sum(o.productive_bits_correct for o in self.outcomes)
        return good / max(self.duration_s, 1e-12) / 1e3


def run_airlink(
    schedule: ExcitationSchedule,
    tag: MultiscatterTag | SingleProtocolTag,
    *,
    d_tag_rx_m: float = 2.0,
    tag_payload: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    max_packets: int | None = None,
) -> AirlinkReport:
    """Run a schedule through excitation -> tag -> channel -> receiver.

    Each scheduled packet becomes a crafted overlay carrier; the tag
    identifies it (signal-level pipeline) and backscatters the next
    chunk of ``tag_payload``; the receiver decodes at the RSSI/noise
    implied by the calibrated link budget for ``d_tag_rx_m``.
    """
    rng = fallback_rng(rng)
    payload = (
        np.asarray(tag_payload, dtype=np.uint8)
        if tag_payload is not None
        else rng.integers(0, 2, 4096).astype(np.uint8)
    )
    report = AirlinkReport(duration_s=schedule.duration_s)
    pipeline = AirlinkPipeline(tag, d_tag_rx_m=d_tag_rx_m)
    cursor = 0

    packets = schedule.packets[:max_packets] if max_packets else schedule.packets
    for scheduled in packets:
        outcome, cursor = pipeline.process(scheduled, payload, cursor, rng)
        report.outcomes.append(outcome)
    return report
