"""Waveform-level end-to-end system simulation.

Ties everything together: an excitation schedule is rendered packet by
packet into real waveforms, the multiscatter tag identifies each one
and backscatters tag data, the channel attenuates and adds noise, and
per-protocol commodity receivers decode both data streams.  This is
the whole Fig 1 loop at the signal level -- the integration surface
the unit tests cannot cover.

Kept deliberately packet-sequential (no waveform-level packet
overlap): the collision regime is studied separately in
:mod:`repro.experiments.fig16_collisions` with composite scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
from repro.channel.noise import awgn, noise_floor_dbm
from repro.core.identification import DEFAULT_INCIDENT_DBM
from repro.core.overlay_decoder import OverlayDecoder
from repro.core.tag import MultiscatterTag, SingleProtocolTag, TagReaction
from repro.phy.protocols import Protocol
from repro.rng import fallback_rng
from repro.sim.traffic import ExcitationSchedule, random_packet

__all__ = ["PacketOutcome", "AirlinkReport", "run_airlink"]


@dataclass
class PacketOutcome:
    """What happened to one excitation packet."""

    protocol: Protocol
    start_s: float
    identified: Protocol | None
    backscattered: bool
    tag_bits_sent: int
    tag_bits_correct: int
    productive_bits_correct: int
    productive_bits_total: int
    tag_bits_decoded: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))


@dataclass
class AirlinkReport:
    """Aggregate outcome of a schedule run through the full loop."""

    outcomes: list[PacketOutcome] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def n_packets(self) -> int:
        return len(self.outcomes)

    @property
    def identification_accuracy(self) -> float:
        if not self.outcomes:
            return 0.0
        hits = sum(1 for o in self.outcomes if o.identified is o.protocol)
        return hits / len(self.outcomes)

    @property
    def tag_bit_error_rate(self) -> float:
        sent = sum(o.tag_bits_sent for o in self.outcomes)
        if sent == 0:
            return 1.0
        good = sum(o.tag_bits_correct for o in self.outcomes)
        return 1.0 - good / sent

    def tag_throughput_kbps(self) -> float:
        good = sum(o.tag_bits_correct for o in self.outcomes)
        return good / max(self.duration_s, 1e-12) / 1e3

    def productive_throughput_kbps(self) -> float:
        good = sum(o.productive_bits_correct for o in self.outcomes)
        return good / max(self.duration_s, 1e-12) / 1e3


def run_airlink(
    schedule: ExcitationSchedule,
    tag: MultiscatterTag | SingleProtocolTag,
    *,
    d_tag_rx_m: float = 2.0,
    tag_payload: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    max_packets: int | None = None,
) -> AirlinkReport:
    """Run a schedule through excitation -> tag -> channel -> receiver.

    Each scheduled packet becomes a crafted overlay carrier; the tag
    identifies it (signal-level pipeline) and backscatters the next
    chunk of ``tag_payload``; the receiver decodes at the RSSI/noise
    implied by the calibrated link budget for ``d_tag_rx_m``.
    """
    rng = fallback_rng(rng)
    payload = (
        np.asarray(tag_payload, dtype=np.uint8)
        if tag_payload is not None
        else rng.integers(0, 2, 4096).astype(np.uint8)
    )
    report = AirlinkReport(duration_s=schedule.duration_s)
    cursor = 0

    packets = schedule.packets[:max_packets] if max_packets else schedule.packets
    for scheduled in packets:
        protocol = scheduled.protocol
        # Excitation: a crafted overlay carrier with random productive
        # bits (the codec is the tag's modulator-side codec).
        modulator = tag.modulator_for(protocol) if isinstance(tag, MultiscatterTag) else None
        if modulator is None and isinstance(tag, SingleProtocolTag):
            # Single-protocol tags carry their own codec lazily; use a
            # plain random packet for foreign protocols (ignored anyway).
            if protocol is not tag.protocol:
                excitation = random_packet(protocol, rng, n_payload_bytes=20)
                reaction = tag.react(excitation, [])
                report.outcomes.append(
                    PacketOutcome(
                        protocol=protocol,
                        start_s=scheduled.start_s,
                        identified=reaction.identified,
                        backscattered=False,
                        tag_bits_sent=0,
                        tag_bits_correct=0,
                        productive_bits_correct=0,
                        productive_bits_total=0,
                    )
                )
                continue
            from repro.core.overlay import OverlayCodec, OverlayConfig
            from repro.core.tag_modulation import TagModulator

            codec = OverlayCodec(OverlayConfig.for_mode(protocol, tag.mode))
            modulator = TagModulator(codec, frequency_shift_hz=tag.frequency_shift_hz)

        codec = modulator.codec
        n_prod = 24
        productive = rng.integers(0, 2, n_prod).astype(np.uint8)
        excitation = codec.build_carrier(productive)
        _, capacity = codec.capacity(excitation.annotations["n_payload_symbols"])

        chunk = payload[cursor : cursor + capacity]
        reaction: TagReaction = tag.react(
            excitation,
            chunk,
            incident_power_dbm=DEFAULT_INCIDENT_DBM[protocol],
            rng=rng,
        )
        if not reaction.transmitted:
            report.outcomes.append(
                PacketOutcome(
                    protocol=protocol,
                    start_s=scheduled.start_s,
                    identified=reaction.identified,
                    backscattered=False,
                    tag_bits_sent=0,
                    tag_bits_correct=0,
                    productive_bits_correct=0,
                    productive_bits_total=n_prod,
                )
            )
            continue
        cursor += reaction.tag_bits_sent.size

        # Channel: calibrated backscatter SNR at the receiver.
        link = BackscatterLink(PROTOCOL_LINK_DEFAULTS[protocol])
        snr_db = link.snr_db(d_tag_rx_m)
        received = modulator.received_at_shifted_channel(reaction.backscattered)
        received = awgn(received, snr_db=snr_db, rng=rng)
        received.annotations = dict(excitation.annotations)

        out = OverlayDecoder(codec).decode(received)
        sent = reaction.tag_bits_sent
        got_tag = out.tag_bits[: sent.size]
        tag_correct = int(np.count_nonzero(got_tag == sent)) if sent.size else 0
        got_prod = out.productive_bits[:n_prod]
        prod_correct = int(
            np.count_nonzero(got_prod == productive[: got_prod.size])
        )
        report.outcomes.append(
            PacketOutcome(
                protocol=protocol,
                start_s=scheduled.start_s,
                identified=reaction.identified,
                backscattered=True,
                tag_bits_sent=int(sent.size),
                tag_bits_correct=tag_correct,
                productive_bits_correct=prod_correct,
                productive_bits_total=n_prod,
                tag_bits_decoded=np.asarray(got_tag, dtype=np.uint8),
            )
        )
    return report
