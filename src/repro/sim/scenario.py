"""Deployment geometry: the paper's 30 m x 50 m floor (Fig 11b).

Positions are 2-D coordinates in meters.  A :class:`Deployment` holds
the excitation radio, tag, and receiver positions plus the walls
between zones, and produces the per-link distances and occlusion
losses the channel models consume -- so experiments can be phrased as
"receiver at hallway position X" instead of raw distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import PROTOCOL_LINK_DEFAULTS, BackscatterLink
from repro.phy.protocols import Protocol

__all__ = ["Position", "Wall", "Deployment", "paper_floorplan"]


@dataclass(frozen=True)
class Position:
    """A point on the floor, meters."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return float(np.hypot(self.x - other.x, self.y - other.y))


@dataclass(frozen=True)
class Wall:
    """A wall segment with a penetration loss."""

    a: Position
    b: Position
    loss_db: float = 1.8

    def crosses(self, p: Position, q: Position) -> bool:
        """Does segment p-q intersect this wall segment?"""

        def orient(o: Position, u: Position, v: Position) -> float:
            return (u.x - o.x) * (v.y - o.y) - (u.y - o.y) * (v.x - o.x)

        d1 = orient(self.a, self.b, p)
        d2 = orient(self.a, self.b, q)
        d3 = orient(p, q, self.a)
        d4 = orient(p, q, self.b)
        return (d1 * d2 < 0) and (d3 * d4 < 0)


@dataclass
class Deployment:
    """Placement of the three backscatter parties plus walls."""

    transmitter: Position
    tag: Position
    receiver: Position
    walls: list[Wall] = field(default_factory=list)

    def d_tx_tag(self) -> float:
        return self.transmitter.distance_to(self.tag)

    def d_tag_rx(self) -> float:
        return self.tag.distance_to(self.receiver)

    def wall_loss_db(self, p: Position, q: Position) -> float:
        """Total penetration loss on the p-q path."""
        return float(sum(w.loss_db for w in self.walls if w.crosses(p, q)))

    def is_nlos(self) -> bool:
        """Does the tag-receiver path cross any wall?"""
        return self.wall_loss_db(self.tag, self.receiver) > 0.0

    def link(self, protocol: Protocol) -> BackscatterLink:
        """The backscatter link this geometry implies."""
        return BackscatterLink(
            PROTOCOL_LINK_DEFAULTS[protocol],
            d_tx_tag_m=max(self.d_tx_tag(), 0.05),
            extra_loss_db=self.wall_loss_db(self.tag, self.receiver),
        )

    def with_receiver(self, receiver: Position) -> "Deployment":
        return Deployment(
            transmitter=self.transmitter,
            tag=self.tag,
            receiver=receiver,
            walls=self.walls,
        )


def paper_floorplan(*, nlos: bool = False) -> Deployment:
    """The paper's experimental layout (Fig 11b, idealized).

    LoS: all devices in the hallway (a line along y=0).  NLoS: the
    transmitter and tag sit in an office behind a wall at y=1, the
    receiver stays in the hallway.
    """
    if not nlos:
        return Deployment(
            transmitter=Position(0.0, 0.0),
            tag=Position(0.8, 0.0),
            receiver=Position(10.8, 0.0),
            walls=[],
        )
    wall = Wall(Position(-5.0, 1.0), Position(45.0, 1.0), loss_db=1.8)
    return Deployment(
        transmitter=Position(0.0, 2.0),
        tag=Position(0.8, 2.0),
        receiver=Position(10.8, 0.0),
        walls=[wall],
    )
