"""Simulation framework: excitation traffic, scenarios, metrics."""

from repro.sim.traffic import random_packet, ExcitationSource, ExcitationSchedule
from repro.sim.metrics import ber, confusion_table, throughput_kbps

__all__ = [
    "random_packet",
    "ExcitationSource",
    "ExcitationSchedule",
    "ber",
    "confusion_table",
    "throughput_kbps",
]
