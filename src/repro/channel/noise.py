"""Thermal noise models.

AWGN is parameterized either by an SNR relative to the waveform's own
power or by an absolute noise power under the library's 0 dBm == unit
power convention.
"""

from __future__ import annotations

import numpy as np

from repro.types import ComplexIQ, DbmPower, Decibels, Hertz, Milliwatts, Samples

from repro.phy.waveform import Waveform
from repro.rng import fallback_rng

__all__ = ["noise_floor_dbm", "awgn", "complex_noise"]

#: Thermal noise density at 290 K, dBm/Hz.
THERMAL_NOISE_DBM_PER_HZ = -174.0

#: Default receiver noise figure (commodity 2.4 GHz radios), dB.
DEFAULT_NOISE_FIGURE_DB = 7.0


def noise_floor_dbm(bandwidth_hz: Hertz, noise_figure_db: Decibels = DEFAULT_NOISE_FIGURE_DB) -> DbmPower:
    """Receiver noise floor: -174 + 10 log10(B) + NF."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return THERMAL_NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + noise_figure_db


def complex_noise(n: Samples, power_mw: Milliwatts, rng: np.random.Generator) -> ComplexIQ:
    """Circular complex Gaussian samples of mean power ``power_mw``."""
    if power_mw < 0:
        raise ValueError("noise power must be non-negative")
    sigma = np.sqrt(power_mw / 2.0)
    return sigma * (rng.normal(size=n) + 1j * rng.normal(size=n))


def awgn(
    wave: Waveform,
    *,
    snr_db: Decibels | None = None,
    noise_power_dbm: DbmPower | None = None,
    rng: np.random.Generator | None = None,
) -> Waveform:
    """Add white Gaussian noise.

    Exactly one of ``snr_db`` (relative to the waveform's mean power)
    or ``noise_power_dbm`` (absolute, 0 dBm == unit power) must be
    given.
    """
    if (snr_db is None) == (noise_power_dbm is None):
        raise ValueError("give exactly one of snr_db or noise_power_dbm")
    rng = fallback_rng(rng)
    if snr_db is not None:
        signal_power = wave.mean_power()
        noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    else:
        noise_power = 10.0 ** (noise_power_dbm / 10.0)
    noisy = wave.copy()
    noisy.iq = noisy.iq + complex_noise(wave.n_samples, noise_power, rng)
    return noisy
