"""Path-loss models for the 2.4 GHz ISM band.

The paper's deployment is an indoor hallway/office floor (Fig 11b,
30 m x 50 m).  We model it with a log-distance law whose exponent is
calibrated once (DESIGN.md §5) so the LoS backscatter ranges land near
the paper's 28/22/20 m; hallways act as waveguides, hence an exponent
below free space.
"""

from __future__ import annotations

import numpy as np

from repro.types import DbmPower, Decibels, Hertz, Meters, Milliwatts, Ratio

__all__ = [
    "SPEED_OF_LIGHT",
    "wavelength",
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "db_to_gain",
    "gain_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
]

SPEED_OF_LIGHT = 299_792_458.0

#: Calibrated indoor-hallway exponent (see DESIGN.md §5).
DEFAULT_EXPONENT = 1.8

#: Reference loss at 1 m for 2.4 GHz (free space ~= 40.05 dB).
DEFAULT_PL0_DB = 40.05


def wavelength(freq_hz: Hertz) -> Meters:
    """Carrier wavelength in meters."""
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    return SPEED_OF_LIGHT / freq_hz


def free_space_path_loss_db(distance_m: Meters, freq_hz: Hertz = 2.4e9) -> Decibels:
    """Friis free-space loss; ``distance_m`` is clamped to >= 0.01 m."""
    d = max(float(distance_m), 0.01)
    lam = wavelength(freq_hz)
    return float(20.0 * np.log10(4.0 * np.pi * d / lam))


def log_distance_path_loss_db(
    distance_m: Meters,
    *,
    exponent: float = DEFAULT_EXPONENT,
    pl0_db: float = DEFAULT_PL0_DB,
    d0_m: float = 1.0,
) -> float:
    """Log-distance model: PL = PL0 + 10 n log10(d / d0)."""
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    d = max(float(distance_m), 0.01)
    return float(pl0_db + 10.0 * exponent * np.log10(d / d0_m))


def db_to_gain(db: Decibels) -> Ratio:
    """Power dB to amplitude scale factor."""
    return float(10.0 ** (db / 20.0))


def gain_to_db(gain: Ratio) -> Decibels:
    """Amplitude scale factor to power dB."""
    if gain <= 0:
        raise ValueError("gain must be positive")
    return float(20.0 * np.log10(gain))


def dbm_to_mw(dbm: DbmPower) -> Milliwatts:
    return float(10.0 ** (dbm / 10.0))


def mw_to_dbm(mw: Milliwatts) -> DbmPower:
    if mw <= 0:
        raise ValueError("power must be positive")
    return float(10.0 * np.log10(mw))
