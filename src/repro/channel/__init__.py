"""Channel and link-budget models.

Power convention: a :class:`~repro.phy.waveform.Waveform` whose mean
|iq|^2 is 1.0 carries 0 dBm; :func:`repro.channel.pathloss.db_to_gain`
converts dB power gains to amplitude scale factors.  All modulators
emit unit (0 dBm) waveforms; the channel scales them.
"""

from repro.channel.noise import awgn, noise_floor_dbm
from repro.channel.pathloss import (
    db_to_gain,
    free_space_path_loss_db,
    log_distance_path_loss_db,
)
from repro.channel.link import BackscatterLink, LinkBudget, PROTOCOL_LINK_DEFAULTS
from repro.channel.occlusion import Material, occlusion_loss_db, OccludedChannel
from repro.channel.channel import Channel
from repro.channel.fading import MultipathChannel, rayleigh_gain, rician_gain

__all__ = [
    "awgn",
    "noise_floor_dbm",
    "db_to_gain",
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "BackscatterLink",
    "LinkBudget",
    "PROTOCOL_LINK_DEFAULTS",
    "Material",
    "occlusion_loss_db",
    "OccludedChannel",
    "Channel",
    "MultipathChannel",
    "rayleigh_gain",
    "rician_gain",
]
