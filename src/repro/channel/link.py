"""Dyadic backscatter link budget and analytic error-rate models.

The backscatter path is excitation radio -> tag -> receiver: the tag
re-radiates what it hears, so the received power stacks two path
losses plus the tag's backscatter (reflection/modulation) loss.  The
paper's Figs 13-14 sweep the tag-receiver distance with the
excitation radio 0.8 m from the tag; this module reproduces those
RSSI/BER/throughput curves analytically from SNR, with constants
calibrated once (DESIGN.md §5) so the LoS maximum ranges land near the
paper's 28 m (WiFi) / 22 m (ZigBee) / 20 m (BLE).

Error-rate models are the standard waterfall formulas per modulation
family (DBPSK+DSSS, coded OFDM-BPSK, noncoherent GFSK, 802.15.4
16-ary quasi-orthogonal).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy import special

from repro.channel import pathloss
from repro.channel.noise import noise_floor_dbm
from repro.phy.protocols import Protocol
from repro.types import Bits, DbmPower, Decibels, Hertz, Meters, Ratio

__all__ = [
    "LinkBudget",
    "BackscatterLink",
    "PROTOCOL_LINK_DEFAULTS",
    "ber_dbpsk",
    "ber_coded_ofdm_bpsk",
    "ber_gfsk_noncoherent",
    "ber_802154",
]


# ----------------------------------------------------------------------
# error-rate waterfalls (input: Eb/N0 in linear units)
# ----------------------------------------------------------------------
def _q(x: np.ndarray | float) -> np.ndarray | float:
    return 0.5 * special.erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def ber_dbpsk(ebn0_lin: float) -> float:
    """Differentially-coherent BPSK (802.11b 1 Mbps after despreading)."""
    return float(np.clip(0.5 * np.exp(-max(ebn0_lin, 0.0)), 0.0, 0.5))


def ber_coded_ofdm_bpsk(ebn0_lin: float, coding_gain_db: float = 3.8) -> float:
    """BPSK with rate-1/2 K=7 BCC, hard decisions (802.11n MCS0).

    Modeled as uncoded BPSK shifted by an effective hard-decision
    coding gain.
    """
    eff = ebn0_lin * 10.0 ** (coding_gain_db / 10.0)
    return float(np.clip(_q(np.sqrt(2.0 * eff)), 0.0, 0.5))


def ber_gfsk_noncoherent(ebn0_lin: float) -> float:
    """Noncoherent binary FSK with modulation index 0.5 (BLE LE 1M)."""
    return float(np.clip(0.5 * np.exp(-0.5 * max(ebn0_lin, 0.0)), 0.0, 0.5))


def ber_802154(ebn0_lin: float) -> float:
    """IEEE 802.15.4 O-QPSK/DSSS BER (16-ary quasi-orthogonal union
    bound, the standard closed form used in 802.15.4 analyses)."""
    snr = max(ebn0_lin, 0.0)
    total = 0.0
    for k in range(2, 17):
        total += (-1.0) ** k * special.comb(16, k) * np.exp(20.0 * snr * (1.0 / k - 1.0))
    ber = (8.0 / 15.0) * (1.0 / 16.0) * total
    return float(np.clip(ber, 0.0, 0.5))


_BER_MODEL = {
    Protocol.WIFI_B: ber_dbpsk,
    Protocol.WIFI_N: ber_coded_ofdm_bpsk,
    Protocol.BLE: ber_gfsk_noncoherent,
    Protocol.ZIGBEE: ber_802154,
}


# ----------------------------------------------------------------------
# link budget
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkBudget:
    """Static RF parameters of one excitation protocol's link.

    ``calibration_offset_db`` absorbs unmodeled implementation margins
    (cable losses, imperfect matching, polarization) and is fit once so
    LoS ranges reproduce the paper; every other experiment inherits it
    unchanged.
    """

    protocol: Protocol
    tx_power_dbm: DbmPower
    bandwidth_hz: Hertz
    bit_rate_hz: Hertz
    tx_gain_dbi: Decibels = 3.0
    rx_gain_dbi: Decibels = 3.0
    backscatter_loss_db: Decibels = 12.0
    noise_figure_db: Decibels = 7.0
    calibration_offset_db: Decibels = 0.0

    @property
    def processing_gain_db(self) -> Decibels:
        """Bandwidth-to-bit-rate ratio (despreading gain)."""
        return float(10.0 * np.log10(self.bandwidth_hz / self.bit_rate_hz))


#: Calibrated per-protocol defaults (transmit powers follow the paper's
#: hardware: Atheros NIC + PA for WiFi, CC2540 for BLE, CC2530 for
#: ZigBee; offsets are fit to the Fig 13 LoS ranges).
PROTOCOL_LINK_DEFAULTS: dict[Protocol, LinkBudget] = {
    Protocol.WIFI_B: LinkBudget(
        protocol=Protocol.WIFI_B,
        tx_power_dbm=14.0,
        bandwidth_hz=22e6,
        bit_rate_hz=1e6,
        calibration_offset_db=-2.4,
    ),
    Protocol.WIFI_N: LinkBudget(
        protocol=Protocol.WIFI_N,
        tx_power_dbm=14.0,
        bandwidth_hz=20e6,
        bit_rate_hz=6.5e6,
        calibration_offset_db=0.8,
    ),
    Protocol.BLE: LinkBudget(
        protocol=Protocol.BLE,
        tx_power_dbm=4.0,
        bandwidth_hz=2e6,
        bit_rate_hz=1e6,
        calibration_offset_db=8.0,
    ),
    Protocol.ZIGBEE: LinkBudget(
        protocol=Protocol.ZIGBEE,
        tx_power_dbm=4.0,
        bandwidth_hz=2e6,
        bit_rate_hz=250e3,
        calibration_offset_db=-9.2,
    ),
}


class BackscatterLink:
    """End-to-end excitation -> tag -> receiver link.

    Parameters
    ----------
    budget:
        Protocol RF parameters (see :data:`PROTOCOL_LINK_DEFAULTS`).
    d_tx_tag_m:
        Excitation-to-tag distance (paper: 0.8 m).
    exponent / pl0_db:
        Log-distance path-loss parameters (shared calibration).
    extra_loss_db:
        Additional one-way loss on the tag->receiver path (NLoS wall,
        Fig 14).
    """

    def __init__(
        self,
        budget: LinkBudget,
        *,
        d_tx_tag_m: float = 0.8,
        exponent: float = pathloss.DEFAULT_EXPONENT,
        pl0_db: float = pathloss.DEFAULT_PL0_DB,
        extra_loss_db: float = 0.0,
    ) -> None:
        self.budget = budget
        self.d_tx_tag_m = d_tx_tag_m
        self.exponent = exponent
        self.pl0_db = pl0_db
        self.extra_loss_db = extra_loss_db

    # -- power -----------------------------------------------------------
    def _pl(self, d: Meters) -> Decibels:
        return pathloss.log_distance_path_loss_db(
            d, exponent=self.exponent, pl0_db=self.pl0_db
        )

    def incident_power_dbm(self) -> DbmPower:
        """Excitation power arriving at the tag antenna (downlink)."""
        b = self.budget
        return b.tx_power_dbm + b.tx_gain_dbi - self._pl(self.d_tx_tag_m)

    def rssi_dbm(self, d_tag_rx_m: Meters) -> DbmPower:
        """Backscatter RSSI at the receiver, ``d_tag_rx_m`` from the tag."""
        b = self.budget
        return (
            self.incident_power_dbm()
            - b.backscatter_loss_db
            - self._pl(d_tag_rx_m)
            + b.rx_gain_dbi
            - self.extra_loss_db
        )

    # -- quality ---------------------------------------------------------
    def snr_db(self, d_tag_rx_m: Meters) -> Decibels:
        """Effective decoding SNR: RSSI over the noise floor, shifted by
        the per-protocol calibration offset (receiver implementation
        margin; see DESIGN.md §5)."""
        b = self.budget
        return (
            self.rssi_dbm(d_tag_rx_m)
            + b.calibration_offset_db
            - noise_floor_dbm(b.bandwidth_hz, b.noise_figure_db)
        )

    def ebn0_db(self, d_tag_rx_m: Meters) -> Decibels:
        return self.snr_db(d_tag_rx_m) + self.budget.processing_gain_db

    def ber(self, d_tag_rx_m: Meters) -> Ratio:
        """Raw bit error rate of the backscattered stream."""
        ebn0 = 10.0 ** (self.ebn0_db(d_tag_rx_m) / 10.0)
        return _BER_MODEL[self.budget.protocol](ebn0)

    def per(self, d_tag_rx_m: Meters, n_bits: Bits) -> Ratio:
        """Packet error rate for an ``n_bits`` packet (iid bit errors)."""
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        ber = self.ber(d_tag_rx_m)
        return float(1.0 - (1.0 - ber) ** n_bits)

    def max_range_m(
        self,
        *,
        per_threshold: float = 0.5,
        n_bits: int = 1000,
        d_max: float = 60.0,
        resolution: float = 0.1,
    ) -> float:
        """Largest distance at which PER stays below ``per_threshold``."""
        distances = np.arange(resolution, d_max, resolution)
        last_good = 0.0
        for d in distances:
            if self.per(float(d), n_bits) < per_threshold:
                last_good = float(d)
            else:
                break
        return last_good

    def with_occlusion(self, wall_loss_db: Decibels) -> "BackscatterLink":
        """A copy of this link with extra one-way loss (NLoS)."""
        return BackscatterLink(
            self.budget,
            d_tx_tag_m=self.d_tx_tag_m,
            exponent=self.exponent,
            pl0_db=self.pl0_db,
            extra_loss_db=self.extra_loss_db + wall_loss_db,
        )

    def with_budget(self, **changes: float) -> "BackscatterLink":
        """A copy with budget fields overridden (e.g. tx_power_dbm)."""
        return BackscatterLink(
            replace(self.budget, **changes),
            d_tx_tag_m=self.d_tx_tag_m,
            exponent=self.exponent,
            pl0_db=self.pl0_db,
            extra_loss_db=self.extra_loss_db,
        )
