"""Small-scale fading and multipath models.

The paper's indoor deployment sees multipath (hallway reflections) and
per-location fading -- the reason Fig 12 averages 100 tag locations.
This module provides:

* per-packet flat fading gains (Rayleigh / Rician block fading);
* :class:`MultipathChannel`, an exponential power-delay-profile FIR
  channel that frequency-selectively distorts wideband waveforms --
  what the 802.11n receiver's HT-LTF channel estimation exists to
  undo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import ComplexIQ

from repro.phy.waveform import Waveform

__all__ = [
    "rayleigh_gain",
    "rician_gain",
    "MultipathChannel",
]


def rayleigh_gain(rng: np.random.Generator) -> complex:
    """Unit-mean-power complex Rayleigh block-fading gain."""
    return complex(rng.normal(scale=np.sqrt(0.5)) + 1j * rng.normal(scale=np.sqrt(0.5)))


def rician_gain(k_factor_db: float, rng: np.random.Generator) -> complex:
    """Unit-mean-power Rician gain with LoS-to-scatter ratio K (dB)."""
    k = 10.0 ** (k_factor_db / 10.0)
    los = np.sqrt(k / (k + 1.0))
    scatter = np.sqrt(1.0 / (k + 1.0)) * rayleigh_gain(rng)
    return complex(los + scatter)


@dataclass
class MultipathChannel:
    """Exponential power-delay-profile FIR channel.

    ``rms_delay_spread_s`` controls frequency selectivity (indoor
    offices: 30-100 ns); ``n_taps`` taps are spaced at the waveform's
    sample period when applied.  Taps are drawn per instance (one
    physical location), normalized to unit mean power, with a
    deterministic ``seed``.
    """

    rms_delay_spread_s: float = 50e-9
    n_taps: int = 8
    seed: int = 0
    _cache: dict[float, np.ndarray] = field(default_factory=dict, repr=False)

    def taps(self, sample_rate: float) -> ComplexIQ:
        """FIR taps at ``sample_rate`` (cached per rate)."""
        if sample_rate in self._cache:
            return self._cache[sample_rate]
        rng = np.random.default_rng(self.seed)
        dt = 1.0 / sample_rate
        delays = np.arange(self.n_taps) * dt
        power = np.exp(-delays / max(self.rms_delay_spread_s, 1e-12))
        power = power / power.sum()
        taps = np.sqrt(power / 2.0) * (
            rng.normal(size=self.n_taps) + 1j * rng.normal(size=self.n_taps)
        )
        # First tap keeps a strong deterministic component so timing
        # reference (first arrival) is preserved.
        taps[0] = np.sqrt(power[0]) * (0.9 + 0.1j)
        taps = taps / np.linalg.norm(taps)
        self._cache[sample_rate] = taps
        return taps

    def apply(self, wave: Waveform) -> Waveform:
        """Convolve the waveform with this location's channel."""
        taps = self.taps(wave.sample_rate)
        out = wave.copy()
        out.iq = np.convolve(wave.iq, taps)[: wave.n_samples]
        return out

    def frequency_response(self, sample_rate: float, n_fft: int = 64) -> ComplexIQ:
        """Channel transfer function over ``n_fft`` bins (diagnostics)."""
        return np.fft.fft(self.taps(sample_rate), n_fft)
