"""Material occlusion of the original (excitation) channel.

The paper's Fig 9a / Fig 15 experiments block the *original* channel --
the transmitter-to-"first receiver" path that two-receiver baselines
(Hitchhike, FreeRider) depend on -- with drywall, wood, or concrete.
Besides mean attenuation, an occluded indoor path is unstable
(shadowing variance grows), which is what actually drives those
baselines' BER cliff; the model captures both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["Material", "occlusion_loss_db", "OccludedChannel"]


class Material(enum.Enum):
    """Obstruction types used in the paper's occlusion experiments."""

    NONE = "none"
    DRYWALL = "drywall"
    WOOD = "wooden wall"
    CONCRETE = "concrete wall"


#: (mean attenuation dB, shadowing std-dev dB) at 2.4 GHz.  Attenuation
#: values follow common indoor propagation surveys; the std-dev encodes
#: the instability the paper observes ("the original data reception
#: becomes highly unstable", §4.1.3).
_MATERIAL_TABLE: dict[Material, tuple[float, float]] = {
    Material.NONE: (0.0, 0.5),
    Material.DRYWALL: (4.0, 3.0),
    Material.WOOD: (6.0, 4.0),
    Material.CONCRETE: (13.0, 6.0),
}


def occlusion_loss_db(material: Material) -> float:
    """Mean penetration loss for ``material``."""
    return _MATERIAL_TABLE[material][0]


def occlusion_shadowing_std_db(material: Material) -> float:
    """Shadowing standard deviation behind ``material``."""
    return _MATERIAL_TABLE[material][1]


@dataclass
class OccludedChannel:
    """Per-packet channel state for a path crossing ``material``.

    ``sample_loss_db`` draws the packet's total excess loss: mean
    penetration loss plus log-normal shadowing.  Two-receiver baselines
    evaluate their original-channel packets through this, multiscatter
    does not need to (§4.1.3).
    """

    material: Material = Material.NONE

    def sample_loss_db(self, rng: np.random.Generator) -> float:
        mean, std = _MATERIAL_TABLE[self.material]
        return float(mean + rng.normal(scale=std))

    @property
    def mean_loss_db(self) -> float:
        return _MATERIAL_TABLE[self.material][0]
