"""Composable waveform channel: gain, frequency offset, delay, noise.

Used by the signal-level experiments (identification, overlay decoding)
to impair a :class:`~repro.phy.waveform.Waveform` consistently with the
analytic link budget in :mod:`repro.channel.link`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.noise import complex_noise
from repro.rng import fallback_rng
from repro.channel.pathloss import db_to_gain
from repro.phy.waveform import Waveform

__all__ = ["Channel"]


@dataclass
class Channel:
    """A linear impairment chain applied to waveforms.

    Attributes
    ----------
    gain_db:
        End-to-end power gain (negative = loss).  Applied as an
        amplitude scale under the 0 dBm == unit power convention.
    noise_power_dbm:
        Absolute AWGN power added after the gain; ``None`` disables.
    cfo_hz:
        Carrier frequency offset.
    phase_rad:
        Static phase rotation.
    delay_samples:
        Integer sample delay (zero-padded front).
    """

    gain_db: float = 0.0
    noise_power_dbm: float | None = None
    cfo_hz: float = 0.0
    phase_rad: float = 0.0
    delay_samples: int = 0

    def apply(self, wave: Waveform, rng: np.random.Generator | None = None) -> Waveform:
        """Run the waveform through the impairment chain."""
        out = wave.copy()
        if self.delay_samples:
            out = out.padded(before=self.delay_samples)
        amp = db_to_gain(self.gain_db) * np.exp(1j * self.phase_rad)
        out.iq = out.iq * amp
        if self.cfo_hz:
            out = out.frequency_shifted(self.cfo_hz)
            out.center_offset_hz -= self.cfo_hz  # CFO is an impairment,
            # not a channel retune; keep the nominal center annotation.
        if self.noise_power_dbm is not None:
            rng = fallback_rng(rng)
            power_mw = 10.0 ** (self.noise_power_dbm / 10.0)
            out.iq = out.iq + complex_noise(out.n_samples, power_mw, rng)
        return out
